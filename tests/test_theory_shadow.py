"""Tests for the modified-OPT shadow replays (Lemmas 1, 3, 8, 9, 11)."""

import pytest

from repro.core.cgu import CGUPolicy
from repro.core.gm import GMPolicy
from repro.offline.crossbar_timegraph import CrossbarOptModel
from repro.offline.opt import cioq_opt
from repro.simulation.engine import run_cioq, run_crossbar
from repro.switch.config import SwitchConfig
from repro.theory.shadow import replay_cgu_shadow, replay_gm_shadow
from repro.traffic.adversarial import (
    SingleOutputOverloadAdversary,
    generate_adaptive_trace,
)
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.values import uniform_values


def gm_certificate(trace, config):
    gm = run_cioq(GMPolicy(), config, trace, record=True)
    opt = cioq_opt(trace, config, extract_schedule=True)
    return replay_gm_shadow(trace, config, gm, opt)


def cgu_certificate(trace, config):
    cgu = run_crossbar(CGUPolicy(), config, trace, record=True)
    model = CrossbarOptModel(trace, config)
    opt = model.solve(extract_schedule=True)
    return replay_cgu_shadow(trace, config, cgu, model, opt)


class TestGMShadow:
    @pytest.mark.parametrize("seed", range(5))
    def test_bernoulli_instances_certify(self, seed):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.2).generate(15, seed=seed)
        cert = gm_certificate(trace, config)
        assert cert.s_star_bounded
        assert cert.privileged_bounded
        assert cert.theorem1_certified
        assert cert.modified_opt_benefit == cert.opt_benefit

    def test_speedup_two_certifies(self):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.5).generate(15, seed=11)
        cert = gm_certificate(trace, config)
        assert cert.theorem1_certified

    def test_hotspot_certifies(self):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = HotspotTraffic(3, 3, load=1.2, hot_fraction=0.7).generate(
            15, seed=3
        )
        cert = gm_certificate(trace, config)
        assert cert.theorem1_certified

    def test_adversarial_instance_certifies(self):
        config = SwitchConfig.square(4, speedup=1, b_in=2, b_out=2)
        trace = generate_adaptive_trace(
            GMPolicy, config, SingleOutputOverloadAdversary(), n_slots=12
        )
        cert = gm_certificate(trace, config)
        assert cert.theorem1_certified
        # Privileged packets must appear on genuinely adversarial runs.
        assert cert.privileged_type1 + cert.privileged_type2 > 0

    def test_rejects_weighted_traces(self):
        config = SwitchConfig.square(2, b_in=1, b_out=1)
        trace = BernoulliTraffic(
            2, 2, load=1.0, value_model=uniform_values(1, 5)
        ).generate(5, seed=0)
        gm = run_cioq(GMPolicy(), config, trace, record=True)
        opt = cioq_opt(trace, config, extract_schedule=True)
        with pytest.raises(ValueError, match="unit-value"):
            replay_gm_shadow(trace, config, gm, opt)

    def test_counts_are_consistent(self):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.3).generate(12, seed=7)
        cert = gm_certificate(trace, config)
        # skip/privilege conservation (checked internally, re-assert here).
        assert cert.privileged_type1 == cert.skipped_departures
        assert (
            cert.s_star + cert.privileged_type1 + cert.privileged_type2
            == cert.opt_benefit
        )


class TestCGUShadow:
    @pytest.mark.parametrize("seed", range(4))
    def test_bernoulli_instances_certify(self, seed):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(3, 3, load=1.1).generate(12, seed=seed)
        cert = cgu_certificate(trace, config)
        assert cert.theorem3_certified
        assert cert.lemma9_violations == 0
        assert cert.modified_opt_benefit >= cert.opt_benefit
        assert cert.modified_opt_benefit <= 3 * cert.cgu_benefit

    def test_bigger_crosspoints_certify(self):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=2)
        trace = BernoulliTraffic(3, 3, load=1.3).generate(12, seed=5)
        cert = cgu_certificate(trace, config)
        assert cert.theorem3_certified

    def test_speedup_two_certifies(self):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(3, 3, load=1.4).generate(12, seed=6)
        cert = cgu_certificate(trace, config)
        assert cert.theorem3_certified

    def test_extras_appear_under_contention(self):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = HotspotTraffic(3, 3, load=1.5, hot_fraction=0.8).generate(
            15, seed=2
        )
        cert = cgu_certificate(trace, config)
        assert cert.extra_type1 + cert.extra_type2 + cert.privileged > 0
        assert cert.theorem3_certified
