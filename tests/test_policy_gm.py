"""Unit tests for the Greedy Matching (GM) policy — Section 2.1."""

import pytest

from repro.core.gm import GMPolicy
from repro.scheduling.matching import MatchingStats
from repro.simulation.engine import run_cioq
from repro.switch.cioq import CIOQSwitch
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.theory.invariants import CheckedCIOQPolicy
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.trace import Trace


def pk(pid, src, dst):
    return Packet(pid, 1.0, 0, src, dst)


@pytest.fixture
def switch():
    return CIOQSwitch(SwitchConfig.square(3, b_in=2, b_out=2))


class TestArrival:
    def test_accepts_when_space(self, switch):
        d = GMPolicy().on_arrival(switch, pk(0, 0, 0))
        assert d.accept and d.preempt is None

    def test_rejects_when_full(self, switch):
        switch.enqueue_arrival(pk(0, 0, 0))
        switch.enqueue_arrival(pk(1, 0, 0))
        d = GMPolicy().on_arrival(switch, pk(2, 0, 0))
        assert not d.accept

    def test_never_preempts(self, switch):
        switch.enqueue_arrival(pk(0, 0, 0))
        switch.enqueue_arrival(pk(1, 0, 0))
        d = GMPolicy().on_arrival(switch, pk(2, 0, 0))
        assert d.preempt is None


class TestScheduling:
    def test_transfers_from_nonempty_voqs(self, switch):
        switch.enqueue_arrival(pk(0, 0, 1))
        switch.enqueue_arrival(pk(1, 1, 2))
        transfers = GMPolicy().schedule(switch, 0, 0)
        assert {(t.src, t.dst) for t in transfers} == {(0, 1), (1, 2)}

    def test_matching_property(self, switch):
        # Two VOQs at the same input: only one may transfer.
        switch.enqueue_arrival(pk(0, 0, 0))
        switch.enqueue_arrival(pk(1, 0, 1))
        transfers = GMPolicy().schedule(switch, 0, 0)
        assert len(transfers) == 1

    def test_skips_full_outputs(self, switch):
        for pid in range(2):
            p = pk(pid, 0, 1)
            switch.enqueue_arrival(p)
        gm = GMPolicy()
        switch.apply_transfers(gm.schedule(switch, 0, 0))
        switch.enqueue_arrival(pk(2, 1, 1))
        switch.apply_transfers(gm.schedule(switch, 0, 1))
        # Output 1 now holds 2 packets (full): no further transfer to it.
        switch.enqueue_arrival(pk(3, 2, 1))
        transfers = gm.schedule(switch, 0, 2)
        assert all(t.dst != 1 for t in transfers)

    def test_empty_switch_schedules_nothing(self, switch):
        assert GMPolicy().schedule(switch, 0, 0) == []

    def test_rotation_changes_choices(self):
        """With rotation, the favoured input alternates across cycles."""
        config = SwitchConfig.square(2, b_in=2, b_out=1)
        s1 = CIOQSwitch(config)
        # Both inputs compete for output 0.
        s1.enqueue_arrival(pk(0, 0, 0))
        s1.enqueue_arrival(pk(1, 1, 0))
        gm = GMPolicy(rotate=True)
        first = gm.schedule(s1, 0, 0)[0].src
        second = gm.schedule(s1, 0, 1)[0].src
        assert {first, second} == {0, 1}

    def test_static_order_is_deterministic(self):
        config = SwitchConfig.square(2, b_in=2, b_out=1)
        s1 = CIOQSwitch(config)
        s1.enqueue_arrival(pk(0, 0, 0))
        s1.enqueue_arrival(pk(1, 1, 0))
        gm = GMPolicy(rotate=False)
        assert gm.schedule(s1, 0, 0)[0].src == 0
        assert gm.schedule(s1, 0, 1)[0].src == 0

    def test_stats_accumulate(self, switch):
        stats = MatchingStats()
        gm = GMPolicy(stats=stats)
        switch.enqueue_arrival(pk(0, 0, 1))
        gm.schedule(switch, 0, 0)
        assert stats.calls == 1
        assert stats.edge_scans >= 1


class TestEndToEnd:
    def test_faithfulness_on_random_traffic(self):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.2).generate(30, seed=5)
        res = run_cioq(CheckedCIOQPolicy(GMPolicy(), "gm"), config, trace,
                       check_invariants=True)
        res.check_conservation()
        assert res.n_preempted == 0  # GM never preempts

    def test_underload_delivers_everything(self):
        config = SwitchConfig.square(3, speedup=3, b_in=8, b_out=8)
        trace = BernoulliTraffic(3, 3, load=0.3).generate(30, seed=1)
        res = run_cioq(GMPolicy(), config, trace)
        assert res.n_sent == len(trace)

    def test_single_packet_delivered_same_slot(self):
        config = SwitchConfig.square(2, b_in=1, b_out=1)
        trace = Trace([Packet(0, 1.0, 0, 0, 1)], 2, 2)
        res = run_cioq(GMPolicy(), config, trace)
        assert res.n_sent == 1
        assert res.benefit == 1.0
