"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "gm"
        assert args.model == "cioq"
        assert args.n == 4

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--policy", "nonsense", "--slots", "5"])

    def test_crossbar_policy_table(self):
        with pytest.raises(SystemExit):
            main(["run", "--policy", "gm", "--model", "crossbar",
                  "--slots", "5"])


class TestCommands:
    def test_figures(self, capsys):
        assert main(["figures", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 2" in out

    def test_run_gm(self, capsys):
        rc = main(["run", "--policy", "gm", "--n", "3", "--slots", "10",
                   "--load", "1.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GM" in out and "benefit" in out

    def test_run_with_delays_and_occupancy(self, capsys):
        rc = main(["run", "--policy", "pg", "--n", "3", "--slots", "10",
                   "--values", "pareto", "--load", "1.2",
                   "--delays", "--occupancy"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delivery delay" in out
        assert "occupancy over" in out

    def test_run_crossbar_cpg(self, capsys):
        rc = main(["run", "--policy", "cpg", "--model", "crossbar",
                   "--n", "3", "--slots", "8", "--values", "two-value",
                   "--load", "1.3"])
        assert rc == 0
        assert "CPG" in capsys.readouterr().out

    def test_run_fifo_both_models(self, capsys):
        assert main(["run", "--policy", "fifo", "--n", "3",
                     "--slots", "8"]) == 0
        assert main(["run", "--policy", "fifo", "--model", "crossbar",
                     "--n", "3", "--slots", "8"]) == 0

    def test_ratio_gm_within_bound(self, capsys):
        rc = main(["ratio", "--policy", "gm", "--n", "3", "--slots", "12",
                   "--load", "1.2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_ratio_pg_custom_beta(self, capsys):
        rc = main(["ratio", "--policy", "pg", "--n", "3", "--slots", "10",
                   "--values", "uniform", "--load", "1.3",
                   "--beta", "2.0"])
        assert rc == 0

    def test_constants(self, capsys):
        assert main(["constants"]) == 0
        out = capsys.readouterr().out
        assert "pg_beta_star" in out

    @pytest.mark.parametrize("traffic", ["bernoulli", "bursty", "hotspot",
                                         "diagonal"])
    def test_all_traffic_models(self, traffic, capsys):
        rc = main(["run", "--policy", "gm", "--n", "3", "--slots", "6",
                   "--traffic", traffic])
        assert rc == 0
