"""Tests for the from-scratch min-cost flow solver."""

import networkx as nx
import numpy as np
import pytest

from repro.offline.mcmf import MinCostFlow


class TestBasics:
    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError):
            MinCostFlow(1)

    def test_rejects_bad_edges(self):
        g = MinCostFlow(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 5, 1, 0)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1, 0)

    def test_single_edge_flow(self):
        g = MinCostFlow(2)
        e = g.add_edge(0, 1, 3, 1.0)
        flow, cost = g.solve_min_cost_max_flow(0, 1)
        assert flow == 3
        assert cost == 3.0
        assert g.flow_on(e) == 3

    def test_disconnected_is_zero(self):
        g = MinCostFlow(3)
        g.add_edge(0, 1, 5, 1.0)
        flow, cost = g.solve_min_cost_max_flow(0, 2)
        assert flow == 0 and cost == 0


class TestMinCostMaxFlow:
    def test_prefers_cheap_path(self):
        g = MinCostFlow(4)
        cheap = g.add_edge(0, 1, 1, 1.0)
        g.add_edge(1, 3, 1, 0.0)
        exp = g.add_edge(0, 2, 1, 5.0)
        g.add_edge(2, 3, 1, 0.0)
        flow, cost = g.solve_min_cost_max_flow(0, 3)
        assert flow == 2
        assert cost == 6.0
        assert g.flow_on(cheap) == 1
        assert g.flow_on(exp) == 1

    def test_bottleneck_capacity(self):
        g = MinCostFlow(3)
        g.add_edge(0, 1, 10, 0.0)
        g.add_edge(1, 2, 4, 2.0)
        flow, cost = g.solve_min_cost_max_flow(0, 2)
        assert flow == 4
        assert cost == 8.0

    def test_matches_networkx_on_random_dags(self, rng):
        """Cross-check against networkx max_flow_min_cost on layered DAGs."""
        for trial in range(8):
            layers = [1, int(rng.integers(2, 4)), int(rng.integers(2, 4)), 1]
            ids = []
            nid = 0
            for width in layers:
                ids.append(list(range(nid, nid + width)))
                nid += width
            n = nid
            g = MinCostFlow(n)
            nxg = nx.DiGraph()
            nxg.add_nodes_from(range(n))
            for a, b in zip(ids, ids[1:]):
                for u in a:
                    for v in b:
                        if rng.random() < 0.8:
                            cap = int(rng.integers(1, 5))
                            cost = int(rng.integers(0, 6))
                            g.add_edge(u, v, cap, cost)
                            nxg.add_edge(u, v, capacity=cap, weight=cost)
            src, snk = ids[0][0], ids[-1][0]
            flow, cost = g.solve_min_cost_max_flow(src, snk)
            expected_flow = nx.maximum_flow_value(nxg, src, snk)
            assert flow == pytest.approx(expected_flow)
            if expected_flow > 0:
                flow_dict = nx.max_flow_min_cost(nxg, src, snk)
                expected_cost = nx.cost_of_flow(nxg, flow_dict)
                assert cost == pytest.approx(expected_cost)


class TestMaxBenefit:
    def test_stops_at_nonnegative_paths(self):
        """Only the profitable path is used."""
        g = MinCostFlow(4)
        g.add_edge(0, 1, 1, -10.0)  # profitable packet
        g.add_edge(1, 3, 1, 0.0)
        g.add_edge(0, 2, 1, 3.0)  # unprofitable route
        g.add_edge(2, 3, 1, 0.0)
        flow, cost = g.solve_max_benefit(0, 3)
        assert flow == 1
        assert cost == -10.0

    def test_takes_all_profitable_units(self):
        g = MinCostFlow(3)
        g.add_edge(0, 1, 5, -2.0)
        g.add_edge(1, 2, 3, 1.0)
        flow, cost = g.solve_max_benefit(0, 2)
        assert flow == 3
        assert cost == -3.0

    def test_zero_when_nothing_profitable(self):
        g = MinCostFlow(3)
        g.add_edge(0, 1, 5, 1.0)
        g.add_edge(1, 2, 5, 1.0)
        flow, cost = g.solve_max_benefit(0, 2)
        assert flow == 0 and cost == 0.0

    def test_benefit_choice_between_packets(self):
        """Two packets compete for one capacity unit: the richer wins."""
        g = MinCostFlow(5)
        g.add_edge(0, 1, 1, -3.0)
        g.add_edge(0, 2, 1, -8.0)
        g.add_edge(1, 3, 1, 0.0)
        g.add_edge(2, 3, 1, 0.0)
        g.add_edge(3, 4, 1, 0.0)  # shared bottleneck
        flow, cost = g.solve_max_benefit(0, 4)
        assert flow == 1
        assert cost == -8.0
