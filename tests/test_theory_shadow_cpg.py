"""Tests for the CPG (Theorem 4) modified-OPT replay."""

import pytest

from repro.core.cpg import CPGPolicy
from repro.core.params import cpg_optimal_params, cpg_ratio
from repro.offline.crossbar_timegraph import CrossbarOptModel
from repro.simulation.engine import run_crossbar
from repro.switch.config import SwitchConfig
from repro.theory.shadow_cpg import replay_cpg_shadow
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.values import pareto_values, two_value, uniform_values


def certificate(trace, config, beta, alpha):
    cpg = run_crossbar(
        CPGPolicy(beta=beta, alpha=alpha), config, trace, record=True
    )
    model = CrossbarOptModel(trace, config)
    opt = model.solve(extract_schedule=True)
    return replay_cpg_shadow(trace, config, cpg, model, opt, beta, alpha)


class TestCertification:
    @pytest.mark.parametrize("seed", range(3))
    def test_uniform_values_certify(self, seed):
        beta, alpha, _ = cpg_optimal_params()
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(
            3, 3, load=1.4, value_model=uniform_values(1, 50)
        ).generate(10, seed=seed)
        cert = certificate(trace, cfg, beta, alpha)
        assert cert.theorem4_certified
        assert cert.s_star_bounded
        assert cert.privileged_bounded
        assert cert.modified_opt_benefit == pytest.approx(cert.opt_benefit)

    def test_two_value_certifies(self):
        beta, alpha, _ = cpg_optimal_params()
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(
            3, 3, load=1.5, value_model=two_value(20, 0.25)
        ).generate(10, seed=4)
        cert = certificate(trace, cfg, beta, alpha)
        assert cert.theorem4_certified

    def test_bigger_crosspoints_certify(self):
        beta, alpha, _ = cpg_optimal_params()
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=2)
        trace = HotspotTraffic(
            3, 3, load=1.5, hot_fraction=0.7, value_model=pareto_values(1.4)
        ).generate(10, seed=2)
        cert = certificate(trace, cfg, beta, alpha)
        assert cert.theorem4_certified

    def test_speedup_two_certifies(self):
        beta, alpha, _ = cpg_optimal_params()
        cfg = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(
            3, 3, load=1.6, value_model=uniform_values(1, 30)
        ).generate(10, seed=6)
        cert = certificate(trace, cfg, beta, alpha)
        assert cert.theorem4_certified

    @pytest.mark.parametrize("beta,alpha", [(1.5, 2.0), (2.5, 4.0)])
    def test_off_optimal_thresholds_certify(self, beta, alpha):
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(
            3, 3, load=1.4, value_model=uniform_values(1, 40)
        ).generate(8, seed=8)
        cert = certificate(trace, cfg, beta, alpha)
        assert (
            cert.modified_opt_benefit
            <= cpg_ratio(beta, alpha) * cert.cpg_benefit + 1e-6
        )

    def test_skip_conservation(self):
        beta, alpha, _ = cpg_optimal_params()
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(
            3, 3, load=1.5, value_model=uniform_values(1, 40)
        ).generate(10, seed=3)
        cert = certificate(trace, cfg, beta, alpha)
        # Type-1 privileges void y departures; Types 2/3 and skipped y's
        # void z departures downstream.
        assert cert.skipped_y == cert.n_privileged[0]
        assert cert.skipped_z == (
            cert.skipped_y + cert.n_privileged[1] + cert.n_privileged[2]
        )

    def test_rejects_bad_thresholds(self):
        cfg = SwitchConfig.square(2, b_in=1, b_out=1, b_cross=1)
        trace = BernoulliTraffic(2, 2, load=1.0).generate(4, seed=0)
        cpg = run_crossbar(CPGPolicy(), cfg, trace, record=True)
        model = CrossbarOptModel(trace, cfg)
        opt = model.solve(extract_schedule=True)
        with pytest.raises(ValueError):
            replay_cpg_shadow(trace, cfg, cpg, model, opt, 1.0, 2.0)
        with pytest.raises(ValueError):
            replay_cpg_shadow(trace, cfg, cpg, model, opt, 2.0, 1.0)
