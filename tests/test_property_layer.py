"""Property-based tests over the seeded strategies in ``_strategies.py``.

Each test draws :data:`~_strategies.N_CASES` arbitrary instances per
seed and asserts an invariant:

* ScenarioSpec TOML and JSON round-trips are the identity for any valid
  spec (including replicates blocks, nested params and awkward strings);
* traffic models conserve packet counts, never emit out-of-range ports,
  slots or non-positive values, and are pure functions of the seed;
* Welford accumulation matches batch statistics to 1e-9 relative error,
  and merging split halves matches the un-split accumulator.

The suite always runs under the committed ``FIXED_SEED``; CI adds a
randomized second seed through ``REPRO_PROP_SEED`` (the seed is in the
pytest id, so a failure names the exact value to reproduce with).
"""

import math
import os
import random
import statistics
import tempfile

import pytest

from _strategies import (
    N_CASES,
    float_sample,
    property_seeds,
    spec_strategy,
    traffic_strategy,
)
from repro.scenarios import ScenarioSpec
from repro.stats import Welford
from repro.traffic.replay import TraceReplayTraffic
from repro.traffic.trace import Trace

SEEDS = property_seeds()


def _ids(seed: int) -> str:
    return f"seed={seed:#x}"


@pytest.mark.parametrize("seed", SEEDS, ids=_ids)
class TestSpecRoundTrip:
    def test_toml_and_json_round_trip_identity(self, seed):
        rng = random.Random(seed)
        for case in range(N_CASES):
            spec = spec_strategy(rng)
            context = f"seed={seed:#x} case={case} spec={spec.name!r}"
            via_toml = ScenarioSpec.from_toml(spec.to_toml())
            assert via_toml == spec, f"TOML round trip changed {context}"
            via_json = ScenarioSpec.from_json(spec.to_json())
            assert via_json == spec, f"JSON round trip changed {context}"
            # to_dict is itself stable through a round trip.
            assert via_toml.to_dict() == spec.to_dict(), context

    def test_round_trip_preserves_derived_views(self, seed):
        rng = random.Random(seed)
        for _ in range(N_CASES):
            spec = spec_strategy(rng)
            back = ScenarioSpec.from_toml(spec.to_toml())
            assert back.policy_labels() == spec.policy_labels()
            assert back.seeds == spec.seeds
            assert dict(back.replicates) == dict(spec.replicates)


@pytest.mark.parametrize("seed", SEEDS, ids=_ids)
class TestTrafficInvariants:
    def test_ports_values_slots_in_range_and_pids_dense(self, seed):
        rng = random.Random(seed)
        for case in range(N_CASES):
            model, n_in, n_out = traffic_strategy(rng)
            n_slots = rng.randint(1, 40)
            trace = model.generate(n_slots, seed=rng.randrange(10_000))
            context = f"seed={seed:#x} case={case} model={model.name!r}"
            assert (trace.n_in, trace.n_out) == (n_in, n_out), context
            for p in trace.packets:
                assert 0 <= p.src < n_in, context
                assert 0 <= p.dst < n_out, context
                assert 0 <= p.arrival < n_slots, context
                assert p.value > 0 and math.isfinite(p.value), context
            # Packet ids are dense and in arrival order (the repo's
            # tie-breaking convention).
            assert [p.pid for p in trace.packets] == \
                   list(range(len(trace.packets))), context
            arrivals = [p.arrival for p in trace.packets]
            assert arrivals == sorted(arrivals), context

    def test_generation_is_pure_function_of_seed(self, seed):
        rng = random.Random(seed)
        for _ in range(N_CASES):
            model, _n_in, _n_out = traffic_strategy(rng)
            n_slots = rng.randint(1, 30)
            trace_seed = rng.randrange(10_000)
            first = model.generate(n_slots, seed=trace_seed)
            second = model.generate(n_slots, seed=trace_seed)
            assert first.to_json() == second.to_json(), model.name

    def test_replay_conserves_packets_and_values(self, seed):
        """Replaying a recorded trace reproduces its packet count,
        per-slot arrivals and total value exactly."""
        rng = random.Random(seed)
        for _ in range(N_CASES):
            model, _n_in, _n_out = traffic_strategy(rng)
            n_slots = rng.randint(1, 25)
            original = model.generate(n_slots, seed=rng.randrange(10_000))
            replayed = TraceReplayTraffic(original).generate(n_slots)
            assert len(replayed) == len(original), model.name
            assert [(p.src, p.dst, p.arrival, p.value)
                    for p in replayed.packets] == \
                   [(p.src, p.dst, p.arrival, p.value)
                    for p in original.packets], model.name


def _packet_rows(trace):
    return [(p.pid, p.value, p.arrival, p.src, p.dst)
            for p in trace.packets]


@pytest.mark.parametrize("seed", SEEDS, ids=_ids)
class TestTraceStreaming:
    def test_stream_round_trip_identity_with_trailing_idle(self, seed):
        """save_stream -> load round-trips any trace exactly, explicit
        trailing idle slots included (the n_slots bugfix)."""
        rng = random.Random(seed)
        for case in range(N_CASES):
            model, _n_in, _n_out = traffic_strategy(rng)
            n_slots = rng.randint(1, 30)
            trace = model.generate(n_slots, seed=rng.randrange(10_000))
            if rng.random() < 0.5:
                # Re-wrap with extra trailing idle slots.
                trace = Trace(trace.packets, trace.n_in, trace.n_out,
                              name=trace.name,
                              n_slots=trace.n_slots + rng.randint(1, 20))
            context = f"seed={seed:#x} case={case} model={model.name!r}"
            fd, path = tempfile.mkstemp(suffix=".jsonl")
            os.close(fd)
            try:
                trace.save_stream(path, chunk_slots=rng.randint(1, 40))
                back = Trace.load(path)
            finally:
                os.unlink(path)
            assert back.n_slots == trace.n_slots, context
            assert (back.n_in, back.n_out) == \
                   (trace.n_in, trace.n_out), context
            assert _packet_rows(back) == _packet_rows(trace), context
            # The legacy JSON round trip carries n_slots too.
            again = Trace.from_json(trace.to_json())
            assert again.n_slots == trace.n_slots, context
            assert _packet_rows(again) == _packet_rows(trace), context

    def test_arrival_source_matches_generate(self, seed):
        """Driving a model's streaming arrival_source slot-by-slot
        reproduces generate()'s packets exactly (the byte-identity
        contract behind run_*_streaming)."""
        rng = random.Random(seed)
        for case in range(N_CASES):
            model, _n_in, _n_out = traffic_strategy(rng)
            n_slots = rng.randint(1, 30)
            trace_seed = rng.randrange(10_000)
            trace = model.generate(n_slots, seed=trace_seed)
            source = model.arrival_source(seed=trace_seed)
            streamed = []
            for t in range(n_slots):
                for src, dst, value in source(t, None):
                    streamed.append((len(streamed), value, t, src, dst))
            context = f"seed={seed:#x} case={case} model={model.name!r}"
            assert streamed == _packet_rows(trace), context

    def test_streaming_replay_matches_materialized(self, seed):
        """A stream-file-backed TraceReplayTraffic replays arrivals and
        recorded values identically to the materialized trace."""
        rng = random.Random(seed)
        for case in range(N_CASES):
            model, _n_in, _n_out = traffic_strategy(rng)
            n_slots = rng.randint(1, 25)
            trace = model.generate(n_slots, seed=rng.randrange(10_000))
            context = f"seed={seed:#x} case={case} model={model.name!r}"
            fd, path = tempfile.mkstemp(suffix=".jsonl")
            os.close(fd)
            try:
                trace.save_stream(path, chunk_slots=rng.randint(1, 10))
                replay = TraceReplayTraffic(path)
                assert replay._trace is None, context  # not materialized
                source = replay.arrival_source()
                streamed = []
                for t in range(trace.n_slots):
                    for src, dst, value in source(t, None):
                        streamed.append((len(streamed), value, t, src, dst))
            finally:
                os.unlink(path)
            assert streamed == _packet_rows(trace), context


@pytest.mark.parametrize("seed", SEEDS, ids=_ids)
class TestWelfordProperties:
    def test_matches_batch_mean_and_variance(self, seed):
        rng = random.Random(seed)
        for case in range(N_CASES):
            values = float_sample(rng)
            acc = Welford.from_values(values)
            context = f"seed={seed:#x} case={case} n={len(values)}"
            assert acc.n == len(values), context
            assert acc.mean == pytest.approx(
                statistics.fmean(values), rel=1e-9, abs=1e-9), context
            if len(values) >= 2:
                assert acc.variance == pytest.approx(
                    statistics.variance(values), rel=1e-9, abs=1e-9), context
            else:
                assert math.isnan(acc.variance), context

    def test_merge_of_split_halves_matches_whole(self, seed):
        rng = random.Random(seed)
        for case in range(N_CASES):
            values = float_sample(rng)
            cut = rng.randint(0, len(values))
            merged = Welford.from_values(values[:cut]).merge(
                Welford.from_values(values[cut:]))
            whole = Welford.from_values(values)
            context = f"seed={seed:#x} case={case} cut={cut}"
            assert merged.n == whole.n, context
            assert merged.mean == pytest.approx(
                whole.mean, rel=1e-9, abs=1e-9), context
            if whole.n >= 2:
                assert merged.variance == pytest.approx(
                    whole.variance, rel=1e-9, abs=1e-9), context

@pytest.mark.parametrize("seed", SEEDS, ids=_ids)
class TestCertifiedOptBrackets:
    """Certified-bracket invariants of the windowed / bounds OPT
    solvers, checked against the exact MILP on tiny instances (see
    ``docs/offline_opt.md``).  Exact solves dominate the runtime, so
    the per-seed case count is lower than :data:`N_CASES`.
    """

    N_OPT_CASES = 8

    @staticmethod
    def _tol(x: float) -> float:
        return 1e-7 * (1.0 + abs(x))

    def test_brackets_sandwich_exact(self, seed):
        from _strategies import opt_instance_strategy
        from repro.offline import bounds_opt, solve_opt, windowed_opt

        rng = random.Random(seed)
        for case in range(self.N_OPT_CASES):
            trace, config, model = opt_instance_strategy(rng)
            exact = solve_opt(trace, config, model=model, mode="exact")
            total = sum(p.value for p in trace.packets)
            tol = self._tol(exact.benefit)
            context = f"seed={seed:#x} case={case} trace={trace.name}"
            candidates = [bounds_opt(trace, config, model=model)]
            if trace.n_slots >= 1:
                window = rng.randint(1, trace.n_slots)
                candidates.append(
                    windowed_opt(trace, config, window=window, model=model))
            for res in candidates:
                assert res.opt_lower <= res.opt_upper + tol, context
                assert res.opt_lower - tol <= exact.benefit, context
                assert exact.benefit <= res.opt_upper + tol, context
                assert 0.0 <= res.opt_lower + tol, context
                assert res.opt_upper <= total + self._tol(total), context

    def test_windowed_tightens_monotonically(self, seed):
        """Doubling the window along a divisible ladder never loosens
        the bracket: each 2W window merges exactly two W windows, and
        merged upper (lower) bounds only tighten."""
        from _strategies import opt_instance_strategy
        from repro.offline import windowed_opt

        rng = random.Random(seed)
        for case in range(self.N_OPT_CASES):
            trace, config, model = opt_instance_strategy(rng)
            if trace.n_slots < 2:
                continue
            w = rng.randint(1, trace.n_slots // 2)
            narrow = windowed_opt(trace, config, window=w, model=model)
            wide = windowed_opt(trace, config, window=2 * w, model=model)
            tol = self._tol(narrow.opt_upper)
            context = f"seed={seed:#x} case={case} w={w} trace={trace.name}"
            assert wide.opt_lower >= narrow.opt_lower - tol, context
            assert wide.opt_upper <= narrow.opt_upper + tol, context

    def test_concatenation_stitching(self, seed):
        """Splitting a trace at a window boundary stitches exactly:
        the two-window bracket sits between the forced-drain + exact
        sum (below) and the exact + exact sum (above), and still
        sandwiches the exact optimum of the whole trace."""
        from _strategies import opt_instance_strategy
        from repro.offline import solve_opt, windowed_opt
        from repro.offline.crossbar_timegraph import CrossbarOptModel
        from repro.offline.timegraph import CIOQOptModel
        from repro.offline.windowed import subtrace

        classes = {"cioq": CIOQOptModel, "crossbar": CrossbarOptModel}
        rng = random.Random(seed)
        for case in range(self.N_OPT_CASES):
            trace, config, model = opt_instance_strategy(rng)
            if trace.n_slots < 2:
                continue
            # One cut at w >= ceil(n/2) => exactly two windows.
            w = rng.randint((trace.n_slots + 1) // 2, trace.n_slots - 1)
            head = subtrace(trace, 0, w)
            tail = subtrace(trace, w, trace.n_slots)
            stitched = windowed_opt(trace, config, window=w, model=model)
            exact = solve_opt(trace, config, model=model, mode="exact")
            e_head = solve_opt(head, config, model=model, mode="exact")
            e_tail = solve_opt(tail, config, model=model, mode="exact")
            forced_head = classes[model](head, config, horizon=w).solve()
            tol = self._tol(exact.benefit)
            context = f"seed={seed:#x} case={case} w={w} trace={trace.name}"
            assert stitched.opt_upper <= (
                e_head.benefit + e_tail.benefit + tol), context
            assert stitched.opt_lower >= (
                forced_head.benefit + e_tail.benefit - tol), context
            assert (stitched.opt_lower - tol <= exact.benefit
                    <= stitched.opt_upper + tol), context
