"""The reference backend must import and run without numpy.

This module is itself numpy-free, so the no-numpy CI job (bare Python
plus pytest) collects and runs it directly.  The tests below execute a
short script in a subprocess that *blocks* numpy before touching the
package — ``sys.modules["numpy"] = None`` makes every ``import numpy``
raise ImportError and ``importlib.util.find_spec("numpy")`` raise — so
they guard the numpy-free import chain even on machines that do have
numpy installed (i.e. everywhere, including the main CI matrix).
"""

import pathlib
import subprocess
import sys

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

BLOCKED_SCRIPT = r"""
import sys
sys.modules["numpy"] = None  # any `import numpy` now raises ImportError

from repro.simulation.backends import (
    BackendUnavailable, available_backends, numpy_available,
)

assert numpy_available() is False
assert available_backends() == ("reference", "auto")

from repro import GMPolicy, Packet, SwitchConfig, Trace, run_cioq
from repro.core.cgu import CGUPolicy
from repro.simulation.engine import run_crossbar

config = SwitchConfig.square(2, speedup=1, b_in=2, b_out=2, b_cross=1)
packets = [
    Packet(0, 5.0, 0, 0, 0), Packet(1, 3.0, 0, 1, 0),
    Packet(2, 4.0, 1, 0, 1), Packet(3, 1.0, 1, 1, 1),
]
trace = Trace(packets, 2, 2)

# reference runs (explicitly and as the default)...
res = run_cioq(GMPolicy(), config, trace, backend="reference")
assert res.benefit == 13.0, res.benefit
assert run_cioq(GMPolicy(), config, trace).benefit == 13.0

# ...fast refuses with the environment-specific error...
try:
    run_cioq(GMPolicy(), config, trace, backend="fast")
except BackendUnavailable:
    pass
else:
    raise AssertionError("backend='fast' must raise without numpy")

# ...and auto degrades to reference, on both switch models.
assert run_cioq(GMPolicy(), config, trace, backend="auto").benefit == 13.0
xres = run_crossbar(CGUPolicy(), config, trace, backend="auto")
assert xres.benefit == 13.0, xres.benefit

print("OK")
"""


def _run_blocked(script):
    return subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, timeout=120,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


def test_reference_backend_runs_with_numpy_blocked():
    proc = _run_blocked(BLOCKED_SCRIPT)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "OK"


def test_package_import_does_not_pull_numpy():
    """``import repro`` (and the reference engine chain) must not import
    numpy as a side effect — lazy exports keep the bare install viable."""
    script = (
        "import sys\n"
        "import repro\n"
        "import repro.simulation.engine\n"
        "import repro.core.gm\n"
        "assert 'numpy' not in sys.modules, 'eager numpy import leaked in'\n"
        "print('OK')\n"
    )
    proc = _run_blocked(script)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "OK"
