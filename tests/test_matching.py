"""Tests for the matching engines (greedy, Hopcroft-Karp, Hungarian)."""

import itertools

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.matching import (
    MatchingStats,
    greedy_maximal_matching,
    greedy_maximal_matching_weighted,
    hopcroft_karp,
    is_matching,
    is_maximal,
    matching_weight,
    max_weight_matching,
)


def brute_force_max_matching_size(n_left, n_right, edges):
    """Exponential-time maximum matching size for validation."""
    best = 0
    for r in range(len(edges), 0, -1):
        if r <= best:
            break
        for subset in itertools.combinations(edges, r):
            if is_matching(subset):
                best = max(best, r)
                break
    return best


def brute_force_max_weight(weights):
    """Exponential maximum-weight matching value for validation."""
    n_left = len(weights)
    n_right = len(weights[0]) if n_left else 0
    edges = [
        (i, j, weights[i][j])
        for i in range(n_left)
        for j in range(n_right)
        if weights[i][j] > 0
    ]
    best = 0.0
    for r in range(len(edges) + 1):
        for subset in itertools.combinations(edges, r):
            if is_matching([(u, v) for u, v, _ in subset]):
                best = max(best, sum(w for _, _, w in subset))
    return best


class TestGreedyMaximal:
    def test_empty(self):
        assert greedy_maximal_matching([]) == []

    def test_respects_scan_order(self):
        edges = [(0, 0), (0, 1), (1, 0)]
        m = greedy_maximal_matching(edges)
        assert m == [(0, 0)]  # (0,1) and (1,0) blocked by (0,0)

    def test_different_order_different_matching(self):
        edges = [(0, 1), (0, 0), (1, 0)]
        m = greedy_maximal_matching(edges)
        assert m == [(0, 1), (1, 0)]

    def test_result_is_matching_and_maximal(self, rng):
        for _ in range(20):
            n = int(rng.integers(2, 8))
            edges = [
                (i, j)
                for i in range(n)
                for j in range(n)
                if rng.random() < 0.5
            ]
            m = greedy_maximal_matching(edges)
            assert is_matching(m)
            assert is_maximal(m, edges)

    def test_at_least_half_of_maximum(self, rng):
        """Greedy maximal matchings are 1/2-approximate."""
        for _ in range(10):
            n = int(rng.integers(2, 6))
            edges = [
                (i, j)
                for i in range(n)
                for j in range(n)
                if rng.random() < 0.5
            ]
            m = greedy_maximal_matching(edges)
            opt = brute_force_max_matching_size(n, n, edges)
            assert 2 * len(m) >= opt

    def test_stats_counting(self):
        stats = MatchingStats()
        greedy_maximal_matching([(0, 0), (1, 1)], stats=stats)
        assert stats.edge_scans == 2
        assert stats.calls == 1


class TestGreedyWeighted:
    def test_orders_by_descending_weight(self):
        edges = [(0, 0, 1.0), (0, 1, 5.0), (1, 0, 3.0)]
        m = greedy_maximal_matching_weighted(edges)
        assert (0, 1, 5.0) in m
        assert (1, 0, 3.0) in m

    def test_deterministic_tie_break(self):
        edges = [(1, 1, 2.0), (0, 0, 2.0)]
        m1 = greedy_maximal_matching_weighted(edges)
        m2 = greedy_maximal_matching_weighted(list(reversed(edges)))
        assert m1 == m2

    def test_half_approximation_by_weight(self, rng):
        for _ in range(8):
            n = int(rng.integers(2, 5))
            w = [
                [
                    float(rng.uniform(1, 10)) if rng.random() < 0.6 else 0.0
                    for _ in range(n)
                ]
                for _ in range(n)
            ]
            edges = [
                (i, j, w[i][j]) for i in range(n) for j in range(n) if w[i][j] > 0
            ]
            m = greedy_maximal_matching_weighted(edges)
            opt = brute_force_max_weight(w)
            assert 2 * matching_weight(m) >= opt - 1e-9


class TestHopcroftKarp:
    def test_empty_graph(self):
        assert hopcroft_karp(3, 3, [[], [], []]) == []

    def test_perfect_matching(self):
        adj = [[0, 1], [0], [2]]
        m = hopcroft_karp(3, 3, adj)
        assert len(m) == 3

    def test_requires_augmenting_path(self):
        # Greedy on this order gets 1; maximum is 2.
        adj = [[0, 1], [0]]
        m = hopcroft_karp(2, 2, adj)
        assert len(m) == 2

    def test_matches_networkx_on_random_graphs(self, rng):
        for _ in range(15):
            n_left = int(rng.integers(1, 8))
            n_right = int(rng.integers(1, 8))
            adj = [
                [j for j in range(n_right) if rng.random() < 0.4]
                for _ in range(n_left)
            ]
            m = hopcroft_karp(n_left, n_right, adj)
            assert is_matching(m)
            g = nx.Graph()
            g.add_nodes_from(range(n_left), bipartite=0)
            g.add_nodes_from(
                [n_left + j for j in range(n_right)], bipartite=1
            )
            for u, neighbors in enumerate(adj):
                for v in neighbors:
                    g.add_edge(u, n_left + v)
            expected = len(
                nx.bipartite.maximum_matching(g, top_nodes=range(n_left))
            ) // 2
            assert len(m) == expected


class TestHungarian:
    def test_empty(self):
        assert max_weight_matching([]) == []

    def test_simple_assignment(self):
        w = [[3.0, 1.0], [1.0, 3.0]]
        m = max_weight_matching(w)
        assert matching_weight(m) == 6.0

    def test_prefers_single_heavy_edge(self):
        w = [[10.0, 0.0], [0.0, 0.0]]
        m = max_weight_matching(w)
        assert m == [(0, 0, 10.0)]

    def test_leaves_vertices_unmatched_when_beneficial(self):
        # Matching (0,0) would block the heavy (1,0); optimum leaves 0
        # unmatched.
        w = [[1.0, 0.0], [100.0, 0.0]]
        m = max_weight_matching(w)
        assert m == [(1, 0, 100.0)]

    def test_matches_brute_force_on_random(self, rng):
        for _ in range(12):
            n = int(rng.integers(1, 5))
            w = [
                [
                    float(rng.uniform(1, 20)) if rng.random() < 0.7 else 0.0
                    for _ in range(n)
                ]
                for _ in range(n)
            ]
            m = max_weight_matching(w)
            assert is_matching([(u, v) for u, v, _ in m])
            assert matching_weight(m) == pytest.approx(brute_force_max_weight(w))

    def test_rectangular_matrices(self, rng):
        w = [[2.0, 7.0, 1.0]]
        m = max_weight_matching(w)
        assert m == [(0, 1, 7.0)]
        w2 = [[2.0], [7.0], [1.0]]
        m2 = max_weight_matching(w2)
        assert m2 == [(1, 0, 7.0)]


class TestProperties:
    @given(
        n=st.integers(1, 6),
        seed=st.integers(0, 10_000),
        density=st.floats(0.1, 0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_greedy_is_maximal_matching(self, n, seed, density):
        rng = np.random.default_rng(seed)
        edges = [
            (i, j) for i in range(n) for j in range(n) if rng.random() < density
        ]
        m = greedy_maximal_matching(edges)
        assert is_matching(m)
        assert is_maximal(m, edges)

    @given(n=st.integers(1, 5), seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_hungarian_at_least_greedy(self, n, seed):
        """Maximum-weight matching weight >= greedy weight."""
        rng = np.random.default_rng(seed)
        w = [[float(rng.uniform(0, 10)) for _ in range(n)] for _ in range(n)]
        edges = [
            (i, j, w[i][j]) for i in range(n) for j in range(n) if w[i][j] > 0
        ]
        greedy = matching_weight(greedy_maximal_matching_weighted(edges))
        hungarian = matching_weight(max_weight_matching(w))
        assert hungarian >= greedy - 1e-9
