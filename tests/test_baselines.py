"""Tests for the baseline scheduling policies."""

import pytest

from repro.core.gm import GMPolicy
from repro.scheduling.baselines import (
    CrossbarGreedyWeightedPolicy,
    MaxMatchPolicy,
    MaxWeightMatchPolicy,
    RandomMatchPolicy,
    RoundRobinPolicy,
)
from repro.simulation.engine import run_cioq, run_crossbar
from repro.switch.cioq import CIOQSwitch
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import uniform_values


def pk(pid, src, dst, value=1.0):
    return Packet(pid, value, 0, src, dst)


class TestMaxMatch:
    def test_finds_augmenting_path_gm_might_miss(self):
        """On the 2x2 'crossing' pattern a bad greedy order yields one
        transfer; maximum matching always yields two."""
        config = SwitchConfig.square(2, b_in=2, b_out=2)
        s = CIOQSwitch(config)
        s.enqueue_arrival(pk(0, 0, 0))
        s.enqueue_arrival(pk(1, 0, 1))
        s.enqueue_arrival(pk(2, 1, 0))
        transfers = MaxMatchPolicy().schedule(s, 0, 0)
        assert len(transfers) == 2

    def test_conservation_and_no_preemption(self):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.3).generate(25, seed=4)
        res = run_cioq(MaxMatchPolicy(), config, trace)
        res.check_conservation()
        assert res.n_preempted == 0

    def test_at_least_gm_per_cycle_size(self):
        """Maximum matchings are never smaller than greedy ones, cycle
        for cycle (compared on identical switch states)."""
        config = SwitchConfig.square(4, b_in=2, b_out=2)
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(10):
            s1 = CIOQSwitch(config)
            s2 = CIOQSwitch(config)
            pid = 0
            for i in range(4):
                for j in range(4):
                    if rng.random() < 0.5:
                        s1.enqueue_arrival(pk(pid, i, j))
                        s2.enqueue_arrival(pk(pid + 100, i, j))
                        pid += 1
            gm_size = len(GMPolicy().schedule(s1, 0, 0))
            mm_size = len(MaxMatchPolicy().schedule(s2, 0, 0))
            assert mm_size >= gm_size


class TestMaxWeightMatch:
    def test_beats_greedy_weight_per_cycle(self):
        config = SwitchConfig.square(2, b_in=2, b_out=2)
        s = CIOQSwitch(config)
        # Greedy takes (0,0,w=10) blocking the pair (0,1,9)+(1,0,9)=18.
        s.enqueue_arrival(pk(0, 0, 0, 10.0))
        s.enqueue_arrival(pk(1, 0, 1, 9.0))
        s.enqueue_arrival(pk(2, 1, 0, 9.0))
        transfers = MaxWeightMatchPolicy().schedule(s, 0, 0)
        total = sum(t.packet.value for t in transfers)
        assert total == 18.0

    def test_respects_beta_eligibility(self):
        config = SwitchConfig.square(2, b_in=2, b_out=1)
        s = CIOQSwitch(config)
        policy = MaxWeightMatchPolicy(beta=2.0)
        s.enqueue_arrival(pk(0, 0, 0, 3.0))
        s.apply_transfers(policy.schedule(s, 0, 0))
        s.enqueue_arrival(pk(1, 0, 0, 5.0))
        assert policy.schedule(s, 0, 1) == []  # 5 <= 2*3

    def test_conservation_weighted(self):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(
            3, 3, load=1.5, value_model=uniform_values(1, 50)
        ).generate(25, seed=8)
        res = run_cioq(MaxWeightMatchPolicy(), config, trace)
        res.check_conservation()


class TestRandomMatch:
    def test_reproducible_given_seed(self):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.2).generate(20, seed=6)
        r1 = run_cioq(RandomMatchPolicy(seed=5), config, trace)
        r2 = run_cioq(RandomMatchPolicy(seed=5), config, trace)
        assert r1.benefit == r2.benefit

    def test_conservation(self):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.2).generate(20, seed=6)
        run_cioq(RandomMatchPolicy(), config, trace).check_conservation()


class TestRoundRobin:
    def test_pointer_rotation_shares_service(self):
        """Under symmetric permanent contention, both inputs get served."""
        config = SwitchConfig.square(2, b_in=4, b_out=4)
        s = CIOQSwitch(config)
        rr = RoundRobinPolicy()
        rr.reset(s)
        for pid in range(4):
            s.enqueue_arrival(pk(pid, pid % 2, 0))
        served = []
        for cycle in range(2):
            transfers = rr.schedule(s, 0, cycle)
            s.apply_transfers(transfers)
            served.extend(t.src for t in transfers)
        assert set(served) == {0, 1}

    def test_conservation(self):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.3).generate(25, seed=2)
        run_cioq(RoundRobinPolicy(), config, trace).check_conservation()

    def test_schedules_are_matchings(self):
        config = SwitchConfig.square(4, b_in=2, b_out=2)
        s = CIOQSwitch(config)
        rr = RoundRobinPolicy()
        rr.reset(s)
        pid = 0
        for i in range(4):
            for j in range(4):
                s.enqueue_arrival(pk(pid, i, j))
                pid += 1
        transfers = rr.schedule(s, 0, 0)
        assert len({t.src for t in transfers}) == len(transfers)
        assert len({t.dst for t in transfers}) == len(transfers)


class TestCrossbarGreedyWeighted:
    def test_never_preempts(self):
        config = SwitchConfig.square(3, speedup=1, b_in=1, b_out=1, b_cross=1)
        trace = BernoulliTraffic(
            3, 3, load=2.0, value_model=uniform_values(1, 100)
        ).generate(25, seed=3)
        res = run_crossbar(CrossbarGreedyWeightedPolicy(), config, trace)
        res.check_conservation()
        assert res.n_preempted == 0

    def test_moves_heaviest_eligible(self):
        from repro.switch.crossbar import CrossbarSwitch

        config = SwitchConfig.square(2, b_in=2, b_out=2, b_cross=1)
        s = CrossbarSwitch(config)
        s.enqueue_arrival(pk(0, 0, 0, 1.0))
        s.enqueue_arrival(pk(1, 0, 1, 9.0))
        transfers = CrossbarGreedyWeightedPolicy().input_subphase(s, 0, 0)
        assert transfers[0].packet.value == 9.0
