"""Unit tests for the Crossbar Preemptive Greedy (CPG) policy — Sec 3.2."""

import pytest

from repro.core.cpg import CPGPolicy
from repro.core.params import cpg_optimal_params
from repro.simulation.engine import run_crossbar
from repro.switch.config import SwitchConfig
from repro.switch.crossbar import CrossbarSwitch
from repro.switch.packet import Packet
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import pareto_values, uniform_values


def pk(pid, src, dst, value):
    return Packet(pid, value, 0, src, dst)


@pytest.fixture
def switch():
    return CrossbarSwitch(SwitchConfig.square(2, b_in=2, b_out=1, b_cross=1))


class TestConstruction:
    def test_defaults_to_paper_optimum(self):
        beta, alpha, _ = cpg_optimal_params()
        p = CPGPolicy()
        assert p.beta == pytest.approx(beta)
        assert p.alpha == pytest.approx(alpha)

    def test_rejects_thresholds_below_one(self):
        with pytest.raises(ValueError):
            CPGPolicy(beta=0.9)
        with pytest.raises(ValueError):
            CPGPolicy(alpha=0.5)


class TestInputSubphase:
    def test_picks_most_valuable_eligible_voq(self, switch):
        switch.enqueue_arrival(pk(0, 0, 0, 2.0))
        switch.enqueue_arrival(pk(1, 0, 1, 8.0))
        transfers = CPGPolicy().input_subphase(switch, 0, 0)
        assert len(transfers) == 1
        assert transfers[0].dst == 1
        assert transfers[0].packet.value == 8.0

    def test_full_crosspoint_needs_beta_improvement(self, switch):
        cpg = CPGPolicy(beta=2.0, alpha=2.0)
        switch.enqueue_arrival(pk(0, 0, 0, 3.0))
        switch.apply_input_subphase(cpg.input_subphase(switch, 0, 0))
        # C[0][0] now holds value 3 and is full (b_cross = 1).
        switch.enqueue_arrival(pk(1, 0, 0, 5.0))
        assert cpg.input_subphase(switch, 0, 1) == []  # 5 <= 2*3
        switch.enqueue_arrival(pk(2, 0, 0, 7.0))
        transfers = cpg.input_subphase(switch, 0, 2)
        assert len(transfers) == 1
        assert transfers[0].packet.value == 7.0
        assert transfers[0].preempt is not None
        assert transfers[0].preempt.value == 3.0

    def test_prefers_other_voq_when_blocked(self, switch):
        cpg = CPGPolicy(beta=10.0, alpha=10.0)
        switch.enqueue_arrival(pk(0, 0, 0, 9.0))
        switch.apply_input_subphase(cpg.input_subphase(switch, 0, 0))
        # (0,0) blocked by big beta; a cheaper VOQ (0,1) is still eligible.
        switch.enqueue_arrival(pk(1, 0, 0, 9.5))
        switch.enqueue_arrival(pk(2, 0, 1, 1.0))
        transfers = cpg.input_subphase(switch, 0, 1)
        assert len(transfers) == 1
        assert transfers[0].dst == 1


class TestOutputSubphase:
    def _fill_out(self, switch, cpg, value):
        switch.enqueue_arrival(pk(90, 0, 0, value))
        switch.apply_input_subphase(cpg.input_subphase(switch, 0, 0))
        switch.apply_output_subphase(cpg.output_subphase(switch, 0, 0))

    def test_picks_most_valuable_crosspoint(self):
        config = SwitchConfig.square(2, b_in=2, b_out=2, b_cross=1)
        switch = CrossbarSwitch(config)
        cpg = CPGPolicy()
        switch.enqueue_arrival(pk(0, 0, 0, 2.0))
        switch.enqueue_arrival(pk(1, 1, 0, 6.0))
        switch.apply_input_subphase(cpg.input_subphase(switch, 0, 0))
        transfers = cpg.output_subphase(switch, 0, 0)
        assert len(transfers) == 1
        assert transfers[0].src == 1

    def test_full_output_needs_alpha_improvement(self, switch):
        cpg = CPGPolicy(beta=1.5, alpha=3.0)
        self._fill_out(switch, cpg, 2.0)  # output 0 now holds value 2, full
        switch.enqueue_arrival(pk(1, 0, 0, 5.0))
        switch.apply_input_subphase(cpg.input_subphase(switch, 0, 1))
        # 5 <= alpha * 2 = 6: not transferred.
        assert cpg.output_subphase(switch, 0, 1) == []
        # Preempt the crosspoint resident with something big enough.
        switch.enqueue_arrival(pk(2, 0, 0, 8.0))
        switch.apply_input_subphase(cpg.input_subphase(switch, 0, 2))
        transfers = cpg.output_subphase(switch, 0, 2)
        assert len(transfers) == 1
        assert transfers[0].packet.value == 8.0
        assert transfers[0].preempt.value == 2.0


class TestEndToEnd:
    @pytest.mark.parametrize(
        "values", [uniform_values(1, 50), pareto_values(1.5)]
    )
    def test_conservation_on_random_traffic(self, values):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(3, 3, load=1.4, value_model=values).generate(
            25, seed=13
        )
        res = run_crossbar(CPGPolicy(), config, trace, check_invariants=True)
        res.check_conservation()

    def test_cpg_beats_value_blind_cgu_on_skewed_values(self):
        from repro.core.cgu import CGUPolicy

        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(
            3, 3, load=1.8, value_model=pareto_values(1.2)
        ).generate(40, seed=21)
        cpg = run_crossbar(CPGPolicy(), config, trace)
        cgu = run_crossbar(CGUPolicy(), config, trace)
        assert cpg.benefit >= cgu.benefit

    def test_preemptions_counted_by_site(self):
        config = SwitchConfig.square(2, speedup=1, b_in=1, b_out=1, b_cross=1)
        trace = BernoulliTraffic(
            2, 2, load=2.5, value_model=uniform_values(1, 100)
        ).generate(30, seed=2)
        res = run_crossbar(CPGPolicy(beta=1.01, alpha=1.01), config, trace)
        assert res.n_preempted_cross + res.n_preempted_out + res.n_preempted_voq > 0
