"""Tests for the IQ-model reduction (Section 1.2 / Section 4)."""

import math

import pytest

from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.iq import (
    IQLowerBound,
    iq_config,
    iq_trace,
    known_lower_bounds,
    tlh_equivalence_note,
)
from repro.offline.opt import cioq_opt
from repro.simulation.engine import run_cioq


class TestReduction:
    def test_iq_config_shape(self):
        c = iq_config(m=4, b=2)
        assert c.n_in == 4 and c.n_out == 1
        assert c.speedup == 1
        assert c.b_in == 2 and c.b_out == 1

    def test_iq_config_validation(self):
        with pytest.raises(ValueError):
            iq_config(0, 1)

    def test_iq_trace_construction(self):
        t = iq_trace([(0, 1.0, 0), (2, 3.0, 1)], m=3)
        assert t.n_in == 3 and t.n_out == 1
        assert all(p.dst == 0 for p in t.packets)

    def test_iq_trace_queue_range(self):
        with pytest.raises(ValueError):
            iq_trace([(5, 1.0, 0)], m=3)

    def test_single_queue_sends_one_per_slot(self):
        """An IQ switch transmits at most one packet per slot."""
        cfg = iq_config(m=2, b=4)
        t = iq_trace([(0, 1.0, 0)] * 0 + [(i % 2, 1.0, 0) for i in range(6)],
                     m=2)
        res = run_cioq(GMPolicy(), cfg, t, record=True)
        per_slot = {}
        for slot, _j, _pid in res.transmit_log:
            per_slot[slot] = per_slot.get(slot, 0) + 1
        assert all(v == 1 for v in per_slot.values())

    def test_gm_within_3_on_iq(self):
        cfg = iq_config(m=3, b=2)
        t = iq_trace(
            [(i % 3, 1.0, s) for s in range(8) for i in range(2)], m=3
        )
        onl = run_cioq(GMPolicy(), cfg, t)
        opt = cioq_opt(t, cfg)
        assert opt.benefit <= 3 * onl.benefit + 1e-9

    def test_pg_within_bound_on_iq(self):
        cfg = iq_config(m=3, b=2)
        t = iq_trace(
            [(i % 3, float(1 + (s * i) % 7), s) for s in range(8)
             for i in range(2)],
            m=3,
        )
        onl = run_cioq(PGPolicy(), cfg, t)
        opt = cioq_opt(t, cfg)
        assert opt.benefit <= (3 + 2 * math.sqrt(2)) * onl.benefit + 1e-9


class TestLowerBounds:
    def test_known_bounds_values(self):
        bounds = {b.name: b for b in known_lower_bounds(m=4, b=2)}
        assert bounds["deterministic"].value == pytest.approx(2 - 1 / 4)
        assert bounds["randomized"].value == pytest.approx(
            math.e / (math.e - 1)
        )
        assert bounds["greedy"].value == pytest.approx(2 - 1 / 2)
        assert bounds["GM-asymptotic"].value == 2.0
        assert bounds["PG-asymptotic"].value == 3.0

    def test_bounds_all_below_paper_upper_bounds(self):
        """Every cited lower bound is consistent with Theorems 1-2."""
        for b in known_lower_bounds(m=8, b=8):
            if b.name.startswith("PG"):
                assert b.value <= 3 + 2 * math.sqrt(2)
            else:
                assert b.value <= 3.0

    def test_bounds_are_dataclasses_with_sources(self):
        for b in known_lower_bounds(2, 2):
            assert isinstance(b, IQLowerBound)
            assert b.source

    def test_equivalence_note_mentions_tlh(self):
        assert "TLH" in tlh_equivalence_note()
