"""Integration tests: the paper's theorems checked end-to-end.

Each theorem test runs its algorithm against the exact offline optimum
on a battery of instances (several traffic families and switch shapes)
and asserts the measured ratio never exceeds the proven bound.  These
are the executable versions of Theorems 1-4.
"""

import pytest

from repro.analysis.ratio import measure_cioq_ratio, measure_crossbar_ratio
from repro.core.cgu import CGUPolicy
from repro.core.cpg import CPGPolicy
from repro.core.gm import GMPolicy
from repro.core.params import (
    GM_RATIO,
    CGU_RATIO,
    cpg_optimal_ratio,
    pg_optimal_ratio,
)
from repro.core.pg import PGPolicy
from repro.scheduling.baselines import MaxMatchPolicy, MaxWeightMatchPolicy
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.bursty import BurstyTraffic
from repro.traffic.hotspot import DiagonalTraffic, HotspotTraffic
from repro.traffic.values import pareto_values, two_value, uniform_values


def unit_batteries():
    """(config, trace) pairs exercising Theorems 1 and 3."""
    out = []
    for cfg, model, slots, seed in [
        (SwitchConfig.square(2, speedup=1, b_in=1, b_out=1),
         BernoulliTraffic(2, 2, load=1.5), 12, 0),
        (SwitchConfig.square(3, speedup=1, b_in=2, b_out=2),
         HotspotTraffic(3, 3, load=1.3, hot_fraction=0.7), 12, 1),
        (SwitchConfig.square(3, speedup=2, b_in=2, b_out=2),
         BurstyTraffic(3, 3, burst_load=2.5), 12, 2),
        (SwitchConfig.square(4, speedup=1, b_in=1, b_out=2),
         DiagonalTraffic(4, 4, load=1.2), 10, 3),
        (SwitchConfig(n_in=3, n_out=2, speedup=1, b_in=2, b_out=2),
         BernoulliTraffic(3, 2, load=1.2), 10, 4),  # N x M remark (Sec. 4)
    ]:
        out.append((cfg, model.generate(slots, seed=seed)))
    return out


def weighted_batteries():
    out = []
    for cfg, model, slots, seed in [
        (SwitchConfig.square(2, speedup=1, b_in=1, b_out=1),
         BernoulliTraffic(2, 2, load=1.8,
                          value_model=uniform_values(1, 100)), 12, 0),
        (SwitchConfig.square(3, speedup=1, b_in=2, b_out=2),
         BernoulliTraffic(3, 3, load=1.5,
                          value_model=two_value(20, 0.2)), 12, 1),
        (SwitchConfig.square(3, speedup=2, b_in=2, b_out=2),
         HotspotTraffic(3, 3, load=1.5, hot_fraction=0.7,
                        value_model=pareto_values(1.3)), 12, 2),
    ]:
        out.append((cfg, model.generate(slots, seed=seed)))
    return out


class TestTheorem1GM:
    @pytest.mark.parametrize("cfg,trace", unit_batteries())
    def test_gm_within_3(self, cfg, trace):
        m = measure_cioq_ratio(GMPolicy(), trace, cfg, bound=GM_RATIO)
        assert m.within_bound, f"GM ratio {m.ratio} > 3 on {trace.name}"

    @pytest.mark.parametrize("cfg,trace", unit_batteries())
    def test_maxmatch_baseline_also_within_3(self, cfg, trace):
        m = measure_cioq_ratio(MaxMatchPolicy(), trace, cfg, bound=GM_RATIO)
        assert m.within_bound


class TestTheorem2PG:
    @pytest.mark.parametrize("cfg,trace", weighted_batteries())
    def test_pg_within_5_83(self, cfg, trace):
        m = measure_cioq_ratio(
            PGPolicy(), trace, cfg, bound=pg_optimal_ratio()
        )
        assert m.within_bound, f"PG ratio {m.ratio} on {trace.name}"

    @pytest.mark.parametrize("beta", [1.3, 2.0, 4.0])
    def test_pg_off_optimal_beta_within_formula_bound(self, beta):
        from repro.core.params import pg_ratio

        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(
            3, 3, load=1.6, value_model=uniform_values(1, 50)
        ).generate(12, seed=9)
        m = measure_cioq_ratio(PGPolicy(beta=beta), trace, cfg,
                               bound=pg_ratio(beta))
        assert m.within_bound

    @pytest.mark.parametrize("cfg,trace", weighted_batteries())
    def test_maxweight_baseline_reasonable(self, cfg, trace):
        """The maximum-weight baseline (prior work) also stays within
        its 6-competitive bound."""
        m = measure_cioq_ratio(MaxWeightMatchPolicy(), trace, cfg, bound=6.0)
        assert m.within_bound


class TestTheorem3CGU:
    @pytest.mark.parametrize("cfg,trace", unit_batteries())
    def test_cgu_within_3(self, cfg, trace):
        m = measure_crossbar_ratio(CGUPolicy(), trace, cfg, bound=CGU_RATIO)
        assert m.within_bound, f"CGU ratio {m.ratio} on {trace.name}"

    def test_cgu_beats_previous_bound_of_4(self):
        """The paper's headline: CGU is 3- (not just 4-) competitive.
        Empirically its worst observed ratio sits far below even 3."""
        worst = 0.0
        for cfg, trace in unit_batteries():
            m = measure_crossbar_ratio(CGUPolicy(), trace, cfg)
            worst = max(worst, m.ratio)
        assert worst <= 3.0


class TestTheorem4CPG:
    @pytest.mark.parametrize("cfg,trace", weighted_batteries())
    def test_cpg_within_14_83(self, cfg, trace):
        m = measure_crossbar_ratio(
            CPGPolicy(), trace, cfg, bound=cpg_optimal_ratio()
        )
        assert m.within_bound, f"CPG ratio {m.ratio} on {trace.name}"

    def test_cpg_single_threshold_ablation_within_its_bound(self):
        from repro.core.params import cpg_ratio, kesselman_cpg_params

        b, a = kesselman_cpg_params()
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(
            3, 3, load=1.5, value_model=two_value(20, 0.2)
        ).generate(12, seed=31)
        m = measure_crossbar_ratio(
            CPGPolicy(beta=b, alpha=a), trace, cfg, bound=cpg_ratio(b, a)
        )
        assert m.within_bound


class TestCrossModelRelations:
    def test_same_trace_both_models_conserve(self, small_config, unit_trace):
        from repro.simulation.engine import run_cioq, run_crossbar

        gm = run_cioq(GMPolicy(), small_config, unit_trace)
        cgu = run_crossbar(CGUPolicy(), small_config, unit_trace)
        gm.check_conservation()
        cgu.check_conservation()

    def test_unit_pg_equals_gm_like_benefit(self, small_config, unit_trace):
        """On unit values PG's value rules degenerate; its benefit is in
        the same ballpark as GM's and both respect the OPT ceiling."""
        from repro.offline.opt import cioq_opt
        from repro.simulation.engine import run_cioq

        opt = cioq_opt(unit_trace, small_config).benefit
        gm = run_cioq(GMPolicy(), small_config, unit_trace).benefit
        pg = run_cioq(PGPolicy(), small_config, unit_trace).benefit
        assert gm <= opt + 1e-9 and pg <= opt + 1e-9
        assert abs(gm - pg) <= 0.25 * opt
