"""Unit and property tests for BoundedQueue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switch.packet import Packet
from repro.switch.queue import BoundedQueue, QueueOverflowError


def pk(pid, value):
    return Packet(pid, value, 0, 0, 0)


class TestBasics:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_empty_properties(self):
        q = BoundedQueue(3)
        assert q.is_empty
        assert not q.is_full
        assert len(q) == 0
        assert q.head() is None
        assert q.tail() is None

    def test_push_and_len(self):
        q = BoundedQueue(3)
        q.push(pk(0, 5.0))
        assert len(q) == 1
        assert not q.is_empty

    def test_full_detection(self):
        q = BoundedQueue(2)
        q.push(pk(0, 1.0))
        q.push(pk(1, 2.0))
        assert q.is_full

    def test_push_overflow_raises(self):
        q = BoundedQueue(1)
        q.push(pk(0, 1.0))
        with pytest.raises(QueueOverflowError):
            q.push(pk(1, 2.0))

    def test_contains(self):
        q = BoundedQueue(2)
        a = pk(0, 1.0)
        q.push(a)
        assert a in q
        assert pk(1, 1.0) not in q


class TestOrdering:
    def test_head_is_greatest(self):
        q = BoundedQueue(5)
        for pid, v in enumerate([3.0, 7.0, 1.0, 5.0]):
            q.push(pk(pid, v))
        assert q.head().value == 7.0
        assert q.tail().value == 1.0

    def test_iteration_head_to_tail(self):
        q = BoundedQueue(5)
        for pid, v in enumerate([3.0, 7.0, 1.0]):
            q.push(pk(pid, v))
        assert [p.value for p in q] == [7.0, 3.0, 1.0]

    def test_ties_broken_by_pid(self):
        q = BoundedQueue(3)
        q.push(pk(5, 2.0))
        q.push(pk(1, 2.0))
        q.push(pk(3, 2.0))
        # Smaller pid is "greater" (closer to head) under Assumption A3.
        assert [p.pid for p in q] == [1, 3, 5]

    def test_at_position_one_based(self):
        q = BoundedQueue(4)
        for pid, v in enumerate([4.0, 2.0, 9.0]):
            q.push(pk(pid, v))
        assert q.at_position(1).value == 9.0
        assert q.at_position(3).value == 2.0
        with pytest.raises(IndexError):
            q.at_position(0)
        with pytest.raises(IndexError):
            q.at_position(4)

    def test_values_and_total(self):
        q = BoundedQueue(3)
        for pid, v in enumerate([4.0, 2.0]):
            q.push(pk(pid, v))
        assert q.values() == [4.0, 2.0]
        assert q.total_value() == 6.0


class TestMutation:
    def test_pop_head(self):
        q = BoundedQueue(3)
        for pid, v in enumerate([1.0, 3.0, 2.0]):
            q.push(pk(pid, v))
        assert q.pop_head().value == 3.0
        assert q.head().value == 2.0

    def test_pop_tail(self):
        q = BoundedQueue(3)
        for pid, v in enumerate([1.0, 3.0, 2.0]):
            q.push(pk(pid, v))
        assert q.pop_tail().value == 1.0
        assert q.tail().value == 2.0

    def test_pop_empty_raises(self):
        q = BoundedQueue(1)
        with pytest.raises(IndexError):
            q.pop_head()
        with pytest.raises(IndexError):
            q.pop_tail()

    def test_remove_specific_packet(self):
        q = BoundedQueue(3)
        mid = pk(1, 2.0)
        q.push(pk(0, 1.0))
        q.push(mid)
        q.push(pk(2, 3.0))
        q.remove(mid)
        assert len(q) == 2
        assert mid not in q

    def test_remove_among_equal_values(self):
        q = BoundedQueue(3)
        a, b, c = pk(0, 2.0), pk(1, 2.0), pk(2, 2.0)
        for p in (a, b, c):
            q.push(p)
        q.remove(b)
        assert b not in q and a in q and c in q

    def test_remove_missing_raises(self):
        q = BoundedQueue(2)
        q.push(pk(0, 1.0))
        with pytest.raises(ValueError):
            q.remove(pk(9, 1.0))

    def test_clear(self):
        q = BoundedQueue(2)
        q.push(pk(0, 1.0))
        q.clear()
        assert q.is_empty


class TestAdmitPreemptive:
    def test_accepts_with_space(self):
        q = BoundedQueue(2)
        accepted, victim = q.admit_preemptive(pk(0, 1.0))
        assert accepted and victim is None

    def test_preempts_cheaper_tail_when_full(self):
        q = BoundedQueue(2)
        q.push(pk(0, 1.0))
        q.push(pk(1, 5.0))
        accepted, victim = q.admit_preemptive(pk(2, 3.0))
        assert accepted
        assert victim.pid == 0
        assert len(q) == 2
        assert q.tail().value == 3.0

    def test_rejects_when_full_and_not_better(self):
        q = BoundedQueue(1)
        q.push(pk(0, 3.0))
        accepted, victim = q.admit_preemptive(pk(1, 3.0))
        assert not accepted and victim is None
        assert q.head().pid == 0

    def test_rejects_strictly_smaller(self):
        q = BoundedQueue(1)
        q.push(pk(0, 3.0))
        accepted, _ = q.admit_preemptive(pk(1, 2.0))
        assert not accepted


@st.composite
def operations(draw):
    """A random sequence of queue operations."""
    n = draw(st.integers(1, 60))
    ops = []
    for k in range(n):
        kind = draw(st.sampled_from(["push", "pop_head", "pop_tail", "admit"]))
        value = draw(
            st.floats(min_value=0.1, max_value=1000, allow_nan=False)
        )
        ops.append((kind, value))
    return ops


class TestProperties:
    @given(ops=operations(), capacity=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_queue_invariants_hold_under_random_ops(self, ops, capacity):
        q = BoundedQueue(capacity)
        pid = 0
        for kind, value in ops:
            if kind == "push":
                if not q.is_full:
                    q.push(pk(pid, value))
                    pid += 1
            elif kind == "pop_head":
                if not q.is_empty:
                    head = q.pop_head()
                    for p in q:
                        assert not p.beats(head)
            elif kind == "pop_tail":
                if not q.is_empty:
                    tail = q.pop_tail()
                    for p in q:
                        assert not tail.beats(p)
            else:
                q.admit_preemptive(pk(pid, value))
                pid += 1
            q.check_invariants()
            assert len(q) <= capacity

    @given(
        values=st.lists(
            st.floats(min_value=0.1, max_value=100, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_admit_preemptive_keeps_top_k(self, values):
        """After admitting everything into a capacity-k queue, the queue
        holds the k largest values (the preemption rule is optimal for a
        single queue)."""
        cap = 4
        q = BoundedQueue(cap)
        for pid, v in enumerate(values):
            q.admit_preemptive(pk(pid, v))
        expected = sorted(values, reverse=True)[:cap]
        got = sorted(q.values(), reverse=True)
        # Equal values may tie-break either way; compare multisets of values.
        assert got == pytest.approx(expected)
