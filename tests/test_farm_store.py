"""The content-addressed result store (repro.farm.store) and the
concurrent-writer / stale-version hardening it gives the sweep cache."""

import json
import multiprocessing
import os
from functools import partial

import pytest

from repro.core.pg import PGPolicy
from repro.farm import ResultStore
from repro.parallel import CACHE_VERSION, EXEC_LOG_ENV, SweepExecutor, SweepPoint
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import uniform_values


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"), CACHE_VERSION)


def make_points(n=6, slots=10):
    config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
    points = []
    for seed in range(n):
        trace = BernoulliTraffic(
            3, 3, load=1.2, value_model=uniform_values(1, 20)
        ).generate(slots, seed=seed)
        points.append(
            SweepPoint(model="cioq", config=config, trace=trace,
                       policy_factory=partial(PGPolicy, beta=2.0),
                       seed=seed, tag={"seed": seed}))
    return points


class TestStoreBasics:
    def test_round_trip_and_sharded_layout(self, store):
        key = "ab" + "0" * 62
        store.put(key, {"benefit": 7})
        assert store.get(key) == {"benefit": 7}
        assert store.path(key).endswith(os.path.join("ab", f"{key}.json"))
        assert os.path.exists(store.path(key))
        # The entry on disk is version-wrapped.
        with open(store.path(key), encoding="utf-8") as fh:
            entry = json.load(fh)
        assert entry == {"cache_version": CACHE_VERSION,
                         "payload": {"benefit": 7}}

    def test_absent_and_corrupt_miss(self, store):
        key = "cd" + "1" * 62
        assert store.get(key) is None
        os.makedirs(os.path.dirname(store.path(key)), exist_ok=True)
        with open(store.path(key), "w", encoding="utf-8") as fh:
            fh.write("{torn")
        assert store.get(key) is None

    def test_legacy_flat_entry_still_reads(self, store):
        key = "ef" + "2" * 62
        os.makedirs(store.root, exist_ok=True)
        with open(store.legacy_path(key), "w", encoding="utf-8") as fh:
            json.dump({"benefit": 3}, fh)  # pre-farm bare payload
        assert store.get(key) == {"benefit": 3}
        assert store.stats()["legacy_entries"] == 1

    def test_stale_version_misses_cleanly(self, store):
        key = "01" + "3" * 62
        old = ResultStore(store.root, CACHE_VERSION - 1)
        old.put(key, {"benefit": 9})
        assert store.get(key) is None  # version mismatch = miss

    def test_keys_and_stats(self, store):
        for i in range(4):
            store.put(f"{i:02d}" + "a" * 62, {"v": i})
        assert len(list(store.keys())) == 4
        stats = store.stats()
        assert stats["entries"] == 4 and stats["bytes"] > 0


class TestGC:
    def test_reclaims_stale_corrupt_tmp_keeps_live(self, store):
        live = "aa" + "0" * 62
        store.put(live, {"benefit": 1})
        ResultStore(store.root, CACHE_VERSION - 1).put("bb" + "0" * 62,
                                                       {"benefit": 2})
        shard = os.path.join(store.root, "cc")
        os.makedirs(shard, exist_ok=True)
        with open(os.path.join(shard, "cc" + "0" * 62 + ".json"),
                  "w", encoding="utf-8") as fh:
            fh.write("{torn")
        with open(os.path.join(shard, "leftover.tmp"), "w") as fh:
            fh.write("x")
        removed = store.gc()
        assert removed["stale"] == 1
        assert removed["corrupt"] == 1
        assert removed["tmp"] == 1
        assert removed["kept"] == 1
        assert store.get(live) == {"benefit": 1}

    def test_legacy_only_removed_on_request(self, store):
        key = "dd" + "0" * 62
        os.makedirs(store.root, exist_ok=True)
        with open(store.legacy_path(key), "w", encoding="utf-8") as fh:
            json.dump({"benefit": 5}, fh)
        assert store.gc()["legacy"] == 0
        assert store.get(key) == {"benefit": 5}
        assert store.gc(include_legacy=True)["legacy"] == 1
        assert store.get(key) is None

    def test_dead_claims_reclaimed(self, store):
        key = "ee" + "0" * 62
        os.makedirs(os.path.dirname(store.claim_path(key)), exist_ok=True)
        with open(store.claim_path(key), "w", encoding="utf-8") as fh:
            json.dump({"pid": 2 ** 22 + 12345}, fh)  # no such process
        assert store.gc()["claims"] == 1
        assert not os.path.exists(store.claim_path(key))


class TestClaims:
    def test_claim_release_cycle(self, store):
        key = "0a" + "0" * 62
        assert store.claim(key)
        assert not store.claim(key)  # held by this live process
        store.release(key)
        assert store.claim(key)

    def test_dead_claim_is_stolen(self, store):
        key = "0b" + "0" * 62
        os.makedirs(os.path.dirname(store.claim_path(key)), exist_ok=True)
        with open(store.claim_path(key), "w", encoding="utf-8") as fh:
            json.dump({"pid": 2 ** 22 + 54321}, fh)
        assert store.claim(key)  # stolen from the dead pid

    def test_wait_for_returns_after_publish(self, store):
        key = "0c" + "0" * 62
        store.put(key, {"benefit": 4})
        assert store.wait_for(key, timeout=0.5) == {"benefit": 4}

    def test_wait_for_gives_up_when_claim_vanishes(self, store):
        key = "0d" + "0" * 62
        assert store.wait_for(key, timeout=0.2, poll=0.01) is None


def _run_shared_sweep(cache_dir, log_path, n):
    """Child-process body: sweep the shared store with the exec log on
    (module-level so it pickles)."""
    os.environ[EXEC_LOG_ENV] = log_path
    SweepExecutor(cache_dir=cache_dir).run(make_points(n))


class TestConcurrentWriters:
    def test_two_executors_never_double_run(self, tmp_path):
        """Two processes sweeping the same points against one store:
        every point executes exactly once across both, entries stay
        uncorrupted, and both see the serial payloads."""
        cache_dir = str(tmp_path / "shared")
        log_path = str(tmp_path / "exec.log")
        n = 8
        ctx = multiprocessing.get_context()
        procs = [ctx.Process(target=_run_shared_sweep,
                             args=(cache_dir, log_path, n))
                 for _ in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        with open(log_path, encoding="utf-8") as fh:
            executed = fh.read().splitlines()
        ex = SweepExecutor(cache_dir=cache_dir)
        points = make_points(n)
        expected_keys = {ex.cache_key(p) for p in points}
        assert sorted(executed) == sorted(expected_keys)  # exactly once
        # The store is uncorrupted: a third executor is all hits and
        # matches a cache-less serial run byte for byte.
        third = ex.run(points)
        assert (ex.cache_hits, ex.cache_misses) == (n, 0)
        assert third == SweepExecutor().run(points)

    def test_stale_entries_miss_then_gc(self, tmp_path):
        """Entries written under another CACHE_VERSION never serve hits
        and are reclaimed by gc without touching live entries."""
        cache_dir = str(tmp_path / "versioned")
        points = make_points(3)
        ex = SweepExecutor(cache_dir=cache_dir)
        fresh = ex.run(points)
        stale_store = ResultStore(cache_dir, CACHE_VERSION + 1)
        stale_store.put("ff" + "0" * 62, {"benefit": -1})
        ex2 = SweepExecutor(cache_dir=cache_dir)
        assert ex2.run(points) == fresh
        assert (ex2.cache_hits, ex2.cache_misses) == (3, 0)
        removed = ResultStore(cache_dir, CACHE_VERSION).gc()
        assert removed["stale"] == 1 and removed["kept"] == 3
