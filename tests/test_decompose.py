"""Tests for per-packet decomposition of OPT solutions."""

import pytest

from repro.offline.decompose import decompose_cioq_opt
from repro.offline.opt import cioq_opt
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.trace import Trace


@pytest.mark.parametrize("seed", range(5))
def test_itineraries_are_feasible(seed, small_config):
    trace = BernoulliTraffic(3, 3, load=1.2).generate(10, seed=seed)
    res = cioq_opt(trace, small_config, extract_schedule=True)
    sched = decompose_cioq_opt(trace, res)
    sched.validate(trace)
    assert len(sched.itineraries) == res.n_delivered


def test_itinerary_fields_match_packets(small_config):
    trace = BernoulliTraffic(3, 3, load=1.0).generate(8, seed=9)
    res = cioq_opt(trace, small_config, extract_schedule=True)
    sched = decompose_cioq_opt(trace, res)
    by_pid = {p.pid: p for p in trace.packets}
    for pid, it in sched.itineraries.items():
        p = by_pid[pid]
        assert (it.src, it.dst, it.arrival) == (p.src, p.dst, p.arrival)
        assert it.depart[0] >= p.arrival
        assert it.transmit_slot >= it.depart[0]


def test_departures_in_cycle_lookup(small_config):
    trace = BernoulliTraffic(3, 3, load=1.0).generate(8, seed=9)
    res = cioq_opt(trace, small_config, extract_schedule=True)
    sched = decompose_cioq_opt(trace, res)
    total = sum(
        len(sched.departures_in_cycle(t, s))
        for t in range(res.transmissions[-1][0] + 1 if res.transmissions else 0)
        for s in range(small_config.speedup)
    )
    assert total == len(sched.itineraries)


def test_matching_property_of_departures(small_config):
    """Within each cycle, OPT's departures form a matching."""
    trace = BernoulliTraffic(3, 3, load=1.4).generate(12, seed=4)
    res = cioq_opt(trace, small_config, extract_schedule=True)
    sched = decompose_cioq_opt(trace, res)
    horizon = max((it.transmit_slot for it in sched.itineraries.values()),
                  default=0)
    for t in range(horizon + 1):
        for s in range(small_config.speedup):
            deps = sched.departures_in_cycle(t, s)
            srcs = [d.src for d in deps]
            dsts = [d.dst for d in deps]
            assert len(set(srcs)) == len(srcs)
            assert len(set(dsts)) == len(dsts)


def test_benefit_carried_through(small_config):
    trace = BernoulliTraffic(3, 3, load=1.0).generate(6, seed=0)
    res = cioq_opt(trace, small_config, extract_schedule=True)
    sched = decompose_cioq_opt(trace, res)
    assert sched.benefit == res.benefit


class TestEdgeCases:
    """Degenerate instances: empty trace, a single arrival slot, and a
    window where capacity forces every extra packet to drop."""

    def test_empty_trace(self, tiny_config):
        trace = Trace([], 2, 2)
        res = cioq_opt(trace, tiny_config, extract_schedule=True)
        sched = decompose_cioq_opt(trace, res)
        assert sched.itineraries == {}
        assert sched.benefit == 0.0
        sched.validate(trace)

    def test_single_slot_single_packet(self, tiny_config):
        trace = Trace([Packet(0, 5.0, 0, 0, 1)], 2, 2)
        res = cioq_opt(trace, tiny_config, extract_schedule=True)
        sched = decompose_cioq_opt(trace, res)
        assert set(sched.itineraries) == {0}
        it = sched.itineraries[0]
        assert it.depart[0] >= 0
        assert it.transmit_slot >= it.depart[0]
        sched.validate(trace)

    def test_all_drops_window(self, tiny_config):
        """Five same-slot arrivals into one capacity-1 VOQ: exactly one
        survives, and its itinerary is still consistent."""
        packets = [Packet(k, 1.0, 0, 0, 0) for k in range(5)]
        trace = Trace(packets, 2, 2)
        res = cioq_opt(trace, tiny_config, extract_schedule=True)
        sched = decompose_cioq_opt(trace, res)
        assert len(sched.itineraries) == 1
        assert res.n_delivered == 1
        sched.validate(trace)

    def test_single_slot_burst_keeps_matching_property(self, tiny_config):
        """A one-slot burst across all four VOQs decomposes into
        per-cycle matchings even when drops occur."""
        packets = [
            Packet(4 * i + 2 * j + k, 1.0, 0, i, j)
            for i in range(2) for j in range(2) for k in range(2)
        ]
        trace = Trace(packets, 2, 2)
        res = cioq_opt(trace, tiny_config, extract_schedule=True)
        sched = decompose_cioq_opt(trace, res)
        sched.validate(trace)
        slots = {it.transmit_slot for it in sched.itineraries.values()}
        for t in sorted(slots):
            for s in range(tiny_config.speedup):
                deps = sched.departures_in_cycle(t, s)
                assert len({d.src for d in deps}) == len(deps)
                assert len({d.dst for d in deps}) == len(deps)
