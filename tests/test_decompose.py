"""Tests for per-packet decomposition of OPT solutions."""

import pytest

from repro.offline.decompose import decompose_cioq_opt
from repro.offline.opt import cioq_opt
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic


@pytest.mark.parametrize("seed", range(5))
def test_itineraries_are_feasible(seed, small_config):
    trace = BernoulliTraffic(3, 3, load=1.2).generate(10, seed=seed)
    res = cioq_opt(trace, small_config, extract_schedule=True)
    sched = decompose_cioq_opt(trace, res)
    sched.validate(trace)
    assert len(sched.itineraries) == res.n_delivered


def test_itinerary_fields_match_packets(small_config):
    trace = BernoulliTraffic(3, 3, load=1.0).generate(8, seed=9)
    res = cioq_opt(trace, small_config, extract_schedule=True)
    sched = decompose_cioq_opt(trace, res)
    by_pid = {p.pid: p for p in trace.packets}
    for pid, it in sched.itineraries.items():
        p = by_pid[pid]
        assert (it.src, it.dst, it.arrival) == (p.src, p.dst, p.arrival)
        assert it.depart[0] >= p.arrival
        assert it.transmit_slot >= it.depart[0]


def test_departures_in_cycle_lookup(small_config):
    trace = BernoulliTraffic(3, 3, load=1.0).generate(8, seed=9)
    res = cioq_opt(trace, small_config, extract_schedule=True)
    sched = decompose_cioq_opt(trace, res)
    total = sum(
        len(sched.departures_in_cycle(t, s))
        for t in range(res.transmissions[-1][0] + 1 if res.transmissions else 0)
        for s in range(small_config.speedup)
    )
    assert total == len(sched.itineraries)


def test_matching_property_of_departures(small_config):
    """Within each cycle, OPT's departures form a matching."""
    trace = BernoulliTraffic(3, 3, load=1.4).generate(12, seed=4)
    res = cioq_opt(trace, small_config, extract_schedule=True)
    sched = decompose_cioq_opt(trace, res)
    horizon = max((it.transmit_slot for it in sched.itineraries.values()),
                  default=0)
    for t in range(horizon + 1):
        for s in range(small_config.speedup):
            deps = sched.departures_in_cycle(t, s)
            srcs = [d.src for d in deps]
            dsts = [d.dst for d in deps]
            assert len(set(srcs)) == len(srcs)
            assert len(set(dsts)) == len(dsts)


def test_benefit_carried_through(small_config):
    trace = BernoulliTraffic(3, 3, load=1.0).generate(6, seed=0)
    res = cioq_opt(trace, small_config, extract_schedule=True)
    sched = decompose_cioq_opt(trace, res)
    assert sched.benefit == res.benefit
