"""Tests for adversarial gadgets and adaptive adversaries."""

import pytest

from repro.analysis.ratio import measure_cioq_ratio
from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.core.params import pg_optimal_beta, pg_optimal_ratio
from repro.switch.config import SwitchConfig
from repro.traffic.adversarial import (
    FullQueuePressureAdversary,
    PreemptionBaitAdversary,
    RotatingBurstAdversary,
    SingleOutputOverloadAdversary,
    beta_admission_gadget,
    burst_reject_gadget,
    escalating_values_gadget,
    generate_adaptive_trace,
    two_value_contention_gadget,
)


class TestGadgetStructure:
    def test_burst_reject_dimensions(self):
        t = burst_reject_gadget(n=4, b_in=2, n_rounds=3)
        assert t.n_in == 4 and t.n_out == 4
        assert len(t) > 0
        assert t.is_unit_valued

    def test_escalating_values_grow_geometrically(self):
        beta = 2.0
        t = escalating_values_gadget(beta, chain_length=4, n_chains=1)
        vals = sorted(p.value for p in t.packets)
        for a, b in zip(vals, vals[1:]):
            assert b / a == pytest.approx(beta + 0.05)

    def test_escalating_validation(self):
        with pytest.raises(ValueError):
            escalating_values_gadget(0.5)

    def test_two_value_support(self):
        t = two_value_contention_gadget(alpha=10.0, n=2, b_out=2, n_rounds=2)
        assert {p.value for p in t.packets} == {1.0, 10.0}

    def test_beta_admission_values(self):
        beta = pg_optimal_beta()
        t = beta_admission_gadget(beta, n=2, b_out=4)
        vals = {round(p.value, 3) for p in t.packets}
        assert 1.0 in vals
        assert round(beta - 0.05, 3) in vals

    def test_beta_admission_validation(self):
        with pytest.raises(ValueError):
            beta_admission_gadget(0.9)
        with pytest.raises(ValueError):
            beta_admission_gadget(1.0, eps=0.5)


class TestAdaptiveDriver:
    def test_trace_is_replayable(self):
        """Running GM on the recorded adaptive trace reproduces exactly
        the state evolution the adversary saw (determinism)."""
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        t1 = generate_adaptive_trace(
            GMPolicy, cfg, RotatingBurstAdversary(), n_slots=12
        )
        t2 = generate_adaptive_trace(
            GMPolicy, cfg, RotatingBurstAdversary(), n_slots=12
        )
        assert [(p.src, p.dst, p.arrival) for p in t1.packets] == [
            (p.src, p.dst, p.arrival) for p in t2.packets
        ]

    def test_pressure_adversary_forces_rejections(self):
        from repro.simulation.engine import run_cioq

        cfg = SwitchConfig.square(3, speedup=1, b_in=1, b_out=1)
        trace = generate_adaptive_trace(
            GMPolicy, cfg, FullQueuePressureAdversary(), n_slots=15
        )
        res = run_cioq(GMPolicy(), cfg, trace)
        assert res.n_rejected > 0

    def test_preemption_bait_values_escalate(self):
        cfg = SwitchConfig.square(2, speedup=1, b_in=1, b_out=1)
        trace = generate_adaptive_trace(
            lambda: PGPolicy(beta=1.5),
            cfg,
            PreemptionBaitAdversary(beta=1.5),
            n_slots=10,
        )
        assert trace.max_value() > 1.0


class TestSeparation:
    """The adversarial instances must actually separate ONL from OPT
    (ratios well above random traffic) while staying within bounds."""

    def test_single_output_overload_separates_gm(self):
        cfg = SwitchConfig.square(6, speedup=1, b_in=3, b_out=3)
        trace = generate_adaptive_trace(
            GMPolicy, cfg, SingleOutputOverloadAdversary(), n_slots=18
        )
        m = measure_cioq_ratio(GMPolicy(), trace, cfg, bound=3.0)
        assert m.ratio > 1.3
        assert m.within_bound

    def test_rotating_burst_sustains_gap(self):
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = generate_adaptive_trace(
            GMPolicy, cfg, RotatingBurstAdversary(), n_slots=36
        )
        m = measure_cioq_ratio(GMPolicy(), trace, cfg, bound=3.0)
        assert m.ratio > 1.15
        assert m.within_bound

    def test_beta_admission_separates_pg(self):
        beta = pg_optimal_beta()
        n, b = 2, 4
        cfg = SwitchConfig.square(n, speedup=n, b_in=b, b_out=b)
        trace = beta_admission_gadget(beta, n=n, b_out=b, rate=3, n_rounds=2)
        m = measure_cioq_ratio(
            PGPolicy(beta=beta), trace, cfg, bound=pg_optimal_ratio()
        )
        assert m.ratio > 1.15
        assert m.within_bound
