"""Tests for the weighted (Theorem 2) modified-OPT replay."""

import pytest

from repro.core.params import pg_optimal_beta
from repro.core.pg import PGPolicy
from repro.offline.opt import cioq_opt
from repro.simulation.engine import run_cioq
from repro.switch.config import SwitchConfig
from repro.theory.shadow_weighted import replay_pg_shadow
from repro.traffic.adversarial import beta_admission_gadget
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.values import pareto_values, two_value, uniform_values


def certificate(trace, config, beta):
    pg = run_cioq(PGPolicy(beta=beta), config, trace, record=True)
    opt = cioq_opt(trace, config, extract_schedule=True)
    return replay_pg_shadow(trace, config, pg, opt, beta)


class TestCertification:
    @pytest.mark.parametrize("seed", range(4))
    def test_uniform_values_certify(self, seed):
        beta = pg_optimal_beta()
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(
            3, 3, load=1.4, value_model=uniform_values(1, 50)
        ).generate(12, seed=seed)
        cert = certificate(trace, cfg, beta)
        assert cert.theorem2_certified
        assert cert.s_star_bounded
        assert cert.privileged_bounded
        assert cert.modified_opt_benefit == pytest.approx(cert.opt_benefit)

    def test_two_value_certifies(self):
        beta = pg_optimal_beta()
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(
            3, 3, load=1.5, value_model=two_value(20, 0.25)
        ).generate(12, seed=3)
        cert = certificate(trace, cfg, beta)
        assert cert.theorem2_certified

    def test_pareto_speedup_two_certifies(self):
        beta = pg_optimal_beta()
        cfg = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
        trace = HotspotTraffic(
            3, 3, load=1.6, hot_fraction=0.7, value_model=pareto_values(1.4)
        ).generate(12, seed=5)
        cert = certificate(trace, cfg, beta)
        assert cert.theorem2_certified

    @pytest.mark.parametrize("beta", [1.5, 2.0, 4.0])
    def test_off_optimal_betas_certify(self, beta):
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(
            3, 3, load=1.4, value_model=uniform_values(1, 30)
        ).generate(10, seed=7)
        cert = certificate(trace, cfg, beta)
        # The certificate bound is beta-dependent and must hold per beta.
        bound = beta + 2 * beta / (beta - 1)
        assert cert.modified_opt_benefit <= bound * cert.pg_benefit + 1e-6

    def test_adversarial_gadget_certifies(self):
        beta = pg_optimal_beta()
        n, b = 2, 4
        cfg = SwitchConfig.square(n, speedup=n, b_in=b, b_out=b)
        trace = beta_admission_gadget(beta, n=n, b_out=b, rate=3, n_rounds=2)
        cert = certificate(trace, cfg, beta)
        assert cert.theorem2_certified
        # The gadget forces genuine privileged traffic.
        assert cert.privileged_value > 0

    def test_skip_conservation(self):
        beta = pg_optimal_beta()
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(
            3, 3, load=1.5, value_model=uniform_values(1, 40)
        ).generate(12, seed=9)
        cert = certificate(trace, cfg, beta)
        # Every Type-1 privilege voids exactly one scheduled departure.
        assert cert.skipped_departures == cert.n_privileged[0]

    def test_rejects_beta_at_most_one(self):
        cfg = SwitchConfig.square(2, b_in=1, b_out=1)
        trace = BernoulliTraffic(2, 2, load=1.0).generate(4, seed=0)
        pg = run_cioq(PGPolicy(beta=1.5), cfg, trace, record=True)
        opt = cioq_opt(trace, cfg, extract_schedule=True)
        with pytest.raises(ValueError, match="beta"):
            replay_pg_shadow(trace, cfg, pg, opt, beta=1.0)

    def test_unit_values_behave_like_gm_case(self):
        """On unit traffic the alignment factor never binds and the
        certificate reduces to counting."""
        beta = 2.0
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.2).generate(10, seed=1)
        cert = certificate(trace, cfg, beta)
        assert cert.theorem2_certified
        assert cert.modified_opt_benefit == pytest.approx(cert.opt_benefit)
