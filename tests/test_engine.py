"""Tests for the discrete-time simulation engine."""

import pytest

from repro.core.cgu import CGUPolicy
from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.scheduling.base import ArrivalDecision, CIOQPolicy
from repro.simulation.engine import (
    drain_bound,
    run_cioq,
    run_cioq_streaming,
    run_crossbar,
)
from repro.switch.cioq import ScheduleError, Transfer
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.trace import Trace
from repro.traffic.values import uniform_values


class TestDrainBound:
    def test_covers_total_capacity(self):
        c = SwitchConfig.square(3, b_in=2, b_out=4, b_cross=1)
        assert drain_bound(c) == 3 * 3 * (2 + 1) + 3 * 4 + 1


class TestRunCIOQ:
    def test_dimension_mismatch_raises(self, small_config):
        trace = BernoulliTraffic(2, 2, load=0.5).generate(5, seed=0)
        with pytest.raises(ValueError, match="trace is"):
            run_cioq(GMPolicy(), small_config, trace)

    def test_empty_trace(self, small_config):
        res = run_cioq(GMPolicy(), small_config, Trace([], 3, 3))
        assert res.benefit == 0.0
        assert res.n_arrived == 0

    def test_conservation_always(self, small_config, unit_trace):
        res = run_cioq(GMPolicy(), small_config, unit_trace)
        res.check_conservation()

    def test_switch_drains_after_arrivals(self, small_config, unit_trace):
        res = run_cioq(GMPolicy(), small_config, unit_trace)
        assert res.n_residual == 0

    def test_max_extra_slots_zero_leaves_residual(self, small_config):
        """Cutting the horizon right at the last arrival strands packets."""
        trace = BernoulliTraffic(3, 3, load=2.0).generate(10, seed=1)
        res = run_cioq(GMPolicy(), small_config, trace, max_extra_slots=0)
        assert res.n_residual > 0
        res.check_conservation()

    def test_record_collects_logs(self, small_config, unit_trace):
        res = run_cioq(GMPolicy(), small_config, unit_trace, record=True)
        assert len(res.sent_pids) == res.n_sent
        assert len(res.transmit_log) == res.n_sent
        assert len(res.schedule_log) >= res.n_sent  # every sent was transferred

    def test_no_record_by_default(self, small_config, unit_trace):
        res = run_cioq(GMPolicy(), small_config, unit_trace)
        assert res.schedule_log == []
        assert res.sent_pids == []

    def test_speedup_improves_contended_throughput(self):
        trace = BernoulliTraffic(4, 4, load=1.0).generate(40, seed=3)
        base = SwitchConfig.square(4, speedup=1, b_in=1, b_out=1)
        fast = SwitchConfig.square(4, speedup=3, b_in=1, b_out=1)
        r1 = run_cioq(GMPolicy(), base, trace)
        r3 = run_cioq(GMPolicy(), fast, trace)
        assert r3.n_sent >= r1.n_sent

    def test_benefit_equals_sum_of_sent_values(self, small_config):
        trace = BernoulliTraffic(
            3, 3, load=1.0, value_model=uniform_values(1, 9)
        ).generate(15, seed=4)
        res = run_cioq(PGPolicy(), small_config, trace, record=True)
        by_pid = {p.pid: p.value for p in trace.packets}
        assert res.benefit == pytest.approx(
            sum(by_pid[pid] for pid in res.sent_pids)
        )

    def test_per_output_counters(self, small_config, unit_trace):
        res = run_cioq(GMPolicy(), small_config, unit_trace)
        assert sum(res.sent_per_output.values()) == res.n_sent
        assert sum(res.value_per_output.values()) == pytest.approx(res.benefit)


class BadPolicy(CIOQPolicy):
    """Accepts into full queues (invalid) to test engine validation."""

    name = "bad"

    def on_arrival(self, switch, packet):
        return ArrivalDecision.accepted()

    def schedule(self, switch, slot, cycle):
        return []


class DoubleMatchPolicy(CIOQPolicy):
    """Violates the matching property to test engine validation."""

    name = "double"

    def on_arrival(self, switch, packet):
        if switch.voq[packet.src][packet.dst].is_full:
            return ArrivalDecision.reject()
        return ArrivalDecision.accepted()

    def schedule(self, switch, slot, cycle):
        transfers = []
        for j in range(switch.n_out):
            q = switch.voq[0][j]
            head = q.head()
            if head is not None:
                transfers.append(Transfer(0, j, head))
        return transfers if len(transfers) >= 2 else []


class TestEngineValidation:
    def test_overflow_acceptance_rejected(self, small_config):
        trace = BernoulliTraffic(3, 3, load=3.0).generate(10, seed=0)
        with pytest.raises(ScheduleError):
            run_cioq(BadPolicy(), small_config, trace)

    def test_double_input_match_rejected(self, small_config):
        trace = Trace(
            [Packet(0, 1.0, 0, 0, 0), Packet(1, 1.0, 0, 0, 1)], 3, 3
        )
        with pytest.raises(ScheduleError, match="input port"):
            run_cioq(DoubleMatchPolicy(), small_config, trace)


class TestRunCrossbar:
    def test_conservation(self, small_config, unit_trace):
        res = run_crossbar(CGUPolicy(), small_config, unit_trace)
        res.check_conservation()

    def test_record_stages(self, small_config, unit_trace):
        res = run_crossbar(CGUPolicy(), small_config, unit_trace, record=True)
        stages = {ev.stage for ev in res.schedule_log}
        assert stages <= {"in", "out"}
        assert "in" in stages and "out" in stages

    def test_dimension_mismatch(self, small_config):
        trace = BernoulliTraffic(2, 2, load=0.5).generate(5, seed=0)
        with pytest.raises(ValueError):
            run_crossbar(CGUPolicy(), small_config, trace)

    def test_crossbar_vs_cioq_same_trace(self, small_config, unit_trace):
        """Both engines accept the same trace type and conserve."""
        r1 = run_cioq(GMPolicy(), small_config, unit_trace)
        r2 = run_crossbar(CGUPolicy(), small_config, unit_trace)
        r1.check_conservation()
        r2.check_conservation()


class TestStreaming:
    def test_streaming_matches_batch_for_same_arrivals(self, small_config):
        trace = BernoulliTraffic(3, 3, load=1.0).generate(15, seed=8)
        by_slot = {}
        for p in trace.packets:
            by_slot.setdefault(p.arrival, []).append((p.src, p.dst, p.value))

        def source(slot, switch):
            return by_slot.get(slot, [])

        stream = run_cioq_streaming(
            GMPolicy(), small_config, source, n_slots=trace.n_slots
        )
        batch = run_cioq(GMPolicy(), small_config, trace)
        assert stream.benefit == batch.benefit
        assert stream.n_rejected == batch.n_rejected

    def test_streaming_conservation(self, small_config):
        def source(slot, switch):
            return [(slot % 3, (slot + 1) % 3, 1.0)]

        res = run_cioq_streaming(GMPolicy(), small_config, source, n_slots=12)
        res.check_conservation()
        assert res.n_arrived == 12
