"""Differential OPT test matrix: windowed / bounds vs the exact MILP.

Pins the certified OPT solvers (:mod:`repro.offline.windowed`,
:mod:`repro.offline.bounds`) to the exact time-expanded MILP across
every builtin scenario (downscaled so exact OPT stays cheap):

* windowed mode with ``window >= horizon`` delegates to the exact model
  and must reproduce its benefit **bit-for-bit** (no tolerance);
* every certified bracket — windowed with a proper window, and the
  near-free bounds mode — must sandwich the exact optimum;
* the drain lemma behind the per-window horizons
  (:func:`~repro.offline.windowed.window_drain_slots`) is validated
  differentially: truncating the global horizon to
  ``n_slots + window_drain_slots(config)`` must not change exact OPT;
* :func:`~repro.offline.opt.solve_opt` dispatch and
  :func:`~repro.offline.opt.select_opt_mode` auto-selection are pinned
  (mode validation, exact-for-small, deterministic selection).

Scenarios are downscaled to 6 arrival slots with small buffers so each
MILP solves in milliseconds; the *structure* (switch shape, traffic
model, value model) is the registered one.
"""

import pytest

from repro.offline import (
    OPT_MODES,
    bounds_opt,
    cioq_opt,
    crossbar_opt,
    select_opt_mode,
    solve_opt,
    windowed_opt,
)
from repro.offline.opt import AUTO_EXACT_BUDGET, _exact_size_proxy
from repro.offline.timegraph import default_horizon
from repro.offline.windowed import window_drain_slots
from repro.scenarios import all_scenarios
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.traffic.trace import Trace

#: Downscaled arrival horizon: small enough that exact OPT on every
#: builtin scenario solves in milliseconds, large enough that windows
#: of size 1-3 still stitch several segments.
SLOTS = 6

#: Seeds per scenario in the matrix (first two registered seeds).
SEEDS_PER_SCENARIO = 2


def _downscale(spec):
    """The registered scenario with tiny buffers and a short horizon.

    Ports and speedup are kept (traffic parameters like ``hot_port``
    validate against them); buffers shrink so the drain bound — and with
    it the MILP horizon — stays small.
    """
    switch = dict(spec.switch)
    switch.update(b_in=2, b_out=2, b_cross=1)
    return spec.with_overrides(slots=SLOTS, switch=switch)


def _cases():
    for spec in all_scenarios():
        for seed in spec.seeds[:SEEDS_PER_SCENARIO]:
            yield spec, seed


CASES = list(_cases())
CASE_IDS = [f"{spec.name}-s{seed}" for spec, seed in CASES]


def _instance(spec, seed):
    sub = _downscale(spec)
    config = sub.build_config()
    trace = sub.build_traffic().generate(sub.slots, seed=seed)
    exact_solver = cioq_opt if spec.model == "cioq" else crossbar_opt
    return trace, config, exact_solver


@pytest.mark.parametrize(("spec", "seed"), CASES, ids=CASE_IDS)
class TestDifferentialMatrix:
    def test_windowed_full_window_is_exact_bitwise(self, spec, seed):
        """window >= horizon delegates to the exact model verbatim."""
        trace, config, exact_solver = _instance(spec, seed)
        exact = exact_solver(trace, config)
        window = max(trace.n_slots, 1)
        w = windowed_opt(trace, config, window=window, model=spec.model)
        assert w.mode == "windowed"
        assert w.n_windows == 1
        # Bit-for-bit: ==, not approx.
        assert w.benefit == exact.benefit
        assert w.opt_lower == exact.benefit
        assert w.opt_upper == exact.benefit
        assert w.is_exact

    def test_windowed_bracket_sandwiches_exact(self, spec, seed):
        trace, config, exact_solver = _instance(spec, seed)
        exact = exact_solver(trace, config)
        for window in (1, 2, max(1, trace.n_slots // 2)):
            w = windowed_opt(trace, config, window=window, model=spec.model)
            assert w.opt_lower - 1e-9 <= exact.benefit <= w.opt_upper + 1e-9, (
                f"window={window}: bracket [{w.opt_lower}, {w.opt_upper}] "
                f"misses exact {exact.benefit}"
            )
            assert w.opt_lower <= w.opt_upper
            assert w.benefit == w.opt_upper

    def test_bounds_bracket_sandwiches_exact(self, spec, seed):
        trace, config, exact_solver = _instance(spec, seed)
        exact = exact_solver(trace, config)
        b = bounds_opt(trace, config, model=spec.model)
        assert b.mode == "bounds"
        assert b.opt_lower - 1e-9 <= exact.benefit <= b.opt_upper + 1e-9
        assert b.benefit == b.opt_upper

    def test_solve_opt_exact_mode_matches_direct_call(self, spec, seed):
        trace, config, exact_solver = _instance(spec, seed)
        exact = exact_solver(trace, config)
        via = solve_opt(trace, config, model=spec.model, mode="exact")
        assert via.benefit == exact.benefit
        assert via.mode == "exact"


class TestDrainLemma:
    """The per-window horizon pad is sufficient: cutting the global
    horizon down to ``n_slots + window_drain_slots(config)`` never
    changes exact OPT (the certified drain lemma, tested
    differentially against the much larger default drain bound)."""

    CONFIGS = [
        SwitchConfig.square(2, speedup=1, b_in=1, b_out=1, b_cross=1),
        SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1),
        SwitchConfig.square(3, speedup=2, b_in=2, b_out=1, b_cross=2),
    ]

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize(
        "config", CONFIGS, ids=lambda c: f"{c.n_in}x{c.n_out}s{c.speedup}"
    )
    def test_drain_horizon_preserves_opt(self, config, seed):
        from repro.traffic.bernoulli import BernoulliTraffic
        from repro.traffic.values import uniform_values

        trace = BernoulliTraffic(
            config.n_in, config.n_out, load=1.5,
            value_model=uniform_values(1, 9),
        ).generate(5, seed=seed)
        short = trace.n_slots + window_drain_slots(config)
        assert short <= default_horizon(trace, config)
        full = cioq_opt(trace, config)
        cut = cioq_opt(trace, config, horizon=short)
        assert cut.benefit == full.benefit

    def test_drain_slots_below_default_bound(self):
        for config in self.CONFIGS:
            trace = Trace([], config.n_in, config.n_out)
            assert (trace.n_slots + window_drain_slots(config)
                    <= default_horizon(trace, config))


class TestDispatchAndSelection:
    def test_rejects_unknown_mode(self, tiny_config):
        trace = Trace([], 2, 2)
        with pytest.raises(ValueError, match="unknown opt mode"):
            solve_opt(trace, tiny_config, mode="magic")

    def test_rejects_unknown_model(self, tiny_config):
        trace = Trace([], 2, 2)
        with pytest.raises(ValueError, match="unknown offline model"):
            solve_opt(trace, tiny_config, model="banyan")

    def test_windowed_requires_window(self, tiny_config):
        trace = Trace([], 2, 2)
        with pytest.raises(ValueError, match="window"):
            solve_opt(trace, tiny_config, mode="windowed")

    def test_auto_picks_exact_for_small(self, tiny_config):
        trace = Trace([], 2, 2)
        mode, window = select_opt_mode(trace, tiny_config)
        assert mode == "exact"
        assert window is None

    def test_auto_is_deterministic_and_valid(self):
        # One packet arriving at slot-1 sets the trace's slot horizon
        # without materializing a big packet list.
        for n, slots in [(2, 4), (4, 64), (8, 512), (16, 4096)]:
            config = SwitchConfig.square(n, speedup=2, b_in=4, b_out=4)
            trace = Trace([Packet(0, 1.0, slots - 1, 0, 0)], n, n)
            first = select_opt_mode(trace, config)
            second = select_opt_mode(trace, config)
            assert first == second
            assert first[0] in OPT_MODES and first[0] != "auto"
            if first[0] == "windowed":
                assert first[1] is not None and first[1] >= 1

    def test_proxy_threshold_respected(self):
        config = SwitchConfig.square(16, speedup=2, b_in=4, b_out=4)
        # All 256 pairs active with a late arrival => long horizon and
        # a full pair set => huge proxy.
        packets = [
            Packet(16 * i + j, 1.0, 9999, i, j)
            for i in range(16) for j in range(16)
        ]
        trace = Trace(packets, 16, 16)
        horizon = default_horizon(trace, config)
        assert _exact_size_proxy(trace, config, horizon) > AUTO_EXACT_BUDGET
        mode, _ = select_opt_mode(trace, config)
        assert mode in ("windowed", "bounds")
