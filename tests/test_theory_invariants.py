"""Tests for the faithfulness checkers: they pass on correct policies
and catch deliberately broken ones."""

import pytest

from repro.core.cgu import CGUPolicy
from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.scheduling.base import ArrivalDecision
from repro.simulation.engine import run_cioq, run_crossbar
from repro.switch.cioq import Transfer
from repro.switch.config import SwitchConfig
from repro.theory.invariants import (
    CheckedCGUPolicy,
    CheckedCIOQPolicy,
    FaithfulnessError,
    check_gm_cycle,
    check_matching_property,
    check_pg_cycle,
)
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import uniform_values


class TestMatchingProperty:
    def test_accepts_valid(self):
        from repro.switch.packet import Packet

        t = [Transfer(0, 0, Packet(0, 1.0, 0, 0, 0)),
             Transfer(1, 1, Packet(1, 1.0, 0, 1, 1))]
        check_matching_property(t)

    def test_rejects_duplicate_ports(self):
        from repro.switch.packet import Packet

        t = [Transfer(0, 0, Packet(0, 1.0, 0, 0, 0)),
             Transfer(0, 1, Packet(1, 1.0, 0, 0, 1))]
        with pytest.raises(FaithfulnessError):
            check_matching_property(t)


class TestGMChecks:
    def test_clean_gm_passes(self):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.3).generate(25, seed=1)
        run_cioq(CheckedCIOQPolicy(GMPolicy(), "gm"), config, trace)

    def test_non_maximal_matching_caught(self):
        class LazyGM(GMPolicy):
            def schedule(self, switch, slot, cycle):
                return []  # never schedules: not maximal when edges exist

        config = SwitchConfig.square(2, b_in=2, b_out=2)
        trace = BernoulliTraffic(2, 2, load=1.0).generate(5, seed=0)
        with pytest.raises(FaithfulnessError, match="maximal"):
            run_cioq(CheckedCIOQPolicy(LazyGM(), "gm"), config, trace)

    def test_gm_wrongful_rejection_caught(self):
        class StingyGM(GMPolicy):
            def on_arrival(self, switch, packet):
                return ArrivalDecision.reject()

        config = SwitchConfig.square(2, b_in=2, b_out=2)
        trace = BernoulliTraffic(2, 2, load=1.0).generate(5, seed=0)
        with pytest.raises(FaithfulnessError, match="rejected"):
            run_cioq(CheckedCIOQPolicy(StingyGM(), "gm"), config, trace)

    def test_gm_preemption_caught(self):
        class PreemptingGM(GMPolicy):
            def on_arrival(self, switch, packet):
                q = switch.voq[packet.src][packet.dst]
                if q.is_full:
                    return ArrivalDecision.accepted(preempt=q.tail())
                return ArrivalDecision.accepted()

        config = SwitchConfig.square(2, b_in=1, b_out=1)
        trace = BernoulliTraffic(2, 2, load=2.5).generate(8, seed=0)
        with pytest.raises(FaithfulnessError, match="full VOQ"):
            run_cioq(CheckedCIOQPolicy(PreemptingGM(), "gm"), config, trace)


class TestPGChecks:
    def test_clean_pg_passes(self):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
        trace = BernoulliTraffic(
            3, 3, load=1.4, value_model=uniform_values(1, 50)
        ).generate(25, seed=2)
        beta = 2.0
        run_cioq(
            CheckedCIOQPolicy(PGPolicy(beta=beta), "pg", beta=beta),
            config,
            trace,
        )

    def test_wrong_packet_choice_caught(self):
        class TailPG(PGPolicy):
            """Transfers the least valuable packet instead of g_ij."""

            def schedule(self, switch, slot, cycle):
                transfers = super().schedule(switch, slot, cycle)
                out = []
                for tr in transfers:
                    tail = switch.voq[tr.src][tr.dst].tail()
                    out.append(Transfer(tr.src, tr.dst, tail, tr.preempt))
                return out

        config = SwitchConfig.square(2, b_in=2, b_out=2)
        trace = BernoulliTraffic(
            2, 2, load=2.0, value_model=uniform_values(1, 50)
        ).generate(8, seed=1)
        with pytest.raises(FaithfulnessError, match="g_ij"):
            run_cioq(CheckedCIOQPolicy(TailPG(beta=2.0), "pg", beta=2.0),
                     config, trace)

    def test_lighter_blocking_edge_caught(self):
        class AscendingPG(PGPolicy):
            """Scans edges in ascending weight (violates the greedy
            descending-weight rule)."""

            def schedule(self, switch, slot, cycle):
                from repro.scheduling.matching import (
                    greedy_maximal_matching_weighted,
                )

                edges = []
                heads = {}
                for i in range(switch.n_in):
                    for j in range(switch.n_out):
                        g = self._edge_eligible(switch, i, j)
                        if g is not None:
                            # Negate weights: sorting descending on the
                            # negated weight = ascending on the true one.
                            edges.append((i, j, -g.value))
                            heads[(i, j)] = g
                matching = greedy_maximal_matching_weighted(edges)
                out = []
                for i, j, _w in matching:
                    g = heads[(i, j)]
                    out_q = switch.out[j]
                    victim = out_q.tail() if out_q.is_full else None
                    out.append(Transfer(i, j, g, preempt=victim))
                return out

        config = SwitchConfig.square(3, b_in=2, b_out=1)
        trace = BernoulliTraffic(
            3, 3, load=2.0, value_model=uniform_values(1, 50)
        ).generate(10, seed=5)
        with pytest.raises(FaithfulnessError):
            run_cioq(
                CheckedCIOQPolicy(AscendingPG(beta=2.0), "pg", beta=2.0),
                config,
                trace,
            )


class TestCGUChecks:
    def test_clean_cgu_passes(self):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(3, 3, load=1.3).generate(20, seed=3)
        run_crossbar(CheckedCGUPolicy(CGUPolicy()), config, trace)

    def test_idle_input_caught(self):
        class IdleCGU(CGUPolicy):
            def input_subphase(self, switch, slot, cycle):
                return []

        config = SwitchConfig.square(2, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(2, 2, load=1.0).generate(5, seed=0)
        with pytest.raises(FaithfulnessError, match="idle"):
            run_crossbar(CheckedCGUPolicy(IdleCGU()), config, trace)

    def test_idle_output_caught(self):
        class IdleOutCGU(CGUPolicy):
            def output_subphase(self, switch, slot, cycle):
                return []

        config = SwitchConfig.square(2, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(2, 2, load=1.0).generate(5, seed=0)
        with pytest.raises(FaithfulnessError, match="idle"):
            run_crossbar(CheckedCGUPolicy(IdleOutCGU()), config, trace)
