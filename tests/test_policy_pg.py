"""Unit tests for the Preemptive Greedy (PG) policy — Section 2.2."""

import pytest

from repro.core.pg import BETA_STAR, PGPolicy
from repro.simulation.engine import run_cioq
from repro.switch.cioq import CIOQSwitch
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.theory.invariants import CheckedCIOQPolicy
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import uniform_values


def pk(pid, src, dst, value):
    return Packet(pid, value, 0, src, dst)


@pytest.fixture
def switch():
    return CIOQSwitch(SwitchConfig.square(2, b_in=2, b_out=1))


class TestConstruction:
    def test_default_beta_is_optimum(self):
        assert PGPolicy().beta == pytest.approx(BETA_STAR)

    def test_rejects_beta_below_one(self):
        with pytest.raises(ValueError):
            PGPolicy(beta=0.5)

    def test_name_includes_beta(self):
        assert "2.414" in PGPolicy().name


class TestArrival:
    def test_accepts_with_space(self, switch):
        d = PGPolicy().on_arrival(switch, pk(0, 0, 0, 1.0))
        assert d.accept and d.preempt is None

    def test_preempts_cheapest_when_full_and_better(self, switch):
        switch.enqueue_arrival(pk(0, 0, 0, 1.0))
        switch.enqueue_arrival(pk(1, 0, 0, 5.0))
        d = PGPolicy().on_arrival(switch, pk(2, 0, 0, 3.0))
        assert d.accept
        assert d.preempt.pid == 0  # l_ij, the least valuable

    def test_rejects_when_full_and_not_better(self, switch):
        switch.enqueue_arrival(pk(0, 0, 0, 3.0))
        switch.enqueue_arrival(pk(1, 0, 0, 5.0))
        d = PGPolicy().on_arrival(switch, pk(2, 0, 0, 3.0))
        assert not d.accept  # equal value does not preempt

    def test_value_rule_independent_of_beta(self, switch):
        """The arrival rule has no beta in it (only scheduling does)."""
        switch.enqueue_arrival(pk(0, 0, 0, 1.0))
        switch.enqueue_arrival(pk(1, 0, 0, 1.0))
        d = PGPolicy(beta=100.0).on_arrival(switch, pk(2, 0, 0, 1.01))
        assert d.accept


class TestScheduling:
    def test_transfers_most_valuable_packet(self, switch):
        switch.enqueue_arrival(pk(0, 0, 0, 1.0))
        switch.enqueue_arrival(pk(1, 0, 0, 7.0))
        transfers = PGPolicy().schedule(switch, 0, 0)
        assert len(transfers) == 1
        assert transfers[0].packet.pid == 1

    def test_greedy_weight_order_across_inputs(self, switch):
        # Both inputs target output 0 (capacity 1); the heavier VOQ head
        # must win the only slot.
        switch.enqueue_arrival(pk(0, 0, 0, 2.0))
        switch.enqueue_arrival(pk(1, 1, 0, 9.0))
        transfers = PGPolicy().schedule(switch, 0, 0)
        assert len(transfers) == 1
        assert transfers[0].src == 1

    def test_full_output_requires_beta_improvement(self, switch):
        pg = PGPolicy(beta=2.0)
        switch.enqueue_arrival(pk(0, 0, 0, 3.0))
        switch.apply_transfers(pg.schedule(switch, 0, 0))
        assert switch.out_lengths()[0] == 1  # b_out = 1, now full
        # Value 5 <= beta * 3: ineligible.
        switch.enqueue_arrival(pk(1, 0, 0, 5.0))
        assert pg.schedule(switch, 0, 1) == []
        # Value 7 > beta * 3: eligible; must declare preemption of l_j.
        switch.enqueue_arrival(pk(2, 1, 0, 7.0))
        transfers = pg.schedule(switch, 0, 2)
        assert len(transfers) == 1
        assert transfers[0].packet.pid == 2
        assert transfers[0].preempt is not None
        assert transfers[0].preempt.value == 3.0

    def test_beta_boundary_is_strict(self, switch):
        pg = PGPolicy(beta=2.0)
        switch.enqueue_arrival(pk(0, 0, 0, 3.0))
        switch.apply_transfers(pg.schedule(switch, 0, 0))
        # Exactly beta * v(l_j) = 6.0 is NOT eligible (strict inequality).
        switch.enqueue_arrival(pk(1, 0, 0, 6.0))
        assert pg.schedule(switch, 0, 1) == []

    def test_transmission_sends_most_valuable(self, switch):
        pg = PGPolicy()
        switch.enqueue_arrival(pk(0, 0, 0, 2.0))
        switch.apply_transfers(pg.schedule(switch, 0, 0))
        sel = pg.select_transmissions(switch)
        assert sel[0].value == 2.0


class TestEndToEnd:
    @pytest.mark.parametrize("beta", [1.2, BETA_STAR, 5.0])
    def test_faithfulness_on_random_traffic(self, beta):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
        trace = BernoulliTraffic(
            3, 3, load=1.4, value_model=uniform_values(1, 100)
        ).generate(25, seed=9)
        res = run_cioq(
            CheckedCIOQPolicy(PGPolicy(beta=beta), "pg", beta=beta),
            config,
            trace,
            check_invariants=True,
        )
        res.check_conservation()

    def test_preemption_occurs_under_pressure(self):
        config = SwitchConfig.square(2, speedup=1, b_in=1, b_out=1)
        trace = BernoulliTraffic(
            2, 2, load=2.0, value_model=uniform_values(1, 100)
        ).generate(30, seed=3)
        res = run_cioq(PGPolicy(beta=1.01), config, trace)
        assert res.n_preempted > 0

    def test_benefit_counts_values_not_packets(self):
        config = SwitchConfig.square(2, b_in=2, b_out=2)
        from repro.traffic.trace import Trace

        trace = Trace(
            [Packet(0, 10.0, 0, 0, 0), Packet(1, 1.0, 0, 1, 1)], 2, 2
        )
        res = run_cioq(PGPolicy(), config, trace)
        assert res.benefit == 11.0
        assert res.n_sent == 2
