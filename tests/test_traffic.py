"""Tests for traffic generation: traces, value models, arrival models."""

import numpy as np
import pytest

from repro.switch.packet import Packet
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.bursty import BurstyTraffic
from repro.traffic.hotspot import DiagonalTraffic, HotspotTraffic
from repro.traffic.trace import Trace
from repro.traffic.values import (
    exponential_values,
    geometric_class_values,
    pareto_values,
    two_value,
    uniform_values,
    unit_values,
)


class TestTrace:
    def test_basic_stats(self):
        packets = [
            Packet(0, 1.0, 0, 0, 0),
            Packet(1, 2.0, 0, 1, 1),
            Packet(2, 3.0, 2, 0, 1),
        ]
        t = Trace(packets, 2, 2, name="t")
        assert len(t) == 3
        assert t.n_slots == 3
        assert t.total_value == 6.0
        assert not t.is_unit_valued
        assert t.max_value() == 3.0 and t.min_value() == 1.0

    def test_arrivals_by_slot(self):
        packets = [Packet(0, 1.0, 1, 0, 0), Packet(1, 1.0, 1, 1, 1)]
        t = Trace(packets, 2, 2)
        assert list(t.arrivals(0)) == []
        assert len(t.arrivals(1)) == 2
        assert list(t.arrivals(99)) == []

    def test_load_matrix_and_offered_load(self):
        packets = [Packet(i, 1.0, 0, 0, 1) for i in range(4)]
        t = Trace(packets, 2, 2)
        assert t.load_matrix() == [[0, 4], [0, 0]]
        assert t.offered_load() == pytest.approx(4 / (1 * 2))

    def test_empty_trace(self):
        t = Trace([], 2, 2)
        assert len(t) == 0
        assert t.n_slots == 0
        assert t.offered_load() == 0.0

    def test_json_roundtrip(self, tmp_path):
        packets = [Packet(0, 2.5, 1, 0, 1), Packet(1, 1.0, 3, 1, 0)]
        t = Trace(packets, 2, 2, name="roundtrip")
        path = str(tmp_path / "trace.json")
        t.save(path)
        t2 = Trace.load(path)
        assert t2.name == "roundtrip"
        assert len(t2) == 2
        assert t2.packets[0].value == 2.5
        assert t2.packets[1].arrival == 3

    def test_describe(self):
        t = Trace([Packet(0, 1.0, 0, 0, 0)], 2, 2)
        d = t.describe()
        assert d["n_packets"] == 1
        assert d["unit_valued"] is True


class TestValueModels:
    def test_unit(self, rng):
        vm = unit_values()
        assert all(vm(rng) == 1.0 for _ in range(5))

    def test_uniform_range(self, rng):
        vm = uniform_values(2.0, 5.0)
        vals = [vm(rng) for _ in range(200)]
        assert all(2.0 <= v <= 5.0 for v in vals)

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_values(5.0, 2.0)
        with pytest.raises(ValueError):
            uniform_values(0.0, 2.0)

    def test_two_value_support(self, rng):
        vm = two_value(alpha=7.0, p_high=0.5)
        vals = {vm(rng) for _ in range(300)}
        assert vals == {1.0, 7.0}

    def test_two_value_frequency(self, rng):
        vm = two_value(alpha=7.0, p_high=0.25)
        vals = [vm(rng) for _ in range(4000)]
        frac = sum(1 for v in vals if v == 7.0) / len(vals)
        assert 0.18 < frac < 0.32

    def test_two_value_validation(self):
        with pytest.raises(ValueError):
            two_value(alpha=0.5)
        with pytest.raises(ValueError):
            two_value(p_high=1.5)

    def test_exponential_positive(self, rng):
        vm = exponential_values(mean=5.0)
        assert all(vm(rng) >= 1.0 for _ in range(100))

    def test_pareto_heavy_tail(self, rng):
        vm = pareto_values(shape=1.5)
        vals = [vm(rng) for _ in range(2000)]
        assert max(vals) > 10 * np.median(vals)

    def test_geometric_classes(self, rng):
        vm = geometric_class_values(n_classes=3, base=4.0)
        vals = {vm(rng) for _ in range(300)}
        assert vals == {1.0, 4.0, 16.0}


class TestBernoulli:
    def test_deterministic_given_seed(self):
        m = BernoulliTraffic(3, 3, load=0.7)
        t1 = m.generate(20, seed=11)
        t2 = m.generate(20, seed=11)
        assert [p.pid for p in t1.packets] == [p.pid for p in t2.packets]
        assert [(p.src, p.dst) for p in t1.packets] == [
            (p.src, p.dst) for p in t2.packets
        ]

    def test_seed_changes_output(self):
        m = BernoulliTraffic(3, 3, load=0.7)
        t1 = m.generate(20, seed=1)
        t2 = m.generate(20, seed=2)
        assert [(p.src, p.dst, p.arrival) for p in t1.packets] != [
            (p.src, p.dst, p.arrival) for p in t2.packets
        ]

    def test_load_calibration(self):
        m = BernoulliTraffic(4, 4, load=0.5)
        t = m.generate(500, seed=3)
        per_input_per_slot = len(t) / (500 * 4)
        assert 0.42 < per_input_per_slot < 0.58

    def test_overload_supported(self):
        m = BernoulliTraffic(2, 2, load=2.5)
        t = m.generate(100, seed=3)
        assert len(t) / (100 * 2) > 2.0

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            BernoulliTraffic(2, 2, load=-1.0)


class TestBursty:
    def test_mean_load_tracks_duty_cycle(self):
        m = BurstyTraffic(2, 2, p_on=0.2, p_off=0.2, burst_load=2.0)
        t = m.generate(1000, seed=5)
        rate = len(t) / (1000 * 2)
        # Stationary ON probability is 0.5 -> expected rate ~1.0.
        assert 0.8 < rate < 1.2

    def test_burstiness_exceeds_bernoulli(self):
        """Per-slot arrival variance under ON/OFF exceeds the Bernoulli
        model at the same mean rate."""
        bursty = BurstyTraffic(1, 1, p_on=0.1, p_off=0.1, burst_load=2.0)
        t = bursty.generate(2000, seed=9)
        counts = np.zeros(2000)
        for p in t.packets:
            counts[p.arrival] += 1
        mean = counts.mean()
        assert counts.var() > mean  # over-dispersed (Poisson has var=mean)

    def test_dst_weights_validation(self):
        with pytest.raises(ValueError):
            BurstyTraffic(2, 2, dst_weights=[1.0])
        with pytest.raises(ValueError):
            BurstyTraffic(2, 2, dst_weights=[-1.0, 2.0])

    def test_hotspot_weighting(self):
        m = BurstyTraffic(
            2, 4, p_on=0.5, p_off=0.1, burst_load=2.0,
            dst_weights=[0.7, 0.1, 0.1, 0.1],
        )
        t = m.generate(400, seed=1)
        col = [0] * 4
        for p in t.packets:
            col[p.dst] += 1
        assert col[0] > 3 * max(col[1:])


class TestHotspotAndDiagonal:
    def test_hotspot_concentration(self):
        m = HotspotTraffic(3, 3, load=1.0, hot_fraction=0.8, hot_port=2)
        t = m.generate(300, seed=2)
        counts = [0, 0, 0]
        for p in t.packets:
            counts[p.dst] += 1
        assert counts[2] > 2 * (counts[0] + counts[1])

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            HotspotTraffic(2, 2, hot_fraction=1.5)
        with pytest.raises(ValueError):
            HotspotTraffic(2, 2, hot_port=5)

    def test_diagonal_structure(self):
        m = DiagonalTraffic(4, 4, load=1.0, diag_fraction=1.0)
        t = m.generate(50, seed=1)
        assert all(p.dst == p.src for p in t.packets)

    def test_diagonal_off_component(self):
        m = DiagonalTraffic(4, 4, load=1.0, diag_fraction=0.0)
        t = m.generate(50, seed=1)
        assert all(p.dst == (p.src + 1) % 4 for p in t.packets)


class TestPidOrdering:
    @pytest.mark.parametrize(
        "model",
        [
            BernoulliTraffic(3, 3, load=1.0),
            BurstyTraffic(3, 3),
            HotspotTraffic(3, 3),
            DiagonalTraffic(3, 3),
        ],
    )
    def test_pids_follow_arrival_order(self, model):
        t = model.generate(30, seed=4)
        pids = [p.pid for p in t.packets]
        arrivals = [p.arrival for p in t.packets]
        assert pids == sorted(pids)
        assert arrivals == sorted(arrivals)
