"""Verbatim snapshot of the seed (pre-kernel) simulation engine.

Kept as the reference implementation for the kernel-equivalence tests in
``test_kernel_equivalence.py``: the refactored fast kernel in
:mod:`repro.simulation.kernel` must produce identical
:class:`~repro.simulation.results.SimulationResult` contents on every
run.  Do not edit the loop bodies below; they define the semantics.

Implements the slot structure of Section 1.3 exactly: each time slot
consists of an **arrival phase** (arbitrarily many packets, processed in
arrival-event order), a **scheduling phase** of ``speedup`` cycles (each
an admissible schedule: a matching for CIOQ, per-port subphase transfers
for the buffered crossbar), and a **transmission phase** (at most one
packet per output port).

After the last arrival slot the engine keeps running ("drain slots", no
arrivals) until the switch is empty or a safety horizon is reached, so
that the benefit counts every packet the policy can eventually deliver —
matching the competitive framework, where sequences are finite and time
continues afterwards.  The safety horizon ``n_slots + total buffer
capacity`` always suffices: every non-empty switch transmits at least
one packet per slot once no arrivals occur (all paper policies and
baselines are work-conserving at output ports, and buffered packets keep
flowing forward because output queues drain).

The engine validates every policy decision against the switch's
feasibility rules, counts all losses, and asserts conservation at the
end of each run.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.scheduling.base import CIOQPolicy, CrossbarPolicy
from repro.switch.cioq import CIOQSwitch, ScheduleError
from repro.switch.config import SwitchConfig
from repro.switch.crossbar import CrossbarSwitch
from repro.switch.packet import Packet
from repro.traffic.trace import Trace
from repro.simulation.results import SimulationResult, TransferEvent

ArrivalSpec = Tuple[int, int, float]


def drain_bound(config: SwitchConfig) -> int:
    """Slots that always suffice to drain a full switch with no arrivals."""
    total_capacity = (
        config.n_in * config.n_out * (config.b_in + config.b_cross)
        + config.n_out * config.b_out
    )
    return total_capacity + 1


def _apply_arrival(
    switch, policy, packet: Packet, result: SimulationResult
) -> None:
    """Process one arrival event: ask the policy, apply and account."""
    result.n_arrived += 1
    result.value_arrived += packet.value
    decision = policy.on_arrival(switch, packet)
    if not decision.accept:
        result.n_rejected += 1
        result.value_rejected += packet.value
        return
    q = switch.voq[packet.src][packet.dst]
    if decision.preempt is not None:
        if decision.preempt not in q:
            raise ScheduleError(
                f"arrival preemption victim {decision.preempt.pid} not in VOQ "
                f"({packet.src},{packet.dst})"
            )
        q.remove(decision.preempt)
        result.n_preempted_voq += 1
        result.value_preempted_voq += decision.preempt.value
    if q.is_full:
        raise ScheduleError(
            f"policy accepted packet {packet.pid} into full VOQ "
            f"({packet.src},{packet.dst}) without naming a preemption victim"
        )
    q.push(packet)
    result.n_accepted += 1
    result.value_accepted += packet.value


def _finalize(switch, result: SimulationResult) -> SimulationResult:
    residual = switch.buffered_packets()
    result.n_residual = len(residual)
    result.value_residual = sum(p.value for p in residual)
    result.check_conservation()
    return result


# ---------------------------------------------------------------------------
# CIOQ runs
# ---------------------------------------------------------------------------

def run_cioq(
    policy: CIOQPolicy,
    config: SwitchConfig,
    trace: Trace,
    record: bool = False,
    max_extra_slots: Optional[int] = None,
    check_invariants: bool = False,
    trace_occupancy: bool = False,
) -> SimulationResult:
    """Simulate ``policy`` on a CIOQ switch over ``trace``.

    Parameters
    ----------
    record:
        Keep the full schedule/transmission logs (needed by the
        theory-shadow replay and for delay statistics; off by default
        to save memory).
    max_extra_slots:
        Cap on drain slots after the last arrival (default:
        :func:`drain_bound`).
    check_invariants:
        Assert queue-structure invariants after every phase (slow;
        used by tests).
    trace_occupancy:
        Record end-of-slot buffer occupancy totals into
        ``result.occupancy``.
    """
    if trace.n_in != config.n_in or trace.n_out != config.n_out:
        raise ValueError(
            f"trace is {trace.n_in}x{trace.n_out} but switch is "
            f"{config.n_in}x{config.n_out}"
        )
    switch = CIOQSwitch(config)
    policy.reset(switch)
    extra = drain_bound(config) if max_extra_slots is None else max_extra_slots
    horizon = trace.n_slots + extra
    result = SimulationResult(
        policy_name=policy.name,
        config=config,
        n_arrival_slots=trace.n_slots,
        horizon=horizon,
    )

    for t in range(horizon):
        # Arrival phase.
        for p in trace.arrivals(t):
            _apply_arrival(switch, policy, p, result)
        if check_invariants:
            switch.check_invariants()

        # Scheduling phase: `speedup` cycles, each an admissible matching.
        for s in range(config.speedup):
            transfers = policy.schedule(switch, t, s)
            for tr in transfers:
                if tr.preempt is not None:
                    result.n_preempted_out += 1
                    result.value_preempted_out += tr.preempt.value
                if record:
                    result.schedule_log.append(
                        TransferEvent(
                            slot=t,
                            cycle=s,
                            src=tr.src,
                            dst=tr.dst,
                            pid=tr.packet.pid,
                            value=tr.packet.value,
                            stage="cioq",
                            preempted_pid=(
                                tr.preempt.pid if tr.preempt is not None else None
                            ),
                        )
                    )
            switch.apply_transfers(transfers)
            if check_invariants:
                switch.check_invariants()

        # Transmission phase (validation happens inside switch.transmit).
        selections = policy.select_transmissions(switch)
        sent = switch.transmit(selections)
        for p in sent:
            j = p.dst
            result.record_sent(t, j, p, record)
        if check_invariants:
            switch.check_invariants()
        if trace_occupancy:
            voq_total = sum(len(q) for row in switch.voq for q in row)
            out_total = sum(len(q) for q in switch.out)
            result.occupancy.append((t, voq_total, 0, out_total))

        if t >= trace.n_slots and switch.is_drained():
            break

    return _finalize(switch, result)


def run_cioq_streaming(
    policy: CIOQPolicy,
    config: SwitchConfig,
    source: Callable[[int, CIOQSwitch], Sequence[ArrivalSpec]],
    n_slots: int,
    record: bool = False,
) -> SimulationResult:
    """Like :func:`run_cioq` but with arrivals produced online by
    ``source(slot, switch)`` — used by adaptive adversaries that inspect
    the online state before choosing the next arrivals.

    ``source`` is consulted for the first ``n_slots`` slots (before the
    arrival phase of each); afterwards the switch drains.
    """
    switch = CIOQSwitch(config)
    policy.reset(switch)
    horizon = n_slots + drain_bound(config)
    result = SimulationResult(
        policy_name=policy.name,
        config=config,
        n_arrival_slots=n_slots,
        horizon=horizon,
    )
    pid = 0
    for t in range(horizon):
        if t < n_slots:
            for src, dst, value in source(t, switch):
                packet = Packet(pid, value, t, src, dst)
                pid += 1
                _apply_arrival(switch, policy, packet, result)

        for s in range(config.speedup):
            transfers = policy.schedule(switch, t, s)
            for tr in transfers:
                if tr.preempt is not None:
                    result.n_preempted_out += 1
                    result.value_preempted_out += tr.preempt.value
            switch.apply_transfers(transfers)

        sent = switch.transmit(policy.select_transmissions(switch))
        for p in sent:
            result.record_sent(t, p.dst, p, record)

        if t >= n_slots and switch.is_drained():
            break

    return _finalize(switch, result)


# ---------------------------------------------------------------------------
# Buffered crossbar runs
# ---------------------------------------------------------------------------

def run_crossbar(
    policy: CrossbarPolicy,
    config: SwitchConfig,
    trace: Trace,
    record: bool = False,
    max_extra_slots: Optional[int] = None,
    check_invariants: bool = False,
    trace_occupancy: bool = False,
) -> SimulationResult:
    """Simulate ``policy`` on a buffered crossbar switch over ``trace``.

    Each scheduling cycle runs the input subphase (at most one VOQ ->
    crosspoint transfer per input port) then the output subphase (at
    most one crosspoint -> output transfer per output port), per
    Section 1.3 of the paper.
    """
    if trace.n_in != config.n_in or trace.n_out != config.n_out:
        raise ValueError(
            f"trace is {trace.n_in}x{trace.n_out} but switch is "
            f"{config.n_in}x{config.n_out}"
        )
    switch = CrossbarSwitch(config)
    policy.reset(switch)
    extra = drain_bound(config) if max_extra_slots is None else max_extra_slots
    horizon = trace.n_slots + extra
    result = SimulationResult(
        policy_name=policy.name,
        config=config,
        n_arrival_slots=trace.n_slots,
        horizon=horizon,
    )

    for t in range(horizon):
        for p in trace.arrivals(t):
            _apply_arrival(switch, policy, p, result)
        if check_invariants:
            switch.check_invariants()

        for s in range(config.speedup):
            in_transfers = policy.input_subphase(switch, t, s)
            for tr in in_transfers:
                if tr.preempt is not None:
                    result.n_preempted_cross += 1
                    result.value_preempted_cross += tr.preempt.value
                if record:
                    result.schedule_log.append(
                        TransferEvent(
                            slot=t,
                            cycle=s,
                            src=tr.src,
                            dst=tr.dst,
                            pid=tr.packet.pid,
                            value=tr.packet.value,
                            stage="in",
                            preempted_pid=(
                                tr.preempt.pid if tr.preempt is not None else None
                            ),
                        )
                    )
            switch.apply_input_subphase(in_transfers)

            out_transfers = policy.output_subphase(switch, t, s)
            for tr in out_transfers:
                if tr.preempt is not None:
                    result.n_preempted_out += 1
                    result.value_preempted_out += tr.preempt.value
                if record:
                    result.schedule_log.append(
                        TransferEvent(
                            slot=t,
                            cycle=s,
                            src=tr.src,
                            dst=tr.dst,
                            pid=tr.packet.pid,
                            value=tr.packet.value,
                            stage="out",
                            preempted_pid=(
                                tr.preempt.pid if tr.preempt is not None else None
                            ),
                        )
                    )
            switch.apply_output_subphase(out_transfers)
            if check_invariants:
                switch.check_invariants()

        sent = switch.transmit(policy.select_transmissions(switch))
        for p in sent:
            result.record_sent(t, p.dst, p, record)
        if check_invariants:
            switch.check_invariants()
        if trace_occupancy:
            voq_total = sum(len(q) for row in switch.voq for q in row)
            cross_total = sum(len(q) for row in switch.cross for q in row)
            out_total = sum(len(q) for q in switch.out)
            result.occupancy.append((t, voq_total, cross_total, out_total))

        if t >= trace.n_slots and switch.is_drained():
            break

    return _finalize(switch, result)
