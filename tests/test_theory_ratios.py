"""Tests for the paper's analytical constants (Theorems 2 and 4)."""

import math

import pytest

from repro.core.params import (
    cpg_optimal_params,
    cpg_optimal_ratio,
    cpg_ratio,
    kesselman_cpg_params,
    pg_optimal_beta,
    pg_optimal_ratio,
    pg_ratio,
)
from repro.theory.ratios import (
    cpg_alpha_given_beta,
    verify_cpg_beta_cubic,
    verify_cpg_optimum,
    verify_paper_constants,
    verify_pg_optimum,
)


class TestPGConstants:
    def test_beta_star_value(self):
        assert pg_optimal_beta() == pytest.approx(1 + math.sqrt(2))

    def test_ratio_star_value(self):
        assert pg_optimal_ratio() == pytest.approx(3 + 2 * math.sqrt(2))
        assert pg_optimal_ratio() == pytest.approx(5.8284, abs=1e-4)

    def test_ratio_formula_at_optimum(self):
        assert pg_ratio(pg_optimal_beta()) == pytest.approx(pg_optimal_ratio())

    def test_ratio_diverges_at_one(self):
        assert pg_ratio(1.0) == math.inf
        assert pg_ratio(1.0001) > 1000

    def test_ratio_grows_for_large_beta(self):
        assert pg_ratio(100) > pg_ratio(10) > pg_optimal_ratio()

    def test_numeric_optimum_matches_analytic(self):
        check = verify_pg_optimum()
        assert check.consistent
        assert check.params_error < 1e-5


class TestCPGConstants:
    def test_radicals_produce_expected_values(self):
        beta, alpha, ratio = cpg_optimal_params()
        assert beta == pytest.approx(1.8393, abs=1e-4)
        assert alpha == pytest.approx(2.8393, abs=1e-4)
        assert ratio == pytest.approx(14.83, abs=0.005)

    def test_ratio_formula_at_optimum(self):
        beta, alpha, ratio = cpg_optimal_params()
        assert cpg_ratio(beta, alpha) == pytest.approx(ratio, abs=1e-9)

    def test_alpha_is_two_over_beta_minus_one_squared(self):
        beta, alpha, _ = cpg_optimal_params()
        assert alpha == pytest.approx(2.0 / (beta - 1.0) ** 2)

    def test_inner_alpha_formula(self):
        beta, alpha, _ = cpg_optimal_params()
        assert cpg_alpha_given_beta(beta) == pytest.approx(alpha)

    def test_ratio_worse_off_optimum(self):
        beta, alpha, ratio = cpg_optimal_params()
        assert cpg_ratio(beta * 1.3, alpha) > ratio
        assert cpg_ratio(beta, alpha * 1.5) > ratio
        assert cpg_ratio(beta * 0.8, alpha * 0.8) > ratio

    def test_boundary_divergence(self):
        assert cpg_ratio(1.0, 2.0) == math.inf
        assert cpg_ratio(2.0, 1.0) == math.inf

    def test_numeric_optimum_matches_analytic(self):
        check = verify_cpg_optimum()
        assert check.consistent

    def test_stationarity_residual_small(self):
        assert verify_cpg_beta_cubic() < 1e-5

    def test_improves_on_previous_ratio(self):
        assert cpg_optimal_ratio() < 16.24


class TestSingleThresholdAblation:
    def test_kesselman_choice_is_equal_thresholds(self):
        b, a = kesselman_cpg_params()
        assert b == pytest.approx(a)

    def test_decoupled_thresholds_beat_coupled(self):
        """The paper's beta != alpha strictly improves on beta == alpha
        (the prior algorithm's parameterization)."""
        b, a = kesselman_cpg_params()
        coupled = cpg_ratio(b, a)
        assert cpg_optimal_ratio() < coupled
        # The coupled optimum is still finite and sane.
        assert 14.0 < cpg_optimal_ratio() < coupled < 17.0


class TestSummary:
    def test_verify_paper_constants_report(self):
        report = verify_paper_constants()
        assert report["pg_consistent"]
        assert report["cpg_consistent"]
        assert report["cpg_alpha_formula_matches"] < 1e-9
        assert report["cpg_cubic_residual"] < 1e-5
