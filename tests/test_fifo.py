"""Tests for the FIFO-discipline ablation policies."""

import pytest

from repro.core.pg import PGPolicy
from repro.offline.opt import cioq_opt
from repro.scheduling.fifo import (
    FifoCIOQPolicy,
    FifoCrossbarPolicy,
    head_of_line,
)
from repro.simulation.engine import run_cioq, run_crossbar
from repro.switch.cioq import CIOQSwitch
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.switch.queue import BoundedQueue
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.trace import Trace
from repro.traffic.values import two_value, uniform_values


def pk(pid, src, dst, value=1.0, arrival=0):
    return Packet(pid, value, arrival, src, dst)


class TestHeadOfLine:
    def test_earliest_pid_wins(self):
        q = BoundedQueue(3)
        q.push(pk(5, 0, 0, 9.0))
        q.push(pk(2, 0, 0, 1.0))
        q.push(pk(7, 0, 0, 5.0))
        h = head_of_line(q)
        assert h.pid == 2  # earliest arrival, NOT the most valuable

    def test_empty(self):
        assert head_of_line(BoundedQueue(2)) is None


class TestFifoCIOQ:
    def test_transfers_head_of_line_not_max(self):
        config = SwitchConfig.square(2, b_in=3, b_out=3)
        s = CIOQSwitch(config)
        s.enqueue_arrival(pk(0, 0, 0, 1.0))   # arrived first, cheap
        s.enqueue_arrival(pk(1, 0, 0, 50.0))  # arrived later, valuable
        transfers = FifoCIOQPolicy().schedule(s, 0, 0)
        assert transfers[0].packet.pid == 0

    def test_transmits_head_of_line(self):
        config = SwitchConfig.square(2, b_in=3, b_out=3)
        trace = Trace([pk(0, 0, 0, 1.0), pk(1, 1, 0, 50.0)], 2, 2)
        res = run_cioq(FifoCIOQPolicy(), config, trace, record=True)
        # Both eventually sent; the later-arriving valuable packet waits.
        assert res.n_sent == 2

    def test_pushout_admission(self):
        config = SwitchConfig.square(2, b_in=1, b_out=1)
        policy = FifoCIOQPolicy()
        s = CIOQSwitch(config)
        s.enqueue_arrival(pk(0, 0, 0, 2.0))
        d = policy.on_arrival(s, pk(1, 0, 0, 5.0))
        assert d.accept and d.preempt.pid == 0
        d2 = policy.on_arrival(s, pk(2, 0, 0, 2.0))
        assert not d2.accept

    def test_conservation(self):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
        trace = BernoulliTraffic(
            3, 3, load=1.5, value_model=uniform_values(1, 50)
        ).generate(20, seed=3)
        res = run_cioq(FifoCIOQPolicy(), config, trace)
        res.check_conservation()

    def test_value_ordering_beats_fifo_under_skew(self):
        """The paper's non-FIFO PG extracts more value than the FIFO
        discipline under strong value skew and contention."""
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        total_pg = total_fifo = 0.0
        for seed in range(4):
            trace = BernoulliTraffic(
                3, 3, load=1.8, value_model=two_value(50, 0.15)
            ).generate(25, seed=seed)
            total_pg += run_cioq(PGPolicy(), config, trace).benefit
            total_fifo += run_cioq(FifoCIOQPolicy(), config, trace).benefit
        assert total_pg > total_fifo

    def test_fifo_still_below_opt(self):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(
            3, 3, load=1.4, value_model=uniform_values(1, 20)
        ).generate(12, seed=5)
        res = run_cioq(FifoCIOQPolicy(), config, trace)
        opt = cioq_opt(trace, config)
        assert res.benefit <= opt.benefit + 1e-6


class TestFifoCrossbar:
    def test_conservation(self):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(
            3, 3, load=1.5, value_model=uniform_values(1, 50)
        ).generate(15, seed=1)
        res = run_crossbar(FifoCrossbarPolicy(), config, trace)
        res.check_conservation()

    def test_moves_head_of_line_through_fabric(self):
        from repro.switch.crossbar import CrossbarSwitch

        config = SwitchConfig.square(2, b_in=3, b_out=3, b_cross=1)
        s = CrossbarSwitch(config)
        s.enqueue_arrival(pk(0, 0, 0, 1.0))
        s.enqueue_arrival(pk(1, 0, 0, 9.0))
        policy = FifoCrossbarPolicy()
        transfers = policy.input_subphase(s, 0, 0)
        assert transfers[0].packet.pid == 0

    def test_subphase_port_constraints(self):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(3, 3, load=2.0).generate(10, seed=7)
        # The engine validates one-per-port; a clean run is the assertion.
        res = run_crossbar(FifoCrossbarPolicy(), config, trace)
        res.check_conservation()
