"""Hypothesis property tests across the whole stack.

These generate random instances (dimensions, capacities, speedups,
loads, value models) and assert the structural invariants that must hold
for *every* instance: conservation, OPT dominance, theorem bounds,
faithfulness, and monotonicity.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.ratio import measure_cioq_ratio, measure_crossbar_ratio
from repro.core.cgu import CGUPolicy
from repro.core.cpg import CPGPolicy
from repro.core.gm import GMPolicy
from repro.core.params import cpg_optimal_ratio, pg_optimal_ratio
from repro.core.pg import PGPolicy
from repro.offline.opt import cioq_opt
from repro.simulation.engine import run_cioq, run_crossbar
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.traffic.trace import Trace

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def instances(draw, weighted=False, max_ports=3, max_slots=6):
    """A random (config, trace) pair."""
    n_in = draw(st.integers(1, max_ports))
    n_out = draw(st.integers(1, max_ports))
    config = SwitchConfig(
        n_in=n_in,
        n_out=n_out,
        speedup=draw(st.integers(1, 2)),
        b_in=draw(st.integers(1, 3)),
        b_out=draw(st.integers(1, 3)),
        b_cross=draw(st.integers(1, 2)),
    )
    n_packets = draw(st.integers(0, 14))
    packets = []
    for pid in range(n_packets):
        value = (
            draw(st.floats(min_value=0.5, max_value=50.0, allow_nan=False))
            if weighted
            else 1.0
        )
        packets.append(
            Packet(
                pid,
                value,
                draw(st.integers(0, max_slots - 1)),
                draw(st.integers(0, n_in - 1)),
                draw(st.integers(0, n_out - 1)),
            )
        )
    return config, Trace(packets, n_in, n_out)


class TestConservation:
    @given(inst=instances(weighted=True))
    @SLOW
    def test_pg_conservation(self, inst):
        config, trace = inst
        res = run_cioq(PGPolicy(), config, trace, check_invariants=True)
        res.check_conservation()
        assert res.n_residual == 0  # drain bound always suffices

    @given(inst=instances(weighted=False))
    @SLOW
    def test_gm_conservation(self, inst):
        config, trace = inst
        res = run_cioq(GMPolicy(), config, trace, check_invariants=True)
        res.check_conservation()
        assert res.n_preempted == 0

    @given(inst=instances(weighted=True))
    @SLOW
    def test_cpg_conservation(self, inst):
        config, trace = inst
        res = run_crossbar(CPGPolicy(), config, trace, check_invariants=True)
        res.check_conservation()
        assert res.n_residual == 0

    @given(inst=instances(weighted=False))
    @SLOW
    def test_cgu_conservation(self, inst):
        config, trace = inst
        res = run_crossbar(CGUPolicy(), config, trace, check_invariants=True)
        res.check_conservation()


class TestTheoremBounds:
    @given(inst=instances(weighted=False))
    @SLOW
    def test_gm_ratio_bound(self, inst):
        config, trace = inst
        m = measure_cioq_ratio(GMPolicy(), trace, config, bound=3.0)
        assert m.within_bound

    @given(inst=instances(weighted=True))
    @SLOW
    def test_pg_ratio_bound(self, inst):
        config, trace = inst
        m = measure_cioq_ratio(
            PGPolicy(), trace, config, bound=pg_optimal_ratio()
        )
        assert m.within_bound

    @given(inst=instances(weighted=False))
    @SLOW
    def test_cgu_ratio_bound(self, inst):
        config, trace = inst
        m = measure_crossbar_ratio(CGUPolicy(), trace, config, bound=3.0)
        assert m.within_bound

    @given(inst=instances(weighted=True))
    @SLOW
    def test_cpg_ratio_bound(self, inst):
        config, trace = inst
        m = measure_crossbar_ratio(
            CPGPolicy(), trace, config, bound=cpg_optimal_ratio()
        )
        assert m.within_bound


class TestOptStructure:
    @given(inst=instances(weighted=True))
    @SLOW
    def test_opt_delivers_at_most_everything(self, inst):
        config, trace = inst
        opt = cioq_opt(trace, config)
        assert opt.n_delivered <= len(trace)
        assert opt.benefit <= trace.total_value + 1e-9

    @given(inst=instances(weighted=False))
    @SLOW
    def test_opt_no_worse_than_gm(self, inst):
        config, trace = inst
        opt = cioq_opt(trace, config)
        onl = run_cioq(GMPolicy(), config, trace)
        assert onl.benefit <= opt.benefit + 1e-9

    @given(inst=instances(weighted=False, max_slots=4))
    @SLOW
    def test_opt_transmission_rate_ceiling(self, inst):
        """OPT can never deliver more than one packet per output per
        slot over any horizon."""
        config, trace = inst
        opt = cioq_opt(trace, config, extract_schedule=True)
        per_slot = {}
        for t, j in opt.transmissions:
            per_slot[(t, j)] = per_slot.get((t, j), 0) + 1
        assert all(v <= 1 for v in per_slot.values())
