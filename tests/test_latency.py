"""Tests for delay statistics, occupancy tracing and sparklines."""

import pytest

from repro.analysis.latency import delay_rows, occupancy_report, sparkline
from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.simulation.engine import run_cioq, run_crossbar
from repro.core.cgu import CGUPolicy
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.trace import Trace


class TestDelays:
    def test_same_slot_delivery_is_zero_delay(self):
        config = SwitchConfig.square(2, b_in=2, b_out=2)
        trace = Trace([Packet(0, 1.0, 3, 0, 1)], 2, 2)
        res = run_cioq(GMPolicy(), config, trace, record=True)
        assert res.delays(trace) == {0: 0}

    def test_contention_produces_positive_delays(self):
        config = SwitchConfig.square(2, b_in=4, b_out=4)
        # Four packets to the same output in slot 0: delays 0,1,2,3.
        trace = Trace(
            [Packet(i, 1.0, 0, i % 2, 0) for i in range(4)], 2, 2
        )
        res = run_cioq(GMPolicy(), config, trace, record=True)
        assert sorted(res.delays(trace).values()) == [0, 1, 2, 3]

    def test_delay_stats_fields(self):
        config = SwitchConfig.square(3, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.2).generate(15, seed=1)
        res = run_cioq(GMPolicy(), config, trace, record=True)
        stats = res.delay_stats(trace)
        assert stats["n"] == res.n_sent
        assert 0 <= stats["p50"] <= stats["p99"] <= stats["max"]
        assert stats["mean"] <= stats["max"]

    def test_requires_record(self):
        config = SwitchConfig.square(2, b_in=2, b_out=2)
        trace = Trace([Packet(0, 1.0, 0, 0, 1)], 2, 2)
        res = run_cioq(GMPolicy(), config, trace)  # record=False
        with pytest.raises(ValueError, match="record=True"):
            res.delays(trace)

    def test_empty_run_stats(self):
        config = SwitchConfig.square(2, b_in=2, b_out=2)
        trace = Trace([], 2, 2)
        res = run_cioq(GMPolicy(), config, trace, record=True)
        assert res.delay_stats(trace)["n"] == 0

    def test_delay_rows_helper(self):
        config = SwitchConfig.square(3, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.0).generate(10, seed=2)
        results = {
            "GM": run_cioq(GMPolicy(), config, trace, record=True),
            "PG": run_cioq(PGPolicy(), config, trace, record=True),
        }
        rows = delay_rows(results, trace)
        assert [r["policy"] for r in rows] == ["GM", "PG"]
        assert all(r["delivered"] > 0 for r in rows)


class TestOccupancy:
    def test_cioq_occupancy_recorded(self):
        config = SwitchConfig.square(3, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.3).generate(12, seed=3)
        res = run_cioq(GMPolicy(), config, trace, trace_occupancy=True)
        assert res.occupancy
        slots = [row[0] for row in res.occupancy]
        assert slots == sorted(slots)
        # Crossbar column is zero for CIOQ runs.
        assert all(row[2] == 0 for row in res.occupancy)
        # Final state is drained.
        assert res.occupancy[-1][1] == 0 and res.occupancy[-1][3] == 0

    def test_crossbar_occupancy_recorded(self):
        config = SwitchConfig.square(3, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(3, 3, load=1.3).generate(12, seed=3)
        res = run_crossbar(CGUPolicy(), config, trace, trace_occupancy=True)
        assert any(row[2] > 0 for row in res.occupancy)  # crosspoints used

    def test_occupancy_off_by_default(self):
        config = SwitchConfig.square(2, b_in=2, b_out=2)
        trace = Trace([Packet(0, 1.0, 0, 0, 1)], 2, 2)
        res = run_cioq(GMPolicy(), config, trace)
        assert res.occupancy == []

    def test_occupancy_report_text(self):
        config = SwitchConfig.square(3, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.3).generate(12, seed=3)
        res = run_cioq(GMPolicy(), config, trace, trace_occupancy=True)
        text = occupancy_report(res)
        assert "VOQs" in text and "|" in text

    def test_occupancy_report_without_trace(self):
        config = SwitchConfig.square(2, b_in=2, b_out=2)
        trace = Trace([Packet(0, 1.0, 0, 0, 1)], 2, 2)
        res = run_cioq(GMPolicy(), config, trace)
        assert "no occupancy trace" in occupancy_report(res)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_zero(self):
        assert set(sparkline([0, 0, 0])) == {" "}

    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3, 4])
        assert len(s) == 5
        assert s[-1] == "@"

    def test_resampling_to_width(self):
        s = sparkline(list(range(1000)), width=40)
        assert len(s) == 40
        assert s[-1] == "@"

    def test_peak_preserved_by_max_resampling(self):
        vals = [0.0] * 100
        vals[57] = 10.0
        s = sparkline(vals, width=20)
        assert "@" in s
