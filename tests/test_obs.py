"""Observability subsystem tests (``repro.obs``).

Pins the telemetry contract end to end:

* recorder semantics — the :class:`~repro.obs.NullRecorder` is inert,
  the :class:`~repro.obs.InMemoryRecorder` accumulates deterministic
  counters/gauges/histograms/series and quarantines wall-times outside
  :meth:`snapshot`;
* kernel integration — per-slot samples and flushed counters agree
  exactly with the run's :class:`SimulationResult` accounting, on the
  batch and the streaming entry points alike;
* executor observability — ``metrics_every`` payload snapshots merge
  byte-identically for any worker count and for cached vs fresh
  payloads, heartbeats fire, and the timing ledger is populated;
* sinks and surface — JSONL round trip, Prometheus rendering, manifest
  determinism, bench history appending, and the ``repro obs`` /
  ``--metrics`` CLI surface.

The core recorder/manifest/sink tests run without numpy (hand-built
traces through the reference kernel); the scenario-level tests skip in
the numpy-free environment like the rest of the suite.
"""

import json
import random

import pytest

from repro.core.gm import GMPolicy
from repro.obs import (
    HISTORY_FILENAME,
    METRIC_CATALOG,
    METRICS_FILENAME,
    NULL_METRICS,
    SERIES_FIELDS,
    SNAPSHOT_VERSION,
    TIMINGS_FILENAME,
    InMemoryRecorder,
    MetricsRecorder,
    NullRecorder,
    append_bench_history,
    build_manifest,
    iter_jsonl,
    merge_snapshots,
    prometheus_text,
    read_bench_history,
    read_jsonl,
    read_manifest,
    resolve,
    snapshot_events,
    snapshot_from_events,
    spec_hash,
    write_jsonl,
    write_manifest,
    write_walltimes,
)
from repro.parallel import SweepExecutor, SweepPoint, run_sweep_point
from repro.simulation.engine import run_cioq, run_cioq_streaming
from repro.switch.config import SwitchConfig
from repro.traffic.trace import Packet, Trace

CONFIG = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)


def _trace(n=3, slots=12, seed=0):
    """Deterministic hand-built trace (no numpy needed)."""
    rnd = random.Random(seed)
    packets = []
    pid = 0
    for t in range(slots):
        for src in range(n):
            for _ in range(rnd.choice((0, 1, 2))):
                packets.append(
                    Packet(pid, float(rnd.randint(1, 9)), t, src,
                           rnd.randrange(n))
                )
                pid += 1
    return Trace(packets, n, n, name=f"obs-test-{seed}", n_slots=slots)


# ---------------------------------------------------------------------------
# Recorder semantics
# ---------------------------------------------------------------------------

class TestRecorders:
    def test_null_recorder_is_inert(self):
        null = NullRecorder()
        assert null.enabled is False
        assert null.every_k == 0
        assert null.timed is False
        null.counter("runs_total")
        null.gauge("sweep_points_total", 3)
        null.observe("point_seconds", 1.5)
        null.slot_sample(0, 0, 1, 2, 3, 1, 4, 2, 0, 0)
        null.add_time("run_seconds", 0.1)
        with null.timer("phase_arrival_seconds"):
            pass

    def test_protocol_conformance(self):
        assert isinstance(NullRecorder(), MetricsRecorder)
        assert isinstance(InMemoryRecorder(), MetricsRecorder)

    def test_resolve(self):
        rec = InMemoryRecorder()
        assert resolve(None) is None
        assert resolve(NULL_METRICS) is None
        assert resolve(rec) is rec

    def test_counters_gauges_histograms(self):
        rec = InMemoryRecorder()
        rec.counter("runs_total")
        rec.counter("runs_total", 2)
        rec.gauge("sweep_points_total", 7)
        rec.observe("point_seconds", 3.0)
        rec.observe("point_seconds", 5.0)
        snap = rec.snapshot()
        assert snap["version"] == SNAPSHOT_VERSION
        assert snap["counters"]["runs_total"] == 3
        assert snap["gauges"]["sweep_points_total"] == 7
        hist = snap["histograms"]["point_seconds"]
        assert hist["count"] == 2
        assert hist["sum"] == 8.0
        assert hist["min"] == 3.0
        assert hist["max"] == 5.0

    def test_walltimes_quarantined(self):
        rec = InMemoryRecorder(timed=True)
        with rec.timer("phase_arrival_seconds"):
            pass
        rec.add_time("run_seconds", 0.25)
        snap = rec.snapshot()
        assert "walltimes" not in snap
        assert "run_seconds" not in str(snap)
        wt = rec.walltimes()
        assert wt["run_seconds"] == pytest.approx(0.25)
        assert wt["phase_arrival_seconds"] >= 0.0

    def test_series_shape(self):
        rec = InMemoryRecorder(every_k=1)
        rec.slot_sample(0, 2, 5, 1, 3, 2, 10, 4, 1, 0)
        snap = rec.snapshot()
        assert len(snap["series"]) == 1
        assert len(snap["series"][0]) == len(SERIES_FIELDS)
        row = dict(zip(SERIES_FIELDS, snap["series"][0]))
        assert row["slot"] == 0 and row["lane"] == 2 and row["voq"] == 5

    def test_merge_snapshots_deterministic(self):
        snaps = []
        for k in range(3):
            rec = InMemoryRecorder(every_k=2)
            rec.counter("runs_total")
            rec.counter("benefit_total", 10 * (k + 1))
            rec.slot_sample(k, k, 1, 0, 0, 1, 1, 1, 0, 0)
            snaps.append(rec.snapshot())
        merged = merge_snapshots(snaps)
        assert merged["counters"]["runs_total"] == 3
        assert merged["counters"]["benefit_total"] == 60
        assert [s[0] for s in merged["series"]] == [0, 1, 2]
        again = merge_snapshots([json.loads(json.dumps(s)) for s in snaps])
        assert json.dumps(merged, sort_keys=True) == json.dumps(
            again, sort_keys=True)

    def test_metric_catalog_shape(self):
        for name, (kind, help_text) in METRIC_CATALOG.items():
            assert kind in {"counter", "gauge", "histogram", "series",
                            "timer"}, name
            assert help_text


# ---------------------------------------------------------------------------
# Kernel integration (reference backend; no numpy required)
# ---------------------------------------------------------------------------

class TestKernelMetrics:
    def test_counters_match_result_accounting(self):
        rec = InMemoryRecorder(every_k=1)
        result = run_cioq(GMPolicy(), CONFIG, _trace(), metrics=rec)
        snap = rec.snapshot()
        c = snap["counters"]
        assert c["runs_total"] == 1
        # slots_total counts *executed* slots: at least the arrival
        # window (plus drain), at most the hard horizon cap.
        assert 12 <= c["slots_total"] <= result.horizon
        assert c["slots_total"] == len(snap["series"])
        assert c["packets_arrived_total"] == result.n_arrived
        assert c["packets_sent_total"] == result.n_sent
        assert c["packets_rejected_total"] == result.n_rejected
        assert c["benefit_total"] == result.benefit

    def test_sampling_stride(self):
        trace = _trace()
        every = InMemoryRecorder(every_k=1)
        run_cioq(GMPolicy(), CONFIG, trace, metrics=every)
        strided = InMemoryRecorder(every_k=3)
        run_cioq(GMPolicy(), CONFIG, trace, metrics=strided)
        slots = [s[0] for s in strided.snapshot()["series"]]
        assert slots == [s[0] for s in every.snapshot()["series"]
                         if s[0] % 3 == 0]

    def test_counters_only_mode_has_no_series(self):
        rec = InMemoryRecorder(every_k=0)
        run_cioq(GMPolicy(), CONFIG, _trace(), metrics=rec)
        snap = rec.snapshot()
        assert snap["series"] == []
        assert snap["counters"]["runs_total"] == 1

    def test_null_metrics_changes_nothing(self):
        trace = _trace(seed=5)
        base = run_cioq(GMPolicy(), CONFIG, trace)
        off = run_cioq(GMPolicy(), CONFIG, trace, metrics=NULL_METRICS)
        assert base.benefit == off.benefit
        assert base.occupancy == off.occupancy

    def test_streaming_matches_batch_snapshot(self):
        trace = _trace(seed=3)
        batch_rec = InMemoryRecorder(every_k=2)
        run_cioq(GMPolicy(), CONFIG, trace, metrics=batch_rec)

        def source(t, switch):
            return [(p.src, p.dst, p.value) for p in trace.packets
                    if p.arrival == t]

        stream_rec = InMemoryRecorder(every_k=2)
        run_cioq_streaming(GMPolicy(), CONFIG, source, trace.n_slots,
                           metrics=stream_rec)
        assert json.dumps(batch_rec.snapshot(), sort_keys=True) == \
            json.dumps(stream_rec.snapshot(), sort_keys=True)

    def test_timed_run_records_phase_walltimes(self):
        rec = InMemoryRecorder(every_k=0, timed=True)
        run_cioq(GMPolicy(), CONFIG, _trace(), metrics=rec)
        wt = rec.walltimes()
        for name in ("phase_arrival_seconds", "phase_schedule_seconds",
                     "phase_transmit_seconds", "run_seconds"):
            assert wt[name] >= 0.0


# ---------------------------------------------------------------------------
# Executor observability
# ---------------------------------------------------------------------------

def _points(n_points=4):
    return [
        SweepPoint(model="cioq", config=CONFIG, trace=_trace(seed=s),
                   policy_factory=GMPolicy, seed=s)
        for s in range(n_points)
    ]


class TestExecutorObservability:
    def test_payload_embeds_obs_snapshot(self):
        payload = run_sweep_point(_points(1)[0], metrics_every=2)
        assert "obs" in payload
        assert payload["obs"]["counters"]["runs_total"] == 1

    def test_uninstrumented_payload_has_no_obs(self):
        payload = run_sweep_point(_points(1)[0])
        assert "obs" not in payload

    def test_merged_obs_serial_vs_parallel_identical(self):
        points = _points()
        serial = SweepExecutor(workers=0, metrics_every=2)
        serial.run(points)
        parallel = SweepExecutor(workers=2, metrics_every=2)
        parallel.run(points)
        s, p = serial.merged_obs(), parallel.merged_obs()
        assert json.dumps(s, sort_keys=True) == json.dumps(p,
                                                           sort_keys=True)
        assert s["gauges"]["sweep_points_total"] == len(points)

    def test_merged_obs_none_when_uninstrumented(self):
        ex = SweepExecutor(workers=0)
        ex.run(_points(2))
        assert ex.merged_obs() is None

    def test_timing_ledger(self):
        ex = SweepExecutor(workers=0, metrics_every=0)
        points = _points(3)
        ex.run(points)
        assert len(ex.timings) == 3
        for entry in ex.timings:
            assert entry["elapsed"] >= 0.0
            assert isinstance(entry["pid"], int)
            assert entry["policy"].endswith("GMPolicy")

    def test_progress_events(self):
        events = []
        ex = SweepExecutor(workers=0, metrics_every=0,
                           progress=events.append)
        ex.run(_points(2))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "cache"
        assert kinds.count("point") == 2
        assert kinds[-1] == "done"

    def test_cached_and_fresh_obs_identical(self, tmp_path):
        points = _points(3)
        cold = SweepExecutor(workers=0, cache_dir=str(tmp_path),
                             metrics_every=2)
        cold.run(points)
        assert cold.cache_misses == 3
        warm = SweepExecutor(workers=0, cache_dir=str(tmp_path),
                             metrics_every=2)
        warm.run(points)
        assert warm.cache_hits == 3
        assert json.dumps(cold.merged_obs(), sort_keys=True) == \
            json.dumps(warm.merged_obs(), sort_keys=True)

    def test_metrics_cache_keys_disjoint_from_plain(self, tmp_path):
        points = _points(2)
        plain = SweepExecutor(workers=0, cache_dir=str(tmp_path))
        plain.run(points)
        instrumented = SweepExecutor(workers=0, cache_dir=str(tmp_path),
                                     metrics_every=2)
        instrumented.run(points)
        # Instrumented payloads must not be served from uninstrumented
        # cache entries (and vice versa).
        assert instrumented.cache_hits == 0
        assert instrumented.cache_misses == 2

    def test_replication_accumulates_across_runs(self):
        ex = SweepExecutor(workers=0, metrics_every=0)
        ex.run(_points(2))
        ex.run(_points(2))
        assert ex.merged_obs()["counters"]["runs_total"] == 4
        assert len(ex.timings) == 4


# ---------------------------------------------------------------------------
# Sinks: JSONL, Prometheus, wall-time quarantine
# ---------------------------------------------------------------------------

def _sample_snapshot():
    rec = InMemoryRecorder(every_k=1)
    run_cioq(GMPolicy(), CONFIG, _trace(seed=9), metrics=rec)
    return rec.snapshot()


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        snap = _sample_snapshot()
        path = write_jsonl(tmp_path / METRICS_FILENAME, snap)
        back = snapshot_from_events(iter_jsonl(path))
        assert json.dumps(back, sort_keys=True) == json.dumps(
            snap, sort_keys=True)

    def test_jsonl_deterministic_bytes(self, tmp_path):
        snap = _sample_snapshot()
        a = write_jsonl(tmp_path / "a.jsonl", snap).read_bytes()
        b = write_jsonl(tmp_path / "b.jsonl",
                        json.loads(json.dumps(snap))).read_bytes()
        assert a == b

    def test_event_stream_order(self):
        events = list(snapshot_events(_sample_snapshot()))
        assert events[0]["event"] == "meta"
        kinds = [e["event"] for e in events]
        assert kinds.index("counter") < kinds.index("sample")

    def test_read_jsonl(self, tmp_path):
        snap = _sample_snapshot()
        path = write_jsonl(tmp_path / METRICS_FILENAME, snap)
        events = read_jsonl(path)
        assert events[0]["version"] == SNAPSHOT_VERSION
        samples = [e for e in events if e["event"] == "sample"]
        assert len(samples) == len(snap["series"])

    def test_prometheus_text(self):
        text = prometheus_text(_sample_snapshot())
        assert "# HELP repro_runs_total" in text
        assert "# TYPE repro_runs_total counter" in text
        assert "repro_runs_total 1" in text
        assert 'repro_queue_occupancy{site="voq"}' in text
        assert text.endswith("\n")

    def test_walltimes_file(self, tmp_path):
        path = write_walltimes(tmp_path / TIMINGS_FILENAME,
                               {"run_seconds": 1.5},
                               extra={"cache_hits": 2})
        payload = json.loads(path.read_text())
        assert payload["walltimes_seconds"]["run_seconds"] == 1.5
        assert payload["cache_hits"] == 2


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------

class TestManifest:
    def test_build_and_round_trip(self, tmp_path):
        manifest = build_manifest(kind="scenario", name="x",
                                  spec={"a": 1}, seeds=(3, 1, 1),
                                  backend="fast", opt_mode="windowed",
                                  opt_window=8)
        assert manifest["seeds"] == [1, 3]
        assert manifest["spec_sha256"] == spec_hash({"a": 1})
        write_manifest(tmp_path, manifest)
        assert read_manifest(tmp_path) == manifest

    def test_no_timestamps_or_worker_counts(self):
        manifest = build_manifest(kind="sweep", name="y")
        text = json.dumps(manifest).lower()
        for forbidden in ("timestamp", "workers", "hostname", "date"):
            assert forbidden not in text

    def test_spec_hash_stable(self):
        assert spec_hash({"b": 2, "a": 1}) == spec_hash({"a": 1, "b": 2})
        assert spec_hash({"a": 1}) != spec_hash({"a": 2})


# ---------------------------------------------------------------------------
# Bench history ledger
# ---------------------------------------------------------------------------

class TestBenchHistory:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / HISTORY_FILENAME
        append_bench_history(path, "engine", [{"speedup": 12.0}],
                             now="2026-08-09T00:00:00+00:00")
        append_bench_history(path, "obs", [{"off_overhead_pct": 1.0}],
                             quick=True, now="2026-08-09T01:00:00+00:00")
        entries = read_bench_history(path)
        assert [e["bench"] for e in entries] == ["engine", "obs"]
        assert entries[0]["date"] == "2026-08-09T00:00:00+00:00"
        assert entries[1]["quick"] is True
        assert entries[0]["rows"] == [{"speedup": 12.0}]


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCLI:
    @pytest.fixture(autouse=True)
    def _numpy(self):
        pytest.importorskip("numpy")

    def test_scenarios_run_metrics_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "results"
        rc = main(["scenarios", "run", "smoke-bernoulli",
                   "--metrics-every", "4", "--out", str(out)])
        assert rc == 0
        target = out / "smoke-bernoulli"
        for name in ("result.json", "manifest.json", METRICS_FILENAME,
                     TIMINGS_FILENAME):
            assert (target / name).exists(), name
        manifest = read_manifest(target)
        assert manifest["kind"] == "scenario"
        snap = snapshot_from_events(iter_jsonl(target / METRICS_FILENAME))
        assert snap["counters"]["runs_total"] > 0
        assert "sweep_points_total" in snap["gauges"]

    def test_obs_export_and_tail(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "results"
        main(["scenarios", "run", "smoke-bernoulli",
              "--metrics", "--out", str(out)])
        capsys.readouterr()
        target = str(out / "smoke-bernoulli")
        assert main(["obs", "export", target]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_runs_total counter" in text
        assert main(["obs", "tail", target, "-n", "2",
                     "--event", "counter"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(li)["event"] == "counter" for li in lines)

    def test_sweep_metrics_prometheus_stdout(self, capsys):
        from repro.cli import main

        rc = main(["sweep", "--policies", "gm", "--loads", "1.0",
                   "--seeds", "1", "--slots", "10", "--metrics"])
        assert rc == 0
        assert "repro_runs_total" in capsys.readouterr().out

    def test_metrics_every_validation(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", "--policies", "gm", "--loads", "1.0",
                  "--seeds", "1", "--slots", "10",
                  "--metrics-every", "0"])
