"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.trace import Trace
from repro.traffic.values import two_value, uniform_values, unit_values


@pytest.fixture
def small_config() -> SwitchConfig:
    """A 3x3 switch with small buffers, speedup 1."""
    return SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)


@pytest.fixture
def speedy_config() -> SwitchConfig:
    """A 3x3 switch with speedup 2."""
    return SwitchConfig.square(3, speedup=2, b_in=3, b_out=3, b_cross=2)


@pytest.fixture
def tiny_config() -> SwitchConfig:
    """A 2x2 switch with unit buffers (brute-force friendly)."""
    return SwitchConfig.square(2, speedup=1, b_in=1, b_out=1, b_cross=1)


@pytest.fixture
def unit_trace(small_config) -> Trace:
    """A deterministic unit-value trace for the small config."""
    return BernoulliTraffic(3, 3, load=1.0, value_model=unit_values()).generate(
        20, seed=42
    )


@pytest.fixture
def weighted_trace(small_config) -> Trace:
    """A deterministic weighted trace for the small config."""
    return BernoulliTraffic(
        3, 3, load=1.2, value_model=uniform_values(1, 50)
    ).generate(20, seed=42)


@pytest.fixture
def two_value_trace() -> Trace:
    return BernoulliTraffic(
        3, 3, load=1.3, value_model=two_value(alpha=10.0, p_high=0.3)
    ).generate(20, seed=7)


def make_packets(spec):
    """Build packets from (value, arrival, src, dst) tuples, pids 0..n-1."""
    return [
        Packet(pid, value, arrival, src, dst)
        for pid, (value, arrival, src, dst) in enumerate(spec)
    ]


@pytest.fixture
def packets_factory():
    return make_packets


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
