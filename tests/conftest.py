"""Shared fixtures for the test suite.

This module must import without numpy so the no-numpy CI job (which
exercises the reference backend on a bare install) can collect the
numpy-free test files; fixtures that genuinely need numpy-backed
traffic generators import it lazily and skip when it is missing.
"""

from __future__ import annotations

import pytest

from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.traffic.trace import Trace

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy job
    np = None

needs_numpy = pytest.mark.skipif(np is None, reason="numpy not installed")


@pytest.fixture
def small_config() -> SwitchConfig:
    """A 3x3 switch with small buffers, speedup 1."""
    return SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)


@pytest.fixture
def speedy_config() -> SwitchConfig:
    """A 3x3 switch with speedup 2."""
    return SwitchConfig.square(3, speedup=2, b_in=3, b_out=3, b_cross=2)


@pytest.fixture
def tiny_config() -> SwitchConfig:
    """A 2x2 switch with unit buffers (brute-force friendly)."""
    return SwitchConfig.square(2, speedup=1, b_in=1, b_out=1, b_cross=1)


@pytest.fixture
def unit_trace(small_config) -> Trace:
    """A deterministic unit-value trace for the small config."""
    if np is None:
        pytest.skip("numpy not installed")
    from repro.traffic.bernoulli import BernoulliTraffic
    from repro.traffic.values import unit_values

    return BernoulliTraffic(3, 3, load=1.0, value_model=unit_values()).generate(
        20, seed=42
    )


@pytest.fixture
def weighted_trace(small_config) -> Trace:
    """A deterministic weighted trace for the small config."""
    if np is None:
        pytest.skip("numpy not installed")
    from repro.traffic.bernoulli import BernoulliTraffic
    from repro.traffic.values import uniform_values

    return BernoulliTraffic(
        3, 3, load=1.2, value_model=uniform_values(1, 50)
    ).generate(20, seed=42)


@pytest.fixture
def two_value_trace() -> Trace:
    if np is None:
        pytest.skip("numpy not installed")
    from repro.traffic.bernoulli import BernoulliTraffic
    from repro.traffic.values import two_value

    return BernoulliTraffic(
        3, 3, load=1.3, value_model=two_value(alpha=10.0, p_high=0.3)
    ).generate(20, seed=7)


def make_packets(spec):
    """Build packets from (value, arrival, src, dst) tuples, pids 0..n-1."""
    return [
        Packet(pid, value, arrival, src, dst)
        for pid, (value, arrival, src, dst) in enumerate(spec)
    ]


@pytest.fixture
def packets_factory():
    return make_packets


@pytest.fixture
def rng() -> "np.random.Generator":
    if np is None:
        pytest.skip("numpy not installed")
    return np.random.default_rng(1234)
