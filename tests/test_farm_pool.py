"""The persistent worker pool (repro.farm.pool) and its reuse across
SweepExecutor.run() calls."""

from functools import partial

from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.farm import PersistentPool
from repro.parallel import SweepExecutor, SweepPoint
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import uniform_values


def make_points(factory, n=6, slots=10):
    config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
    return [
        SweepPoint(
            model="cioq", config=config,
            trace=BernoulliTraffic(
                3, 3, load=1.2, value_model=uniform_values(1, 20)
            ).generate(slots, seed=seed),
            policy_factory=factory, seed=seed, tag={"seed": seed})
        for seed in range(n)
    ]


class TestPersistentPool:
    def test_lazy_spawn_and_reuse(self):
        with PersistentPool(2) as pool:
            assert not pool.alive
            first = list(pool.imap_unordered(abs, [-1, -2, -3]))
            assert pool.alive
            inner = pool._pool
            second = list(pool.imap_unordered(abs, [-4, -5]))
            assert pool._pool is inner  # same pool, no respawn
            assert sorted(first) == [1, 2, 3] and sorted(second) == [4, 5]
            assert pool.runs_served == 2

    def test_close_is_idempotent_and_respawns(self):
        pool = PersistentPool(2)
        pool.warm()
        pool.close()
        pool.close()
        assert not pool.alive
        assert sorted(pool.imap_unordered(abs, [-7])) == [7]
        pool.close()

    def test_workers_floor(self):
        assert PersistentPool(0).workers == 1


class TestExecutorPoolReuse:
    def test_ten_runs_one_pool_same_results(self):
        """Ten consecutive run() calls through one persistent pool give
        exactly the serial payloads — and never respawn workers."""
        serial = SweepExecutor()
        with PersistentPool(2) as pool:
            ex = SweepExecutor(workers=2, pool=pool)
            batches = [make_points(partial(PGPolicy, beta=2.0)),
                       make_points(GMPolicy, n=4)]
            inner = None
            for i in range(10):
                points = batches[i % 2]
                assert ex.run(points) == serial.run(points)
                if pool.alive:
                    inner = inner or pool._pool
                    assert pool._pool is inner
        assert not pool.alive

    def test_pool_composes_with_store(self, tmp_path):
        points = make_points(partial(PGPolicy, beta=2.0))
        with PersistentPool(2) as pool:
            ex = SweepExecutor(workers=2, pool=pool,
                               cache_dir=str(tmp_path / "store"))
            cold = ex.run(points)
            assert (ex.cache_hits, ex.cache_misses) == (0, len(points))
            warm = ex.run(points)
            assert (ex.cache_hits, ex.cache_misses) == (
                len(points), len(points))
            assert cold == warm == SweepExecutor().run(points)
