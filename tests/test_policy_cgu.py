"""Unit tests for the Crossbar Greedy Unit (CGU) policy — Section 3.1."""

import pytest

from repro.core.cgu import CGUPolicy
from repro.simulation.engine import run_crossbar
from repro.switch.config import SwitchConfig
from repro.switch.crossbar import CrossbarSwitch
from repro.switch.packet import Packet
from repro.theory.invariants import CheckedCGUPolicy
from repro.traffic.bernoulli import BernoulliTraffic


def pk(pid, src, dst):
    return Packet(pid, 1.0, 0, src, dst)


@pytest.fixture
def switch():
    return CrossbarSwitch(SwitchConfig.square(3, b_in=2, b_out=2, b_cross=1))


class TestArrival:
    def test_accepts_with_space(self, switch):
        assert CGUPolicy().on_arrival(switch, pk(0, 0, 0)).accept

    def test_rejects_when_full(self, switch):
        switch.enqueue_arrival(pk(0, 0, 0))
        switch.enqueue_arrival(pk(1, 0, 0))
        assert not CGUPolicy().on_arrival(switch, pk(2, 0, 0)).accept


class TestInputSubphase:
    def test_one_transfer_per_busy_input(self, switch):
        switch.enqueue_arrival(pk(0, 0, 0))
        switch.enqueue_arrival(pk(1, 0, 1))
        switch.enqueue_arrival(pk(2, 2, 1))
        transfers = CGUPolicy().input_subphase(switch, 0, 0)
        srcs = [t.src for t in transfers]
        assert sorted(srcs) == [0, 2]
        assert len(set(srcs)) == len(srcs)

    def test_skips_full_crosspoints(self, switch):
        cgu = CGUPolicy()
        switch.enqueue_arrival(pk(0, 0, 1))
        switch.apply_input_subphase(cgu.input_subphase(switch, 0, 0))
        assert switch.cross_lengths()[0][1] == 1  # b_cross=1: now full
        switch.enqueue_arrival(pk(1, 0, 1))
        transfers = cgu.input_subphase(switch, 0, 1)
        assert all((t.src, t.dst) != (0, 1) for t in transfers)

    def test_never_preempts(self, switch):
        switch.enqueue_arrival(pk(0, 0, 0))
        transfers = CGUPolicy().input_subphase(switch, 0, 0)
        assert all(t.preempt is None for t in transfers)


class TestOutputSubphase:
    def test_transfers_to_each_output_with_room(self, switch):
        cgu = CGUPolicy()
        for pid, (i, j) in enumerate([(0, 0), (1, 1)]):
            switch.enqueue_arrival(pk(pid, i, j))
        switch.apply_input_subphase(cgu.input_subphase(switch, 0, 0))
        transfers = cgu.output_subphase(switch, 0, 0)
        assert {t.dst for t in transfers} == {0, 1}

    def test_skips_full_output_queues(self):
        config = SwitchConfig.square(2, b_in=2, b_out=1, b_cross=2)
        switch = CrossbarSwitch(config)
        cgu = CGUPolicy()
        for pid in range(2):
            switch.enqueue_arrival(pk(pid, pid, 0))
        switch.apply_input_subphase(cgu.input_subphase(switch, 0, 0))
        out1 = cgu.output_subphase(switch, 0, 0)
        switch.apply_output_subphase(out1)
        assert switch.out_lengths()[0] == 1  # full now
        assert cgu.output_subphase(switch, 0, 1) == []

    def test_one_transfer_per_output(self, switch):
        cgu = CGUPolicy()
        # Two crosspoints feed output 0.
        for pid, i in enumerate([0, 1]):
            switch.enqueue_arrival(pk(pid, i, 0))
        switch.apply_input_subphase(cgu.input_subphase(switch, 0, 0))
        transfers = cgu.output_subphase(switch, 0, 0)
        assert len(transfers) == 1


class TestEndToEnd:
    def test_faithfulness_on_random_traffic(self):
        config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(3, 3, load=1.2).generate(30, seed=5)
        res = run_crossbar(
            CheckedCGUPolicy(CGUPolicy()), config, trace, check_invariants=True
        )
        res.check_conservation()
        assert res.n_preempted == 0

    def test_underload_delivers_everything(self):
        config = SwitchConfig.square(3, speedup=2, b_in=8, b_out=8, b_cross=2)
        trace = BernoulliTraffic(3, 3, load=0.3).generate(30, seed=1)
        res = run_crossbar(CGUPolicy(), config, trace)
        assert res.n_sent == len(trace)

    def test_pipeline_latency_single_packet(self):
        """A lone packet crosses VOQ -> crosspoint -> output -> wire in
        one slot (input subphase, output subphase, transmission)."""
        from repro.traffic.trace import Trace

        config = SwitchConfig.square(2, b_in=1, b_out=1, b_cross=1)
        trace = Trace([Packet(0, 1.0, 0, 1, 0)], 2, 2)
        res = run_crossbar(CGUPolicy(), config, trace)
        assert res.n_sent == 1
