"""Unit tests for the Packet model."""

import pytest

from repro.switch.packet import Packet, total_value, validate_packets


class TestPacketConstruction:
    def test_basic_attributes(self):
        p = Packet(pid=1, value=2.5, arrival=3, src=0, dst=1)
        assert p.pid == 1
        assert p.value == 2.5
        assert p.arrival == 3
        assert p.src == 0
        assert p.dst == 1

    def test_value_coerced_to_float(self):
        p = Packet(0, 2, 0, 0, 0)
        assert isinstance(p.value, float)

    def test_rejects_zero_value(self):
        with pytest.raises(ValueError):
            Packet(0, 0.0, 0, 0, 0)

    def test_rejects_negative_value(self):
        with pytest.raises(ValueError):
            Packet(0, -1.0, 0, 0, 0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            Packet(0, 1.0, -1, 0, 0)

    def test_rejects_negative_ports(self):
        with pytest.raises(ValueError):
            Packet(0, 1.0, 0, -1, 0)
        with pytest.raises(ValueError):
            Packet(0, 1.0, 0, 0, -2)


class TestPacketOrdering:
    def test_higher_value_beats(self):
        a = Packet(0, 5.0, 0, 0, 0)
        b = Packet(1, 3.0, 0, 0, 0)
        assert a.beats(b)
        assert not b.beats(a)

    def test_tie_broken_by_smaller_pid(self):
        a = Packet(0, 5.0, 0, 0, 0)
        b = Packet(1, 5.0, 0, 0, 0)
        assert a.beats(b)
        assert not b.beats(a)

    def test_sort_key_orders_ascending_by_value(self):
        ps = [Packet(i, v, 0, 0, 0) for i, v in enumerate([3.0, 1.0, 2.0])]
        ordered = sorted(ps, key=lambda p: p.sort_key())
        assert [p.value for p in ordered] == [1.0, 2.0, 3.0]

    def test_equality_and_hash_by_pid(self):
        a = Packet(7, 1.0, 0, 0, 0)
        b = Packet(7, 2.0, 1, 1, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Packet(8, 1.0, 0, 0, 0)

    def test_equality_with_non_packet(self):
        assert Packet(0, 1.0, 0, 0, 0) != "packet"


class TestHelpers:
    def test_total_value(self):
        ps = [Packet(i, float(i + 1), 0, 0, 0) for i in range(4)]
        assert total_value(ps) == 10.0

    def test_total_value_empty(self):
        assert total_value([]) == 0.0

    def test_validate_sorts_by_arrival_then_pid(self):
        ps = [
            Packet(2, 1.0, 1, 0, 0),
            Packet(0, 1.0, 0, 0, 0),
            Packet(1, 1.0, 1, 0, 0),
        ]
        out = validate_packets(ps, 1, 1)
        assert [p.pid for p in out] == [0, 1, 2]

    def test_validate_rejects_duplicate_pid(self):
        ps = [Packet(0, 1.0, 0, 0, 0), Packet(0, 1.0, 1, 0, 0)]
        with pytest.raises(ValueError, match="duplicate"):
            validate_packets(ps, 1, 1)

    def test_validate_rejects_src_out_of_range(self):
        with pytest.raises(ValueError, match="src"):
            validate_packets([Packet(0, 1.0, 0, 2, 0)], 2, 2)

    def test_validate_rejects_dst_out_of_range(self):
        with pytest.raises(ValueError, match="dst"):
            validate_packets([Packet(0, 1.0, 0, 0, 5)], 2, 2)
