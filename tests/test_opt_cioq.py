"""Tests for the exact CIOQ offline optimum (time-expanded MILP)."""

import pytest

from repro.offline.bruteforce import bruteforce_cioq_opt_unit
from repro.offline.opt import cioq_opt, cioq_upper_bound
from repro.offline.timegraph import CIOQOptModel, default_horizon
from repro.simulation.engine import run_cioq
from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.trace import Trace
from repro.traffic.values import uniform_values


def trace_of(spec, n=2):
    """spec: (value, arrival, src, dst) tuples."""
    return Trace(
        [Packet(i, *s) for i, s in enumerate(spec)], n, n
    )


class TestHandInstances:
    def test_empty_trace(self, tiny_config):
        assert cioq_opt(Trace([], 2, 2), tiny_config).benefit == 0.0

    def test_single_packet(self, tiny_config):
        t = trace_of([(1.0, 0, 0, 1)])
        res = cioq_opt(t, tiny_config)
        assert res.benefit == 1.0
        assert res.n_delivered == 1

    def test_two_packets_same_voq_b1_one_slot(self, tiny_config):
        """Two simultaneous arrivals into a capacity-1 VOQ: one is lost."""
        t = trace_of([(1.0, 0, 0, 0), (1.0, 0, 0, 0)])
        res = cioq_opt(t, tiny_config)
        assert res.n_delivered == 1

    def test_two_packets_different_inputs_same_output(self, tiny_config):
        """Different VOQs, same output: both deliverable over two slots."""
        t = trace_of([(1.0, 0, 0, 0), (1.0, 0, 1, 0)])
        res = cioq_opt(t, tiny_config)
        assert res.n_delivered == 2

    def test_value_choice_under_capacity(self, tiny_config):
        """OPT keeps the valuable packet when both cannot survive."""
        t = trace_of([(1.0, 0, 0, 0), (9.0, 0, 0, 0)])
        res = cioq_opt(t, tiny_config)
        assert res.benefit == 9.0

    def test_matching_constraint_binds(self):
        """Two inputs, one output, one slot of arrivals, speedup 1:
        per cycle only one packet crosses; with a long horizon both
        still make it (sequential cycles)."""
        config = SwitchConfig.square(2, speedup=1, b_in=1, b_out=1)
        t = trace_of([(1.0, 0, 0, 0), (1.0, 0, 1, 0)])
        res = cioq_opt(t, config)
        assert res.n_delivered == 2

    def test_output_transmission_rate_binds(self):
        """N packets to one output need N slots to transmit; horizon
        cut short strands them."""
        config = SwitchConfig.square(2, speedup=2, b_in=2, b_out=2)
        t = trace_of([(1.0, 0, 0, 0), (1.0, 0, 0, 0), (1.0, 0, 1, 0),
                      (1.0, 0, 1, 0)])
        full = cioq_opt(t, config)
        assert full.n_delivered == 4
        cut = cioq_opt(t, config, horizon=2)
        assert cut.n_delivered == 2  # only two transmission slots exist

    def test_speedup_relieves_fabric_contention(self):
        # 2 inputs x 2 packets each, all to output 0, arriving each slot:
        # speedup 1 moves 1/cycle; speedup 2 moves 2 (different inputs).
        config1 = SwitchConfig.square(2, speedup=1, b_in=1, b_out=8)
        config2 = SwitchConfig.square(2, speedup=2, b_in=1, b_out=8)
        spec = []
        for t in range(4):
            spec.append((1.0, t, 0, 0))
            spec.append((1.0, t, 1, 0))
        t = trace_of(spec)
        r1 = cioq_opt(t, config1)
        r2 = cioq_opt(t, config2)
        assert r2.n_delivered >= r1.n_delivered
        assert r2.n_delivered == 8


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_unit_random_instances(self, seed, tiny_config):
        trace = BernoulliTraffic(2, 2, load=1.2).generate(3, seed=seed)
        bf = bruteforce_cioq_opt_unit(trace, tiny_config)
        milp = cioq_opt(trace, tiny_config)
        assert milp.n_delivered == bf

    @pytest.mark.parametrize("seed", range(4))
    def test_unit_bigger_buffers(self, seed):
        config = SwitchConfig.square(2, speedup=1, b_in=2, b_out=1)
        trace = BernoulliTraffic(2, 2, load=1.5).generate(3, seed=seed)
        bf = bruteforce_cioq_opt_unit(trace, config)
        milp = cioq_opt(trace, config)
        assert milp.n_delivered == bf

    @pytest.mark.parametrize("seed", range(3))
    def test_unit_speedup_two(self, seed):
        config = SwitchConfig.square(2, speedup=2, b_in=1, b_out=1)
        trace = BernoulliTraffic(2, 2, load=1.5).generate(3, seed=seed)
        bf = bruteforce_cioq_opt_unit(trace, config)
        milp = cioq_opt(trace, config)
        assert milp.n_delivered == bf


class TestStructuralProperties:
    def test_opt_dominates_every_online_policy(self, small_config):
        trace = BernoulliTraffic(
            3, 3, load=1.3, value_model=uniform_values(1, 20)
        ).generate(15, seed=17)
        opt = cioq_opt(trace, small_config)
        for policy in (GMPolicy(), PGPolicy()):
            onl = run_cioq(policy, small_config, trace)
            assert onl.benefit <= opt.benefit + 1e-6

    def test_relaxation_upper_bounds_exact(self, small_config):
        for seed in range(4):
            trace = BernoulliTraffic(3, 3, load=1.2).generate(10, seed=seed)
            exact = cioq_opt(trace, small_config).benefit
            relaxed = cioq_upper_bound(trace, small_config)
            assert exact <= relaxed + 1e-6

    def test_opt_monotone_in_buffers(self):
        trace = BernoulliTraffic(3, 3, load=1.5).generate(10, seed=5)
        small = SwitchConfig.square(3, b_in=1, b_out=1)
        big = SwitchConfig.square(3, b_in=3, b_out=3)
        assert (
            cioq_opt(trace, small).benefit <= cioq_opt(trace, big).benefit + 1e-9
        )

    def test_opt_monotone_in_speedup(self):
        trace = BernoulliTraffic(3, 3, load=1.5).generate(10, seed=5)
        s1 = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        s2 = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
        assert cioq_opt(trace, s1).benefit <= cioq_opt(trace, s2).benefit + 1e-9

    def test_horizon_validation(self, tiny_config):
        t = trace_of([(1.0, 5, 0, 0)])
        with pytest.raises(ValueError, match="horizon"):
            CIOQOptModel(t, tiny_config, horizon=5)

    def test_default_horizon_covers_drain(self, tiny_config):
        t = trace_of([(1.0, 0, 0, 0)])
        assert default_horizon(t, tiny_config) > 1

    def test_schedule_extraction_consistent(self, small_config):
        trace = BernoulliTraffic(3, 3, load=1.0).generate(8, seed=3)
        res = cioq_opt(trace, small_config, extract_schedule=True)
        assert len(res.departures) == res.n_delivered
        assert len(res.transmissions) == res.n_delivered
        for t, s, i, j in res.departures:
            assert 0 <= i < 3 and 0 <= j < 3
            assert 0 <= s < small_config.speedup


class TestBruteForceEdgeCases:
    """Degenerate inputs to the exhaustive oracle: empty trace, a single
    arrival slot, an all-drops burst, and the validation guards."""

    def test_empty_trace(self, tiny_config):
        assert bruteforce_cioq_opt_unit(Trace([], 2, 2), tiny_config) == 0

    def test_single_slot_single_packet(self, tiny_config):
        t = trace_of([(1.0, 0, 0, 1)])
        assert bruteforce_cioq_opt_unit(t, tiny_config) == 1

    def test_all_drops_window(self, tiny_config):
        """A burst of 6 same-slot arrivals into one capacity-1 VOQ:
        all but one drop, and the MILP agrees with the oracle."""
        t = trace_of([(1.0, 0, 0, 0)] * 6)
        bf = bruteforce_cioq_opt_unit(t, tiny_config)
        assert bf == 1
        assert cioq_opt(t, tiny_config).n_delivered == bf

    def test_single_slot_full_fanout(self, tiny_config):
        """One packet per VOQ in one slot: all four deliverable."""
        t = trace_of([(1.0, 0, i, j) for i in range(2) for j in range(2)])
        bf = bruteforce_cioq_opt_unit(t, tiny_config)
        assert bf == 4
        assert cioq_opt(t, tiny_config).n_delivered == bf

    def test_rejects_weighted_trace(self, tiny_config):
        t = trace_of([(2.5, 0, 0, 1)])
        with pytest.raises(ValueError, match="unit-value"):
            bruteforce_cioq_opt_unit(t, tiny_config)

    def test_rejects_large_switch(self):
        config = SwitchConfig.square(5, speedup=1, b_in=1, b_out=1)
        t = Trace([Packet(0, 1.0, 0, 0, 0)], 5, 5)
        with pytest.raises(ValueError, match="4x4"):
            bruteforce_cioq_opt_unit(t, config)
