"""Package-level tests: public API surface, metadata, docs consistency."""

import pathlib

import pytest

import repro

ROOT = pathlib.Path(repro.__file__).resolve().parent.parent.parent


class TestMetadata:
    def test_version(self):
        assert repro.__version__
        assert repro.PAPER.startswith("Kamal Al-Bawani")
        assert "SPAA 2016" in repro.PAPER

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_core_api_importable_from_top_level(self):
        from repro import (  # noqa: F401
            CGUPolicy,
            CPGPolicy,
            GMPolicy,
            PGPolicy,
            SwitchConfig,
            cioq_opt,
            crossbar_opt,
            run_cioq,
            run_crossbar,
        )

    def test_subpackages_have_docstrings(self):
        import repro.analysis
        import repro.core
        import repro.offline
        import repro.scheduling
        import repro.simulation
        import repro.stats
        import repro.switch
        import repro.theory
        import repro.traffic

        for mod in (
            repro,
            repro.analysis,
            repro.core,
            repro.offline,
            repro.scheduling,
            repro.simulation,
            repro.stats,
            repro.switch,
            repro.theory,
            repro.traffic,
        ):
            assert mod.__doc__ and len(mod.__doc__) > 20


class TestDocsConsistency:
    """The documentation must reference artifacts that actually exist."""

    @pytest.fixture(scope="class")
    def bench_files(self):
        return {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}

    def test_design_md_bench_targets_exist(self, bench_files):
        text = (ROOT / "DESIGN.md").read_text()
        import re

        for name in set(re.findall(r"bench_[a-z0-9_]+\.py", text)):
            assert name in bench_files, f"DESIGN.md references missing {name}"

    def test_experiments_md_bench_targets_exist(self, bench_files):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        import re

        for name in set(re.findall(r"bench_[a-z0-9_]+\.py", text)):
            assert name in bench_files, (
                f"EXPERIMENTS.md references missing {name}"
            )

    def test_readme_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        import re

        for name in set(re.findall(r"examples/([a-z0-9_]+\.py)", text)):
            assert (ROOT / "examples" / name).exists(), (
                f"README references missing examples/{name}"
            )

    def test_every_experiment_module_documented(self, bench_files):
        """Each bench module appears in EXPERIMENTS.md or README.md
        (bench_engine is substrate-only and exempt)."""
        documented = (ROOT / "EXPERIMENTS.md").read_text() + (
            ROOT / "README.md"
        ).read_text()
        for name in bench_files:
            if name == "bench_engine.py":
                continue
            assert name.replace(".py", "") in documented or name in documented, (
                f"{name} is not documented"
            )

    def test_scenario_registry_matches_docs(self):
        """Every registered scenario has a `### <name>` section in
        docs/scenarios.md, and every documented section names a
        registered scenario — the catalog and the registry cannot
        drift apart."""
        import re

        from repro.scenarios import scenario_names

        text = (ROOT / "docs" / "scenarios.md").read_text()
        documented = set(re.findall(r"^### ([a-z0-9-]+)\s*$", text,
                                    flags=re.MULTILINE))
        registered = set(scenario_names())
        assert registered - documented == set(), (
            f"scenarios missing from docs/scenarios.md: "
            f"{sorted(registered - documented)}"
        )
        assert documented - registered == set(), (
            f"docs/scenarios.md documents unregistered scenarios: "
            f"{sorted(documented - registered)}"
        )

    def test_documented_cli_verbs_exist(self):
        """Every `python -m repro.cli <verb>` (and `repro scenarios
        <subverb>`) mentioned in the docs must exist in the parser."""
        import argparse
        import re

        from repro.cli import build_parser

        def subcommands(parser):
            for action in parser._actions:
                if isinstance(action, argparse._SubParsersAction):
                    return action.choices
            return {}

        parser = build_parser()
        verbs = subcommands(parser)
        scenario_verbs = subcommands(verbs["scenarios"])
        stats_verbs = subcommands(verbs["stats"])
        obs_verbs = subcommands(verbs["obs"])
        farm_verbs = subcommands(verbs["farm"])

        docs = "".join(
            p.read_text()
            for p in (ROOT / "README.md", ROOT / "EXPERIMENTS.md",
                      ROOT / "docs" / "scenarios.md",
                      ROOT / "docs" / "traffic_models.md",
                      ROOT / "docs" / "statistics.md",
                      ROOT / "docs" / "observability.md",
                      ROOT / "docs" / "parallel.md")
        )
        for verb in set(re.findall(r"python -m repro\.cli (\w+)", docs)):
            assert verb in verbs, f"docs reference unknown CLI verb {verb!r}"
        for sub in set(re.findall(r"repro(?:\.cli)? scenarios (\w+)", docs)):
            assert sub in scenario_verbs, (
                f"docs reference unknown `scenarios` subcommand {sub!r}"
            )
        for sub in set(re.findall(r"repro(?:\.cli)? stats (\w+)", docs)):
            assert sub in stats_verbs, (
                f"docs reference unknown `stats` subcommand {sub!r}"
            )
        for sub in set(re.findall(r"repro(?:\.cli)? obs (\w+)", docs)):
            assert sub in obs_verbs, (
                f"docs reference unknown `obs` subcommand {sub!r}"
            )
        for sub in set(re.findall(r"repro(?:\.cli)? farm (\w+)", docs)):
            assert sub in farm_verbs, (
                f"docs reference unknown `farm` subcommand {sub!r}"
            )

    def test_statistics_docs_match_code(self):
        """docs/statistics.md must document every summary column and
        every replicates-block key — the statistics reference and the
        code cannot drift apart (mirrors the scenario-catalog test)."""
        from repro.scenarios.spec import REPLICATES_DEFAULTS
        from repro.stats import SUMMARY_COLUMNS

        text = (ROOT / "docs" / "statistics.md").read_text()
        for column in SUMMARY_COLUMNS:
            assert f"`{column}`" in text, (
                f"docs/statistics.md does not document summary column "
                f"{column!r}"
            )
        for key in list(REPLICATES_DEFAULTS) + ["target_half_width"]:
            assert f"`{key}`" in text, (
                f"docs/statistics.md does not document replicates key "
                f"{key!r}"
            )

    def test_traffic_and_value_kinds_documented(self):
        """docs/traffic_models.md must cover every spec-addressable
        traffic kind and value kind."""
        from repro.scenarios import TRAFFIC_KINDS, VALUE_KINDS

        text = (ROOT / "docs" / "traffic_models.md").read_text()
        for kind in list(TRAFFIC_KINDS) + list(VALUE_KINDS):
            assert f"`{kind}`" in text, (
                f"docs/traffic_models.md does not document kind {kind!r}"
            )

    def test_backend_registry_matches_docs(self):
        """Every registered backend has a `### <name>` section in
        docs/backends.md and vice versa — the backend reference and the
        registry cannot drift apart (mirrors the scenario-catalog
        test)."""
        import re

        from repro.simulation.backends import BACKENDS

        text = (ROOT / "docs" / "backends.md").read_text()
        documented = set(re.findall(r"^### ([a-z0-9-]+)\s*$", text,
                                    flags=re.MULTILINE))
        registered = set(BACKENDS)
        assert registered - documented == set(), (
            f"backends missing from docs/backends.md: "
            f"{sorted(registered - documented)}"
        )
        assert documented - registered == set(), (
            f"docs/backends.md documents unregistered backends: "
            f"{sorted(documented - registered)}"
        )

    def test_bench_engine_snapshot_committed_and_sane(self):
        """BENCH_engine.json (written by benchmarks/bench_engine.py)
        must be committed, deterministic in shape (sorted keys, trailing
        newline, no timestamps), cover the advertised grid, and show the
        fast backend's headline speedup (>=10x on some N>=32 row)."""
        import json

        path = ROOT / "BENCH_engine.json"
        assert path.exists(), (
            "BENCH_engine.json is missing; regenerate with "
            "`python benchmarks/bench_engine.py`"
        )
        raw = path.read_text()
        snapshot = json.loads(raw)
        canonical = json.dumps(snapshot, indent=2, sort_keys=True,
                               allow_nan=False) + "\n"
        assert raw == canonical, (
            "BENCH_engine.json is not in canonical form "
            "(indent=2, sort_keys, trailing newline)"
        )
        assert "time" not in str(sorted(snapshot)) and "date" not in str(
            sorted(snapshot)
        )
        assert snapshot["schema"] == 1
        rows = snapshot["rows"]
        for row in rows:
            assert set(row) == {
                "policy", "model", "n_ports", "batch", "arrival_slots",
                "reference_slots_per_sec", "fast_slots_per_sec", "speedup",
            }
            assert row["speedup"] > 0
        cells = {(r["policy"], r["n_ports"]) for r in rows}
        for n in (8, 32, 64, 128, 256):
            for policy in ("gm", "pg", "cgu"):
                assert (policy, n) in cells, f"missing bench cell {policy}@{n}"
        best = max(r["speedup"] for r in rows if r["n_ports"] >= 32)
        assert best >= 10.0, (
            f"fast backend's best large-N speedup regressed to {best}x"
        )

    def test_opt_modes_match_docs(self):
        """Every registered OPT solver mode has a `### <mode>` section in
        docs/offline_opt.md and vice versa — the solver-mode reference
        and the dispatch table cannot drift apart (mirrors the backend
        and scenario catalog tests)."""
        import re

        from repro.offline.opt import OPT_MODES

        text = (ROOT / "docs" / "offline_opt.md").read_text()
        documented = set(re.findall(r"^### ([a-z0-9-]+)\s*$", text,
                                    flags=re.MULTILINE))
        registered = set(OPT_MODES)
        assert registered - documented == set(), (
            f"OPT modes missing from docs/offline_opt.md: "
            f"{sorted(registered - documented)}"
        )
        assert documented - registered == set(), (
            f"docs/offline_opt.md documents unregistered OPT modes: "
            f"{sorted(documented - registered)}"
        )

    def test_bench_opt_snapshot_committed_and_sane(self):
        """BENCH_opt.json (written by benchmarks/bench_opt.py) must be
        committed, canonical in form, cover the advertised grid (exact
        comparison cells, <= 5% scenario width cells, N in {8, 16, 64}
        scale cells with horizons up to 10^6), and demonstrate the
        headline >= 10x speedup of the scalable modes over exact."""
        import json

        path = ROOT / "BENCH_opt.json"
        assert path.exists(), (
            "BENCH_opt.json is missing; regenerate with "
            "`python benchmarks/bench_opt.py`"
        )
        raw = path.read_text()
        snapshot = json.loads(raw)
        canonical = json.dumps(snapshot, indent=2, sort_keys=True,
                               allow_nan=False) + "\n"
        assert raw == canonical, (
            "BENCH_opt.json is not in canonical form "
            "(indent=2, sort_keys, trailing newline)"
        )
        assert snapshot["schema"] == 1
        rows = snapshot["rows"]
        keys = {
            "cell", "kind", "model", "n_ports", "arrival_slots",
            "workload", "window", "exact_status", "exact_seconds",
            "windowed_seconds", "bounds_seconds",
            "windowed_width_vs_exact", "bounds_width_vs_exact",
            "windowed_rel_width", "bounds_rel_width",
            "speedup_windowed", "speedup_bounds",
            "speedup_floor_vs_exact",
        }
        for row in rows:
            assert set(row) == keys, f"schema drift in cell {row.get('cell')}"
        by_kind = {}
        for row in rows:
            by_kind.setdefault(row["kind"], []).append(row)

        # Comparison cells: exact measured, and the scalable modes beat
        # it by >= 10x where they ran.
        comparison = by_kind["comparison"]
        assert all(r["exact_status"] == "measured" for r in comparison)
        best_measured = max(
            r["speedup_bounds"] for r in comparison if r["speedup_bounds"]
        )
        assert best_measured >= 10.0, (
            f"measured bounds-vs-exact speedup regressed to {best_measured}x"
        )

        # Scenario cells: certified widths within 5% of exact OPT on the
        # builtin non-adversarial scenarios.
        scenarios = by_kind["scenario"]
        assert len(scenarios) >= 3
        for row in scenarios:
            assert row["exact_status"] == "measured"
            assert row["windowed_width_vs_exact"] <= 0.05, (
                f"windowed bracket too wide on {row['cell']}: "
                f"{row['windowed_width_vs_exact']}"
            )

        # Scale cells: exact infeasible, N in {8, 16, 64}, horizons up
        # to 10^6 slots, and a certified >= 10x speedup floor.
        scale = by_kind["scale"]
        assert all(r["exact_status"] == "infeasible" for r in scale)
        assert all(r["exact_seconds"] is None for r in scale)
        ports = {r["n_ports"] for r in scale}
        assert {8, 16, 64} <= ports, f"missing scale port counts: {ports}"
        assert max(r["arrival_slots"] for r in scale) >= 10**6
        floors = [r["speedup_floor_vs_exact"] for r in scale
                  if r["speedup_floor_vs_exact"] is not None]
        assert floors and max(floors) >= 10.0, (
            f"certified speedup floor regressed: {floors}"
        )

    def test_metric_catalog_matches_docs(self):
        """Every metric in ``repro.obs.METRIC_CATALOG`` has a
        `### <name>` section in docs/observability.md and vice versa —
        the metric reference and the catalog cannot drift apart
        (mirrors the scenario/backend/OPT catalog tests)."""
        import re

        from repro.obs import METRIC_CATALOG

        text = (ROOT / "docs" / "observability.md").read_text()
        documented = set(re.findall(r"^### ([a-z0-9_-]+)\s*$", text,
                                    flags=re.MULTILINE))
        registered = set(METRIC_CATALOG)
        assert registered - documented == set(), (
            f"metrics missing from docs/observability.md: "
            f"{sorted(registered - documented)}"
        )
        assert documented - registered == set(), (
            f"docs/observability.md documents uncatalogued metrics: "
            f"{sorted(documented - registered)}"
        )

    def test_bench_obs_snapshot_committed_and_sane(self):
        """BENCH_obs.json (written by benchmarks/bench_obs.py) must be
        committed, canonical in form, cover gm/cgu on both backends,
        respect the overhead budgets (off <= 5%, on <= 25%), and attest
        that no recorder mode perturbed a payload field."""
        import json

        path = ROOT / "BENCH_obs.json"
        assert path.exists(), (
            "BENCH_obs.json is missing; regenerate with "
            "`python benchmarks/bench_obs.py`"
        )
        raw = path.read_text()
        snapshot = json.loads(raw)
        canonical = json.dumps(snapshot, indent=2, sort_keys=True,
                               allow_nan=False) + "\n"
        assert raw == canonical, (
            "BENCH_obs.json is not in canonical form "
            "(indent=2, sort_keys, trailing newline)"
        )
        assert snapshot["schema"] == 1
        budgets = snapshot["budgets"]
        assert budgets == {"off_overhead_pct": 5.0, "on_overhead_pct": 25.0}
        rows = snapshot["rows"]
        for row in rows:
            assert set(row) == {
                "policy", "model", "backend", "n_ports", "batch",
                "arrival_slots", "base_slots_per_sec",
                "off_overhead_pct", "on_overhead_pct",
                "payloads_identical",
            }
            assert row["payloads_identical"] is True
            assert row["off_overhead_pct"] <= budgets["off_overhead_pct"], (
                f"{row['policy']}/{row['backend']}: committed off "
                f"overhead {row['off_overhead_pct']}% exceeds budget"
            )
            assert row["on_overhead_pct"] <= budgets["on_overhead_pct"], (
                f"{row['policy']}/{row['backend']}: committed on "
                f"overhead {row['on_overhead_pct']}% exceeds budget"
            )
        cells = {(r["policy"], r["backend"]) for r in rows}
        for policy in ("gm", "cgu"):
            for backend in ("reference", "fast"):
                assert (policy, backend) in cells, (
                    f"missing obs bench cell {policy}/{backend}"
                )

    def test_bench_farm_snapshot_committed_and_sane(self):
        """BENCH_farm.json (written by benchmarks/bench_farm.py) must be
        committed, canonical in form, show a >= 4x resume speedup at 75%
        store hits, a <= 5% persistent-pool spawn overhead across ten
        run() calls, and attest cold/warm/resumed payload identity."""
        import json

        path = ROOT / "BENCH_farm.json"
        assert path.exists(), (
            "BENCH_farm.json is missing; regenerate with "
            "`python benchmarks/bench_farm.py`"
        )
        raw = path.read_text()
        snapshot = json.loads(raw)
        canonical = json.dumps(snapshot, indent=2, sort_keys=True,
                               allow_nan=False) + "\n"
        assert raw == canonical, (
            "BENCH_farm.json is not in canonical form "
            "(indent=2, sort_keys, trailing newline)"
        )
        assert snapshot["schema"] == 1
        budgets = snapshot["budgets"]
        assert budgets == {"resume_speedup_min": 4.0,
                           "pool_overhead_pct_max": 5.0}
        sweep = snapshot["sweep"]
        assert sweep["cached_fraction"] == 0.75
        assert sweep["payloads_identical"] is True
        assert sweep["resume_speedup_vs_cold"] >= budgets[
            "resume_speedup_min"], (
            f"committed resume speedup {sweep['resume_speedup_vs_cold']}x "
            f"is below the {budgets['resume_speedup_min']}x budget"
        )
        pool = snapshot["pool"]
        assert pool["runs"] == 10 and pool["workers"] >= 2
        assert pool["spawn_overhead_pct"] <= budgets[
            "pool_overhead_pct_max"], (
            f"committed pool spawn overhead {pool['spawn_overhead_pct']}% "
            f"exceeds the {budgets['pool_overhead_pct_max']}% budget"
        )

    def test_paper_mapping_module_references_resolve(self):
        """Every `repro.x.y` dotted path in docs/paper_mapping.md must
        import."""
        import importlib
        import re

        text = (ROOT / "docs" / "paper_mapping.md").read_text()
        for dotted in set(re.findall(r"`(repro(?:\.[a-z_]+)+)", text)):
            parts = dotted.split(".")
            # Find the longest importable module prefix, then resolve
            # the remaining attributes.
            for cut in range(len(parts), 0, -1):
                try:
                    obj = importlib.import_module(".".join(parts[:cut]))
                    break
                except ImportError:
                    continue
            else:  # pragma: no cover
                raise AssertionError(f"cannot import any prefix of {dotted}")
            for attr in parts[cut:]:
                assert hasattr(obj, attr), (
                    f"paper_mapping.md references missing {dotted}"
                )
                obj = getattr(obj, attr)
