"""Smoke tests: every example script runs to completion."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def _run_example(path, capsys):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = mod
    try:
        spec.loader.exec_module(mod)
        mod.main()
    finally:
        sys.modules.pop(path.stem, None)
    return capsys.readouterr().out


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_and_prints(path, capsys):
    out = _run_example(path, capsys)
    assert len(out) > 100  # produced a real report


def test_quickstart_reports_all_four_algorithms(capsys):
    path = next(p for p in EXAMPLES if p.stem == "quickstart")
    out = _run_example(path, capsys)
    for name in ("GM", "PG", "CGU", "CPG"):
        assert name in out
