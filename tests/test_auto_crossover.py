"""The auto backend's size/policy crossover heuristic.

BENCH_engine.json records PG on an 8x8 switch running *slower* on the
vectorized kernel than on the reference one (0.94x), while every
measured policy wins from 32 ports up.  ``backend="auto"`` therefore
dispatches below-crossover PG runs straight to the reference kernel.
These tests pin the heuristic itself and — by poisoning the fast-path
loader — prove the fast kernel is never even imported for such runs.
"""

from functools import partial

import pytest

from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.simulation import engine
from repro.simulation.backends import (
    AUTO_CROSSOVER,
    auto_prefers_reference,
)
from repro.simulation.engine import run_cioq, run_cioq_batch
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import uniform_values


def _trace(n, slots=12, seed=0):
    return BernoulliTraffic(
        n, n, load=1.2, value_model=uniform_values(1, 10)
    ).generate(slots, seed=seed)


def _config(n):
    return SwitchConfig.square(n, speedup=1, b_in=2, b_out=2, b_cross=1)


class TestHeuristic:
    def test_pg_below_crossover_prefers_reference(self):
        assert auto_prefers_reference(PGPolicy(beta=2.0), _config(8))

    def test_pg_at_crossover_uses_fast(self):
        n = AUTO_CROSSOVER["PGPolicy"]
        assert not auto_prefers_reference(PGPolicy(beta=2.0), _config(n))

    def test_unlisted_policy_always_tries_fast(self):
        assert not auto_prefers_reference(GMPolicy(), _config(2))

    def test_rectangular_switch_uses_larger_side(self):
        config = SwitchConfig(n_in=4, n_out=32, speedup=1,
                              b_in=2, b_out=2, b_cross=1)
        assert not auto_prefers_reference(PGPolicy(beta=2.0), config)


class TestDispatch:
    """Poison the fast-path loader: a below-crossover auto run must
    succeed without ever importing the fast kernel."""

    @pytest.fixture
    def poisoned_fastpath(self, monkeypatch):
        def boom():
            raise AssertionError("fast path touched below the crossover")

        monkeypatch.setattr(engine, "load_fastpath", boom)

    def test_single_run_skips_fastpath(self, poisoned_fastpath):
        config, trace = _config(8), _trace(8)
        res = run_cioq(PGPolicy(beta=2.0), config, trace, backend="auto")
        ref = run_cioq(PGPolicy(beta=2.0), config, trace,
                       backend="reference")
        assert res.benefit == ref.benefit
        assert res.n_sent == ref.n_sent

    def test_batch_run_skips_fastpath(self, poisoned_fastpath):
        config = _config(8)
        traces = [_trace(8, seed=s) for s in range(3)]
        factory = partial(PGPolicy, beta=2.0)
        batch = run_cioq_batch(factory, config, traces, backend="auto")
        refs = [run_cioq(factory(), config, t, backend="reference")
                for t in traces]
        assert [r.benefit for r in batch] == [r.benefit for r in refs]

    def test_explicit_fast_bypasses_heuristic(self, poisoned_fastpath):
        # backend="fast" must honor the explicit request: it reaches
        # the (poisoned) loader even below the crossover.
        with pytest.raises(AssertionError, match="fast path touched"):
            run_cioq(PGPolicy(beta=2.0), _config(8), _trace(8),
                     backend="fast")

    def test_above_crossover_reaches_fastpath(self, poisoned_fastpath):
        with pytest.raises(AssertionError, match="fast path touched"):
            run_cioq(PGPolicy(beta=2.0), _config(16), _trace(16),
                     backend="auto")


@pytest.mark.skipif(
    not pytest.importorskip("repro.simulation.backends").numpy_available(),
    reason="numpy required for the fast-kernel identity check",
)
def test_crossover_never_changes_results():
    """The heuristic is scheduling only: auto (reference kernel) and
    fast (vectorized kernel) agree bit-for-bit below the crossover."""
    config, trace = _config(8), _trace(8)
    auto = run_cioq(PGPolicy(beta=2.0), config, trace, backend="auto")
    fast = run_cioq(PGPolicy(beta=2.0), config, trace, backend="fast")
    assert auto.as_payload() == fast.as_payload()
