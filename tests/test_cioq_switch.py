"""Unit tests for the CIOQ switch state machine."""

import pytest

from repro.switch.cioq import CIOQSwitch, ScheduleError, Transfer
from repro.switch.cioq import greedy_head_transmissions
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet


@pytest.fixture
def switch():
    return CIOQSwitch(SwitchConfig.square(3, b_in=2, b_out=2))


def pk(pid, src, dst, value=1.0):
    return Packet(pid, value, 0, src, dst)


class TestStructure:
    def test_queue_grid_dimensions(self, switch):
        assert len(switch.voq) == 3
        assert all(len(row) == 3 for row in switch.voq)
        assert len(switch.out) == 3

    def test_asymmetric_dimensions(self):
        s = CIOQSwitch(SwitchConfig(n_in=2, n_out=4))
        assert len(s.voq) == 2
        assert len(s.voq[0]) == 4
        assert len(s.out) == 4

    def test_initially_drained(self, switch):
        assert switch.is_drained()
        assert switch.buffered_packets() == []

    def test_enqueue_and_lengths(self, switch):
        switch.enqueue_arrival(pk(0, 1, 2))
        assert switch.voq_lengths()[1][2] == 1
        assert not switch.is_drained()
        assert len(switch.buffered_packets()) == 1


class TestTransfers:
    def test_valid_transfer_moves_packet(self, switch):
        p = pk(0, 0, 1)
        switch.enqueue_arrival(p)
        switch.apply_transfers([Transfer(0, 1, p)])
        assert switch.voq_lengths()[0][1] == 0
        assert switch.out_lengths()[1] == 1

    def test_rejects_duplicate_input_port(self, switch):
        a, b = pk(0, 0, 0), pk(1, 0, 1)
        switch.enqueue_arrival(a)
        switch.enqueue_arrival(b)
        with pytest.raises(ScheduleError, match="input port"):
            switch.apply_transfers([Transfer(0, 0, a), Transfer(0, 1, b)])

    def test_rejects_duplicate_output_port(self, switch):
        a, b = pk(0, 0, 1), pk(1, 2, 1)
        switch.enqueue_arrival(a)
        switch.enqueue_arrival(b)
        with pytest.raises(ScheduleError, match="output port"):
            switch.apply_transfers([Transfer(0, 1, a), Transfer(2, 1, b)])

    def test_rejects_packet_not_in_voq(self, switch):
        with pytest.raises(ScheduleError, match="not in VOQ"):
            switch.apply_transfers([Transfer(0, 1, pk(0, 0, 1))])

    def test_rejects_transfer_into_full_output_without_preempt(self, switch):
        for pid in range(2):
            switch.enqueue_arrival(pk(pid, 0, 1))
        p1 = switch.voq[0][1].head()
        switch.apply_transfers([Transfer(0, 1, p1)])
        p2 = switch.voq[0][1].head()
        switch.apply_transfers([Transfer(0, 1, p2)])
        switch.enqueue_arrival(pk(2, 0, 1))
        p3 = switch.voq[0][1].head()
        with pytest.raises(ScheduleError, match="full"):
            switch.apply_transfers([Transfer(0, 1, p3)])

    def test_transfer_with_preemption(self):
        switch = CIOQSwitch(SwitchConfig.square(2, b_in=2, b_out=1))
        cheap = pk(0, 0, 0, value=1.0)
        rich = pk(1, 0, 0, value=9.0)
        switch.enqueue_arrival(cheap)
        switch.apply_transfers([Transfer(0, 0, cheap)])
        switch.enqueue_arrival(rich)
        switch.apply_transfers([Transfer(0, 0, rich, preempt=cheap)])
        assert switch.out_lengths()[0] == 1
        assert switch.out[0].head().pid == 1

    def test_preemption_victim_must_be_present(self, switch):
        p = pk(0, 0, 1)
        switch.enqueue_arrival(p)
        ghost = pk(9, 0, 1)
        with pytest.raises(ScheduleError, match="victim"):
            switch.apply_transfers([Transfer(0, 1, p, preempt=ghost)])

    def test_out_of_range_ports(self, switch):
        p = pk(0, 0, 1)
        switch.enqueue_arrival(p)
        with pytest.raises(ScheduleError):
            switch.apply_transfers([Transfer(5, 1, p)])

    def test_empty_transfer_list_is_noop(self, switch):
        switch.apply_transfers([])
        assert switch.is_drained()


class TestTransmission:
    def test_transmit_removes_and_returns(self, switch):
        p = pk(0, 0, 1)
        switch.enqueue_arrival(p)
        switch.apply_transfers([Transfer(0, 1, p)])
        sent = switch.transmit({1: p})
        assert sent == [p]
        assert switch.is_drained()

    def test_transmit_missing_packet_raises(self, switch):
        with pytest.raises(ScheduleError):
            switch.transmit({0: pk(0, 0, 0)})

    def test_transmit_bad_port_raises(self, switch):
        with pytest.raises(ScheduleError):
            switch.transmit({7: pk(0, 0, 0)})

    def test_greedy_head_transmissions_selects_heads(self, switch):
        a = pk(0, 0, 1, value=2.0)
        b = pk(1, 1, 1, value=5.0)
        switch.enqueue_arrival(a)
        switch.enqueue_arrival(b)
        switch.apply_transfers([Transfer(0, 1, a)])
        switch.apply_transfers([Transfer(1, 1, b)])
        sel = greedy_head_transmissions(switch)
        assert set(sel) == {1}
        assert sel[1].pid == 1  # the more valuable packet

    def test_greedy_head_skips_empty_queues(self, switch):
        assert greedy_head_transmissions(switch) == {}
