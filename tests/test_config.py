"""Unit tests for SwitchConfig."""

import pytest

from repro.switch.config import SwitchConfig


class TestValidation:
    def test_square_constructor(self):
        c = SwitchConfig.square(4, speedup=2, b_in=3, b_out=5, b_cross=2)
        assert c.n_in == 4 and c.n_out == 4
        assert c.speedup == 2
        assert (c.b_in, c.b_out, c.b_cross) == (3, 5, 2)
        assert c.is_square

    def test_asymmetric_switch_supported(self):
        c = SwitchConfig(n_in=4, n_out=2)
        assert not c.is_square

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            SwitchConfig(n_in=0, n_out=2)
        with pytest.raises(ValueError):
            SwitchConfig(n_in=2, n_out=0)

    def test_rejects_zero_speedup(self):
        with pytest.raises(ValueError):
            SwitchConfig(n_in=2, n_out=2, speedup=0)

    @pytest.mark.parametrize("field", ["b_in", "b_out", "b_cross"])
    def test_rejects_zero_capacities(self, field):
        kwargs = {"n_in": 2, "n_out": 2, field: 0}
        with pytest.raises(ValueError):
            SwitchConfig(**kwargs)

    def test_frozen(self):
        c = SwitchConfig.square(2)
        with pytest.raises(Exception):
            c.n_in = 5

    def test_cycles(self):
        c = SwitchConfig.square(2, speedup=3)
        assert c.cycles(10) == 30

    def test_defaults(self):
        c = SwitchConfig(n_in=2, n_out=3)
        assert c.speedup == 1
        assert c.b_in == 8 and c.b_out == 8 and c.b_cross == 1
