"""Tests for the Markov-modulated, Pareto-burst and replay traffic
models: determinism given the seed, port/slot invariants, and
composition with the trace transforms."""

import numpy as np
import pytest

from repro.traffic import (
    BernoulliTraffic,
    MarkovModulatedTraffic,
    ParetoBurstTraffic,
    Trace,
    TraceReplayTraffic,
    merge,
    time_dilate,
    two_value,
)

N_IN, N_OUT, SLOTS = 4, 3, 40


def _models():
    return [
        MarkovModulatedTraffic(N_IN, N_OUT, loads=(0.2, 1.0, 2.5)),
        ParetoBurstTraffic(N_IN, N_OUT, shape=1.5, p_start=0.2),
        TraceReplayTraffic(
            BernoulliTraffic(N_IN, N_OUT, load=1.2).generate(SLOTS, seed=9),
            repeat=True,
        ),
    ]


@pytest.mark.parametrize("model", _models(), ids=lambda m: m.name)
class TestNewModelContracts:
    def test_deterministic_given_seed(self, model):
        a = model.generate(SLOTS, seed=3)
        b = model.generate(SLOTS, seed=3)
        assert a.to_json() == b.to_json()

    def test_port_and_slot_invariants(self, model):
        t = model.generate(SLOTS, seed=1)
        assert (t.n_in, t.n_out) == (N_IN, N_OUT)
        assert t.n_slots <= SLOTS
        for p in t.packets:
            assert 0 <= p.src < N_IN
            assert 0 <= p.dst < N_OUT
            assert 0 <= p.arrival < SLOTS
            assert p.value > 0

    def test_pids_are_arrival_ordered(self, model):
        t = model.generate(SLOTS, seed=2)
        pids = [p.pid for p in t.packets]
        assert pids == list(range(len(pids)))
        arrivals = [p.arrival for p in t.packets]
        assert arrivals == sorted(arrivals)

    def test_merge_transform_composes(self, model):
        base = BernoulliTraffic(N_IN, N_OUT, load=0.5).generate(SLOTS, seed=0)
        t = model.generate(SLOTS, seed=1)
        m = merge(t, base)
        assert len(m) == len(t) + len(base)
        assert (m.n_in, m.n_out) == (N_IN, N_OUT)
        assert abs(m.total_value - t.total_value - base.total_value) < 1e-9

    def test_time_dilate_transform_composes(self, model):
        t = model.generate(SLOTS, seed=1)
        d = time_dilate(t, 3)
        assert len(d) == len(t)
        if len(t):
            assert d.n_slots == (t.n_slots - 1) * 3 + 1
        by_slot = sorted(p.arrival for p in d.packets)
        assert all(a % 3 == 0 for a in by_slot)


class TestMarkovModulated:
    def test_seed_changes_trace(self):
        m = MarkovModulatedTraffic(4, 4)
        assert m.generate(30, seed=0).to_json() != m.generate(30, seed=1).to_json()

    def test_two_state_mean_load_tracks_stationary(self):
        # 50/50 stationary split between rates 0 and 2 -> mean load ~1.
        m = MarkovModulatedTraffic(
            4, 4, loads=(0.0, 2.0),
            transition=[[0.8, 0.2], [0.2, 0.8]],
        )
        t = m.generate(600, seed=7)
        assert t.offered_load() == pytest.approx(1.0, rel=0.2)

    def test_single_state_is_bernoulli_like(self):
        m = MarkovModulatedTraffic(3, 3, loads=(0.5,), transition=[[1.0]])
        t = m.generate(400, seed=1)
        assert t.offered_load() == pytest.approx(0.5, rel=0.2)

    def test_value_model_applies(self):
        m = MarkovModulatedTraffic(3, 3, loads=(1.0,),
                                   value_model=two_value(7.0, 0.5))
        vals = {p.value for p in m.generate(50, seed=0).packets}
        assert vals <= {1.0, 7.0} and len(vals) == 2

    def test_dst_weights_respected(self):
        m = MarkovModulatedTraffic(
            3, 3, loads=(1.0,), transition=[[1.0]],
            dst_weights=[1.0, 0.0, 0.0],
        )
        t = m.generate(40, seed=0)
        assert len(t) > 0
        assert all(p.dst == 0 for p in t.packets)

    def test_stationary_distribution_of_periodic_chain(self):
        # Period-2 chain: plain power iteration oscillates; the lazy
        # iteration must still find pi = (1/2, 1/4, 1/4).
        from repro.traffic.markov import _stationary

        pi = _stationary(np.array([[0.0, 0.5, 0.5],
                                   [1.0, 0.0, 0.0],
                                   [1.0, 0.0, 0.0]]))
        assert pi == pytest.approx([0.5, 0.25, 0.25], abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovModulatedTraffic(2, 2, loads=(-1.0,))
        with pytest.raises(ValueError):
            MarkovModulatedTraffic(2, 2, loads=(1.0, 2.0),
                                   transition=[[1.0, 0.5], [0.5, 0.5]])
        with pytest.raises(ValueError):
            MarkovModulatedTraffic(2, 2, loads=(1.0,),
                                   transition=[[0.5, 0.5]])
        with pytest.raises(ValueError):
            MarkovModulatedTraffic(2, 2, dst_weights=[1.0])


class TestParetoBurst:
    def test_bursts_hold_one_destination(self):
        m = ParetoBurstTraffic(1, 4, shape=1.2, p_start=0.3, burst_load=1.0)
        t = m.generate(100, seed=3)
        # Consecutive-slot runs from one input must share a destination.
        by_slot = {}
        for p in t.packets:
            by_slot.setdefault(p.arrival, set()).add(p.dst)
        for slot, dsts in by_slot.items():
            assert len(dsts) == 1
        runs_ok = 0
        slots = sorted(by_slot)
        for a, b in zip(slots, slots[1:]):
            if b == a + 1 and by_slot[a] == by_slot[b]:
                runs_ok += 1
        assert runs_ok > 0  # heavy tail => some multi-slot bursts

    def test_max_burst_caps_tail(self):
        # shape 0.3 draws astronomically long bursts; the cap plus
        # p_start=1 means every input is simply always ON.
        m = ParetoBurstTraffic(2, 2, shape=0.3, p_start=1.0, max_burst=5,
                               burst_load=1.0)
        t = m.generate(50, seed=0)
        assert len(t) == 2 * 50  # one packet per input per slot

    def test_validation(self):
        for kwargs in ({"shape": 0}, {"p_start": 0}, {"p_start": 1.5},
                       {"burst_load": 0}, {"max_burst": 0}):
            with pytest.raises(ValueError):
                ParetoBurstTraffic(2, 2, **kwargs)


class TestTraceReplay:
    def test_round_trip_from_file(self, tmp_path):
        src = BernoulliTraffic(3, 3, load=1.0,
                               value_model=two_value(5.0, 0.4)
                               ).generate(12, seed=4)
        path = tmp_path / "trace.json"
        src.save(str(path))
        replay = TraceReplayTraffic(str(path))
        out = replay.generate(12, seed=99)
        assert [(p.value, p.arrival, p.src, p.dst) for p in out.packets] == \
               [(p.value, p.arrival, p.src, p.dst) for p in src.packets]

    def test_truncates_without_repeat(self):
        src = BernoulliTraffic(2, 2, load=2.0).generate(10, seed=0)
        out = TraceReplayTraffic(src).generate(4, seed=0)
        assert out.n_slots <= 4
        assert all(p.arrival < 4 for p in out.packets)

    def test_repeat_tiles_recording(self):
        src = BernoulliTraffic(2, 2, load=2.0).generate(5, seed=0)
        out = TraceReplayTraffic(src, repeat=True).generate(15, seed=0)
        assert len(out) == 3 * len(src)

    def test_seed_independent(self):
        src = BernoulliTraffic(2, 2, load=1.0).generate(8, seed=0)
        r = TraceReplayTraffic(src)
        a = [(p.value, p.arrival, p.src, p.dst)
             for p in r.generate(8, seed=0).packets]
        b = [(p.value, p.arrival, p.src, p.dst)
             for p in r.generate(8, seed=123).packets]
        assert a == b

    def test_arrivals_for_slot_interface(self):
        # Replay returns (src, dst, value) triples: recorded values are
        # part of the instance and must survive the streaming path.
        src = BernoulliTraffic(2, 2, load=2.0).generate(4, seed=1)
        r = TraceReplayTraffic(src, repeat=True)
        rng = np.random.default_rng(0)
        direct = [(p.src, p.dst, p.value) for p in src.arrivals(1)]
        assert r.arrivals_for_slot(1, rng) == direct
        assert r.arrivals_for_slot(1 + src.n_slots, rng) == direct
