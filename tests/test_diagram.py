"""Tests for the Figure 1 / Figure 2 topology renderers."""

import pytest

from repro.switch.cioq import CIOQSwitch
from repro.switch.config import SwitchConfig
from repro.switch.crossbar import CrossbarSwitch
from repro.switch.diagram import render, render_cioq, render_crossbar
from repro.switch.packet import Packet


@pytest.fixture
def config():
    return SwitchConfig.square(3, b_in=3, b_out=3, b_cross=1)


class TestCIOQFigure:
    def test_contains_all_voqs_and_outputs(self, config):
        art = render_cioq(CIOQSwitch(config))
        for i in range(3):
            for j in range(3):
                assert f"Q[{i}][{j}]" in art
        assert "fabric" in art
        for j in range(3):
            assert f"out {j}" in art

    def test_occupancy_cells_reflect_queue_state(self, config):
        s = CIOQSwitch(config)
        s.enqueue_arrival(Packet(0, 1.0, 0, 1, 2))
        s.enqueue_arrival(Packet(1, 1.0, 0, 1, 2))
        art = render_cioq(s)
        assert "[##.]" in art  # 2 of 3 slots used in Q[1][2]

    def test_empty_queue_rendering(self, config):
        art = render_cioq(CIOQSwitch(config))
        assert "[...]" in art

    def test_title_and_dims(self, config):
        art = render_cioq(CIOQSwitch(config), title="My switch")
        assert "My switch" in art
        assert "N_in=3" in art


class TestCrossbarFigure:
    def test_contains_crosspoint_grid(self, config):
        art = render_crossbar(CrossbarSwitch(config))
        for i in range(3):
            assert f"row {i}" in art
            assert f"in {i}" in art
        for j in range(3):
            assert f"col {j}" in art
            assert f"out {j}" in art

    def test_crosspoint_occupancy(self, config):
        s = CrossbarSwitch(config)
        s.cross[1][1].push(Packet(0, 1.0, 0, 1, 1))
        art = render_crossbar(s)
        assert "[#]" in art


class TestDispatch:
    def test_render_dispatches_by_type(self, config):
        assert "fabric" in render(CIOQSwitch(config))
        assert "col 0" in render(CrossbarSwitch(config))

    def test_render_rejects_unknown(self):
        with pytest.raises(TypeError):
            render(object())
