"""Seeded random generators for the property-based test layer.

A tiny, dependency-free take on property-based testing: each generator
("strategy") takes a ``random.Random`` and returns an arbitrary-but-valid
instance — a :class:`~repro.scenarios.spec.ScenarioSpec`, a stochastic
traffic model, or a float sample.  Test modules loop a strategy a few
dozen times per seed and assert invariants (round-trip identity,
conservation, accumulator exactness).

Seeds come from :func:`property_seeds`: the fixed default keeps the
tier-1 suite deterministic, while CI adds one fresh seed per run via the
``REPRO_PROP_SEED`` environment variable.  Seeds appear in the pytest
parametrize id, so a failing randomized run prints exactly the seed to
reproduce it with::

    REPRO_PROP_SEED=12345 python -m pytest tests/test_property_layer.py
"""

from __future__ import annotations

import os
import random
import string
from typing import List, Optional, Tuple

from repro.scenarios.spec import (
    KNOWN_METRICS,
    POLICY_CLASSES,
    ScenarioSpec,
)
from repro.traffic import (
    ApplicationMixTraffic,
    BernoulliTraffic,
    BurstyTraffic,
    DiagonalTraffic,
    HotspotTraffic,
    MarkovModulatedTraffic,
    ParetoBurstTraffic,
    TrafficModel,
)
from repro.traffic.values import (
    exponential_values,
    geometric_class_values,
    pareto_values,
    two_value,
    uniform_values,
    unit_values,
)

#: The committed seed every run exercises (deterministic tier-1 baseline).
FIXED_SEED = 0xC0FFEE

#: Cases drawn per strategy per seed.
N_CASES = 25


def property_seeds() -> List[int]:
    """The fixed seed, plus one from ``REPRO_PROP_SEED`` when set (CI
    exports a fresh value per run and echoes it for reproduction)."""
    seeds = [FIXED_SEED]
    env = os.environ.get("REPRO_PROP_SEED")
    if env:
        seeds.append(int(env))
    return seeds


# --------------------------------------------------------------------------
# Scalar helpers
# --------------------------------------------------------------------------

def kebab_name(rng: random.Random) -> str:
    """A valid scenario name: kebab-case, starting alphanumeric."""
    alphabet = string.ascii_lowercase + string.digits
    head = rng.choice(alphabet)
    body = "".join(rng.choice(alphabet + "-") for _ in range(rng.randint(2, 18)))
    return head + body


def text(rng: random.Random) -> str:
    """A description-ish string; occasionally exercises the TOML
    emitter's escapes (quotes, tabs, newlines, control chars)."""
    pool = string.ascii_letters + string.digits + " .,:;!?()[]"
    s = "".join(rng.choice(pool) for _ in range(rng.randint(0, 40)))
    if rng.random() < 0.3:
        s += rng.choice(['"quoted"', "line\nbreak", "tab\tstop",
                         "back\\slash", "bell\x07"])
    return s


def scalar(rng: random.Random):
    """A TOML/JSON-safe scalar (bool before int: bool is an int subtype)."""
    kind = rng.randrange(4)
    if kind == 0:
        return rng.choice([True, False])
    if kind == 1:
        return rng.randint(-1000, 1000)
    if kind == 2:
        return round(rng.uniform(-100, 100), rng.randint(0, 12))
    return text(rng)


def params_dict(rng: random.Random, max_keys: int = 3, depth: int = 1) -> dict:
    """An arbitrary params mapping with TOML-safe keys and values
    (occasionally nested one level, like adversary policy_params)."""
    out = {}
    for _ in range(rng.randint(0, max_keys)):
        key = kebab_name(rng).replace("-", "_")
        if depth > 0 and rng.random() < 0.2:
            out[key] = params_dict(rng, max_keys=2, depth=depth - 1)
        elif rng.random() < 0.2:
            out[key] = [scalar(rng) for _ in range(rng.randint(0, 3))]
        else:
            out[key] = scalar(rng)
    return out


# --------------------------------------------------------------------------
# ScenarioSpec strategy
# --------------------------------------------------------------------------

def replicates_block(rng: random.Random, include_opt: bool,
                     metrics: Tuple[str, ...]) -> dict:
    block: dict = {"n": rng.randint(2, 64)}
    if rng.random() < 0.5:
        block["base_seed"] = rng.randint(0, 10_000)
    if rng.random() < 0.5:
        block["confidence"] = round(rng.uniform(0.5, 0.999), 6)
    if rng.random() < 0.4:
        block["bootstrap"] = rng.randint(0, 2000)
        block["bootstrap_seed"] = rng.randint(0, 10_000)
    if rng.random() < 0.4:
        block["target_half_width"] = round(rng.uniform(1e-3, 10.0), 9)
        # The stopping rule may only watch metrics the scenario exports.
        choices = ["benefit"] + list(metrics) + (
            ["ratio"] if include_opt else [])
        block["target_metric"] = rng.choice(choices)
        block["batch"] = rng.randint(1, 16)
    return block


def spec_strategy(rng: random.Random) -> ScenarioSpec:
    """An arbitrary *valid* ScenarioSpec (constructor-validated; not
    necessarily runnable — traffic params are free-form by design)."""
    model = rng.choice(sorted(POLICY_CLASSES))
    policy_names = sorted(POLICY_CLASSES[model])
    entries = []
    picked = rng.sample(policy_names, rng.randint(1, len(policy_names)))
    for i, name in enumerate(picked):
        entry: dict = {"name": name}
        if rng.random() < 0.4:
            entry["beta"] = round(rng.uniform(1.0, 5.0), rng.randint(0, 10))
        if rng.random() < 0.3:
            # The index keeps generated labels collision-free.
            entry["label"] = f"label-{i}-{kebab_name(rng)}"
        entries.append(entry)
    include_opt = rng.random() < 0.5
    metrics = tuple(rng.sample(KNOWN_METRICS, rng.randint(1, 4)))
    switch = {}
    for field_name, lo, hi in (("n_in", 1, 8), ("n_out", 1, 8),
                               ("speedup", 1, 4), ("b_in", 1, 8),
                               ("b_out", 1, 8), ("b_cross", 1, 4)):
        if rng.random() < 0.7:
            switch[field_name] = rng.randint(lo, hi)
    kwargs = dict(
        name=kebab_name(rng),
        description=text(rng),
        model=model,
        switch=switch,
        traffic=rng.choice(["bernoulli", "bursty", "hotspot", "diagonal",
                            "markov", "pareto-burst", "appmix", "replay",
                            "adversarial"]),
        traffic_params=params_dict(rng),
        values=rng.choice(["unit", "uniform", "two-value", "exponential",
                           "pareto", "classes"]),
        value_params=params_dict(rng),
        policies=tuple(entries),
        slots=rng.randint(1, 500),
        seeds=tuple(sorted(rng.sample(range(1000), rng.randint(1, 6)))),
        include_opt=include_opt,
        metrics=metrics,
        expected=text(rng),
    )
    if rng.random() < 0.5:
        kwargs["replicates"] = replicates_block(rng, include_opt, metrics)
    return ScenarioSpec(**kwargs)


# --------------------------------------------------------------------------
# Traffic-model strategy
# --------------------------------------------------------------------------

def value_model_strategy(rng: random.Random):
    kind = rng.randrange(6)
    if kind == 0:
        return unit_values()
    if kind == 1:
        lo = rng.uniform(0.5, 5.0)
        return uniform_values(lo, lo + rng.uniform(0.0, 50.0))
    if kind == 2:
        return two_value(alpha=rng.uniform(1.0, 50.0),
                         p_high=rng.uniform(0.0, 1.0))
    if kind == 3:
        return exponential_values(mean=rng.uniform(1.01, 20.0))
    if kind == 4:
        return pareto_values(shape=rng.uniform(0.5, 3.0),
                             scale=rng.uniform(0.1, 5.0))
    return geometric_class_values(n_classes=rng.randint(1, 6),
                                  base=rng.uniform(1.1, 8.0))


def traffic_strategy(
    rng: random.Random,
) -> Tuple[TrafficModel, int, int]:
    """An arbitrary stochastic traffic model with valid parameters;
    returns ``(model, n_in, n_out)``."""
    n_in = rng.randint(1, 6)
    n_out = rng.randint(1, 6)
    values = value_model_strategy(rng)
    kind = rng.randrange(7)
    if kind == 0:
        model: TrafficModel = BernoulliTraffic(
            n_in, n_out, load=rng.uniform(0.0, 3.0), value_model=values)
    elif kind == 1:
        model = BurstyTraffic(
            n_in, n_out, p_on=rng.uniform(0.05, 1.0),
            p_off=rng.uniform(0.05, 1.0),
            burst_load=rng.uniform(0.1, 3.0), value_model=values)
    elif kind == 2:
        model = HotspotTraffic(
            n_in, n_out, load=rng.uniform(0.0, 3.0),
            hot_fraction=rng.uniform(0.0, 1.0),
            hot_port=rng.randrange(n_out), value_model=values)
    elif kind == 3:
        model = DiagonalTraffic(
            n_in, n_out, load=rng.uniform(0.0, 3.0),
            diag_fraction=rng.uniform(0.0, 1.0), value_model=values)
    elif kind == 4:
        k = rng.randint(1, 4)
        loads = [rng.uniform(0.0, 3.0) for _ in range(k)]
        rows = []
        for _ in range(k):
            raw = [rng.uniform(0.01, 1.0) for _ in range(k)]
            total = sum(raw)
            rows.append([x / total for x in raw])
        model = MarkovModulatedTraffic(
            n_in, n_out, loads=loads, transition=rows, value_model=values)
    elif kind == 5:
        model = ParetoBurstTraffic(
            n_in, n_out, shape=rng.uniform(0.8, 3.0),
            p_start=rng.uniform(0.05, 1.0),
            burst_load=rng.uniform(0.5, 3.0),
            max_burst=rng.randint(1, 200), value_model=values)
    else:
        model = ApplicationMixTraffic(
            n_in, n_out,
            web={"p_start": rng.uniform(0.0, 0.3),
                 "shape": rng.uniform(0.8, 2.0),
                 "max_len": rng.randint(1, 80),
                 "rate": rng.uniform(0.2, 3.0)},
            video={"p_start": rng.uniform(0.0, 0.1),
                   "mean_len": rng.uniform(1.0, 200.0),
                   "rate": rng.uniform(0.2, 1.5)},
            voip={"p_start": rng.uniform(0.0, 0.3),
                  "mean_len": rng.uniform(1.0, 50.0),
                  "rate": rng.uniform(0.05, 1.0)},
            load_scale=rng.uniform(0.3, 1.5), value_model=values)
    return model, n_in, n_out


def float_sample(rng: random.Random, allow_big_offset: bool = True) -> List[float]:
    """A float sample for accumulator properties: varied length, scale
    and (optionally) a large common offset to stress cancellation."""
    n = rng.randint(1, 200)
    scale = 10.0 ** rng.randint(-3, 4)
    offset = 10.0 ** rng.randint(4, 6) if (
        allow_big_offset and rng.random() < 0.3) else 0.0
    return [offset + rng.gauss(0.0, 1.0) * scale for _ in range(n)]


def opt_instance_strategy(
    rng: random.Random,
) -> Tuple["Trace", "SwitchConfig", str]:
    """A tiny offline-OPT instance: ``(trace, config, model)``.

    Small enough (<= 3x3 ports, <= 8 arrival slots, buffers <= 2) that
    the exact time-expanded MILP solves in milliseconds, so certified
    bracket properties can be checked against the exact optimum.
    """
    from repro.switch.config import SwitchConfig

    n_in = rng.randint(1, 3)
    n_out = rng.randint(1, 3)
    config = SwitchConfig(
        n_in=n_in, n_out=n_out, speedup=rng.randint(1, 2),
        b_in=rng.randint(1, 2), b_out=rng.randint(1, 2), b_cross=1,
    )
    model = rng.choice(("cioq", "crossbar"))
    traffic = BernoulliTraffic(
        n_in, n_out, load=rng.uniform(0.3, 2.5),
        value_model=value_model_strategy(rng),
    )
    trace = traffic.generate(rng.randint(2, 8), seed=rng.randrange(2 ** 31))
    return trace, config, model
