"""Unit tests for the buffered crossbar switch state machine."""

import pytest

from repro.switch.cioq import ScheduleError
from repro.switch.config import SwitchConfig
from repro.switch.crossbar import (
    CrossbarSwitch,
    InputTransfer,
    OutputTransfer,
    greedy_head_transmissions,
)
from repro.switch.packet import Packet


@pytest.fixture
def switch():
    return CrossbarSwitch(SwitchConfig.square(3, b_in=2, b_out=2, b_cross=1))


def pk(pid, src, dst, value=1.0):
    return Packet(pid, value, 0, src, dst)


class TestStructure:
    def test_crosspoint_grid(self, switch):
        assert len(switch.cross) == 3
        assert all(len(row) == 3 for row in switch.cross)
        assert all(q.capacity == 1 for row in switch.cross for q in row)

    def test_initially_drained(self, switch):
        assert switch.is_drained()

    def test_buffered_packets_covers_all_stages(self, switch):
        a, b = pk(0, 0, 1), pk(1, 1, 2)
        switch.enqueue_arrival(a)
        switch.enqueue_arrival(b)
        switch.apply_input_subphase([InputTransfer(1, 2, b)])
        assert len(switch.buffered_packets()) == 2
        assert switch.cross_lengths()[1][2] == 1


class TestInputSubphase:
    def test_moves_voq_to_crosspoint(self, switch):
        p = pk(0, 0, 1)
        switch.enqueue_arrival(p)
        switch.apply_input_subphase([InputTransfer(0, 1, p)])
        assert switch.voq_lengths()[0][1] == 0
        assert switch.cross_lengths()[0][1] == 1

    def test_one_packet_per_input_port(self, switch):
        a, b = pk(0, 0, 0), pk(1, 0, 1)
        switch.enqueue_arrival(a)
        switch.enqueue_arrival(b)
        with pytest.raises(ScheduleError, match="input port 0"):
            switch.apply_input_subphase(
                [InputTransfer(0, 0, a), InputTransfer(0, 1, b)]
            )

    def test_two_inputs_same_output_column_allowed(self, switch):
        """Unlike CIOQ, the input subphase has no per-output constraint."""
        a, b = pk(0, 0, 1), pk(1, 2, 1)
        switch.enqueue_arrival(a)
        switch.enqueue_arrival(b)
        switch.apply_input_subphase(
            [InputTransfer(0, 1, a), InputTransfer(2, 1, b)]
        )
        assert switch.cross_lengths()[0][1] == 1
        assert switch.cross_lengths()[2][1] == 1

    def test_full_crosspoint_needs_preemption(self, switch):
        a, b = pk(0, 0, 1), pk(1, 0, 1, value=5.0)
        switch.enqueue_arrival(a)
        switch.enqueue_arrival(b)
        switch.apply_input_subphase([InputTransfer(0, 1, a)])
        with pytest.raises(ScheduleError, match="full"):
            switch.apply_input_subphase([InputTransfer(0, 1, b)])
        switch.apply_input_subphase([InputTransfer(0, 1, b, preempt=a)])
        assert switch.cross[0][1].head().pid == 1

    def test_packet_must_be_in_voq(self, switch):
        with pytest.raises(ScheduleError, match="not in VOQ"):
            switch.apply_input_subphase([InputTransfer(0, 1, pk(0, 0, 1))])


class TestOutputSubphase:
    def _stage(self, switch, p):
        switch.enqueue_arrival(p)
        switch.apply_input_subphase([InputTransfer(p.src, p.dst, p)])

    def test_moves_crosspoint_to_output(self, switch):
        p = pk(0, 0, 1)
        self._stage(switch, p)
        switch.apply_output_subphase([OutputTransfer(0, 1, p)])
        assert switch.cross_lengths()[0][1] == 0
        assert switch.out_lengths()[1] == 1

    def test_one_packet_per_output_port(self, switch):
        a, b = pk(0, 0, 1), pk(1, 2, 1)
        self._stage(switch, a)
        self._stage(switch, b)
        with pytest.raises(ScheduleError, match="output port 1"):
            switch.apply_output_subphase(
                [OutputTransfer(0, 1, a), OutputTransfer(2, 1, b)]
            )

    def test_two_outputs_same_input_row_allowed(self, switch):
        """The output subphase has no per-input constraint."""
        a, b = pk(0, 0, 1), pk(1, 0, 2)
        switch.enqueue_arrival(a)
        switch.enqueue_arrival(b)
        switch.apply_input_subphase([InputTransfer(0, 1, a)])
        switch.apply_input_subphase([InputTransfer(0, 2, b)])
        switch.apply_output_subphase(
            [OutputTransfer(0, 1, a), OutputTransfer(0, 2, b)]
        )
        assert switch.out_lengths()[1] == 1
        assert switch.out_lengths()[2] == 1

    def test_full_output_needs_preemption(self):
        switch = CrossbarSwitch(SwitchConfig.square(2, b_in=2, b_out=1, b_cross=2))
        cheap = pk(0, 0, 0, value=1.0)
        rich = pk(1, 0, 0, value=9.0)
        for p in (cheap, rich):
            switch.enqueue_arrival(p)
        switch.apply_input_subphase([InputTransfer(0, 0, rich)])
        switch.apply_output_subphase([OutputTransfer(0, 0, rich)])
        switch.apply_input_subphase([InputTransfer(0, 0, cheap)])
        with pytest.raises(ScheduleError, match="full"):
            switch.apply_output_subphase([OutputTransfer(0, 0, cheap)])

    def test_packet_must_be_in_crosspoint(self, switch):
        p = pk(0, 0, 1)
        switch.enqueue_arrival(p)
        with pytest.raises(ScheduleError, match="not in crosspoint"):
            switch.apply_output_subphase([OutputTransfer(0, 1, p)])


class TestTransmission:
    def test_full_pipeline_single_packet(self, switch):
        p = pk(0, 2, 0)
        switch.enqueue_arrival(p)
        switch.apply_input_subphase([InputTransfer(2, 0, p)])
        switch.apply_output_subphase([OutputTransfer(2, 0, p)])
        sel = greedy_head_transmissions(switch)
        assert sel == {0: p}
        assert switch.transmit(sel) == [p]
        assert switch.is_drained()

    def test_transmit_validates_membership(self, switch):
        with pytest.raises(ScheduleError):
            switch.transmit({0: pk(0, 0, 0)})
