"""Tests for the parallel sweep substrate (repro.parallel)."""

from functools import partial

import pytest

from repro.analysis.sweep import (
    beta_sweep_pg,
    buffer_sweep_crossbar,
    speedup_sweep,
    threshold_sweep_cpg,
)
from repro.core.cgu import CGUPolicy
from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.parallel import (
    SweepExecutor,
    SweepPoint,
    describe_factory,
    run_sweep_point,
)
from repro.scheduling.baselines import MaxMatchPolicy
from repro.simulation.engine import run_cioq
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.values import two_value, uniform_values


@pytest.fixture
def config():
    return SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)


@pytest.fixture
def trace():
    return BernoulliTraffic(3, 3, load=1.3).generate(12, seed=0)


def make_points(config, n=6):
    points = []
    for seed in range(n):
        trace = BernoulliTraffic(
            3, 3, load=1.2, value_model=uniform_values(1, 20)
        ).generate(10, seed=seed)
        points.append(
            SweepPoint(model="cioq", config=config, trace=trace,
                       policy_factory=partial(PGPolicy, beta=2.0), seed=seed,
                       tag={"seed": seed})
        )
    return points


class TestSweepPoint:
    def test_rejects_unknown_model(self, config, trace):
        with pytest.raises(ValueError, match="model"):
            SweepPoint(model="banyan", config=config, trace=trace)

    def test_payload_matches_direct_run(self, config, trace):
        point = SweepPoint(model="cioq", config=config, trace=trace,
                           policy_factory=GMPolicy, seed=0,
                           tag={"cell": "a"})
        payload = run_sweep_point(point)
        direct = run_cioq(GMPolicy(), config, trace)
        assert payload["benefit"] == direct.benefit
        assert payload["n_sent"] == direct.n_sent
        assert payload["n_rejected"] == direct.n_rejected
        assert payload["tag"] == {"cell": "a"}

    def test_opt_point(self, config, trace):
        payload = run_sweep_point(
            SweepPoint(model="cioq", config=config, trace=trace)
        )
        assert payload["policy"] == "OPT"
        assert payload["benefit"] > 0


class TestDescribeFactory:
    def test_class(self):
        assert describe_factory(GMPolicy).endswith("GMPolicy")

    def test_partial_includes_params(self):
        desc = describe_factory(partial(PGPolicy, beta=2.5))
        assert "PGPolicy" in desc and "beta=2.5" in desc

    def test_opt(self):
        assert describe_factory(None) == "OPT"


class TestExecutor:
    def test_serial_order_preserved(self, config):
        points = make_points(config)
        payloads = SweepExecutor().run(points)
        assert [p["tag"]["seed"] for p in payloads] == list(range(len(points)))

    def test_parallel_bit_identical_to_serial(self, config):
        points = make_points(config)
        serial = SweepExecutor(workers=0).run(points)
        parallel = SweepExecutor(workers=3).run(points)
        assert serial == parallel

    def test_chunked_dispatch_bit_identical(self, config):
        points = make_points(config, n=7)
        serial = SweepExecutor().run(points)
        chunked = SweepExecutor(workers=2, chunk_size=2).run(points)
        assert serial == chunked

    def test_cache_round_trip(self, config, tmp_path):
        points = make_points(config, n=4)
        ex1 = SweepExecutor(cache_dir=str(tmp_path))
        first = ex1.run(points)
        assert (ex1.cache_hits, ex1.cache_misses) == (0, 4)
        ex2 = SweepExecutor(cache_dir=str(tmp_path))
        second = ex2.run(points)
        assert (ex2.cache_hits, ex2.cache_misses) == (4, 0)
        assert first == second

    def test_cache_key_sensitivity(self, config, trace):
        ex = SweepExecutor(cache_dir="unused")
        base = SweepPoint(model="cioq", config=config, trace=trace,
                          policy_factory=GMPolicy, seed=0)
        other_policy = SweepPoint(model="cioq", config=config, trace=trace,
                                  policy_factory=MaxMatchPolicy, seed=0)
        other_seed = SweepPoint(model="cioq", config=config, trace=trace,
                                policy_factory=GMPolicy, seed=1)
        fat_config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
        other_config = SweepPoint(model="cioq", config=fat_config,
                                  trace=trace, policy_factory=GMPolicy, seed=0)
        keys = {ex.cache_key(p) for p in
                (base, other_policy, other_seed, other_config)}
        assert len(keys) == 4
        assert ex.cache_key(base) == ex.cache_key(
            SweepPoint(model="cioq", config=config, trace=trace,
                       policy_factory=GMPolicy, seed=0)
        )

    def test_corrupt_cache_entry_is_recomputed(self, config, tmp_path):
        points = make_points(config, n=1)
        ex = SweepExecutor(cache_dir=str(tmp_path))
        first = ex.run(points)
        path = ex._cache_path(ex.cache_key(points[0]))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        again = SweepExecutor(cache_dir=str(tmp_path)).run(points)
        assert again == first


class TestSweepFunctionsThroughExecutor:
    """The rewired analysis sweeps produce identical rows for serial,
    parallel, and cached executors."""

    def test_beta_sweep(self, config, tmp_path):
        trace = BernoulliTraffic(
            3, 3, load=1.4, value_model=two_value(10, 0.3)
        ).generate(12, seed=2)
        betas = [1.2, 2.0, 3.0]
        serial = beta_sweep_pg(trace, config, betas)
        parallel = beta_sweep_pg(
            trace, config, betas, executor=SweepExecutor(workers=2)
        )
        cached_ex = SweepExecutor(cache_dir=str(tmp_path))
        cached_cold = beta_sweep_pg(trace, config, betas, executor=cached_ex)
        cached_warm = beta_sweep_pg(trace, config, betas, executor=cached_ex)
        assert serial == parallel == cached_cold == cached_warm
        assert cached_ex.cache_hits == len(betas)

    def test_threshold_sweep(self, config):
        trace = BernoulliTraffic(
            3, 3, load=1.4, value_model=two_value(10, 0.3)
        ).generate(10, seed=4)
        serial = threshold_sweep_cpg(trace, config, [1.5, 2.0], [2.0, 3.0])
        parallel = threshold_sweep_cpg(
            trace, config, [1.5, 2.0], [2.0, 3.0],
            executor=SweepExecutor(workers=2),
        )
        assert serial == parallel

    def test_speedup_sweep(self):
        base = SwitchConfig.square(3, b_in=2, b_out=2)
        traffic = HotspotTraffic(3, 3, load=1.3, hot_fraction=0.5)
        kwargs = dict(
            policy_factories={"GM": GMPolicy, "MaxMatch": MaxMatchPolicy},
            traffic=traffic,
            n_slots=10,
            speedups=[1, 2],
            base_config=base,
            seeds=(0, 1),
        )
        serial = speedup_sweep(**kwargs)
        parallel = speedup_sweep(**kwargs, executor=SweepExecutor(workers=3))
        assert serial == parallel
        assert {r["speedup"] for r in serial} == {1, 2}

    def test_buffer_sweep(self):
        base = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        traffic = BernoulliTraffic(3, 3, load=1.5)
        kwargs = dict(
            policy_factory=CGUPolicy,
            traffic=traffic,
            n_slots=10,
            b_cross_values=[1, 2],
            base_config=base,
            seeds=(0,),
        )
        serial = buffer_sweep_crossbar(**kwargs)
        parallel = buffer_sweep_crossbar(
            **kwargs, executor=SweepExecutor(workers=2)
        )
        assert serial == parallel


class TestCLISweep:
    def test_serial_and_parallel_output_identical(self, capsys):
        from repro.cli import main

        argv = ["sweep", "--policies", "gm,maxmatch", "--loads", "0.9,1.3",
                "--seeds", "2", "--slots", "8", "--n", "3", "--opt"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "3"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
        assert "per-load mean benefit" in serial_out

    def test_unknown_policy_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", "--policies", "nonsense", "--slots", "5"])
