"""Fast kernel vs. seed engine: results must be identical.

The shared slot-loop kernel (:mod:`repro.simulation.kernel`) batches its
accounting, short-circuits logging, and detects drain with a counter —
none of which may change a single observable result.  These tests pin
the kernel to ``_seed_engine.py``, a verbatim snapshot of the
pre-refactor engine loops, across a matrix of (switch model x speedup x
traffic/value model x record on/off), plus the streaming entry point's
drain-termination edge cases.
"""

import pytest

import _seed_engine
from repro.core.cgu import CGUPolicy
from repro.core.cpg import CPGPolicy
from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.scheduling.fifo import FifoCIOQPolicy
from repro.simulation.engine import drain_bound, run_cioq, run_cioq_streaming, run_crossbar
from repro.switch.config import SwitchConfig
from repro.traffic.adversarial import burst_reject_gadget
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.bursty import BurstyTraffic
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.markov import MarkovModulatedTraffic
from repro.traffic.paretoburst import ParetoBurstTraffic
from repro.traffic.replay import TraceReplayTraffic
from repro.traffic.values import pareto_values, two_value, uniform_values, unit_values

#: Every observable field of a SimulationResult, logs included.
RESULT_FIELDS = [
    "policy_name",
    "config",
    "n_arrival_slots",
    "horizon",
    "benefit",
    "n_sent",
    "n_arrived",
    "value_arrived",
    "n_accepted",
    "value_accepted",
    "n_rejected",
    "value_rejected",
    "n_preempted_voq",
    "value_preempted_voq",
    "n_preempted_cross",
    "value_preempted_cross",
    "n_preempted_out",
    "value_preempted_out",
    "n_residual",
    "value_residual",
    "sent_per_output",
    "value_per_output",
    "sent_pids",
    "schedule_log",
    "transmit_log",
    "occupancy",
]


def assert_identical(fast, seed):
    for name in RESULT_FIELDS:
        assert getattr(fast, name) == getattr(seed, name), (
            f"kernel diverges from seed engine on {name}: "
            f"{getattr(fast, name)!r} != {getattr(seed, name)!r}"
        )


TRAFFICS = [
    ("bernoulli-unit", lambda n: BernoulliTraffic(
        n, n, load=1.3, value_model=unit_values())),
    ("hotspot-uniform", lambda n: HotspotTraffic(
        n, n, load=1.4, hot_fraction=0.6, value_model=uniform_values(1, 50))),
    ("bursty-twovalue", lambda n: BurstyTraffic(
        n, n, burst_load=2.2, value_model=two_value(10, 0.3))),
    # The PR 2 traffic models: the kernel must match the seed engine on
    # every regime the scenario catalog can express, not just the
    # original three.
    ("markov-uniform", lambda n: MarkovModulatedTraffic(
        n, n, loads=(0.2, 1.0, 2.8), value_model=uniform_values(1, 20))),
    ("paretoburst-exp", lambda n: ParetoBurstTraffic(
        n, n, shape=1.5, p_start=0.3, burst_load=1.8,
        value_model=uniform_values(1, 10))),
    # Replay tiles a recorded adversarial gadget (carries its own unit
    # values) across the horizon; generation is seed-independent.
    ("replay-gadget", lambda n: TraceReplayTraffic(
        burst_reject_gadget(n=n, b_in=2, n_rounds=3), repeat=True)),
]

CIOQ_POLICIES = [("gm", GMPolicy), ("pg", PGPolicy), ("fifo", FifoCIOQPolicy)]
CROSSBAR_POLICIES = [("cgu", CGUPolicy), ("cpg", CPGPolicy)]


@pytest.mark.parametrize("traffic_name,make", TRAFFICS, ids=lambda x: x if isinstance(x, str) else "")
@pytest.mark.parametrize("speedup", [1, 2])
@pytest.mark.parametrize("record", [False, True], ids=["norecord", "record"])
@pytest.mark.parametrize("policy_name,policy_cls", CIOQ_POLICIES,
                         ids=lambda x: x if isinstance(x, str) else "")
def test_cioq_matrix(traffic_name, make, speedup, record, policy_name, policy_cls):
    config = SwitchConfig.square(4, speedup=speedup, b_in=2, b_out=2, b_cross=1)
    trace = make(4).generate(25, seed=13)
    fast = run_cioq(policy_cls(), config, trace, record=record,
                    trace_occupancy=True)
    seed = _seed_engine.run_cioq(policy_cls(), config, trace, record=record,
                                 trace_occupancy=True)
    assert_identical(fast, seed)


@pytest.mark.parametrize("traffic_name,make", TRAFFICS, ids=lambda x: x if isinstance(x, str) else "")
@pytest.mark.parametrize("speedup", [1, 2])
@pytest.mark.parametrize("record", [False, True], ids=["norecord", "record"])
@pytest.mark.parametrize("policy_name,policy_cls", CROSSBAR_POLICIES,
                         ids=lambda x: x if isinstance(x, str) else "")
def test_crossbar_matrix(traffic_name, make, speedup, record, policy_name,
                         policy_cls):
    config = SwitchConfig.square(4, speedup=speedup, b_in=2, b_out=2, b_cross=1)
    trace = make(4).generate(25, seed=29)
    fast = run_crossbar(policy_cls(), config, trace, record=record,
                        trace_occupancy=True)
    seed = _seed_engine.run_crossbar(policy_cls(), config, trace,
                                     record=record, trace_occupancy=True)
    assert_identical(fast, seed)


def test_cioq_occupancy_schema_has_zero_cross_column():
    """CIOQ occupancy rows are 4-tuples with cross_total always 0."""
    config = SwitchConfig.square(3, b_in=2, b_out=2)
    trace = BernoulliTraffic(3, 3, load=1.5).generate(20, seed=3)
    res = run_cioq(GMPolicy(), config, trace, trace_occupancy=True)
    assert res.occupancy
    for row in res.occupancy:
        assert len(row) == 4
        assert row[2] == 0


def test_crossbar_occupancy_counts_crosspoints():
    config = SwitchConfig.square(3, b_in=2, b_out=2, b_cross=2)
    trace = BernoulliTraffic(3, 3, load=1.8).generate(20, seed=3)
    res = run_crossbar(CGUPolicy(), config, trace, trace_occupancy=True)
    assert any(row[2] > 0 for row in res.occupancy)


def test_max_extra_slots_zero_identical(small_config):
    """Truncated horizons (stranded residuals) match the seed engine."""
    trace = BernoulliTraffic(3, 3, load=2.0).generate(10, seed=1)
    fast = run_cioq(GMPolicy(), small_config, trace, max_extra_slots=0)
    seed = _seed_engine.run_cioq(GMPolicy(), small_config, trace,
                                 max_extra_slots=0)
    assert fast.n_residual > 0
    assert_identical(fast, seed)


def test_check_invariants_path_identical(small_config):
    trace = BernoulliTraffic(3, 3, load=1.2,
                             value_model=pareto_values(1.5)).generate(15, seed=5)
    fast = run_cioq(PGPolicy(), small_config, trace, check_invariants=True)
    seed = _seed_engine.run_cioq(PGPolicy(), small_config, trace,
                                 check_invariants=True)
    assert_identical(fast, seed)


class TestStreamingEquivalence:
    # The seed streaming loop never populated schedule_log (even with
    # record=True); the unified kernel records it like the batch entry
    # points do.  Everything else must match exactly.
    STREAMING_FIELDS = [f for f in RESULT_FIELDS if f != "schedule_log"]

    def _compare(self, source, n_slots, config, policy_cls=GMPolicy,
                 record=False):
        fast = run_cioq_streaming(policy_cls(), config, source, n_slots,
                                  record=record)
        seed = _seed_engine.run_cioq_streaming(policy_cls(), config, source,
                                               n_slots, record=record)
        for name in self.STREAMING_FIELDS:
            assert getattr(fast, name) == getattr(seed, name), (
                f"kernel diverges from seed engine on {name}"
            )
        if record:
            # Streaming now records transfers too: every sent packet
            # must appear in the schedule log.
            transferred = {ev.pid for ev in fast.schedule_log}
            assert set(fast.sent_pids) <= transferred
        return fast

    def test_adaptive_source(self, small_config):
        """Adversary that targets the currently shortest VOQ row."""

        def source(slot, switch):
            lengths = [sum(len(q) for q in row) for row in switch.voq]
            i = lengths.index(min(lengths))
            return [(i, slot % 3, 1.0 + slot), (i, (slot + 1) % 3, 2.0)]

        self._compare(source, 12, small_config, policy_cls=PGPolicy)

    def test_empty_source_terminates_immediately(self, small_config):
        res = self._compare(lambda t, sw: [], 8, small_config)
        assert res.n_arrived == 0
        assert res.benefit == 0.0

    def test_burst_then_silence_drains_fully(self, small_config):
        """A slot-0 burst must drain during the silent tail, not linger
        to the horizon."""

        def source(slot, switch):
            if slot == 0:
                return [(i, j, 1.0) for i in range(3) for j in range(3)]
            return []

        res = self._compare(source, 6, small_config)
        assert res.n_residual == 0
        res.check_conservation()

    def test_arrivals_in_final_slot_still_delivered(self, small_config):
        """Packets arriving in the last arrival slot drain afterwards."""

        def source(slot, switch):
            if slot == 5:  # n_slots - 1
                return [(0, 0, 5.0), (1, 1, 7.0)]
            return []

        res = self._compare(source, 6, small_config)
        assert res.n_sent == 2
        assert res.benefit == 12.0

    def test_sustained_overload_hits_drain_bound_cap(self):
        """A source that always overloads leaves residuals only past the
        drain-bound horizon, never before."""
        config = SwitchConfig.square(2, b_in=1, b_out=1)

        def source(slot, switch):
            return [(i, j, 1.0) for i in range(2) for j in range(2)]

        res = self._compare(source, 10, config)
        assert res.horizon == 10 + drain_bound(config)
        assert res.n_residual == 0  # work-conserving GM drains post-arrivals
        res.check_conservation()

    def test_record_logs_identical(self, small_config):
        def source(slot, switch):
            return [(slot % 3, (slot * 2) % 3, float(slot + 1))]

        self._compare(source, 9, small_config, policy_cls=PGPolicy,
                      record=True)
