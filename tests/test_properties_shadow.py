"""Hypothesis property tests for the proof-machinery replays.

These fuzz the shadow constructions with random tiny instances: for
every generated instance, the replay must (a) not raise an
InvariantViolation — i.e. the paper's lemma invariants hold — and
(b) produce a certificate satisfying the theorem-level inequalities.
This is the strongest executable evidence the analyses are sound as
implemented.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cgu import CGUPolicy
from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.offline.crossbar_timegraph import CrossbarOptModel
from repro.offline.opt import cioq_opt
from repro.simulation.engine import run_cioq, run_crossbar
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.theory.shadow import replay_cgu_shadow, replay_gm_shadow
from repro.theory.shadow_weighted import replay_pg_shadow
from repro.traffic.trace import Trace

FUZZ = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def tiny_instances(draw, weighted=False):
    n = draw(st.integers(2, 3))
    config = SwitchConfig.square(
        n,
        speedup=draw(st.integers(1, 2)),
        b_in=draw(st.integers(1, 2)),
        b_out=draw(st.integers(1, 2)),
        b_cross=1,
    )
    n_packets = draw(st.integers(1, 12))
    packets = []
    for pid in range(n_packets):
        value = (
            float(draw(st.integers(1, 20))) if weighted else 1.0
        )
        packets.append(
            Packet(
                pid,
                value,
                draw(st.integers(0, 5)),
                draw(st.integers(0, n - 1)),
                draw(st.integers(0, n - 1)),
            )
        )
    return config, Trace(packets, n, n)


class TestFuzzedShadows:
    @given(inst=tiny_instances(weighted=False))
    @FUZZ
    def test_gm_shadow_never_violates(self, inst):
        config, trace = inst
        gm = run_cioq(GMPolicy(), config, trace, record=True)
        opt = cioq_opt(trace, config, extract_schedule=True)
        cert = replay_gm_shadow(trace, config, gm, opt)
        assert cert.theorem1_certified
        assert cert.s_star_bounded
        assert cert.privileged_bounded

    @given(inst=tiny_instances(weighted=True), beta=st.floats(1.2, 4.0))
    @FUZZ
    def test_pg_shadow_never_violates(self, inst, beta):
        config, trace = inst
        pg = run_cioq(PGPolicy(beta=beta), config, trace, record=True)
        opt = cioq_opt(trace, config, extract_schedule=True)
        cert = replay_pg_shadow(trace, config, pg, opt, beta)
        bound = beta + 2 * beta / (beta - 1)
        assert cert.modified_opt_benefit >= cert.opt_benefit - 1e-6
        assert cert.modified_opt_benefit <= bound * cert.pg_benefit + 1e-6

    @given(inst=tiny_instances(weighted=False))
    @FUZZ
    def test_cgu_shadow_never_violates(self, inst):
        config, trace = inst
        cgu = run_crossbar(CGUPolicy(), config, trace, record=True)
        model = CrossbarOptModel(trace, config)
        opt = model.solve(extract_schedule=True)
        cert = replay_cgu_shadow(trace, config, cgu, model, opt)
        assert cert.theorem3_certified
        assert cert.lemma9_violations == 0
