"""The farm job queue, serve loop, kill/resume semantics, and CLI."""

import json
import os
from functools import partial

import pytest

from repro.core.pg import PGPolicy
from repro.farm import JOB_STATES, JobQueue, build_job, serve
from repro.parallel import (
    KILL_AFTER_ENV,
    SweepExecutor,
    SweepKilled,
    SweepPoint,
)
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import uniform_values


def make_points(n=6, slots=10):
    config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
    return [
        SweepPoint(
            model="cioq", config=config,
            trace=BernoulliTraffic(
                3, 3, load=1.2, value_model=uniform_values(1, 20)
            ).generate(slots, seed=seed),
            policy_factory=partial(PGPolicy, beta=2.0), seed=seed,
            tag={"seed": seed})
        for seed in range(n)
    ]


class TestJobQueue:
    def test_submit_claim_complete_lifecycle(self, tmp_path):
        q = JobQueue(str(tmp_path / "q"))
        jid = q.submit(build_job(scenario="smoke-bernoulli"))
        assert jid == "job-000001"
        assert q.counts() == {"queued": 1, "running": 0, "done": 0,
                              "failed": 0}
        job = q.claim_next()
        assert job["id"] == jid and job["scenario"] == "smoke-bernoulli"
        assert q.counts()["running"] == 1
        q.complete(jid, {"ok": True})
        assert q.counts()["done"] == 1
        assert q.jobs("done")[0]["result"] == {"ok": True}
        assert q.claim_next() is None

    def test_fifo_order_and_sequential_ids(self, tmp_path):
        q = JobQueue(str(tmp_path / "q"))
        ids = [q.submit(build_job(scenario=f"s{i}")) for i in range(3)]
        assert ids == ["job-000001", "job-000002", "job-000003"]
        assert [q.claim_next()["id"] for _ in range(3)] == ids

    def test_fail_records_error(self, tmp_path):
        q = JobQueue(str(tmp_path / "q"))
        jid = q.submit(build_job(scenario="x"))
        q.claim_next()
        q.fail(jid, "ValueError: boom")
        assert q.jobs("failed")[0]["error"] == "ValueError: boom"

    def test_requeue_stale_recovers_running_jobs(self, tmp_path):
        q = JobQueue(str(tmp_path / "q"))
        jid = q.submit(build_job(scenario="x"))
        q.claim_next()
        assert q.depth() == 0
        assert q.requeue_stale() == [jid]
        assert q.depth() == 1

    def test_states_cover_directories(self, tmp_path):
        q = JobQueue(str(tmp_path / "q"))
        for state in JOB_STATES:
            assert q.jobs(state) == []

    def test_build_job_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            build_job()
        with pytest.raises(ValueError):
            build_job(scenario="a", spec_dict={"name": "b"})


class TestSweepKillResume:
    """Satellite: fault-inject a kill after N completed points, then
    resume incrementally to payloads byte-identical to a fresh serial
    run."""

    def test_kill_then_resume_bit_identical(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "store")
        points = make_points(6)
        serial = SweepExecutor().run(points)

        monkeypatch.setenv(KILL_AFTER_ENV, "3")
        ex = SweepExecutor(cache_dir=cache_dir)
        with pytest.raises(SweepKilled):
            ex.run(points)

        monkeypatch.delenv(KILL_AFTER_ENV)
        resumed = SweepExecutor(cache_dir=cache_dir)
        payloads = resumed.run(points)
        # The three published points resume from the store...
        assert (resumed.cache_hits, resumed.cache_misses) == (3, 3)
        # ...and the assembled result is exactly the serial one.
        assert payloads == serial
        assert (json.dumps(payloads, sort_keys=True)
                == json.dumps(serial, sort_keys=True))

    def test_killed_run_leaves_no_claims(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "store")
        points = make_points(4)
        monkeypatch.setenv(KILL_AFTER_ENV, "2")
        ex = SweepExecutor(cache_dir=cache_dir)
        with pytest.raises(SweepKilled):
            ex.run(points)
        assert ex.store.stats()["claims"] == 0  # released on the way out


class TestServeLoop:
    def test_serve_drains_queue_and_reuses_store(self, tmp_path):
        queue_root = str(tmp_path / "q")
        q = JobQueue(queue_root)
        q.submit(build_job(scenario="smoke-bernoulli"))
        q.submit(build_job(scenario="smoke-bernoulli"))
        summary = serve(queue_root, out_dir=str(tmp_path / "results"),
                        cache_dir=str(tmp_path / "store"), max_jobs=2)
        assert summary["served"] == 2 and summary["failed"] == 0
        # The second identical job is served entirely from the store.
        assert q.counts()["done"] == 2
        second = q.jobs("done")[1]["result"]
        assert second["store_misses"] == 0 and second["store_hits"] > 0

    def test_failed_job_isolated(self, tmp_path):
        queue_root = str(tmp_path / "q")
        q = JobQueue(queue_root)
        q.submit(build_job(scenario="no-such-scenario"))
        q.submit(build_job(scenario="smoke-bernoulli"))
        summary = serve(queue_root, out_dir=str(tmp_path / "results"),
                        max_jobs=2)
        assert summary["failed"] == 1 and summary["served"] == 1
        assert q.counts() == {"queued": 0, "running": 0, "done": 1,
                              "failed": 1}
        assert "no-such-scenario" in q.jobs("failed")[0]["error"]

    def test_idle_timeout_returns(self, tmp_path):
        summary = serve(str(tmp_path / "q"), idle_timeout=0.05, poll=0.01)
        assert summary["served"] == 0

    def test_farm_metrics_recorded(self, tmp_path):
        from repro.obs import InMemoryRecorder

        queue_root = str(tmp_path / "q")
        JobQueue(queue_root).submit(build_job(scenario="smoke-bernoulli"))
        rec = InMemoryRecorder(every_k=0, timed=True)
        serve(queue_root, out_dir=str(tmp_path / "results"),
              cache_dir=str(tmp_path / "store"), max_jobs=1, metrics=rec)
        snap = rec.snapshot()
        assert snap["counters"]["farm_jobs_total"] == 1
        assert snap["counters"]["farm_points_executed_total"] > 0
        assert snap["gauges"]["farm_queue_depth"] == 0
        assert rec.walltimes().get("worker_busy_seconds", 0) > 0

    def test_killed_serve_resumes_byte_identical(self, tmp_path,
                                                 monkeypatch):
        """Serve, die mid-job via fault injection, re-serve: the
        requeued job completes incrementally and its artifacts match a
        direct serial run byte for byte."""
        from repro.scenarios import get_scenario, run_scenario, write_artifacts

        queue_root = str(tmp_path / "q")
        JobQueue(queue_root).submit(build_job(scenario="smoke-bernoulli"))
        monkeypatch.setenv(KILL_AFTER_ENV, "2")
        with pytest.raises(SweepKilled):
            serve(queue_root, out_dir=str(tmp_path / "farm"),
                  cache_dir=str(tmp_path / "store"), max_jobs=1)
        monkeypatch.delenv(KILL_AFTER_ENV)
        assert JobQueue(queue_root).counts()["running"] == 1

        summary = serve(queue_root, out_dir=str(tmp_path / "farm"),
                        cache_dir=str(tmp_path / "store"), max_jobs=1)
        assert summary["served"] == 1
        assert summary["store_hits"] == 2  # the pre-kill publishes

        serial_dir = str(tmp_path / "serial")
        run = run_scenario(get_scenario("smoke-bernoulli"))
        write_artifacts(run, serial_dir)
        base = os.path.join(serial_dir, "smoke-bernoulli")
        farm = os.path.join(str(tmp_path / "farm"), "smoke-bernoulli")
        for name in sorted(os.listdir(base)):
            with open(os.path.join(base, name), "rb") as fh:
                expect = fh.read()
            with open(os.path.join(farm, name), "rb") as fh:
                assert fh.read() == expect, name


class TestFarmCLI:
    def test_submit_serve_status_gc(self, tmp_path, capsys):
        from repro.cli import main

        queue = str(tmp_path / "q")
        store = str(tmp_path / "store")
        out = str(tmp_path / "results")
        assert main(["submit", "smoke-bernoulli", "--queue", queue]) == 0
        assert "submitted job-000001" in capsys.readouterr().out
        assert main(["serve", "--queue", queue, "--out", out,
                     "--cache-dir", store, "--max-jobs", "1"]) == 0
        assert "served 1 job(s)" in capsys.readouterr().out
        assert main(["farm", "status", "--queue", queue,
                     "--cache-dir", store]) == 0
        status_out = capsys.readouterr().out
        assert "done" in status_out and "result store" in status_out
        assert main(["farm", "gc", "--cache-dir", store]) == 0
        assert "store gc" in capsys.readouterr().out

    def test_serve_surfaces_failed_jobs(self, tmp_path, capsys):
        from repro.cli import main

        queue = str(tmp_path / "q")
        assert main(["submit", "smoke-bernoulli", "--queue", queue]) == 0
        capsys.readouterr()
        JobQueue(queue).submit(build_job(scenario="missing-scenario"))
        assert main(["serve", "--queue", queue,
                     "--out", str(tmp_path / "results"),
                     "--max-jobs", "2"]) == 1
