"""Tests for the replication & statistics subsystem (repro.stats) and
the CI-aware ratio aggregation in repro.analysis.ratio."""

import json
import math
import statistics

import pytest

from repro.analysis.ratio import (
    RatioMeasurement,
    RatioSummary,
    per_seed_ratios,
    ratio_of,
    summarize,
)
from repro.cli import main as cli_main
from repro.scenarios import ScenarioSpec
from repro.stats import (
    SUMMARY_COLUMNS,
    ReplicatedRun,
    ReplicationPlan,
    Welford,
    bootstrap_interval,
    build_summary_rows,
    half_width,
    load_artifact,
    normal_interval,
    replicate_scenario,
    summarize_artifact,
    write_replicated_artifacts,
    z_value,
)


def tiny_spec(**overrides):
    fields = dict(
        name="test-replication",
        description="replication test scenario",
        model="cioq",
        switch={"n_in": 3, "n_out": 3, "b_in": 2, "b_out": 2},
        traffic="bernoulli",
        traffic_params={"load": 1.2},
        policies=({"name": "gm"},),
        slots=6,
        seeds=(0,),
        include_opt=False,
        metrics=("benefit", "n_sent"),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestWelford:
    def test_matches_batch_statistics(self):
        values = [3.0, 1.5, -2.25, 10.0, 0.125]
        acc = Welford.from_values(values)
        assert acc.n == 5
        assert acc.mean == pytest.approx(statistics.fmean(values), rel=1e-12)
        assert acc.variance == pytest.approx(statistics.variance(values),
                                             rel=1e-12)
        assert acc.std == pytest.approx(statistics.stdev(values), rel=1e-12)
        assert acc.sem == pytest.approx(acc.std / math.sqrt(5), rel=1e-12)

    def test_merge_equals_single_pass(self):
        values = [float(i) ** 1.5 for i in range(1, 40)]
        left = Welford.from_values(values[:13])
        right = Welford.from_values(values[13:])
        merged = left.merge(right)
        whole = Welford.from_values(values)
        assert merged.n == whole.n
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert merged.variance == pytest.approx(whole.variance, rel=1e-12)

    def test_merge_with_empty(self):
        acc = Welford.from_values([1.0, 2.0])
        out = Welford().merge(acc)
        assert (out.n, out.mean) == (2, 1.5)
        assert Welford().merge(Welford()).n == 0

    def test_undefined_below_two_observations(self):
        assert math.isnan(Welford().variance)
        acc = Welford().add(4.0)
        assert math.isnan(acc.variance)
        assert math.isnan(acc.std)
        assert acc.mean == 4.0

    def test_constant_series_zero_variance(self):
        acc = Welford.from_values([2.5] * 10)
        assert acc.variance == 0.0
        assert acc.std == 0.0


class TestIntervals:
    def test_z_value_known_quantiles(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_value(0.99) == pytest.approx(2.575829, abs=1e-5)
        for bad in (0.0, 1.0, -1.0, 2.0):
            with pytest.raises(ValueError):
                z_value(bad)

    def test_normal_interval_formula(self):
        lo, hi = normal_interval(10.0, 2.0, 16, confidence=0.95)
        hw = z_value(0.95) * 2.0 / 4.0
        assert lo == pytest.approx(10.0 - hw)
        assert hi == pytest.approx(10.0 + hw)
        assert half_width(2.0, 16, 0.95) == pytest.approx(hw)

    def test_normal_interval_undefined(self):
        lo, hi = normal_interval(1.0, float("nan"), 5)
        assert math.isnan(lo) and math.isnan(hi)
        assert math.isnan(half_width(1.0, 1))

    def test_bootstrap_deterministic_and_sane(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        a = bootstrap_interval(values, resamples=400, seed=7)
        b = bootstrap_interval(values, resamples=400, seed=7)
        assert a == b
        c = bootstrap_interval(values, resamples=400, seed=8)
        assert a != c  # different stream
        lo, hi = a
        assert lo < statistics.fmean(values) < hi
        assert 1.0 <= lo and hi <= 8.0  # resampled means stay in range

    def test_bootstrap_undefined_below_two(self):
        lo, hi = bootstrap_interval([1.0], resamples=10, seed=0)
        assert math.isnan(lo) and math.isnan(hi)


class TestReplicatesBlockValidation:
    def test_round_trips_toml_and_json(self):
        spec = tiny_spec(replicates={"n": 16, "confidence": 0.9,
                                     "bootstrap": 100,
                                     "target_half_width": 0.5,
                                     "target_metric": "n_sent",
                                     "batch": 4})
        assert ScenarioSpec.from_toml(spec.to_toml()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="replicates keys"):
            tiny_spec(replicates={"n": 4, "stride": 2})

    def test_n_must_be_at_least_two(self):
        with pytest.raises(ValueError, match="n must be"):
            tiny_spec(replicates={"n": 1})

    def test_confidence_must_be_fraction(self):
        with pytest.raises(ValueError, match="confidence"):
            tiny_spec(replicates={"n": 4, "confidence": 95})

    def test_target_half_width_positive(self):
        with pytest.raises(ValueError, match="target_half_width"):
            tiny_spec(replicates={"n": 4, "target_half_width": 0.0})

    def test_ratio_target_needs_opt(self):
        with pytest.raises(ValueError, match="include_opt"):
            tiny_spec(replicates={"n": 4, "target_metric": "ratio"})
        tiny_spec(include_opt=True,
                  replicates={"n": 4, "target_metric": "ratio"})

    def test_target_metric_must_be_exported(self):
        # A metric the scenario does not export would starve the
        # stopping rule forever (no values, never satisfied).
        with pytest.raises(ValueError, match="not exported"):
            tiny_spec(replicates={"n": 4,
                                  "target_metric": "value_arrived"})
        tiny_spec(metrics=("benefit", "value_arrived"),
                  replicates={"n": 4, "target_metric": "value_arrived"})

    def test_plan_from_spec_merges_overrides(self):
        spec = tiny_spec(replicates={"n": 8, "confidence": 0.9})
        plan = ReplicationPlan.from_spec(spec, n=4, bootstrap=50)
        assert (plan.n, plan.confidence, plan.bootstrap) == (4, 0.9, 50)
        assert plan.seeds() == (0, 1, 2, 3)
        with pytest.raises(ValueError):
            ReplicationPlan.from_spec(spec, n=1)

    def test_replicate_without_block_or_plan_raises(self):
        with pytest.raises(ValueError, match="replicates block"):
            replicate_scenario(tiny_spec())


class TestReplication:
    def test_shapes_and_summary_schema(self):
        spec = tiny_spec(include_opt=True)
        rrun = replicate_scenario(spec, plan=ReplicationPlan(n=4))
        assert isinstance(rrun, ReplicatedRun)
        assert rrun.seeds_used == (0, 1, 2, 3)
        assert not rrun.stopped_early
        assert len(rrun.run.rows) == 4
        for row in rrun.summary:
            assert tuple(row.keys()) == SUMMARY_COLUMNS
        pairs = {(r["policy"], r["metric"]) for r in rrun.summary}
        assert ("gm", "benefit") in pairs
        assert ("OPT", "benefit") in pairs
        assert ("gm", "ratio") in pairs
        assert ("OPT", "ratio") not in pairs

    def test_serial_vs_parallel_bit_identical(self, tmp_path):
        spec = tiny_spec(include_opt=True,
                         replicates={"n": 5, "bootstrap": 50})
        serial = replicate_scenario(spec)
        parallel = replicate_scenario(spec, workers=3)
        assert serial.artifact() == parallel.artifact()
        a, b = tmp_path / "a", tmp_path / "b"
        write_replicated_artifacts(serial, str(a))
        write_replicated_artifacts(parallel, str(b))
        names = ("result.json", "result.csv", "scenario.toml",
                 "summary.json", "summary.csv")
        for fname in names:
            assert (a / spec.name / fname).read_bytes() == \
                   (b / spec.name / fname).read_bytes(), fname

    def test_half_width_shrinks_like_inverse_sqrt_n(self):
        """The acceptance property: quadrupling n roughly halves the
        benefit CI half-width (the band is generous because the std
        estimate itself varies between the n=8 and n=32 samples)."""
        spec = tiny_spec(slots=8)
        hw = {}
        for n in (8, 32):
            rrun = replicate_scenario(spec, plan=ReplicationPlan(n=n))
            (row,) = [r for r in rrun.summary
                      if (r["policy"], r["metric"]) == ("gm", "benefit")]
            assert row["n"] == n
            hw[n] = row["half_width"]
        assert hw[32] < hw[8]
        assert 1.2 <= hw[8] / hw[32] <= 4.0  # ~2 expected

    def test_early_stopping_stops_at_first_satisfied_batch(self):
        spec = tiny_spec()
        plan = ReplicationPlan(n=12, batch=4, target_half_width=1e6)
        rrun = replicate_scenario(spec, plan=plan)
        assert rrun.stopped_early
        assert rrun.seeds_used == (0, 1, 2, 3)
        assert len(rrun.run.rows) == 4
        # The recorded spec reflects the seeds that actually ran.
        assert rrun.spec.seeds == (0, 1, 2, 3)

    def test_early_stopping_unsatisfied_runs_every_seed(self):
        spec = tiny_spec()
        plan = ReplicationPlan(n=8, batch=4, target_half_width=1e-9)
        rrun = replicate_scenario(spec, plan=plan)
        assert not rrun.stopped_early
        assert rrun.seeds_used == tuple(range(8))

    def test_early_stopping_deterministic_across_workers(self):
        spec = tiny_spec()
        plan = ReplicationPlan(n=12, batch=4, target_half_width=1e6)
        serial = replicate_scenario(spec, plan=plan)
        parallel = replicate_scenario(spec, plan=plan, workers=2)
        assert serial.artifact() == parallel.artifact()

    def test_base_seed_shifts_ladder(self):
        spec = tiny_spec()
        rrun = replicate_scenario(
            spec, plan=ReplicationPlan(n=3, base_seed=100))
        assert rrun.seeds_used == (100, 101, 102)

    def test_summarize_artifact_reproduces_summary(self, tmp_path):
        spec = tiny_spec(include_opt=True,
                         replicates={"n": 4, "bootstrap": 50})
        rrun = replicate_scenario(spec)
        write_replicated_artifacts(rrun, str(tmp_path))
        artifact = load_artifact(spec.name, results_root=str(tmp_path))
        rows = summarize_artifact(artifact)
        assert rows == rrun.summary
        summary = json.loads(
            (tmp_path / spec.name / "summary.json").read_text())
        assert summary["summary"] == rrun.summary
        assert summary["seeds_used"] == [0, 1, 2, 3]

    def test_load_artifact_accepts_dir_and_file(self, tmp_path):
        spec = tiny_spec(replicates={"n": 2})
        write_replicated_artifacts(replicate_scenario(spec), str(tmp_path))
        target = tmp_path / spec.name
        by_dir = load_artifact(str(target))
        by_file = load_artifact(str(target / "result.json"))
        assert by_dir == by_file
        with pytest.raises(FileNotFoundError):
            load_artifact("no-such-scenario", results_root=str(tmp_path))


class TestRatioEdgeCases:
    def test_ratio_of_conventions(self):
        assert ratio_of(0.0, 0.0) == 1.0
        assert ratio_of(5.0, 0.0) == float("inf")
        assert ratio_of(6.0, 3.0) == 2.0
        with pytest.raises(ValueError, match="negative"):
            ratio_of(-1.0, 2.0)
        with pytest.raises(ValueError, match="negative"):
            ratio_of(1.0, -2.0)

    def _measurement(self, onl, opt, bound=None):
        return RatioMeasurement(policy="gm", trace="t", model="cioq",
                                onl_benefit=onl, opt_benefit=opt,
                                n_packets=1, bound=bound)

    def test_both_zero_is_perfect(self):
        m = self._measurement(0.0, 0.0, bound=3.0)
        assert m.ratio == 1.0
        assert m.finite_ratio == 1.0
        assert m.within_bound

    def test_onl_zero_opt_positive_is_unbounded(self):
        m = self._measurement(0.0, 5.0, bound=3.0)
        assert m.ratio == float("inf")
        assert m.finite_ratio is None
        assert not m.within_bound  # violates any finite bound
        row = m.as_row()
        assert row["ratio"] is None  # JSON/CSV-safe
        json.dumps(row, allow_nan=False)

    def test_unbounded_with_no_bound_is_vacuously_ok(self):
        m = self._measurement(0.0, 5.0, bound=None)
        assert m.within_bound

    def test_summarize_excludes_unbounded_from_mean(self):
        ms = [self._measurement(2.0, 4.0, bound=3.0),
              self._measurement(0.0, 5.0, bound=3.0)]
        s = summarize(ms)
        assert s["n"] == 2
        assert s["n_unbounded"] == 1
        assert s["mean_ratio"] == 2.0  # only the finite ratio
        assert s["max_ratio"] == float("inf")
        assert not s["all_within_bound"]

    def test_ratio_summary_ci(self):
        ms = [self._measurement(1.0, r, bound=3.0)
              for r in (1.0, 1.2, 1.4, 1.6)]
        rs = RatioSummary.from_measurements(ms, confidence=0.95)
        assert rs.n == 4 and rs.n_unbounded == 0
        assert rs.mean == pytest.approx(1.3)
        assert rs.ci_lo < 1.3 < rs.ci_hi
        assert rs.half_width == pytest.approx(rs.mean - rs.ci_lo)
        assert rs.all_within_bound
        row = rs.as_row()
        assert row["mean_ratio"] == pytest.approx(1.3)
        assert row["worst"] == pytest.approx(1.6)


class TestPerSeedRatioAggregation:
    def test_per_seed_ratios_marks_unbounded_as_none(self):
        assert per_seed_ratios([4.0, 5.0, 0.0], [2.0, 0.0, 0.0]) == \
               [2.0, None, 1.0]
        with pytest.raises(ValueError, match="length"):
            per_seed_ratios([1.0], [1.0, 2.0])

    def test_regression_mean_of_ratios_not_ratio_of_sums(self):
        """One big near-perfect seed must not wash out a catastrophic
        small seed: the aggregated ratio is the mean of per-seed
        ratios, which differs materially from sum(OPT)/sum(ONL)."""
        opt = [100.0, 10.0]
        onl = [100.0, 2.0]  # seed 2 is 5x off
        ratio_of_sums = sum(opt) / sum(onl)  # ~1.078: hides the blowup
        per_seed = per_seed_ratios(opt, onl)
        mean_of_ratios = statistics.fmean(per_seed)  # 3.0: shows it
        assert ratio_of_sums == pytest.approx(110 / 102)
        assert mean_of_ratios == pytest.approx(3.0)
        assert abs(mean_of_ratios - ratio_of_sums) > 1.5

        # The summary layer aggregates the per-seed way.
        rows = build_summary_rows({("gm", "ratio"): per_seed})
        (row,) = rows
        assert row["mean"] == pytest.approx(3.0)
        assert row["mean"] != pytest.approx(ratio_of_sums)

    def test_runner_aggregates_agree_with_summary_on_unbounded_seed(self):
        """result.json aggregates and summary.json rows must give the
        same answer when one seed's ratio is unbounded: exclude that
        seed from the mean, don't null the whole policy."""
        from repro.scenarios.runner import compute_aggregates

        aggs = compute_aggregates(["gm"], {"gm": [0.0, 2.0]}, [5.0, 4.0])
        (gm_agg, _opt_agg) = aggs
        assert gm_agg["mean_ratio"] == 2.0  # finite seed only
        rows = build_summary_rows(
            {("gm", "ratio"): per_seed_ratios([5.0, 4.0], [0.0, 2.0])})
        assert rows[0]["mean"] == 2.0
        assert rows[0]["n_undefined"] == 1
        # All ratios unbounded -> None, still no Infinity anywhere.
        (gm_only, _) = compute_aggregates(["gm"], {"gm": [0.0]}, [5.0])
        assert gm_only["mean_ratio"] is None

    def test_replicated_run_ratio_uses_per_seed_mean(self):
        spec = tiny_spec(include_opt=True)
        rrun = replicate_scenario(spec, plan=ReplicationPlan(n=4))
        (row,) = [r for r in rrun.summary
                  if (r["policy"], r["metric"]) == ("gm", "ratio")]
        opts = [float(r["OPT"]) for r in rrun.run.rows]
        onls = [float(r["gm"]) for r in rrun.run.rows]
        expected = statistics.fmean(
            [r for r in per_seed_ratios(opts, onls) if r is not None])
        assert row["mean"] == pytest.approx(expected, abs=1e-6)


class TestStatsCLI:
    def test_scenarios_run_replicates_flag(self, tmp_path, capsys):
        rc = cli_main(["scenarios", "run", "smoke-bernoulli",
                       "--replicates", "4", "--ci", "95",
                       "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replication summary" in out
        target = tmp_path / "smoke-bernoulli"
        for fname in ("result.json", "result.csv", "scenario.toml",
                      "summary.json", "summary.csv"):
            assert (target / fname).exists(), fname
        header = (target / "summary.csv").read_text().splitlines()[0]
        assert header == ",".join(SUMMARY_COLUMNS)

    def test_replicated_spec_runs_replicated_by_default(self, capsys):
        rc = cli_main(["scenarios", "run", "replicated-smoke",
                       "--no-artifacts"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replication summary: 12/12 seeds" in out
        assert "boot_lo" in out  # the spec's block asks for bootstrap

    def test_stats_summarize_by_name_and_json(self, tmp_path, capsys):
        assert cli_main(["scenarios", "run", "smoke-bernoulli",
                         "--replicates", "4",
                         "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        rc = cli_main(["stats", "summarize", "smoke-bernoulli",
                       "--results", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "summary of smoke-bernoulli" in out
        rc = cli_main(["stats", "summarize", "smoke-bernoulli",
                       "--results", str(tmp_path), "--json",
                       "--bootstrap", "20"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["metric"] for r in rows} >= {"benefit", "ratio"}

    def test_stats_summarize_missing_target_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no result artifact"):
            cli_main(["stats", "summarize", "nope",
                      "--results", str(tmp_path)])

    def test_bad_ci_exits(self, tmp_path):
        for bad in ("120", "100", "0", "-5"):
            with pytest.raises(SystemExit, match="--ci"):
                cli_main(["scenarios", "run", "smoke-bernoulli",
                          "--replicates", "2", "--ci", bad,
                          "--out", str(tmp_path)])

    def test_seeds_override_conflicts_with_replication(self):
        # Replicate seeds come from the plan's base_seed ladder; an
        # explicit --seeds list must error, not be silently dropped.
        with pytest.raises(SystemExit, match="--seeds"):
            cli_main(["scenarios", "run", "smoke-bernoulli",
                      "--replicates", "4", "--seeds", "5,6",
                      "--no-artifacts"])
        with pytest.raises(SystemExit, match="--seeds"):
            cli_main(["scenarios", "run", "replicated-smoke",
                      "--seeds", "5", "--no-artifacts"])

    def test_batch_flag_alone_activates_replication(self, capsys):
        rc = cli_main(["scenarios", "run", "smoke-bernoulli",
                       "--batch", "2", "--no-artifacts"])
        assert rc == 0
        assert "replication summary" in capsys.readouterr().out

    def test_summarize_plain_single_seed_artifact(self, tmp_path, capsys):
        """`stats summarize` also works on ordinary (non-replicated)
        artifacts — it aggregates whatever seeds the run recorded."""
        assert cli_main(["scenarios", "run", "smoke-bernoulli",
                         "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        rc = cli_main(["stats", "summarize", "smoke-bernoulli",
                       "--results", str(tmp_path)])
        assert rc == 0
        assert "summary of smoke-bernoulli" in capsys.readouterr().out