"""Streaming trace ingestion + the replay-path bugfix regressions.

Covers the four fixes that the streaming rewrite depends on:

1. explicit trailing-idle ``n_slots`` on :class:`Trace` (serialized,
   honored by ``concat`` and replay tiling);
2. replay carrying recorded packet *values* through the streaming path;
3. ``normalized_dst_weights`` rejecting NaN/inf;
4. the ``reset()`` contract clearing stateful models between runs;

plus the chunked stream format itself (validation errors, O(chunk)
readers) and end-to-end engine equality: ``run_cioq_streaming`` /
``run_crossbar_streaming`` driven by an ``arrival_source`` produce
results identical to the batch engine on the materialized trace.
"""

import json

import numpy as np
import pytest

from repro.core import CGUPolicy, GMPolicy, PGPolicy
from repro.simulation.engine import (
    run_cioq,
    run_cioq_streaming,
    run_crossbar,
    run_crossbar_streaming,
)
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.traffic import (
    ApplicationMixTraffic,
    BernoulliTraffic,
    BurstyTraffic,
    MarkovModulatedTraffic,
    ParetoBurstTraffic,
    Trace,
    TraceReplayTraffic,
    concat,
)
from repro.traffic.base import normalized_dst_weights
from repro.traffic.trace import (
    is_stream_file,
    iter_stream_slots,
    read_stream_header,
)
from repro.traffic.values import two_value, uniform_values


def _rows(trace):
    return [(p.pid, p.value, p.arrival, p.src, p.dst)
            for p in trace.packets]


class TestExplicitNSlots:
    """Bugfix 1: a trace can end with intended idle slots."""

    def test_default_is_derived(self):
        t = Trace([Packet(0, 1.0, 3, 0, 0)], 2, 2)
        assert t.n_slots == 4

    def test_explicit_trailing_idle_kept(self):
        t = Trace([Packet(0, 1.0, 3, 0, 0)], 2, 2, n_slots=10)
        assert t.n_slots == 10
        assert list(t.arrivals(9)) == []
        assert len(t.arrival_slots()) == 10

    def test_empty_trace_with_slots(self):
        t = Trace([], 2, 2, n_slots=5)
        assert t.n_slots == 5 and len(t) == 0
        assert t.offered_load() == 0.0

    def test_rejects_n_slots_below_derived(self):
        with pytest.raises(ValueError, match="smaller than the last"):
            Trace([Packet(0, 1.0, 3, 0, 0)], 2, 2, n_slots=3)

    def test_json_round_trip_carries_n_slots(self):
        t = Trace([Packet(0, 2.5, 1, 0, 1)], 2, 2, n_slots=7)
        back = Trace.from_json(t.to_json())
        assert back.n_slots == 7
        assert _rows(back) == _rows(t)

    def test_from_json_back_compat_without_n_slots(self):
        # Files written before the fix carry no "n_slots" key.
        payload = json.loads(Trace([Packet(0, 1.0, 2, 0, 0)], 2, 2,
                                   n_slots=9).to_json())
        del payload["n_slots"]
        back = Trace.from_json(json.dumps(payload))
        assert back.n_slots == 3  # derived, as those files implied

    def test_concat_respects_trailing_idle(self):
        first = Trace([Packet(0, 1.0, 0, 0, 0)], 2, 2, n_slots=6)
        second = Trace([Packet(0, 1.0, 0, 1, 1)], 2, 2)
        joined = concat(first, second, gap=2)
        # Second trace starts after first's full 6 slots + the gap.
        assert [p.arrival for p in joined.packets] == [0, 8]
        assert joined.n_slots == 9

    def test_repeat_tiles_with_trailing_idle_period(self):
        # A 1-packet recording padded to 4 slots must tile with period
        # 4, not period 1 (the old derived-n_slots bug).
        src = Trace([Packet(0, 3.0, 0, 0, 0)], 2, 2, n_slots=4)
        out = TraceReplayTraffic(src, repeat=True).generate(12)
        assert [p.arrival for p in out.packets] == [0, 4, 8]
        assert all(p.value == 3.0 for p in out.packets)
        assert out.n_slots == 12

    def test_generate_preserves_requested_slots(self):
        t = BernoulliTraffic(2, 2, load=0.3).generate(50, seed=0)
        assert t.n_slots == 50


class TestReplayValues:
    """Bugfix 2: the streaming path carries recorded values."""

    def test_arrivals_for_slot_returns_recorded_values(self):
        src = BernoulliTraffic(2, 2, load=2.0,
                               value_model=uniform_values(1, 50)
                               ).generate(5, seed=3)
        assert not src.is_unit_valued
        r = TraceReplayTraffic(src)
        rng = np.random.default_rng(0)
        got = [trip for t in range(5)
               for trip in r.arrivals_for_slot(t, rng)]
        assert got == [(p.src, p.dst, p.value) for p in src.packets]

    def test_streaming_equals_generate_on_non_unit_trace(self):
        src = BurstyTraffic(3, 3, burst_load=2.0,
                            value_model=two_value(9.0, 0.4)
                            ).generate(20, seed=5)
        assert not src.is_unit_valued
        replay = TraceReplayTraffic(src)
        materialized = replay.generate(20)
        source = replay.arrival_source()
        streamed = []
        for t in range(20):
            for s, d, v in source(t, None):
                streamed.append((len(streamed), v, t, s, d))
        assert streamed == _rows(materialized) == _rows(src)


class TestFiniteWeights:
    """Bugfix 3: NaN/inf destination weights fail fast."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     -float("inf")])
    def test_non_finite_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            normalized_dst_weights(3, [0.5, bad, 0.2])

    def test_model_constructor_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            BurstyTraffic(2, 3, dst_weights=[1.0, float("nan"), 1.0])

    def test_valid_weights_still_normalize(self):
        w = normalized_dst_weights(2, [1.0, 3.0])
        assert w.tolist() == [0.25, 0.75]


class TestResetContract:
    """Bugfix 4: stateful models reset between runs."""

    @pytest.mark.parametrize("make", [
        lambda: MarkovModulatedTraffic(3, 3, loads=[0.2, 2.0]),
        lambda: ParetoBurstTraffic(3, 3),
        lambda: BurstyTraffic(3, 3),
        lambda: ApplicationMixTraffic(3, 3),
    ])
    def test_reuse_after_mid_run_state_is_deterministic(self, make):
        fresh = make().generate(30, seed=11)
        dirty = make()
        # Leak mid-run state: query arbitrary non-zero slots directly.
        rng = np.random.default_rng(999)
        for slot in (4, 5, 6):
            dirty.arrivals_for_slot(slot, rng)
        # generate() must reset, so the leaked state cannot bleed in.
        assert dirty.generate(30, seed=11).to_json() == fresh.to_json()
        # arrival_source() resets too.
        source = dirty.arrival_source(seed=11)
        streamed = []
        for t in range(30):
            for s, d, v in source(t, None):
                streamed.append((len(streamed), v, t, s, d))
        assert streamed == _rows(fresh)

    def test_base_reset_is_noop(self):
        m = BernoulliTraffic(2, 2, load=1.0)
        m.reset()  # stateless models keep the no-op default


class TestStreamFormat:
    def _write(self, tmp_path, trace, chunk_slots=4):
        path = str(tmp_path / "t.jsonl")
        trace.save_stream(path, chunk_slots=chunk_slots)
        return path

    def test_sniffing(self, tmp_path):
        trace = BernoulliTraffic(2, 2, load=1.0).generate(6, seed=0)
        stream = self._write(tmp_path, trace)
        legacy = str(tmp_path / "t.json")
        trace.save(legacy)
        assert is_stream_file(stream)
        assert not is_stream_file(legacy)
        assert _rows(Trace.load(stream)) == _rows(Trace.load(legacy))

    def test_iter_stream_slots_yields_every_slot(self, tmp_path):
        trace = Trace([Packet(0, 1.0, 2, 0, 0)], 2, 2, n_slots=9)
        path = self._write(tmp_path, trace, chunk_slots=3)
        slots = list(iter_stream_slots(path))
        assert [s for s, _ in slots] == list(range(9))
        assert [len(ps) for _, ps in slots] == [0, 0, 1, 0, 0, 0, 0, 0, 0]

    def test_header_validation(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"format": "repro-trace-stream",
                                 "version": 99, "n_in": 2, "n_out": 2,
                                 "n_slots": 1, "n_packets": 0}) + "\n")
        with pytest.raises(ValueError, match="version"):
            read_stream_header(path)

    def test_packet_count_mismatch_detected(self, tmp_path):
        trace = BernoulliTraffic(2, 2, load=2.0).generate(4, seed=1)
        path = self._write(tmp_path, trace)
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        header["n_packets"] += 1
        with open(path, "w") as fh:
            fh.write("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ValueError, match="promises"):
            list(iter_stream_slots(path))

    def test_out_of_range_packet_detected(self, tmp_path):
        trace = Trace([Packet(0, 1.0, 0, 0, 0)], 1, 1, n_slots=2)
        path = self._write(tmp_path, trace)
        lines = open(path).read().splitlines()
        chunk = json.loads(lines[1])
        chunk["packets"][0][3] = 5  # src out of range
        with open(path, "w") as fh:
            fh.write("\n".join([lines[0], json.dumps(chunk)]) + "\n")
        with pytest.raises(ValueError, match="out of range"):
            list(iter_stream_slots(path))

    def test_arrival_source_rejects_slot_skips(self):
        m = BernoulliTraffic(2, 2, load=1.0)
        source = m.arrival_source(seed=0)
        source(0, None)
        with pytest.raises(ValueError, match="consecutive"):
            source(2, None)


class TestEngineStreamingEquality:
    """run_*_streaming over an arrival_source == batch engine over the
    materialized trace, field for field."""

    CONFIG = SwitchConfig(n_in=3, n_out=3, speedup=1, b_in=2, b_out=2,
                          b_cross=1)

    def _assert_equal(self, a, b):
        assert a.summary() == b.summary()
        assert a.benefit == b.benefit

    @pytest.mark.parametrize("policy_cls", [GMPolicy, PGPolicy])
    def test_cioq_streaming_matches_batch(self, policy_cls):
        model = ApplicationMixTraffic(3, 3,
                                      value_model=two_value(7.0, 0.3))
        trace = model.generate(40, seed=2)
        batch = run_cioq(policy_cls(), self.CONFIG, trace,
                         backend="reference")
        stream = run_cioq_streaming(policy_cls(), self.CONFIG,
                                    model.arrival_source(seed=2), 40)
        self._assert_equal(batch, stream)

    def test_crossbar_streaming_matches_batch(self):
        model = BurstyTraffic(3, 3, burst_load=2.5)
        trace = model.generate(30, seed=4)
        batch = run_crossbar(CGUPolicy(), self.CONFIG, trace,
                             backend="reference")
        stream = run_crossbar_streaming(CGUPolicy(), self.CONFIG,
                                        model.arrival_source(seed=4), 30)
        self._assert_equal(batch, stream)

    def test_stream_file_replay_matches_batch(self, tmp_path):
        model = BernoulliTraffic(3, 3, load=1.5,
                                 value_model=uniform_values(1, 20))
        trace = model.generate(25, seed=9)
        path = str(tmp_path / "rec.jsonl")
        trace.save_stream(path, chunk_slots=4)
        replay = TraceReplayTraffic(path)
        assert replay._trace is None
        stream = run_cioq_streaming(GMPolicy(), self.CONFIG,
                                    replay.arrival_source(), 25)
        batch = run_cioq(GMPolicy(), self.CONFIG, trace,
                         backend="reference")
        self._assert_equal(batch, stream)

    def test_crossbar_streaming_rejects_fast_backend(self):
        from repro.simulation.backends import BackendUnsupported

        model = BernoulliTraffic(3, 3, load=1.0)
        with pytest.raises(BackendUnsupported):
            run_crossbar_streaming(CGUPolicy(), self.CONFIG,
                                   model.arrival_source(), 5,
                                   backend="fast")
