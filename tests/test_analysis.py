"""Tests for the analysis harness: ratios, sweeps, tables, efficiency."""

import pytest

from repro.analysis.efficiency import (
    compare_unit_matching_cost,
    compare_weighted_matching_cost,
    efficiency_scaling_table,
)
from repro.analysis.ratio import (
    RatioMeasurement,
    measure_cioq_ratio,
    measure_crossbar_ratio,
    measure_many,
    summarize,
    worst,
)
from repro.analysis.report import format_table, markdown_table
from repro.analysis.sweep import (
    beta_sweep_pg,
    buffer_sweep_crossbar,
    grid,
    speedup_sweep,
    threshold_sweep_cpg,
)
from repro.core.cgu import CGUPolicy
from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import two_value


class TestRatioMeasurement:
    def test_cioq_measurement_fields(self, small_config, unit_trace):
        m = measure_cioq_ratio(GMPolicy(), unit_trace, small_config, bound=3.0)
        assert m.model == "cioq"
        assert m.ratio >= 1.0
        assert m.within_bound
        assert m.n_packets == len(unit_trace)

    def test_crossbar_measurement(self, small_config, unit_trace):
        m = measure_crossbar_ratio(
            CGUPolicy(), unit_trace, small_config, bound=3.0
        )
        assert m.model == "crossbar"
        assert m.within_bound

    def test_ratio_edge_cases(self):
        z = RatioMeasurement("p", "t", "cioq", 0.0, 0.0, 0)
        assert z.ratio == 1.0
        inf = RatioMeasurement("p", "t", "cioq", 0.0, 5.0, 5)
        assert inf.ratio == float("inf")
        assert not inf.within_bound or inf.bound is None

    def test_as_row_keys(self, small_config, unit_trace):
        row = measure_cioq_ratio(GMPolicy(), unit_trace, small_config).as_row()
        assert {"policy", "trace", "onl", "opt", "ratio", "bound", "ok"} <= set(
            row
        )

    def test_measure_many_and_summary(self, small_config):
        traces = [
            BernoulliTraffic(3, 3, load=1.0).generate(8, seed=s)
            for s in range(3)
        ]
        ms = measure_many(GMPolicy, traces, small_config, bound=3.0)
        assert len(ms) == 3
        s = summarize(ms)
        assert s["n"] == 3
        assert s["all_within_bound"]
        assert s["max_ratio"] >= s["mean_ratio"] >= 1.0
        assert worst(ms).ratio == s["max_ratio"]

    def test_worst_empty_raises(self):
        with pytest.raises(ValueError):
            worst([])


class TestSweeps:
    def test_grid(self):
        rows = grid(a=[1, 2], b=["x"])
        assert rows == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_beta_sweep_rows(self, small_config):
        trace = BernoulliTraffic(
            3, 3, load=1.3, value_model=two_value(8, 0.3)
        ).generate(12, seed=1)
        rows = beta_sweep_pg(trace, small_config, [1.5, 2.414])
        assert len(rows) == 2
        assert all(r["ratio"] >= 1.0 for r in rows)
        # OPT column identical across betas (computed once, beta-free).
        assert len({r["opt_benefit"] for r in rows}) == 1

    def test_threshold_sweep_cpg(self, small_config):
        trace = BernoulliTraffic(
            3, 3, load=1.3, value_model=two_value(8, 0.3)
        ).generate(10, seed=1)
        rows = threshold_sweep_cpg(trace, small_config, [1.5, 2.0], [2.0])
        assert len(rows) == 2
        assert all(r["ratio"] >= 1.0 for r in rows)

    def test_speedup_sweep(self):
        base = SwitchConfig.square(3, b_in=2, b_out=2)
        rows = speedup_sweep(
            {"GM": GMPolicy},
            BernoulliTraffic(3, 3, load=1.2),
            n_slots=10,
            speedups=[1, 2],
            base_config=base,
            seeds=(0,),
        )
        assert len(rows) == 2
        assert all("GM" in r and "OPT" in r for r in rows)
        assert all(r["GM"] <= r["OPT"] + 1e-6 for r in rows)

    def test_buffer_sweep(self):
        base = SwitchConfig.square(3, b_in=2, b_out=2, b_cross=1)
        rows = buffer_sweep_crossbar(
            CGUPolicy,
            BernoulliTraffic(3, 3, load=1.2),
            n_slots=8,
            b_cross_values=[1, 2],
            base_config=base,
            seeds=(0,),
        )
        assert len(rows) == 2
        assert all(r["ratio"] >= 1.0 for r in rows)


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        txt = format_table(rows, title="T")
        lines = txt.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_bools_and_none(self):
        txt = format_table([{"ok": True, "x": None}, {"ok": False, "x": 1.5}])
        assert "yes" in txt and "NO" in txt and "-" in txt

    def test_markdown_table(self):
        md = markdown_table([{"a": 1.23456, "b": "q"}])
        assert md.startswith("| a | b |")
        assert "---" in md

    def test_column_subset(self):
        txt = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in txt.splitlines()[0]


class TestEfficiency:
    def test_unit_comparison_fields(self):
        row = compare_unit_matching_cost(8, 0.5, trials=5, seed=1)
        assert row["n"] == 8
        assert row["greedy_ops"] > 0
        assert row["maxmatch_ops"] >= row["greedy_ops"]
        assert 0.5 <= row["size_ratio"] <= 1.0

    def test_weighted_comparison_fields(self):
        row = compare_weighted_matching_cost(6, 0.5, trials=3, seed=1)
        assert row["hungarian_ops"] > row["greedy_ops"]
        assert 0.5 <= row["weight_ratio"] <= 1.0 + 1e-9

    def test_scaling_table(self):
        rows = efficiency_scaling_table([4, 8], trials=3)
        assert [r["n"] for r in rows] == [4, 8]
        # Cost gap grows with switch size.
        assert rows[1]["maxmatch_ops"] > rows[0]["maxmatch_ops"]


def _bracketed(onl, lo, hi, bound=3.0, policy="gm"):
    return RatioMeasurement(
        policy=policy, trace="t", model="cioq", onl_benefit=onl,
        opt_benefit=hi, n_packets=4, bound=bound,
        opt_mode="bounds", opt_lower=lo, opt_upper=hi,
    )


def _exact(onl, opt, bound=3.0, policy="gm"):
    return RatioMeasurement(
        policy=policy, trace="t", model="cioq", onl_benefit=onl,
        opt_benefit=opt, n_packets=4, bound=bound,
    )


class TestIntervalRatios:
    """Interval-aware ratio semantics: bracketed (inexact-OPT)
    measurements never silently mix with exact ones, and bound checks
    only report what the bracket certifies (regression tests for
    docs/offline_opt.md's never-mix guarantee)."""

    def test_bracketed_measurement_endpoints(self):
        m = _bracketed(onl=10.0, lo=18.0, hi=24.0)
        assert not m.is_exact
        assert m.ratio == pytest.approx(2.4)       # conservative end
        assert m.ratio_lo == pytest.approx(1.8)
        assert m.ratio_hi == pytest.approx(2.4)
        assert m.within_bound and m.certified_within_bound

    def test_bound_check_needs_certified_violation(self):
        # Bracket straddles the bound: no *certified* violation, but
        # not certified-within either.
        straddle = _bracketed(onl=10.0, lo=25.0, hi=35.0)
        assert straddle.within_bound
        assert not straddle.certified_within_bound
        # Even the certified lower end exceeds the bound: violation.
        violation = _bracketed(onl=10.0, lo=31.0, hi=35.0)
        assert not violation.within_bound
        assert not violation.certified_within_bound

    def test_degenerate_bracket_is_exact(self):
        m = _bracketed(onl=10.0, lo=20.0, hi=20.0)
        assert m.is_exact
        assert m.ratio == m.ratio_lo == m.ratio_hi

    def test_as_row_bracket_columns_only_when_inexact(self):
        exact_row = _exact(onl=10.0, opt=20.0).as_row()
        assert "ratio_lo" not in exact_row and "opt_mode" not in exact_row
        row = _bracketed(onl=10.0, lo=18.0, hi=24.0).as_row()
        assert row["opt_mode"] == "bounds"
        assert row["opt_lo"] == 18.0 and row["opt_hi"] == 24.0
        assert row["ratio_lo"] == 1.8 and row["ratio_hi"] == 2.4

    def test_summarize_never_mixes_exact_and_bracketed(self):
        mixed = [
            _exact(onl=10.0, opt=20.0),           # ratio 2.0
            _exact(onl=10.0, opt=30.0),           # ratio 3.0
            _bracketed(onl=10.0, lo=15.0, hi=40.0),  # [1.5, 4.0]
        ]
        s = summarize(mixed)
        assert s["n"] == 3
        assert s["n_exact"] == 2 and s["n_bracketed"] == 1
        # Exact mean is exact-only; the bracket covers all points.
        assert s["mean_ratio"] == pytest.approx(2.5)
        assert s["mean_ratio_lo"] == pytest.approx((2.0 + 3.0 + 1.5) / 3)
        assert s["mean_ratio_hi"] == pytest.approx((2.0 + 3.0 + 4.0) / 3)
        assert s["max_ratio"] == pytest.approx(4.0)  # conservative end
        assert s["all_within_bound"]
        assert not s["all_certified_within_bound"]  # 4.0 > 3.0

    def test_summary_table_mixing_exact_and_bracketed(self):
        from repro.analysis.ratio import RatioSummary

        mixed = [
            _exact(onl=10.0, opt=20.0),
            _exact(onl=10.0, opt=30.0),
            _bracketed(onl=10.0, lo=15.0, hi=40.0),
        ]
        summary = RatioSummary.from_measurements(mixed)
        assert summary.n == 2            # exact finite points only
        assert summary.n_bracketed == 1
        assert summary.mean == pytest.approx(2.5)
        assert summary.worst == pytest.approx(4.0)
        row = summary.as_row()
        assert row["n_bracketed"] == 1
        assert row["mean_lo"] == pytest.approx(2.1667, abs=1e-4)
        assert row["mean_hi"] == pytest.approx(3.0)
        # Pure-exact tables keep their original shape.
        pure = RatioSummary.from_measurements(mixed[:2]).as_row()
        assert "n_bracketed" not in pure and "mean_lo" not in pure

    def test_unbounded_bracketed_measurement(self):
        m = _bracketed(onl=0.0, lo=5.0, hi=9.0)
        assert m.finite_ratio is None
        assert not m.within_bound    # cannot certify consistency
        s = summarize([m, _exact(onl=10.0, opt=20.0)])
        assert s["n_unbounded"] == 1
        assert s["mean_ratio"] == pytest.approx(2.0)

    def test_measure_with_bounds_mode_brackets_exact(
        self, small_config, unit_trace
    ):
        exact = measure_cioq_ratio(
            GMPolicy(), unit_trace, small_config, bound=3.0)
        m = measure_cioq_ratio(
            GMPolicy(), unit_trace, small_config, bound=3.0,
            opt_mode="bounds")
        assert m.opt_mode == "bounds"
        assert m.opt_lower - 1e-9 <= exact.opt_benefit <= m.opt_upper + 1e-9
        assert m.ratio_lo <= exact.ratio <= m.ratio_hi + 1e-9
        assert m.opt_benefit == m.opt_upper
