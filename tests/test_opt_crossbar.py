"""Tests for the exact buffered-crossbar offline optimum."""

import pytest

from repro.core.cgu import CGUPolicy
from repro.core.cpg import CPGPolicy
from repro.offline.opt import cioq_opt, crossbar_opt
from repro.simulation.engine import run_crossbar
from repro.switch.config import SwitchConfig
from repro.switch.packet import Packet
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.trace import Trace
from repro.traffic.values import uniform_values


def trace_of(spec, n=2):
    return Trace([Packet(i, *s) for i, s in enumerate(spec)], n, n)


class TestHandInstances:
    def test_empty(self, tiny_config):
        assert crossbar_opt(Trace([], 2, 2), tiny_config).benefit == 0.0

    def test_single_packet_crosses_both_subphases(self, tiny_config):
        t = trace_of([(1.0, 0, 0, 1)])
        res = crossbar_opt(t, tiny_config)
        assert res.n_delivered == 1

    def test_input_port_constraint_binds(self):
        """Two VOQs at input 0: only one packet enters the fabric per
        cycle, but over two cycles (slots) both are deliverable to their
        distinct outputs."""
        config = SwitchConfig.square(2, speedup=1, b_in=1, b_out=1, b_cross=1)
        t = trace_of([(1.0, 0, 0, 0), (1.0, 0, 0, 1)])
        # b_in = 1: the second simultaneous arrival at input 0 cannot
        # even be buffered (two distinct VOQs -> both fit).
        res = crossbar_opt(t, config)
        assert res.n_delivered == 2

    def test_crosspoint_capacity_binds(self):
        """b_cross = 1 and a blocked output: the crosspoint holds only
        one in-flight packet per (i, j)."""
        config = SwitchConfig.square(2, speedup=4, b_in=1, b_out=1, b_cross=1)
        spec = [(1.0, 0, 0, 0), (1.0, 0, 1, 0)]
        t = trace_of(spec)
        res = crossbar_opt(t, config)
        assert res.n_delivered == 2

    def test_value_selection(self, tiny_config):
        t = trace_of([(1.0, 0, 0, 0), (9.0, 0, 0, 0)])
        res = crossbar_opt(t, tiny_config)
        assert res.benefit == 9.0

    def test_parallel_subphase_advantage(self):
        """In one cycle, input subphases act per input and output
        subphases per output: a full diagonal load crosses in a single
        slot."""
        config = SwitchConfig.square(3, speedup=1, b_in=1, b_out=1, b_cross=1)
        t = trace_of(
            [(1.0, 0, 0, 0), (1.0, 0, 1, 1), (1.0, 0, 2, 2)], n=3
        )
        res = crossbar_opt(t, config, horizon=2)
        assert res.n_delivered == 3


class TestStructuralProperties:
    def test_crossbar_opt_at_least_cioq_opt(self, small_config):
        """Crosspoint buffers only add capability: OPT_crossbar >=
        OPT_cioq on every instance (same other capacities)."""
        for seed in range(4):
            trace = BernoulliTraffic(3, 3, load=1.3).generate(8, seed=seed)
            cioq = cioq_opt(trace, small_config).benefit
            xbar = crossbar_opt(trace, small_config).benefit
            assert xbar >= cioq - 1e-6

    def test_opt_dominates_online(self, small_config):
        trace = BernoulliTraffic(
            3, 3, load=1.4, value_model=uniform_values(1, 30)
        ).generate(12, seed=23)
        opt = crossbar_opt(trace, small_config)
        for policy in (CGUPolicy(), CPGPolicy()):
            onl = run_crossbar(policy, small_config, trace)
            assert onl.benefit <= opt.benefit + 1e-6

    def test_monotone_in_crosspoint_capacity(self):
        trace = BernoulliTraffic(3, 3, load=1.5).generate(8, seed=2)
        small = SwitchConfig.square(3, b_in=2, b_out=2, b_cross=1)
        big = SwitchConfig.square(3, b_in=2, b_out=2, b_cross=3)
        assert (
            crossbar_opt(trace, small).benefit
            <= crossbar_opt(trace, big).benefit + 1e-9
        )

    def test_schedule_extraction(self, small_config):
        from repro.offline.crossbar_timegraph import CrossbarOptModel

        trace = BernoulliTraffic(3, 3, load=1.0).generate(6, seed=1)
        model = CrossbarOptModel(trace, small_config)
        res = model.solve(extract_schedule=True)
        assert len(model.y_events) == res.n_delivered
        assert len(model.z_events) == res.n_delivered
        assert len(res.transmissions) == res.n_delivered
