"""Tests for trace composition utilities."""

import pytest

from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.offline.opt import cioq_opt
from repro.simulation.engine import run_cioq
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.transforms import (
    concat,
    map_values,
    merge,
    restrict_ports,
    scale_values,
    time_dilate,
)
from repro.traffic.values import uniform_values


@pytest.fixture
def base():
    return BernoulliTraffic(3, 3, load=1.0).generate(10, seed=1)


@pytest.fixture
def weighted():
    return BernoulliTraffic(
        3, 3, load=1.2, value_model=uniform_values(1, 20)
    ).generate(10, seed=2)


class TestConcat:
    def test_lengths_add(self, base):
        other = BernoulliTraffic(3, 3, load=0.5).generate(5, seed=3)
        joined = concat(base, other, gap=2)
        assert len(joined) == len(base) + len(other)
        assert joined.n_slots == base.n_slots + 2 + other.n_slots

    def test_second_trace_shifted(self, base):
        other = BernoulliTraffic(3, 3, load=0.5).generate(5, seed=3)
        joined = concat(base, other)
        late = [p for p in joined.packets if p.arrival >= base.n_slots]
        assert len(late) == len(other)

    def test_dimension_mismatch(self, base):
        other = BernoulliTraffic(2, 2, load=0.5).generate(5, seed=3)
        with pytest.raises(ValueError):
            concat(base, other)

    def test_negative_gap(self, base):
        with pytest.raises(ValueError):
            concat(base, base, gap=-1)

    def test_pids_canonical(self, base):
        joined = concat(base, base)
        assert [p.pid for p in joined.packets] == list(range(len(joined)))


class TestMerge:
    def test_counts_add(self, base):
        other = BernoulliTraffic(3, 3, load=0.5).generate(10, seed=9)
        merged = merge(base, other)
        assert len(merged) == len(base) + len(other)
        assert merged.n_slots == max(base.n_slots, other.n_slots)

    def test_merged_load_increases_contention(self, base):
        config = SwitchConfig.square(3, b_in=1, b_out=1)
        solo = run_cioq(GMPolicy(), config, base)
        merged = merge(base, BernoulliTraffic(3, 3, load=1.0).generate(
            10, seed=9))
        both = run_cioq(GMPolicy(), config, merged)
        assert both.n_rejected >= solo.n_rejected


class TestValueTransforms:
    def test_scale_multiplies(self, weighted):
        scaled = scale_values(weighted, 3.0)
        assert scaled.total_value == pytest.approx(3.0 * weighted.total_value)

    def test_scale_validation(self, weighted):
        with pytest.raises(ValueError):
            scale_values(weighted, 0.0)

    def test_ratio_invariant_under_scaling(self, weighted):
        """Competitive ratios are scale-free: PG's ratio on the scaled
        trace equals its ratio on the original."""
        config = SwitchConfig.square(3, speedup=1, b_in=1, b_out=1)
        scaled = scale_values(weighted, 7.0)
        r1 = run_cioq(PGPolicy(), config, weighted)
        r2 = run_cioq(PGPolicy(), config, scaled)
        o1 = cioq_opt(weighted, config).benefit
        o2 = cioq_opt(scaled, config).benefit
        assert o2 == pytest.approx(7.0 * o1)
        assert r2.benefit == pytest.approx(7.0 * r1.benefit)

    def test_map_values(self, weighted):
        doubled = map_values(weighted, lambda v: v * 2)
        assert doubled.total_value == pytest.approx(2 * weighted.total_value)


class TestRestrictPorts:
    def test_subswitch_dimensions(self, base):
        sub = restrict_ports(base, inputs=[0, 2], outputs=[1])
        assert sub.n_in == 2 and sub.n_out == 1
        assert all(p.dst == 0 for p in sub.packets)

    def test_only_matching_packets_kept(self, base):
        sub = restrict_ports(base, inputs=[0], outputs=[0, 1, 2])
        expected = sum(1 for p in base.packets if p.src == 0)
        assert len(sub) == expected

    def test_validation(self, base):
        with pytest.raises(ValueError):
            restrict_ports(base, inputs=[], outputs=[0])
        with pytest.raises(ValueError):
            restrict_ports(base, inputs=[9], outputs=[0])


class TestTimeDilate:
    def test_arrivals_spread(self, base):
        slow = time_dilate(base, 3)
        assert slow.n_slots == (base.n_slots - 1) * 3 + 1
        assert len(slow) == len(base)

    def test_dilation_never_hurts_throughput(self, base):
        config = SwitchConfig.square(3, b_in=1, b_out=1)
        fast = run_cioq(GMPolicy(), config, base)
        slow = run_cioq(GMPolicy(), config, time_dilate(base, 2))
        assert slow.n_sent >= fast.n_sent

    def test_validation(self, base):
        with pytest.raises(ValueError):
            time_dilate(base, 0)
