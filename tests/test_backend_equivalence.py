"""Differential equivalence matrix: ``fast`` backend vs ``reference``.

The vectorized numpy backend (:mod:`repro.simulation.fastpath`) is
required to be **bit-identical** to the reference kernel on every
observable :class:`~repro.simulation.results.SimulationResult` field —
that contract is what lets sweep caches ignore the backend and lets
``auto`` switch freely.  This module pins it from four directions:

* the registry semantics themselves (validation, fallback, errors);
* a differential matrix over **every builtin scenario** — each
  (scenario, seed, policy) runs through both backends and must agree on
  every payload field;
* seeded property-based runs over arbitrary traffic models and policy
  mixes (the ``tests/_strategies.py`` harness), including
  preemption-heavy and drain edge cases;
* seed-ladder batching parity: a batched multi-seed ``fast`` run must
  produce byte-identical ``summary.json`` / ``summary.csv`` artifacts
  to serial per-seed reference replication.

Equality below is exact (``==``), not approximate: the backends execute
the same float operations in the same order by construction, so even
the accumulated float accounting must match bit for bit.
"""

import functools
import json
import random

import pytest

from _strategies import N_CASES, property_seeds, traffic_strategy
from repro.core.cgu import CGUPolicy
from repro.core.cpg import CPGPolicy
from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.scenarios import all_scenarios
from repro.scheduling.baselines import (
    MaxMatchPolicy,
    MaxWeightMatchPolicy,
    RandomMatchPolicy,
    RoundRobinPolicy,
)
from repro.scheduling.fifo import FifoCIOQPolicy, FifoCrossbarPolicy
from repro.scheduling.matching import MatchingStats
from repro.simulation.backends import (
    BACKENDS,
    BackendUnsupported,
    available_backends,
    numpy_available,
    validate_backend,
)
from repro.simulation.engine import (
    run_cioq,
    run_cioq_batch,
    run_cioq_streaming,
    run_crossbar,
    run_crossbar_batch,
)
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.trace import Trace
from repro.traffic.values import two_value, uniform_values

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="fast backend requires numpy"
)

#: Every observable payload field of a SimulationResult (the logs are
#: covered by test_kernel_equivalence.py; the fast backend rejects
#: record=True, so they cannot diverge here).
PAYLOAD_FIELDS = [
    "policy_name",
    "n_arrival_slots",
    "horizon",
    "n_arrived",
    "value_arrived",
    "n_accepted",
    "value_accepted",
    "n_rejected",
    "value_rejected",
    "n_preempted_voq",
    "value_preempted_voq",
    "n_preempted_cross",
    "value_preempted_cross",
    "n_preempted_out",
    "value_preempted_out",
    "benefit",
    "n_sent",
    "n_residual",
    "value_residual",
    "sent_per_output",
    "value_per_output",
    "occupancy",
]


def assert_payloads_identical(ref, fast, label=""):
    """Exact equality on every observable field — ints and floats alike
    (the bit-identical backend contract, stronger than any tolerance)."""
    for name in PAYLOAD_FIELDS:
        rv, fv = getattr(ref, name), getattr(fast, name)
        assert rv == fv, (
            f"fast backend diverges from reference on {name} {label}: "
            f"{rv!r} != {fv!r}"
        )


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_backend_names(self):
        assert BACKENDS == ("reference", "fast", "auto")
        for name in BACKENDS:
            assert validate_backend(name) == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            validate_backend("numba")

    def test_engine_rejects_unknown_backend(self, small_config, unit_trace):
        with pytest.raises(ValueError, match="unknown backend"):
            run_cioq(GMPolicy(), small_config, unit_trace, backend="gpu")

    def test_available_backends_with_numpy(self):
        assert available_backends() == BACKENDS

    @pytest.mark.parametrize("kwargs", [
        {"record": True},
        {"check_invariants": True},
    ])
    def test_fast_rejects_unsupported_features(self, small_config,
                                               unit_trace, kwargs):
        with pytest.raises(BackendUnsupported):
            run_cioq(GMPolicy(), small_config, unit_trace, backend="fast",
                     **kwargs)
        # auto falls back to the reference kernel instead.
        ref = run_cioq(GMPolicy(), small_config, unit_trace, **kwargs)
        auto = run_cioq(GMPolicy(), small_config, unit_trace, backend="auto",
                        **kwargs)
        assert_payloads_identical(ref, auto)

    def test_fast_rejects_stats_collection(self, small_config, unit_trace):
        with pytest.raises(BackendUnsupported):
            run_cioq(MaxMatchPolicy(stats=MatchingStats()), small_config,
                     unit_trace, backend="fast")

    def test_fast_rejects_streaming(self, small_config):
        with pytest.raises(BackendUnsupported):
            run_cioq_streaming(GMPolicy(), small_config, lambda t, sw: [], 4,
                               backend="fast")

    def test_streaming_auto_falls_back(self, small_config):
        ref = run_cioq_streaming(GMPolicy(), small_config,
                                 lambda t, sw: [(0, t % 3, 1.0)], 6)
        auto = run_cioq_streaming(GMPolicy(), small_config,
                                  lambda t, sw: [(0, t % 3, 1.0)], 6,
                                  backend="auto")
        assert_payloads_identical(ref, auto)


# ---------------------------------------------------------------------------
# Satellite: differential matrix over every builtin scenario
# ---------------------------------------------------------------------------

def _scenario_cases():
    for spec in all_scenarios():
        yield pytest.param(spec, id=spec.name)


@pytest.mark.parametrize("spec", _scenario_cases())
def test_builtin_scenario_matrix(spec):
    """Every (builtin scenario, seed, policy) point agrees between the
    backends on every payload field.  Uses ``backend="fast"`` (not
    auto), so a future builtin policy outside the fast kernel's table
    fails loudly here — extend the kernel or adjust the scenario."""
    config = spec.build_config()
    traffic = spec.build_traffic()
    runner = run_cioq if spec.model == "cioq" else run_crossbar
    for seed in spec.seeds[:2]:
        trace = traffic.generate(spec.slots, seed=seed)
        for label, factory in spec.policy_factories():
            ref = runner(factory(), config, trace, trace_occupancy=True)
            fast = runner(factory(), config, trace, trace_occupancy=True,
                          backend="fast")
            assert_payloads_identical(
                ref, fast, label=f"({spec.name}, seed={seed}, {label})"
            )


# ---------------------------------------------------------------------------
# Satellite: property-based backend agreement
# ---------------------------------------------------------------------------

CIOQ_FACTORIES = [
    GMPolicy,
    functools.partial(GMPolicy, rotate=False),
    PGPolicy,
    functools.partial(PGPolicy, beta=1.1),  # near-1 beta: preempt-happy
    MaxMatchPolicy,
    MaxWeightMatchPolicy,
    functools.partial(RandomMatchPolicy, seed=7),
    RoundRobinPolicy,
    FifoCIOQPolicy,
]
CROSSBAR_FACTORIES = [
    CGUPolicy,
    functools.partial(CGUPolicy, rotate=False),
    CPGPolicy,
    functools.partial(CPGPolicy, beta=1.2, alpha=1.05),
    FifoCrossbarPolicy,
]


@pytest.mark.parametrize("seed", property_seeds())
def test_property_backend_agreement(seed):
    """Arbitrary traffic x arbitrary policy x arbitrary config: both
    backends agree exactly on every payload field."""
    rng = random.Random(seed)
    for case in range(N_CASES):
        model, n_in, n_out = traffic_strategy(rng)
        config = SwitchConfig(
            n_in=n_in, n_out=n_out, speedup=rng.randint(1, 3),
            b_in=rng.randint(1, 4), b_out=rng.randint(1, 4),
            b_cross=rng.randint(1, 3),
        )
        trace = model.generate(rng.randint(1, 30), seed=rng.randint(0, 10**6))
        occ = rng.random() < 0.5
        mes = rng.choice([None, 0, rng.randint(1, 5)])
        if rng.random() < 0.5:
            factory = rng.choice(CIOQ_FACTORIES)
            runner = run_cioq
        else:
            factory = rng.choice(CROSSBAR_FACTORIES)
            runner = run_crossbar
        ref = runner(factory(), config, trace, max_extra_slots=mes,
                     trace_occupancy=occ)
        fast = runner(factory(), config, trace, max_extra_slots=mes,
                      trace_occupancy=occ, backend="fast")
        assert_payloads_identical(
            ref, fast, label=f"(case {case}, seed {seed})"
        )


def test_preemption_pushout_chain_identical():
    """PG with beta just above 1 on two-value overload traffic forces
    VOQ push-outs *and* output-queue preemptions every few slots — the
    order-sensitive float accounting paths must still match exactly."""
    config = SwitchConfig(n_in=3, n_out=3, speedup=1, b_in=2, b_out=2,
                          b_cross=1)
    tm = BernoulliTraffic(3, 3, load=2.5, value_model=two_value(20.0, 0.5))
    for seed in range(5):
        trace = tm.generate(30, seed=seed)
        ref = run_cioq(PGPolicy(beta=1.01), config, trace)
        fast = run_cioq(PGPolicy(beta=1.01), config, trace, backend="fast")
        assert ref.n_preempted_voq + ref.n_preempted_out > 0
        assert_payloads_identical(ref, fast, label=f"(seed {seed})")


def test_streaming_style_drain_tail_identical():
    """A burst followed by silence must drain identically: the fast
    backend's lane-retirement logic may not terminate a run earlier or
    later than the reference loop (horizon and benefit both observable).
    """
    config = SwitchConfig(n_in=4, n_out=4, speedup=1, b_in=3, b_out=2,
                          b_cross=1)
    # All 16 pairs active in slot 0, then nothing: pure drain behavior.
    from repro.switch.packet import Packet

    packets = [
        Packet(pid, 1.0 + pid % 3, 0, pid // 4, pid % 4)
        for pid in range(16)
    ]
    trace = Trace(packets, 4, 4, name="burst-then-silence")
    for policy_factory, runner in [
        (GMPolicy, run_cioq), (FifoCIOQPolicy, run_cioq),
        (CGUPolicy, run_crossbar), (FifoCrossbarPolicy, run_crossbar),
    ]:
        ref = runner(policy_factory(), config, trace, trace_occupancy=True)
        fast = runner(policy_factory(), config, trace, trace_occupancy=True,
                      backend="fast")
        assert ref.n_residual == 0
        assert_payloads_identical(ref, fast,
                                  label=f"({policy_factory.__name__})")


def test_empty_trace_identical(small_config):
    empty = Trace([], 3, 3)
    ref = run_cioq(GMPolicy(), small_config, empty)
    fast = run_cioq(GMPolicy(), small_config, empty, backend="fast")
    assert fast.n_arrived == 0 and fast.horizon == ref.horizon
    assert_payloads_identical(ref, fast)


# ---------------------------------------------------------------------------
# Satellite: seed-ladder batching parity
# ---------------------------------------------------------------------------

def test_batch_lockstep_matches_serial_runs():
    """A batched multi-seed fast run equals per-trace serial reference
    runs element by element — including traces of *different lengths*
    in one batch (lanes retire at different times)."""
    config = SwitchConfig(n_in=4, n_out=4, speedup=2, b_in=3, b_out=3,
                          b_cross=2)
    tm = BernoulliTraffic(4, 4, load=1.4, value_model=uniform_values(1, 9))
    traces = [tm.generate(10 + 7 * k, seed=k) for k in range(5)]
    serial = [run_cioq(PGPolicy(), config, tr, trace_occupancy=True)
              for tr in traces]
    batched = run_cioq_batch(PGPolicy, config, traces, trace_occupancy=True,
                             backend="fast")
    assert len(batched) == len(serial)
    for k, (ref, fast) in enumerate(zip(serial, batched)):
        assert_payloads_identical(ref, fast, label=f"(lane {k})")

    xserial = [run_crossbar(CPGPolicy(), config, tr) for tr in traces]
    xbatched = run_crossbar_batch(CPGPolicy, config, traces, backend="fast")
    for k, (ref, fast) in enumerate(zip(xserial, xbatched)):
        assert_payloads_identical(ref, fast, label=f"(xbar lane {k})")


def test_replicated_artifacts_byte_identical(tmp_path):
    """The full replication pipeline — batched fast ladder vs serial
    reference — writes byte-identical summary.json / summary.csv (and
    result.json/result.csv), the artifact-level form of the contract."""
    from repro.scenarios.spec import ScenarioSpec
    from repro.stats import replicate_scenario, write_replicated_artifacts

    spec = ScenarioSpec(
        name="backend-parity",
        description="seed-ladder parity fixture",
        model="cioq",
        switch={"n_in": 3, "n_out": 3, "speedup": 2, "b_in": 2, "b_out": 2},
        traffic="bernoulli",
        traffic_params={"load": 1.3},
        values="uniform",
        value_params={"lo": 1.0, "hi": 9.0},
        policies=({"name": "gm"}, {"name": "pg"}),
        slots=12,
        seeds=(0,),
        include_opt=False,
        metrics=("benefit", "n_sent"),
        replicates={"n": 6, "base_seed": 3, "bootstrap": 64},
    )
    out = {}
    for backend in ("reference", "fast"):
        rrun = replicate_scenario(spec, backend=backend)
        target = tmp_path / backend
        paths = write_replicated_artifacts(rrun, str(target))
        out[backend] = {
            p.rsplit("/", 1)[-1]: open(p, "rb").read() for p in paths
        }
    assert set(out["reference"]) == set(out["fast"])
    for name, blob in out["reference"].items():
        assert out["fast"][name] == blob, (
            f"artifact {name} differs between backends"
        )
    # Sanity: the summary actually carries per-policy rows.
    summary = json.loads(out["fast"]["summary.json"])
    assert summary["seeds_used"] == [3, 4, 5, 6, 7, 8]
    assert {r["policy"] for r in summary["summary"]} == {"gm", "pg"}


# ---------------------------------------------------------------------------
# Satellite: metrics recorders never perturb payloads (PR 9)
# ---------------------------------------------------------------------------

class TestMetricsNeutrality:
    """The observability layer rides along the backend contract: running
    with no recorder, with :data:`NULL_METRICS`, and with an active
    :class:`InMemoryRecorder` must all produce exact-equal payloads on
    both backends — and the recorder snapshots themselves must be
    byte-identical between the backends."""

    def _modes(self):
        from repro.obs import NULL_METRICS, InMemoryRecorder

        return [
            ("none", lambda: None),
            ("null", lambda: NULL_METRICS),
            ("active", lambda: InMemoryRecorder(every_k=1)),
            ("sampled", lambda: InMemoryRecorder(every_k=3)),
        ]

    @pytest.mark.parametrize("model", ["cioq", "crossbar"])
    def test_recorder_modes_identical_payloads(self, model):
        config = SwitchConfig.square(4, speedup=2, b_in=3, b_out=3,
                                     b_cross=1)
        tm = BernoulliTraffic(4, 4, load=1.4,
                              value_model=uniform_values(1, 9))
        traces = [tm.generate(15, seed=s) for s in range(3)]
        if model == "cioq":
            serial, batched, factory = run_cioq, run_cioq_batch, GMPolicy
        else:
            serial, batched, factory = (run_crossbar, run_crossbar_batch,
                                        CGUPolicy)
        base = [serial(factory(), config, tr) for tr in traces]
        for mode, make in self._modes():
            ref = [serial(factory(), config, tr, metrics=make())
                   for tr in traces]
            fast = batched(factory, config, traces, backend="fast",
                           metrics=make())
            for k, (b, r, f) in enumerate(zip(base, ref, fast)):
                assert_payloads_identical(
                    b, r, label=f"(metrics={mode}, ref lane {k})")
                assert_payloads_identical(
                    b, f, label=f"(metrics={mode}, fast lane {k})")

    @pytest.mark.parametrize("every_k", [1, 4])
    def test_recorder_snapshots_backend_identical(self, every_k):
        """One shared recorder across a seed ladder: a serial reference
        batch and one lockstep fast batch must leave the recorder in a
        byte-identical state (counters, gauges, histograms, series)."""
        import json as _json

        from repro.obs import InMemoryRecorder

        config = SwitchConfig.square(4, speedup=2, b_in=3, b_out=3,
                                     b_cross=1)
        tm = BernoulliTraffic(4, 4, load=1.4,
                              value_model=uniform_values(1, 9))
        traces = [tm.generate(10 + 4 * k, seed=k) for k in range(3)]
        ref_rec = InMemoryRecorder(every_k=every_k)
        run_cioq_batch(GMPolicy, config, traces, backend="reference",
                       metrics=ref_rec)
        fast_rec = InMemoryRecorder(every_k=every_k)
        run_cioq_batch(GMPolicy, config, traces, backend="fast",
                       metrics=fast_rec)
        ref_snap = ref_rec.snapshot()
        fast_snap = fast_rec.snapshot()
        assert _json.dumps(ref_snap, sort_keys=True) == _json.dumps(
            fast_snap, sort_keys=True)


def test_executor_cache_is_backend_agnostic(tmp_path):
    """Payloads cached by a fast-backend executor are served verbatim to
    a reference executor (and vice versa): the cache key deliberately
    excludes the backend because the contract makes payloads
    interchangeable."""
    from repro.parallel import SweepExecutor, SweepPoint

    config = SwitchConfig.square(3, speedup=2, b_in=2, b_out=2)
    tm = BernoulliTraffic(3, 3, load=1.2, value_model=uniform_values(1, 5))
    points = [
        SweepPoint(model="cioq", config=config, trace=tm.generate(8, seed=s),
                   policy_factory=GMPolicy, seed=s)
        for s in range(4)
    ]
    cache = str(tmp_path / "cache")
    fast_ex = SweepExecutor(cache_dir=cache, backend="fast")
    fast_payloads = fast_ex.run(points)
    assert fast_ex.cache_misses == 4
    ref_ex = SweepExecutor(cache_dir=cache, backend="reference")
    ref_payloads = ref_ex.run(points)
    assert ref_ex.cache_hits == 4 and ref_ex.cache_misses == 0
    assert ref_payloads == fast_payloads
    # And a cold reference run agrees payload-for-payload.
    cold = SweepExecutor(backend="reference").run(points)
    assert cold == fast_payloads
