"""Tests for per-class breakdowns and LP-relaxation diagnostics."""

import pytest

from repro.analysis.classes import (
    banded_breakdown,
    class_breakdown,
    value_classes,
)
from repro.core.pg import PGPolicy
from repro.offline.crossbar_timegraph import CrossbarOptModel
from repro.offline.timegraph import CIOQOptModel
from repro.simulation.engine import run_cioq
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import pareto_values, two_value


class TestValueClasses:
    def test_two_value_classes(self):
        trace = BernoulliTraffic(
            2, 2, load=1.0, value_model=two_value(10, 0.5)
        ).generate(20, seed=0)
        assert value_classes(trace) == [1.0, 10.0]

    def test_continuous_values_rejected(self):
        trace = BernoulliTraffic(
            2, 2, load=1.0, value_model=pareto_values(1.5)
        ).generate(20, seed=0)
        with pytest.raises(ValueError, match="banded"):
            value_classes(trace)


class TestClassBreakdown:
    @pytest.fixture
    def run(self):
        config = SwitchConfig.square(3, speedup=1, b_in=1, b_out=1)
        trace = BernoulliTraffic(
            3, 3, load=2.0, value_model=two_value(20, 0.3)
        ).generate(25, seed=5)
        result = run_cioq(PGPolicy(), config, trace, record=True)
        return config, trace, result

    def test_rows_cover_all_packets(self, run):
        _config, trace, result = run
        rows = class_breakdown(result, trace)
        assert sum(r["arrived"] for r in rows) == len(trace)
        assert sum(r["delivered"] for r in rows) == result.n_sent

    def test_value_accounting(self, run):
        _config, trace, result = run
        rows = class_breakdown(result, trace)
        assert sum(r["value delivered"] for r in rows) == pytest.approx(
            result.benefit
        )

    def test_pg_protects_expensive_class(self, run):
        """Under overload PG must deliver the expensive class at a rate
        at least matching the cheap class."""
        _config, trace, result = run
        rows = class_breakdown(result, trace)
        cheap, expensive = rows[0], rows[-1]
        assert expensive["delivery rate"] >= cheap["delivery rate"]

    def test_requires_record(self):
        config = SwitchConfig.square(2, b_in=1, b_out=1)
        trace = BernoulliTraffic(2, 2, load=1.0).generate(5, seed=0)
        result = run_cioq(PGPolicy(), config, trace)
        with pytest.raises(ValueError, match="record"):
            class_breakdown(result, trace)


class TestBandedBreakdown:
    def test_bands_partition_packets(self):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(
            3, 3, load=1.5, value_model=pareto_values(1.3)
        ).generate(20, seed=2)
        result = run_cioq(PGPolicy(), config, trace, record=True)
        rows = banded_breakdown(result, trace, edges=[2.0, 10.0])
        assert len(rows) == 3
        assert sum(r["arrived"] for r in rows) == len(trace)
        assert sum(r["value delivered"] for r in rows) == pytest.approx(
            result.benefit
        )

    def test_edges_validation(self):
        config = SwitchConfig.square(2, b_in=1, b_out=1)
        trace = BernoulliTraffic(2, 2, load=1.0).generate(5, seed=0)
        result = run_cioq(PGPolicy(), config, trace, record=True)
        with pytest.raises(ValueError):
            banded_breakdown(result, trace, edges=[])
        with pytest.raises(ValueError):
            banded_breakdown(result, trace, edges=[5.0, 2.0])


class TestLPRelaxation:
    @pytest.mark.parametrize("seed", range(4))
    def test_lp_upper_bounds_ilp_cioq(self, seed):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        trace = BernoulliTraffic(3, 3, load=1.3).generate(10, seed=seed)
        model = CIOQOptModel(trace, config)
        lp = model.solve_lp_relaxation()
        ilp = model.solve().benefit
        assert lp >= ilp - 1e-6

    def test_lp_usually_integral_cioq(self):
        """On small random instances the LP relaxation is typically
        exact — the reason the MILP solves fast."""
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
        equal = 0
        total = 6
        for seed in range(total):
            trace = BernoulliTraffic(3, 3, load=1.2).generate(8, seed=seed)
            model = CIOQOptModel(trace, config)
            if abs(model.solve_lp_relaxation() - model.solve().benefit) < 1e-6:
                equal += 1
        assert equal >= total - 1  # allow at most one fractional instance

    def test_lp_upper_bounds_ilp_crossbar(self):
        config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(3, 3, load=1.4).generate(8, seed=3)
        model = CrossbarOptModel(trace, config)
        lp = model.solve_lp_relaxation()
        ilp = model.solve().benefit
        assert lp >= ilp - 1e-6

    def test_empty_trace_lp(self):
        from repro.traffic.trace import Trace

        config = SwitchConfig.square(2, b_in=1, b_out=1)
        assert CIOQOptModel(Trace([], 2, 2), config).solve_lp_relaxation() == 0.0
