"""Tests for the scenario registry, spec serialization, runner
determinism, artifacts and the `repro scenarios` CLI verbs."""

import dataclasses
import json
import tomllib

import pytest

from repro.cli import main as cli_main
from repro.scenarios import (
    ARTIFACT_VERSION,
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    policy_label,
    register_scenario,
    run_scenario,
    scenario_names,
    unregister_scenario,
    write_artifacts,
)


def small_spec(**overrides):
    fields = dict(
        name="test-tiny",
        description="test scenario",
        model="cioq",
        switch={"n_in": 3, "n_out": 3, "b_in": 2, "b_out": 2},
        traffic="bernoulli",
        traffic_params={"load": 1.2},
        policies=({"name": "gm"}, {"name": "pg", "beta": 2.0}),
        slots=8,
        seeds=(0, 1),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestRegistry:
    def test_builtin_catalog_size(self):
        assert len(scenario_names()) >= 12

    def test_get_known_scenario(self):
        spec = get_scenario("smoke-bernoulli")
        assert spec.name == "smoke-bernoulli"
        assert spec.model == "cioq"

    def test_get_unknown_raises_with_listing(self):
        with pytest.raises(KeyError, match="registered"):
            get_scenario("no-such-scenario")

    def test_register_decorator_and_duplicate_rejection(self):
        name = "test-register-decorator"
        try:
            @register_scenario
            def _builder():
                return small_spec(name=name)

            assert get_scenario(name).name == name
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(small_spec(name=name))
        finally:
            unregister_scenario(name)
        assert name not in scenario_names()

    def test_register_rejects_non_spec(self):
        with pytest.raises(TypeError):
            register_scenario(lambda: "not a spec")

    def test_registered_specs_are_immutable(self):
        spec = get_scenario("qos-two-class")
        with pytest.raises(TypeError):
            spec.policies[0]["beta"] = 99.0
        with pytest.raises(TypeError):
            spec.traffic_params["load"] = 0.0
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.slots = 1

    def test_all_scenarios_sorted_and_documented_fields(self):
        specs = all_scenarios()
        assert [s.name for s in specs] == sorted(s.name for s in specs)
        for s in specs:
            assert s.description, f"{s.name} lacks a description"
            assert s.expected, f"{s.name} lacks an expected outcome"


class TestSpecValidation:
    def test_unknown_model(self):
        with pytest.raises(ValueError, match="switch model"):
            small_spec(model="torus")

    def test_unknown_traffic_kind(self):
        with pytest.raises(ValueError, match="traffic kind"):
            small_spec(traffic="carrier-pigeon")

    def test_unknown_value_kind(self):
        with pytest.raises(ValueError, match="value kind"):
            small_spec(values="bitcoin")

    def test_unknown_policy_for_model(self):
        with pytest.raises(ValueError, match="unknown policy"):
            small_spec(policies=({"name": "cgu"},))  # crossbar-only

    def test_duplicate_policy_labels(self):
        with pytest.raises(ValueError, match="duplicate"):
            small_spec(policies=({"name": "gm"}, {"name": "gm"}))

    def test_reserved_policy_labels_rejected(self):
        for label in ("seed", "arrived", "OPT"):
            with pytest.raises(ValueError, match="reserved"):
                small_spec(policies=({"name": "gm", "label": label},))

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="metric"):
            small_spec(metrics=("benefit", "vibes"))

    def test_unknown_switch_field(self):
        with pytest.raises(ValueError, match="switch fields"):
            small_spec(switch={"n_ports": 4})

    def test_path_like_names_rejected(self):
        # The name doubles as the results/ subdirectory; separators and
        # dots must never reach os.path.join.
        for bad in ("../escape", "a/b", "a\\b", "UPPER", "dot.name", "",
                    "-leading"):
            with pytest.raises(ValueError, match="kebab-case"):
                small_spec(name=bad)

    def test_needs_seeds_and_slots(self):
        with pytest.raises(ValueError):
            small_spec(seeds=())
        with pytest.raises(ValueError):
            small_spec(slots=0)

    def test_policy_labels(self):
        assert policy_label({"name": "gm"}) == "gm"
        assert policy_label({"name": "pg", "beta": 1.5}) == "pg(beta=1.5)"
        assert policy_label({"name": "pg", "label": "mine"}) == "mine"


class TestSerialization:
    @pytest.mark.parametrize("name", [
        "smoke-bernoulli", "bursty-incast", "qos-two-class",
        "adversarial-overload", "crossbar-weighted-pareto",
    ])
    def test_toml_round_trip(self, name):
        spec = get_scenario(name)
        assert ScenarioSpec.from_toml(spec.to_toml()) == spec

    def test_json_round_trip_all_builtin(self):
        for spec in all_scenarios():
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_toml_parses_with_stdlib(self):
        data = tomllib.loads(small_spec().to_toml())
        assert data["name"] == "test-tiny"
        assert data["switch"]["n_in"] == 3
        assert data["policies"][1]["beta"] == 2.0

    def test_from_file_toml_and_json(self, tmp_path):
        spec = small_spec()
        t = tmp_path / "s.toml"
        j = tmp_path / "s.json"
        t.write_text(spec.to_toml())
        j.write_text(spec.to_json())
        assert ScenarioSpec.from_file(str(t)) == spec
        assert ScenarioSpec.from_file(str(j)) == spec

    def test_nested_policy_params_round_trip_as_inline_table(self):
        spec = small_spec(
            switch={"n_in": 6, "n_out": 6, "b_in": 3, "b_out": 3},
            traffic="adversarial",
            traffic_params={"adversary": "single-output-overload",
                            "policy": "pg", "policy_params": {"beta": 2.0}},
            policies=({"name": "gm"},),
        )
        text = spec.to_toml()
        assert "policy_params = { beta = 2.0 }" in text
        assert ScenarioSpec.from_toml(text) == spec

    def test_non_bare_param_keys_round_trip_quoted(self):
        spec = small_spec(traffic_params={"load": 1.0},
                          value_params={"weird key.name": 2.0},
                          values="unit")
        # unknown value_params would fail at build time, but export
        # must still emit parseable TOML with the key quoted.
        text = spec.to_toml()
        assert '"weird key.name" = 2.0' in text
        assert ScenarioSpec.from_toml(text) == spec

    def test_control_characters_in_strings_round_trip(self):
        spec = small_spec(description="line1\nline2\ttabbed \"quoted\"",
                          expected="bell\x07")
        assert ScenarioSpec.from_toml(spec.to_toml()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            ScenarioSpec.from_dict({"name": "x", "frobnicate": 1})

    def test_with_overrides(self):
        spec = small_spec()
        out = spec.with_overrides(slots=99, seeds=[5, 6])
        assert (out.slots, out.seeds) == (99, (5, 6))
        assert spec.slots == 8  # original untouched
        assert spec.with_overrides() is spec


class TestBuilders:
    def test_build_config_defaults_plus_overrides(self):
        cfg = small_spec().build_config()
        assert (cfg.n_in, cfg.n_out, cfg.b_in, cfg.b_out) == (3, 3, 2, 2)
        assert cfg.speedup == 1 and cfg.b_cross == 1  # defaults

    def test_every_builtin_traffic_builds(self):
        for spec in all_scenarios():
            traffic = spec.build_traffic()
            trace = traffic.generate(min(spec.slots, 6), seed=spec.seeds[0])
            cfg = spec.build_config()
            assert (trace.n_in, trace.n_out) == (cfg.n_in, cfg.n_out)

    def test_policy_factories_are_fresh_and_parametrized(self):
        factories = dict(small_spec().policy_factories())
        pg = factories["pg(beta=2.0)"]()
        assert pg.beta == 2.0
        assert factories["gm"]() is not factories["gm"]()

    def test_adversarial_gadget_requires_gadget_or_adversary(self):
        spec = small_spec(traffic="adversarial", traffic_params={})
        with pytest.raises(ValueError, match="exactly one"):
            spec.build_traffic()

    def test_adversarial_rejects_non_unit_values(self):
        spec = small_spec(
            traffic="adversarial",
            traffic_params={"gadget": "burst-reject"},
            values="pareto",
        )
        with pytest.raises(ValueError, match="own packet values"):
            spec.build_traffic()

    def test_replay_kind_checks_dimensions(self, tmp_path):
        from repro.traffic import BernoulliTraffic

        path = tmp_path / "t.json"
        BernoulliTraffic(2, 2, load=1.0).generate(4, seed=0).save(str(path))
        spec = small_spec(traffic="replay",
                          traffic_params={"path": str(path)})
        with pytest.raises(ValueError, match="2x2"):
            spec.build_traffic()  # scenario switch is 3x3


class TestRunner:
    def test_rows_and_aggregates_shape(self):
        run = run_scenario(small_spec())
        assert len(run.rows) == 2  # one per seed
        for row in run.rows:
            assert set(row) == {"seed", "arrived", "gm", "pg(beta=2.0)", "OPT"}
        labels = [a["policy"] for a in run.aggregates]
        assert labels == ["gm", "pg(beta=2.0)", "OPT"]
        assert all(a["mean_ratio"] >= 1.0 - 1e-9 for a in run.aggregates)
        # metrics: one row per (seed, policy incl. OPT)
        assert len(run.metrics) == 2 * 3

    def test_serial_vs_parallel_bit_identical(self, tmp_path):
        spec = small_spec()
        serial = run_scenario(spec)
        parallel = run_scenario(spec, workers=3)
        assert serial.artifact() == parallel.artifact()
        a = tmp_path / "a"
        b = tmp_path / "b"
        write_artifacts(serial, str(a))
        write_artifacts(parallel, str(b))
        for fname in ("result.json", "result.csv", "scenario.toml"):
            assert (a / spec.name / fname).read_bytes() == \
                   (b / spec.name / fname).read_bytes()

    def test_artifact_schema(self, tmp_path):
        run = run_scenario(small_spec(include_opt=False))
        json_path, csv_path, toml_path = write_artifacts(run, str(tmp_path))
        data = json.loads(open(json_path).read())
        assert data["artifact_version"] == ARTIFACT_VERSION
        assert ScenarioSpec.from_dict(data["scenario"]) == run.spec
        assert len(data["rows"]) == 2
        assert "OPT" not in data["rows"][0]
        header = open(csv_path).readline().strip().split(",")
        assert header[:2] == ["seed", "policy"]
        assert "benefit" in header
        assert ScenarioSpec.from_file(toml_path) == run.spec

    def test_zero_benefit_ratio_is_null_not_infinity(self, tmp_path):
        # 1 slot of near-zero load: a policy (and OPT) can deliver
        # nothing; the artifact must stay strict JSON (no Infinity).
        spec = small_spec(traffic_params={"load": 0.0}, slots=1,
                          seeds=(0,))
        run = run_scenario(spec)
        for agg in run.aggregates:
            assert agg["mean_ratio"] in (1.0, None)
        json_path, _csv, _toml = write_artifacts(run, str(tmp_path))
        json.loads(open(json_path).read())  # strict parse succeeds

    def test_no_opt_means_no_ratio(self):
        run = run_scenario(small_spec(include_opt=False))
        assert all("mean_ratio" not in a for a in run.aggregates)

    def test_crossbar_scenario_runs(self):
        run = run_scenario(get_scenario("crossbar-unit-burst"))
        assert {a["policy"] for a in run.aggregates} == {"cgu", "fifo", "OPT"}

    def test_cache_dir_round_trip(self, tmp_path):
        spec = small_spec()
        first = run_scenario(spec, cache_dir=str(tmp_path / "cache"))
        second = run_scenario(spec, cache_dir=str(tmp_path / "cache"))
        assert first.artifact() == second.artifact()

    def test_opt_bounds_mode_rows_bracket_exact(self, tmp_path):
        """With an inexact OPT mode the rows grow certified OPT_lo/OPT_hi
        columns that sandwich the exact optimum, the aggregates switch to
        the bracketed mean-ratio form, and the artifact records the
        solver mode in its v3 ``opt`` block."""
        bounded = run_scenario(small_spec(), opt_mode="bounds")
        exact = run_scenario(small_spec())
        for brow, erow in zip(bounded.rows, exact.rows):
            assert set(brow) == {"seed", "arrived", "gm", "pg(beta=2.0)",
                                 "OPT", "OPT_lo", "OPT_hi"}
            assert brow["OPT_lo"] <= erow["OPT"] <= brow["OPT_hi"]
            # bounds mode reports the conservative upper end as "OPT"
            assert brow["OPT"] == brow["OPT_hi"]
        assert "OPT_lo" not in exact.rows[0]
        # any non-degenerate seed bracket => never report an exact-looking
        # mean ratio, only the certified bracket on it
        assert any(r["OPT_lo"] < r["OPT_hi"] for r in bounded.rows)
        for agg in bounded.aggregates:
            assert agg["mean_ratio"] is None
            assert "mean_ratio_lo" in agg and "mean_ratio_hi" in agg
        json_path, _csv, _toml = write_artifacts(bounded, str(tmp_path))
        data = json.loads(open(json_path).read())
        assert data["artifact_version"] == ARTIFACT_VERSION
        assert data["opt"] == {"mode": "bounds", "window": None}
        assert all("OPT_lo" in row and "OPT_hi" in row
                   for row in data["rows"])


class TestScenarioCLI:
    def test_list(self, capsys):
        assert cli_main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_show(self, capsys):
        assert cli_main(["scenarios", "show", "smoke-bernoulli"]) == 0
        out = capsys.readouterr().out
        assert 'name = "smoke-bernoulli"' in out

    def test_show_unknown_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["scenarios", "show", "nope"])

    def test_run_writes_artifacts(self, tmp_path, capsys):
        rc = cli_main(["scenarios", "run", "smoke-bernoulli",
                       "--workers", "2", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-policy aggregates" in out
        assert (tmp_path / "smoke-bernoulli" / "result.json").exists()
        assert (tmp_path / "smoke-bernoulli" / "result.csv").exists()

    def test_run_no_artifacts_with_overrides(self, tmp_path, capsys):
        rc = cli_main(["scenarios", "run", "smoke-bernoulli",
                       "--no-artifacts", "--slots", "5", "--seeds", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "5 slots, 1 seeds" in out
        assert "artifacts:" not in out

    def test_run_bad_seeds_is_clean_error(self, capsys):
        with pytest.raises(SystemExit, match="bad override"):
            cli_main(["scenarios", "run", "smoke-bernoulli",
                      "--seeds", ""])
        with pytest.raises(SystemExit, match="bad override"):
            cli_main(["scenarios", "run", "smoke-bernoulli",
                      "--seeds", "1,x"])

    def test_export_and_run_file_round_trip(self, tmp_path, capsys):
        path = tmp_path / "exported.toml"
        assert cli_main(["scenarios", "export", "smoke-bernoulli",
                         "-o", str(path)]) == 0
        capsys.readouterr()
        assert ScenarioSpec.from_file(str(path)) == \
               get_scenario("smoke-bernoulli")
        rc = cli_main(["scenarios", "run", "--file", str(path),
                       "--no-artifacts"])
        assert rc == 0
        assert "per-policy aggregates" in capsys.readouterr().out

    def test_export_json_stdout(self, capsys):
        assert cli_main(["scenarios", "export", "smoke-bernoulli",
                         "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "smoke-bernoulli"
