"""Setup shim.

The environment's setuptools lacks the ``wheel`` package, so PEP 517
editable installs fail; this shim enables the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517

All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
