#!/usr/bin/env python
"""Quickstart: run the paper's four algorithms against the exact optimum.

Builds a 4x4 switch, generates moderately overloaded Bernoulli traffic,
runs GM and PG on the CIOQ model and CGU and CPG on the buffered
crossbar model, and compares every benefit with the exact offline
optimum computed on the same trace.

Run:  python examples/quickstart.py [--slots N] [--seed S]
"""

import argparse
import sys

from repro import (
    CGUPolicy,
    CPGPolicy,
    GMPolicy,
    PGPolicy,
    BernoulliTraffic,
    SwitchConfig,
    cioq_opt,
    crossbar_opt,
    run_cioq,
    run_crossbar,
    two_value,
    unit_values,
)
from repro.analysis import print_table
from repro.core import CGU_RATIO, GM_RATIO, cpg_optimal_ratio, pg_optimal_ratio


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=40,
                        help="arrival slots per trace (default 40)")
    parser.add_argument("--seed", type=int, default=7,
                        help="traffic seed (default 7)")
    args = parser.parse_args(argv if argv is not None else [])

    config = SwitchConfig.square(4, speedup=2, b_in=3, b_out=3, b_cross=1)
    n_slots = args.slots

    rows = []

    # --- unit-value traffic: GM (CIOQ) and CGU (crossbar) ---
    unit_trace = BernoulliTraffic(4, 4, load=1.1, value_model=unit_values())
    trace = unit_trace.generate(n_slots, seed=args.seed)

    gm = run_cioq(GMPolicy(), config, trace)
    opt = cioq_opt(trace, config)
    rows.append(
        {
            "algorithm": "GM (CIOQ)",
            "benefit": gm.benefit,
            "opt": opt.benefit,
            "ratio": round(opt.benefit / gm.benefit, 4),
            "paper bound": GM_RATIO,
        }
    )

    cgu = run_crossbar(CGUPolicy(), config, trace)
    xopt = crossbar_opt(trace, config)
    rows.append(
        {
            "algorithm": "CGU (crossbar)",
            "benefit": cgu.benefit,
            "opt": xopt.benefit,
            "ratio": round(xopt.benefit / cgu.benefit, 4),
            "paper bound": CGU_RATIO,
        }
    )

    # --- weighted traffic: PG (CIOQ) and CPG (crossbar) ---
    weighted = BernoulliTraffic(4, 4, load=1.2,
                                value_model=two_value(alpha=10.0, p_high=0.25))
    wtrace = weighted.generate(n_slots, seed=args.seed)

    pg = run_cioq(PGPolicy(), config, wtrace)
    wopt = cioq_opt(wtrace, config)
    rows.append(
        {
            "algorithm": "PG (CIOQ)",
            "benefit": round(pg.benefit, 2),
            "opt": round(wopt.benefit, 2),
            "ratio": round(wopt.benefit / pg.benefit, 4),
            "paper bound": round(pg_optimal_ratio(), 4),
        }
    )

    cpg = run_crossbar(CPGPolicy(), config, wtrace)
    wxopt = crossbar_opt(wtrace, config)
    rows.append(
        {
            "algorithm": "CPG (crossbar)",
            "benefit": round(cpg.benefit, 2),
            "opt": round(wxopt.benefit, 2),
            "ratio": round(wxopt.benefit / cpg.benefit, 4),
            "paper bound": round(cpg_optimal_ratio(), 4),
        }
    )

    print_table(
        rows,
        title=(
            "Online algorithms vs exact offline optimum "
            f"(4x4 switch, speedup {config.speedup}, {n_slots} slots)"
        ),
    )
    print(
        "Every measured ratio must stay below its paper bound; on\n"
        "stochastic traffic it is typically far below (the bounds are\n"
        "worst-case guarantees — see examples/adversarial_analysis.py)."
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
