#!/usr/bin/env python
"""Buffered crossbar tour: topology figures, CGU/CPG, buffer sizing.

Reproduces the paper's two architecture figures as live renderings of
the simulator state (Figure 1: CIOQ, Figure 2: buffered crossbar with
N=3), then runs CGU and CPG and sweeps the crosspoint buffer capacity
B(C) to show how little crosspoint memory the competitive guarantees
need — the guarantee holds at B(C)=1, which is why buffered crossbars
"significantly decrease the scheduling overhead" (Section 1) without
large fabric memories.

Run:  python examples/crossbar_fabric.py [--slots N] [--seed S]
"""

import argparse
import sys

from repro import (
    CGUPolicy,
    CPGPolicy,
    CIOQSwitch,
    CrossbarSwitch,
    BernoulliTraffic,
    SwitchConfig,
    crossbar_opt,
    render_cioq,
    render_crossbar,
    run_crossbar,
    pareto_values,
)
from repro.analysis import buffer_sweep_crossbar, print_table
from repro.switch import Packet


def show_figures() -> None:
    """Figures 1 and 2 of the paper, rendered from simulator state."""
    config = SwitchConfig.square(3, speedup=1, b_in=3, b_out=3, b_cross=1)

    cioq = CIOQSwitch(config)
    # Populate a few queues so the figure shows occupancy.
    for pid, (i, j) in enumerate([(0, 0), (0, 1), (1, 2), (2, 0), (2, 0)]):
        cioq.enqueue_arrival(Packet(pid, 1.0, 0, i, j))
    print(render_cioq(cioq, title="Figure 1: CIOQ switch, N = 3"))

    xbar = CrossbarSwitch(config)
    for pid, (i, j) in enumerate([(0, 2), (1, 0), (1, 1), (2, 2)]):
        xbar.enqueue_arrival(Packet(100 + pid, 1.0, 0, i, j))
    xbar.cross[0][1].push(Packet(200, 1.0, 0, 0, 1))
    xbar.out[2].push(Packet(201, 1.0, 0, 1, 2))
    print(render_crossbar(xbar, title="Figure 2: buffered crossbar switch, N = 3"))


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=40,
                        help="arrival slots per trace (default 40)")
    parser.add_argument("--seed", type=int, default=3,
                        help="base traffic seed (default 3)")
    args = parser.parse_args(argv if argv is not None else [])

    show_figures()

    n = 3
    base = SwitchConfig.square(n, speedup=1, b_in=3, b_out=3, b_cross=1)
    heavy = BernoulliTraffic(n, n, load=1.3, value_model=pareto_values(1.5))

    # CGU vs CPG on the same weighted trace (CGU ignores values).
    trace = heavy.generate(args.slots, seed=args.seed)
    cgu = run_crossbar(CGUPolicy(), base, trace)
    cpg = run_crossbar(CPGPolicy(), base, trace)
    opt = crossbar_opt(trace, base)
    print_table(
        [
            {
                "policy": r.policy_name,
                "benefit": round(r.benefit, 2),
                "sent": r.n_sent,
                "preempted": r.n_preempted,
                "ratio vs OPT": round(opt.benefit / r.benefit, 4),
            }
            for r in (cgu, cpg)
        ],
        title=f"Heavy-tailed (Pareto) values on a {n}x{n} buffered crossbar "
              f"(OPT benefit {opt.benefit:.2f})",
    )
    print(
        "CGU is value-blind; CPG's thresholded preemption recovers most\n"
        "of the value gap to OPT.\n"
    )

    rows = buffer_sweep_crossbar(
        CPGPolicy, heavy, n_slots=args.slots, b_cross_values=[1, 2, 4],
        base_config=base, seeds=(args.seed, args.seed + 1),
    )
    print_table(rows, title="CPG vs OPT as crosspoint capacity B(C) grows (T10)")
    print(
        "The competitive guarantee already holds at B(C)=1; bigger\n"
        "crosspoint buffers buy only marginal empirical benefit."
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
