#!/usr/bin/env python
"""QoS with two service classes: tuning PG's preemption threshold beta.

The paper's conclusion (Section 4) discusses choosing beta from traffic
knowledge: the ratio bound ``beta + 2 beta/(beta-1)`` balances two
failure modes — admitting cheap packets OPT would skip (small beta
helps) versus preempting excessively (large beta helps).  This example
sweeps beta on two-value traffic (values {1, alpha}, the classical QoS
regime of Section 1.2) for several high-value arrival rates and shows
where the empirical optimum lands relative to the analysis optimum
``beta* = 1 + sqrt(2) ~ 2.414``.

Run:  python examples/qos_two_classes.py
"""

import math

from repro import BernoulliTraffic, PGPolicy, SwitchConfig, run_cioq, two_value
from repro.analysis import beta_sweep_pg, class_breakdown, print_table
from repro.core import pg_optimal_beta, pg_ratio


def main() -> None:
    n = 3
    config = SwitchConfig.square(n, speedup=1, b_in=2, b_out=2)
    betas = [1.1, 1.5, 2.0, pg_optimal_beta(), 3.0, 5.0, 10.0]
    alpha = 20.0

    for p_high in (0.1, 0.5):
        traffic = BernoulliTraffic(
            n, n, load=1.4, value_model=two_value(alpha=alpha, p_high=p_high)
        )
        trace = traffic.generate(40, seed=11)
        rows = beta_sweep_pg(trace, config, betas)
        for r in rows:
            r["bound(beta)"] = round(pg_ratio(r["beta"]), 3)
        print_table(
            rows,
            title=(
                f"PG beta sweep — two-value traffic, alpha={alpha:g}, "
                f"P[value={alpha:g}]={p_high:g}, load 1.4"
            ),
        )
        best = min(rows, key=lambda r: r["ratio"])
        print(
            f"  empirical best beta ~ {best['beta']:g} "
            f"(ratio {best['ratio']:g}); analysis optimum "
            f"beta* = 1 + sqrt(2) = {pg_optimal_beta():.4f} "
            f"(worst-case bound {3 + 2 * math.sqrt(2):.4f})\n"
        )

    print(
        "With mostly high-value packets, small beta (aggressive\n"
        "preemption) admits the valuable bursts; with rare high values,\n"
        "large beta avoids wasting already-buffered packets — exactly\n"
        "the trade-off the paper's conclusion describes.\n"
    )

    # Per-class outcome: which class pays for the overload?
    config = SwitchConfig.square(3, speedup=1, b_in=1, b_out=1)
    trace = BernoulliTraffic(
        3, 3, load=2.0, value_model=two_value(alpha=alpha, p_high=0.3)
    ).generate(40, seed=2)
    result = run_cioq(PGPolicy(), config, trace, record=True)
    print_table(
        class_breakdown(result, trace),
        title="Per-class delivery under 2x overload (PG at beta*): the "
              "cheap class absorbs the loss",
    )


if __name__ == "__main__":
    main()
