#!/usr/bin/env python
"""QoS with two service classes: tuning PG's preemption threshold beta.

The paper's conclusion (Section 4) discusses choosing beta from traffic
knowledge: the bound ``beta + 2 beta/(beta-1)`` balances admitting
cheap packets OPT would skip (small beta) against preempting
excessively (large beta).  The experiment lives in the registered
``qos-two-class`` scenario — PG at three thresholds (1.5, the analysis
optimum ``beta* = 1 + sqrt(2)``, and 5.0) plus FIFO on two-value
traffic — and this script is a five-line invocation of it (see
docs/scenarios.md; edit or ``repro scenarios export qos-two-class`` to
change the value mix).

Run:  python examples/qos_two_classes.py [--slots N] [--seed S]
"""

import argparse
import sys

from repro.core import pg_optimal_beta, pg_optimal_ratio
from repro.scenarios import get_scenario, run_scenario


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=None,
                        help="override the scenario's arrival slots")
    parser.add_argument("--seed", type=int, default=None,
                        help="base seed (the scenario uses seed..seed+2)")
    args = parser.parse_args(argv if argv is not None else [])

    spec = get_scenario("qos-two-class")
    seeds = None if args.seed is None else [args.seed + k for k in
                                            range(len(spec.seeds))]
    run = run_scenario(spec.with_overrides(slots=args.slots, seeds=seeds))
    print(run.tables())

    pg_aggs = [a for a in run.aggregates if a["policy"].startswith("pg")]
    best = min(pg_aggs, key=lambda a: a["mean_ratio"])
    print(f"  empirical best threshold: {best['policy']} "
          f"(mean ratio {best['mean_ratio']:.4f}); analysis optimum "
          f"beta* = 1 + sqrt(2) = {pg_optimal_beta():.4f} "
          f"(worst-case bound {pg_optimal_ratio():.4f})")
    print(
        "\nWith mostly high-value packets, small beta (aggressive\n"
        "preemption) admits the valuable bursts; with rare high values,\n"
        "large beta avoids wasting already-buffered packets — exactly\n"
        "the trade-off the paper's conclusion describes.  FIFO, which\n"
        "never preempts, pays the full price of the overload."
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
