#!/usr/bin/env python
"""The IQ model: where the lower bounds live.

The paper's conclusion observes that on N x 1 switches with speedup 1
its algorithms GM and PG collapse to the classical multi-queue policies
of Azar & Richter, whose asymptotic lower bounds are 2 (unit values)
and 3 (general values) — while the best known lower bounds for *any*
deterministic algorithm are 2 - 1/m, and e/(e-1) ~ 1.58 even allowing
randomization.  The gap between those numbers and the paper's upper
bounds (3 and 5.83) is called "one of the most challenging open
problems in the area of buffer management".

This example makes the numbers concrete: it attacks GM on IQ instances
with the adaptive overload adversary, prints the measured ratio next to
every instantiated lower bound, and shows how randomizing the scheduler
deflates the attack.

Run:  python examples/iq_lower_bounds.py [--slots N] [--seed S]
"""

import argparse
import sys

from repro import GMPolicy, RandomMatchPolicy, cioq_opt, run_cioq
from repro.analysis import print_table
from repro.iq import iq_config, known_lower_bounds, tlh_equivalence_note
from repro.traffic import SingleOutputOverloadAdversary, generate_adaptive_trace


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=18,
                        help="cap on each instance's attack length")
    parser.add_argument("--seed", type=int, default=1,
                        help="seed for the randomized scheduler")
    args = parser.parse_args(argv if argv is not None else [])

    rows = []
    for m, b, slots in [(4, 2, 14), (6, 3, 18), (8, 2, 16)]:
        cfg = iq_config(m, b)
        trace = generate_adaptive_trace(
            GMPolicy, cfg, SingleOutputOverloadAdversary(),
            n_slots=min(slots, args.slots),
        )
        opt = cioq_opt(trace, cfg).benefit
        det = run_cioq(GMPolicy(), cfg, trace).benefit
        rand = run_cioq(RandomMatchPolicy(seed=args.seed), cfg, trace).benefit
        lbs = {lb.name: lb.value for lb in known_lower_bounds(m, b)}
        rows.append(
            {
                "m": m,
                "B": b,
                "measured (GM)": round(opt / det, 3),
                "measured (randomized)": round(opt / rand, 3),
                "LB any det (2-1/m)": round(lbs["deterministic"], 3),
                "LB greedy (2-1/B)": round(lbs["greedy"], 3),
                "LB randomized (e/(e-1))": round(lbs["randomized"], 3),
                "UB (Thm 1)": 3.0,
            }
        )
    print_table(
        rows,
        title="IQ model (m queues, one output): adversarial ratios vs the "
              "Section 1.2 lower-bound landscape",
    )
    print(tlh_equivalence_note())
    print(
        "\nThe adaptive adversary closes most of the distance to the\n"
        "published deterministic lower bounds; randomizing the edge\n"
        "order deflates the same instances toward the randomized bound —\n"
        "the empirical face of the open problem in the paper's\n"
        "conclusion."
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
