#!/usr/bin/env python
"""Bursty datacenter-style traffic: scheduler comparison under incast.

The whole experiment is the registered ``bursty-incast`` scenario
(ON/OFF Markov senders bursting toward one top-of-rack port — see
docs/scenarios.md); this script is just a five-line invocation of it:
fetch the spec, run it through the scenario runner, print the tables.
Edit the scenario (or ``repro scenarios export bursty-incast``) to
change the experiment — no code here needs to move.

Run:  python examples/datacenter_bursts.py [--slots N] [--seed S]
"""

import argparse
import sys

from repro.scenarios import get_scenario, run_scenario


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=None,
                        help="override the scenario's arrival slots")
    parser.add_argument("--seed", type=int, default=None,
                        help="base seed (the scenario uses seed..seed+2)")
    args = parser.parse_args(argv if argv is not None else [])

    spec = get_scenario("bursty-incast")
    seeds = None if args.seed is None else [args.seed + k for k in
                                            range(len(spec.seeds))]
    run = run_scenario(spec.with_overrides(slots=args.slots, seeds=seeds))
    print(run.tables())

    opt = next(a for a in run.aggregates if a["policy"] == "OPT")
    for agg in run.aggregates:
        if agg["policy"] == "OPT":
            continue
        share = 100 * agg["mean_benefit"] / opt["mean_benefit"]
        print(f"  {agg['policy']:12s} achieved {share:6.2f}% of OPT  "
              f"(empirical ratio {agg['mean_ratio']:.3f}, "
              f"paper bound for gm: 3)")
    print(
        "\nGM matches the maximum-matching baseline's throughput while\n"
        "doing a single greedy pass per cycle — the paper's efficiency\n"
        "argument (quantified in benchmarks/bench_t5_efficiency.py)."
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
