#!/usr/bin/env python
"""Bursty datacenter-style traffic: scheduler comparison under incast.

The paper motivates worst-case analysis by the failure of Poisson
traffic models on real networks [Paxson–Floyd; Veres–Boda].  This
example emulates the canonical datacenter pathology — *incast*: many
senders burst simultaneously toward one top-of-rack port — and compares
GM (greedy maximal matching, this paper) against the maximum-matching
schedule of prior work, the iSLIP-style round-robin heuristic used in
real hardware, a randomized greedy, and the exact offline optimum.

Run:  python examples/datacenter_bursts.py
"""

from repro import (
    GMPolicy,
    MaxMatchPolicy,
    RandomMatchPolicy,
    RoundRobinPolicy,
    SwitchConfig,
    cioq_opt,
    run_cioq,
)
from repro.analysis import print_table
from repro.traffic import BurstyTraffic


def main() -> None:
    n = 4
    config = SwitchConfig.square(n, speedup=2, b_in=4, b_out=4)
    # ON/OFF bursts with a strong hotspot on output 0 (incast): when a
    # sender is ON it emits ~2 packets/slot, 60% of them to port 0.
    traffic = BurstyTraffic(
        n,
        n,
        p_on=0.3,
        p_off=0.25,
        burst_load=2.0,
        dst_weights=[0.6] + [0.4 / (n - 1)] * (n - 1),
    )

    policies = {
        "GM": GMPolicy,
        "MaxMatch": MaxMatchPolicy,
        "RoundRobin": RoundRobinPolicy,
        "RandomMatch": RandomMatchPolicy,
    }

    rows = []
    n_slots = 50
    seeds = (1, 2, 3)
    totals = {name: 0.0 for name in policies}
    opt_total = 0.0
    arrived_total = 0
    for seed in seeds:
        trace = traffic.generate(n_slots, seed=seed)
        arrived_total += len(trace)
        opt = cioq_opt(trace, config)
        opt_total += opt.benefit
        row = {"seed": seed, "arrived": len(trace)}
        for name, factory in policies.items():
            res = run_cioq(factory(), config, trace)
            totals[name] += res.benefit
            row[name] = int(res.benefit)
        row["OPT"] = int(opt.benefit)
        rows.append(row)

    summary = {"seed": "total", "arrived": arrived_total}
    for name in policies:
        summary[name] = int(totals[name])
    summary["OPT"] = int(opt_total)
    rows.append(summary)

    print_table(
        rows,
        title=(
            f"Packets delivered under bursty incast traffic "
            f"({n}x{n}, speedup {config.speedup}, {n_slots} slots/seed)"
        ),
    )
    for name in policies:
        print(
            f"  {name:12s} achieved {100 * totals[name] / opt_total:6.2f}% "
            f"of OPT  (empirical ratio {opt_total / totals[name]:.3f}, "
            f"paper bound for GM: 3)"
        )
    print(
        "\nGM matches the maximum-matching baseline's throughput while\n"
        "doing a single greedy pass per cycle — the paper's efficiency\n"
        "argument (quantified in benchmarks/bench_t5_efficiency.py)."
    )


if __name__ == "__main__":
    main()
