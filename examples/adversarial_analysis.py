#!/usr/bin/env python
"""Adversarial instances and the proof machinery, end to end.

Three parts:

1. **Gadget instances** (deterministic) — the burst/escalation patterns
   behind the lower bounds cited in Section 1.2, measured against the
   exact OPT: they push GM's and PG's empirical ratios well above what
   stochastic traffic achieves.
2. **Adaptive adversary** — arrivals generated while *watching* the
   online switch (equivalent in power to the oblivious adversary for a
   deterministic algorithm); the recorded trace is then replayed against
   OPT.
3. **Shadow certificate** — the replay of the paper's "modified OPT"
   construction (Modifications 2.1.1/2.1.2) on one of the adversarial
   instances: Lemma 1's invariants are checked after every event and the
   privileged-packet accounting of Lemma 3 is verified, certifying
   Theorem 1 on that instance.

Run:  python examples/adversarial_analysis.py [--slots N] [--seed S]

(``--slots`` caps the adaptive attacks' length; the instances are
deterministic, so ``--seed`` is accepted for convention uniformity with
the other examples but has no effect here.)
"""

import argparse
import sys

from repro import GMPolicy, PGPolicy, SwitchConfig, cioq_opt, run_cioq
from repro.analysis import measure_cioq_ratio, print_table
from repro.core import pg_optimal_beta
from repro.theory import replay_gm_shadow
from repro.traffic import (
    RotatingBurstAdversary,
    SingleOutputOverloadAdversary,
    beta_admission_gadget,
    generate_adaptive_trace,
)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=36,
                        help="cap on the adaptive attacks' slot count")
    parser.add_argument("--seed", type=int, default=0,
                        help="unused (deterministic instances); accepted "
                             "for convention uniformity")
    args = parser.parse_args(argv if argv is not None else [])

    rows = []
    beta = pg_optimal_beta()

    # --- Part 1: deterministic gadget against PG (beta-admission) ---
    n, b = 2, 6
    cfg_pg = SwitchConfig.square(n, speedup=n, b_in=b, b_out=b)
    gadget = beta_admission_gadget(beta, n=n, b_out=b, rate=4, n_rounds=3)
    rows.append(
        measure_cioq_ratio(PGPolicy(beta=beta), gadget, cfg_pg,
                           bound=3 + 2 * 2 ** 0.5).as_row()
    )

    # --- Part 2: adaptive adversaries against GM ---
    cfg_iq = SwitchConfig.square(6, speedup=1, b_in=3, b_out=3)
    iq_trace = generate_adaptive_trace(
        GMPolicy, cfg_iq, SingleOutputOverloadAdversary(),
        n_slots=min(18, args.slots),
    )
    rows.append(
        measure_cioq_ratio(GMPolicy(), iq_trace, cfg_iq, bound=3.0).as_row()
    )

    cfg_rot = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
    adv_trace = generate_adaptive_trace(
        GMPolicy, cfg_rot, RotatingBurstAdversary(),
        n_slots=min(36, args.slots),
    )
    rows.append(
        measure_cioq_ratio(GMPolicy(), adv_trace, cfg_rot, bound=3.0).as_row()
    )
    cfg_adv = cfg_rot

    print_table(
        rows,
        title="Adversarial instances: measured ratio vs paper bound",
    )
    print(
        "Adversarial ratios exceed the ~1.0-1.1 typical of stochastic\n"
        "traffic, demonstrating the guarantees are not vacuous; they\n"
        "remain below the proven worst-case bounds, as they must.\n"
    )

    # --- Part 3: shadow certificate on the adaptive instance ---
    gm = run_cioq(GMPolicy(), cfg_adv, adv_trace, record=True)
    opt = cioq_opt(adv_trace, cfg_adv, extract_schedule=True)
    cert = replay_gm_shadow(adv_trace, cfg_adv, gm, opt)
    print("Theorem 1 shadow certificate on the adaptive instance:")
    print(f"  GM benefit                 = {cert.gm_benefit}")
    print(f"  OPT benefit                = {cert.opt_benefit}")
    print(f"  modified-OPT normal sends  = {cert.s_star}")
    print(f"  privileged Type 1 / Type 2 = "
          f"{cert.privileged_type1} / {cert.privileged_type2}")
    print(f"  invariant checks performed = {cert.invariant_checks} "
          f"(Lemma 1 held at every one)")
    print(f"  |S*| <= |S|                : {cert.s_star_bounded}")
    print(f"  |P*| <= 2|S|  (Lemma 3)    : {cert.privileged_bounded}")
    print(f"  OPT <= modified <= 3 GM    : {cert.theorem1_certified}")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
