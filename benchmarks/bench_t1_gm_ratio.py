"""T1 — Theorem 1: GM's empirical competitive ratio (bound: 3).

Runs GM against the exact offline optimum across traffic families,
switch sizes, buffer sizes and speedups.  Since the statistics PR every
cell is *replicated*: the listed seed starts a 3-seed ladder, and the
table reports the mean per-seed ratio with its 95% CI half-width (the
mean of per-seed ratios, never a ratio of summed benefits — see
docs/statistics.md) plus the worst seed.  Every measured ratio must
stay at or below 3; the observed worst case (and which family achieves
it) is the experiment's headline row.
"""

from repro.analysis.ratio import RatioSummary, measure_cioq_ratio, summarize
from repro.analysis.report import format_mean_ci, format_table
from repro.core.gm import GMPolicy
from repro.core.params import GM_RATIO
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.bursty import BurstyTraffic
from repro.traffic.hotspot import DiagonalTraffic, HotspotTraffic

from conftest import run_once

#: Replicate seeds per cell (each cell's seed starts a ladder of this
#: length).
REPLICATES = 3

CELLS = [
    # (label, traffic factory, n, b_in, b_out, speedup, slots, seed)
    ("bernoulli 0.9", lambda n: BernoulliTraffic(n, n, load=0.9), 3, 2, 2, 1, 20, 0),
    ("bernoulli 1.3", lambda n: BernoulliTraffic(n, n, load=1.3), 3, 2, 2, 1, 20, 1),
    ("bernoulli 1.3 s=2", lambda n: BernoulliTraffic(n, n, load=1.3), 3, 2, 2, 2, 20, 1),
    ("bernoulli 1.3 B=1", lambda n: BernoulliTraffic(n, n, load=1.3), 3, 1, 1, 1, 20, 1),
    ("hotspot 70%", lambda n: HotspotTraffic(n, n, load=1.2, hot_fraction=0.7), 3, 2, 2, 1, 20, 2),
    ("hotspot 70% N=4", lambda n: HotspotTraffic(n, n, load=1.2, hot_fraction=0.7), 4, 2, 2, 1, 16, 2),
    ("bursty incast", lambda n: BurstyTraffic(n, n, burst_load=2.5,
                                              dst_weights=[0.6, 0.2, 0.2]), 3, 2, 2, 1, 20, 3),
    ("diagonal", lambda n: DiagonalTraffic(n, n, load=1.2), 4, 2, 2, 1, 16, 4),
]


def compute_rows():
    rows = []
    measurements = []
    for label, make, n, b_in, b_out, s, slots, seed in CELLS:
        config = SwitchConfig.square(n, speedup=s, b_in=b_in, b_out=b_out)
        traffic = make(n)
        cell = [
            measure_cioq_ratio(
                GMPolicy(), traffic.generate(slots, seed=seed + k),
                config, bound=GM_RATIO,
            )
            for k in range(REPLICATES)
        ]
        measurements.extend(cell)
        rs = RatioSummary.from_measurements(cell, confidence=0.95)
        rows.append(
            {
                "traffic": label,
                "N": n,
                "B_in": b_in,
                "speedup": s,
                "ratio": format_mean_ci(rs.mean, rs.half_width),
                "worst": round(rs.worst, 4),
                "<=3": rs.all_within_bound,
            }
        )
    return rows, summarize(measurements)


def test_t1_gm_ratio_table(benchmark, emit):
    rows, summary = run_once(benchmark, compute_rows)
    emit("\n" + format_table(
        rows,
        title=f"T1 - GM empirical competitive ratio vs exact OPT "
              f"(Theorem 1 bound: 3; {REPLICATES} seeds per cell, "
              f"mean ± 95% CI half-width)",
    ))
    emit(f"worst observed ratio: {summary['max_ratio']:.4f} "
         f"(mean {summary['mean_ratio']:.4f}, n={summary['n']})")
    assert summary["all_within_bound"]
    assert summary["n"] == len(CELLS) * REPLICATES
    assert summary["n_unbounded"] == 0
    assert summary["max_ratio"] <= GM_RATIO + 1e-9
