"""T11 — the IQ-model reduction: measured ratios vs known lower bounds.

The paper's conclusion: on N x 1 switches with speedup 1, GM and PG
coincide with the multi-queue algorithms of Azar-Richter, whose known
asymptotic lower bounds are 2 (unit) and 3 (weighted); Section 1.2's
general lower bounds (2 - 1/m deterministic, 2 - 1/B greedy, e/(e-1)
randomized) also live in this model and carry over to CIOQ/crossbar.

This experiment runs GM on IQ instances under the adaptive overload
adversary and prints the measured ratio next to the instantiated lower
bounds and the upper bound of 3 — locating our adversary's strength
between the published lower bounds and the theorem.
"""

from repro.analysis.ratio import measure_cioq_ratio
from repro.analysis.report import format_table
from repro.core.gm import GMPolicy
from repro.iq import iq_config, known_lower_bounds, tlh_equivalence_note
from repro.traffic.adversarial import (
    SingleOutputOverloadAdversary,
    generate_adaptive_trace,
)

from conftest import run_once

CASES = [
    # (m queues, buffer B, arrival slots)
    (4, 2, 14),
    (6, 3, 18),
    (8, 2, 16),
]


def compute_rows():
    rows = []
    for m, b, slots in CASES:
        cfg = iq_config(m, b)
        trace = generate_adaptive_trace(
            GMPolicy, cfg, SingleOutputOverloadAdversary(), n_slots=slots
        )
        meas = measure_cioq_ratio(GMPolicy(), trace, cfg, bound=3.0)
        lbs = {lb.name: lb.value for lb in known_lower_bounds(m, b)}
        rows.append(
            {
                "m": m,
                "B": b,
                "GM": meas.onl_benefit,
                "OPT": meas.opt_benefit,
                "measured": round(meas.ratio, 4),
                "LB det (2-1/m)": round(lbs["deterministic"], 4),
                "LB greedy (2-1/B)": round(lbs["greedy"], 4),
                "UB (Thm 1)": 3.0,
                "ok": meas.within_bound,
            }
        )
    return rows


def test_t11_iq_lower_bound_table(benchmark, emit):
    rows = run_once(benchmark, compute_rows)
    emit("\n" + format_table(
        rows,
        title="T11 - IQ model (N x 1, speedup 1): adversarial GM ratio vs "
              "the Section 1.2 lower bounds",
    ))
    emit(tlh_equivalence_note())
    assert all(r["ok"] for r in rows)
    # The adversary achieves a substantial fraction of the deterministic
    # lower bound on at least one configuration.
    best = max(r["measured"] / r["LB det (2-1/m)"] for r in rows)
    emit(f"best fraction of the deterministic lower bound achieved: "
         f"{best:.2f}")
    assert best > 0.75
