"""T3 — Theorem 3: CGU's empirical ratio (paper improves the bound 4 -> 3).

CGU against the exact crossbar OPT across traffic families, buffer
shapes and speedups.  The paper's contribution here is analytical (the
same algorithm was previously only known 4-competitive); the experiment
verifies every measured ratio sits within the *new* bound of 3.
"""

from repro.analysis.ratio import measure_crossbar_ratio, summarize
from repro.analysis.report import format_table
from repro.core.cgu import CGUPolicy
from repro.core.params import CGU_RATIO, PREVIOUS_CGU_RATIO
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.bursty import BurstyTraffic
from repro.traffic.hotspot import HotspotTraffic

from conftest import run_once

CELLS = [
    ("bernoulli 1.0", lambda n: BernoulliTraffic(n, n, load=1.0), 3, 2, 2, 1, 1, 0),
    ("bernoulli 1.4", lambda n: BernoulliTraffic(n, n, load=1.4), 3, 2, 2, 1, 1, 1),
    ("bernoulli 1.4 Bc=2", lambda n: BernoulliTraffic(n, n, load=1.4), 3, 2, 2, 2, 1, 1),
    ("bernoulli 1.4 s=2", lambda n: BernoulliTraffic(n, n, load=1.4), 3, 2, 2, 1, 2, 1),
    ("hotspot 80%", lambda n: HotspotTraffic(n, n, load=1.3, hot_fraction=0.8), 3, 2, 2, 1, 1, 2),
    ("bursty incast", lambda n: BurstyTraffic(n, n, burst_load=2.5,
                                              dst_weights=[0.6, 0.2, 0.2]), 3, 2, 2, 1, 1, 3),
    ("tight buffers", lambda n: BernoulliTraffic(n, n, load=1.5), 3, 1, 1, 1, 1, 4),
]


def compute_rows():
    rows = []
    measurements = []
    for label, make, n, b_in, b_out, b_cross, s, seed in CELLS:
        config = SwitchConfig.square(
            n, speedup=s, b_in=b_in, b_out=b_out, b_cross=b_cross
        )
        trace = make(n).generate(18, seed=seed)
        m = measure_crossbar_ratio(CGUPolicy(), trace, config, bound=CGU_RATIO)
        measurements.append(m)
        rows.append(
            {
                "traffic": label,
                "B_cross": b_cross,
                "speedup": s,
                "CGU": m.onl_benefit,
                "OPT": m.opt_benefit,
                "ratio": round(m.ratio, 4),
                "<=3": m.within_bound,
            }
        )
    return rows, summarize(measurements)


def test_t3_cgu_ratio_table(benchmark, emit):
    rows, summary = run_once(benchmark, compute_rows)
    emit("\n" + format_table(
        rows,
        title="T3 - CGU empirical ratio vs exact crossbar OPT "
              "(Theorem 3 bound: 3; previously known: 4)",
    ))
    emit(f"worst observed ratio: {summary['max_ratio']:.4f} — consistent "
         f"with the improved bound {CGU_RATIO:g} (< previous "
         f"{PREVIOUS_CGU_RATIO:g})")
    assert summary["all_within_bound"]
    assert summary["max_ratio"] <= CGU_RATIO + 1e-9
