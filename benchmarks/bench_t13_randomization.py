"""T13 — randomization vs the adaptive adversary (open problem probe).

The paper's conclusion: *"no result is known on any randomized algorithm
in these models"*, while the IQ model's randomized lower bound
(e/(e−1) ≈ 1.58) sits well below the deterministic one (2 − 1/m).

This experiment probes the gap empirically: the adaptive adversaries are
tuned against the *deterministic* GM; replaying the recorded adversarial
trace against GM with a randomized edge order (``RandomMatchPolicy``)
shows how much of the adversary's advantage evaporates when the
scheduler's choices cannot be predicted.  (The instance is fixed, so
this measures robustness of the instance, not a randomized competitive
ratio — but a consistent drop is exactly what would motivate the
randomized analysis the paper calls for.)
"""

import numpy as np

from repro.analysis.ratio import measure_cioq_ratio
from repro.analysis.report import format_table
from repro.core.gm import GMPolicy
from repro.offline.opt import cioq_opt
from repro.scheduling.baselines import RandomMatchPolicy
from repro.simulation.engine import run_cioq
from repro.switch.config import SwitchConfig
from repro.traffic.adversarial import (
    RotatingBurstAdversary,
    SingleOutputOverloadAdversary,
    generate_adaptive_trace,
)

from conftest import run_once

N_RANDOM_RUNS = 10


def compute_rows():
    rows = []
    cases = [
        ("single-output overload",
         SwitchConfig.square(6, speedup=1, b_in=3, b_out=3),
         SingleOutputOverloadAdversary(), 18),
        ("rotating bursts",
         SwitchConfig.square(3, speedup=1, b_in=2, b_out=2),
         RotatingBurstAdversary(), 30),
    ]
    for label, cfg, adversary, slots in cases:
        trace = generate_adaptive_trace(GMPolicy, cfg, adversary, slots)
        opt = cioq_opt(trace, cfg).benefit
        det = run_cioq(GMPolicy(), cfg, trace).benefit
        random_benefits = [
            run_cioq(RandomMatchPolicy(seed=seed), cfg, trace).benefit
            for seed in range(N_RANDOM_RUNS)
        ]
        mean_rand = float(np.mean(random_benefits))
        rows.append(
            {
                "instance": label,
                "OPT": opt,
                "GM (deterministic)": det,
                "det ratio": round(opt / det, 4),
                "randomized mean": round(mean_rand, 1),
                "rand ratio (mean)": round(opt / mean_rand, 4),
                "rand ratio (best)": round(opt / max(random_benefits), 4),
                "rand ratio (worst)": round(opt / min(random_benefits), 4),
            }
        )
    return rows


def test_t13_randomization_table(benchmark, emit):
    rows = run_once(benchmark, compute_rows)
    emit("\n" + format_table(
        rows,
        title="T13 - adversarial traces built against deterministic GM, "
              "replayed under randomized edge order "
              f"({N_RANDOM_RUNS} seeds)",
    ))
    emit("The paper's conclusion notes no randomized results are known "
         "for these models; the randomized lower bound in the IQ model "
         "is e/(e-1) ~ 1.58 vs 2 - 1/m deterministic.")
    for r in rows:
        # Randomization never helps OPT; all ratios stay within Theorem 1.
        assert r["det ratio"] <= 3.0 + 1e-9
        assert r["rand ratio (worst)"] <= 3.0 + 1e-9
        # On average the randomized scheduler does at least as well as
        # the scheduler the adversary targeted.
        assert r["rand ratio (mean)"] <= r["det ratio"] + 0.05
