"""E1/E2 — Figures 1 and 2 of the paper: switch architecture renderings.

The paper's only figures are the two N=3 architecture diagrams; we
regenerate them from live simulator state (occupied queue cells are
drawn filled) and benchmark the render path.
"""

from repro.switch.cioq import CIOQSwitch
from repro.switch.config import SwitchConfig
from repro.switch.crossbar import CrossbarSwitch
from repro.switch.diagram import render_cioq, render_crossbar
from repro.switch.packet import Packet

from conftest import run_once


def _populated_cioq() -> CIOQSwitch:
    config = SwitchConfig.square(3, b_in=3, b_out=3)
    s = CIOQSwitch(config)
    for pid, (i, j) in enumerate([(0, 0), (0, 1), (1, 2), (2, 0), (2, 0)]):
        s.enqueue_arrival(Packet(pid, 1.0, 0, i, j))
    return s


def _populated_crossbar() -> CrossbarSwitch:
    config = SwitchConfig.square(3, b_in=3, b_out=3, b_cross=1)
    s = CrossbarSwitch(config)
    for pid, (i, j) in enumerate([(0, 2), (1, 0), (1, 1), (2, 2)]):
        s.enqueue_arrival(Packet(pid, 1.0, 0, i, j))
    s.cross[0][1].push(Packet(90, 1.0, 0, 0, 1))
    s.out[2].push(Packet(91, 1.0, 0, 1, 2))
    return s


def test_figure1_cioq_topology(benchmark, emit):
    switch = _populated_cioq()
    art = run_once(benchmark, render_cioq, switch,
                   "Figure 1: CIOQ switch, N = 3")
    emit("\n" + art)
    assert "fabric" in art
    for i in range(3):
        for j in range(3):
            assert f"Q[{i}][{j}]" in art


def test_figure2_crossbar_topology(benchmark, emit):
    switch = _populated_crossbar()
    art = run_once(benchmark, render_crossbar, switch,
                   "Figure 2: buffered crossbar switch, N = 3")
    emit("\n" + art)
    for j in range(3):
        assert f"col {j}" in art and f"out {j}" in art
