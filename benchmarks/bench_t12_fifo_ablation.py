"""T12 — FIFO vs non-FIFO queues: what Assumption A3 buys.

The paper's model uses non-FIFO queues ("packets may be stored in and
released from queues in any arbitrary order"), which its algorithms
exploit by keeping queues value-sorted; most prior work (Section 1.2)
is FIFO.  This ablation runs the same traffic through PG / CPG
(value-ordered) and the FIFO-discipline policies on identical hardware,
plus delay statistics: value-ordering buys benefit under value skew at
the cost of delaying cheap packets (they wait behind later, richer
arrivals).
"""

from repro.analysis.latency import delay_rows
from repro.analysis.report import format_table
from repro.core.cpg import CPGPolicy
from repro.core.pg import PGPolicy
from repro.offline.opt import cioq_opt
from repro.scheduling.fifo import FifoCIOQPolicy, FifoCrossbarPolicy
from repro.simulation.engine import run_cioq, run_crossbar
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import two_value, pareto_values

from conftest import run_once


def compute_benefit_rows():
    config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
    rows = []
    for label, values, seeds in [
        ("two-value a=50", two_value(50, 0.15), (0, 1, 2)),
        ("pareto 1.2", pareto_values(1.2), (0, 1, 2)),
    ]:
        pg_total = fifo_total = opt_total = 0.0
        cpg_total = xfifo_total = 0.0
        for seed in seeds:
            trace = BernoulliTraffic(3, 3, load=1.8,
                                     value_model=values).generate(20, seed=seed)
            pg_total += run_cioq(PGPolicy(), config, trace).benefit
            fifo_total += run_cioq(FifoCIOQPolicy(), config, trace).benefit
            opt_total += cioq_opt(trace, config).benefit
            cpg_total += run_crossbar(CPGPolicy(), config, trace).benefit
            xfifo_total += run_crossbar(
                FifoCrossbarPolicy(), config, trace
            ).benefit
        rows.append(
            {
                "values": label,
                "PG (non-FIFO)": round(pg_total, 1),
                "FIFO-CIOQ": round(fifo_total, 1),
                "CIOQ OPT": round(opt_total, 1),
                "CPG (non-FIFO)": round(cpg_total, 1),
                "FIFO-crossbar": round(xfifo_total, 1),
                "PG gain": f"{100 * (pg_total / fifo_total - 1):+.1f}%",
            }
        )
    return rows


def compute_delay_table():
    config = SwitchConfig.square(3, speedup=1, b_in=3, b_out=3)
    trace = BernoulliTraffic(
        3, 3, load=1.5, value_model=two_value(50, 0.15)
    ).generate(25, seed=4)
    results = {
        "PG (value order)": run_cioq(PGPolicy(), config, trace, record=True),
        "FIFO": run_cioq(FifoCIOQPolicy(), config, trace, record=True),
    }
    return delay_rows(results, trace)


def test_t12_fifo_benefit_ablation(benchmark, emit):
    rows = run_once(benchmark, compute_benefit_rows)
    emit("\n" + format_table(
        rows,
        title="T12a - non-FIFO (value-ordered) vs FIFO discipline, "
              "aggregated over 3 seeds (overload, skewed values)",
    ))
    for r in rows:
        assert r["PG (non-FIFO)"] >= r["FIFO-CIOQ"] - 1e-6
        assert r["PG (non-FIFO)"] <= r["CIOQ OPT"] + 1e-6


def test_t12_fifo_delay_tradeoff(benchmark, emit):
    rows = run_once(benchmark, compute_delay_table)
    emit("\n" + format_table(
        rows,
        title="T12b - the price of value ordering: delivery delay "
              "(cheap packets wait behind later, richer arrivals)",
    ))
    assert all(r["delivered"] > 0 for r in rows)
