"""T7 — adversarial instances: how close can we push the bounds?

Random traffic keeps measured ratios near 1; the guarantees only come
alive on adversarial inputs.  This experiment runs the hard-instance
suite:

* ``SingleOutputOverloadAdversary`` — the IQ-style end-effect attack
  (the mechanism behind the >= 2 - 1/m lower bounds of Section 1.2);
* ``RotatingBurstAdversary`` — the phase-rotated variant that sustains
  the gap over long sequences;
* ``beta_admission_gadget`` — the weighted "first term" scenario of the
  paper's Section 4 discussion, aimed at PG's admission threshold;
* the policy-beta sensitivity of that gadget (sweeping PG's beta on the
  fixed trace built for beta*).

All measured ratios must remain within the proven bounds, and the unit
attacks must exceed 1.3 (demonstrating real separation).
"""

from repro.analysis.ratio import measure_cioq_ratio
from repro.analysis.report import format_table
from repro.core.gm import GMPolicy
from repro.core.params import pg_optimal_beta, pg_optimal_ratio, pg_ratio
from repro.core.pg import PGPolicy
from repro.switch.config import SwitchConfig
from repro.traffic.adversarial import (
    RotatingBurstAdversary,
    SingleOutputOverloadAdversary,
    beta_admission_gadget,
    generate_adaptive_trace,
)

from conftest import run_once


def compute_rows():
    rows = []

    cfg_iq = SwitchConfig.square(6, speedup=1, b_in=3, b_out=3)
    iq_trace = generate_adaptive_trace(
        GMPolicy, cfg_iq, SingleOutputOverloadAdversary(), n_slots=18
    )
    m = measure_cioq_ratio(GMPolicy(), iq_trace, cfg_iq, bound=3.0)
    rows.append({"instance": "single-output overload (GM)",
                 "onl": m.onl_benefit, "opt": m.opt_benefit,
                 "ratio": round(m.ratio, 4), "bound": 3.0,
                 "ok": m.within_bound})

    cfg_rot = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
    rot_trace = generate_adaptive_trace(
        GMPolicy, cfg_rot, RotatingBurstAdversary(), n_slots=36
    )
    m = measure_cioq_ratio(GMPolicy(), rot_trace, cfg_rot, bound=3.0)
    rows.append({"instance": "rotating bursts (GM)",
                 "onl": m.onl_benefit, "opt": m.opt_benefit,
                 "ratio": round(m.ratio, 4), "bound": 3.0,
                 "ok": m.within_bound})

    beta = pg_optimal_beta()
    cfg_pg = SwitchConfig.square(2, speedup=2, b_in=6, b_out=6)
    gadget = beta_admission_gadget(beta, n=2, b_out=6, rate=4, n_rounds=3)
    m = measure_cioq_ratio(PGPolicy(beta=beta), gadget, cfg_pg,
                           bound=pg_optimal_ratio())
    rows.append({"instance": "beta-admission gadget (PG, beta*)",
                 "onl": round(m.onl_benefit, 1),
                 "opt": round(m.opt_benefit, 1),
                 "ratio": round(m.ratio, 4),
                 "bound": round(pg_optimal_ratio(), 3),
                 "ok": m.within_bound})
    return rows, gadget, cfg_pg


def compute_beta_sensitivity(gadget, cfg):
    """Sweep the *policy's* beta on the fixed beta*-targeted gadget."""
    rows = []
    for beta in (1.1, 1.5, 2.0, pg_optimal_beta(), 4.0):
        m = measure_cioq_ratio(PGPolicy(beta=beta), gadget, cfg,
                               bound=pg_ratio(beta))
        rows.append({"policy beta": round(beta, 3),
                     "ratio": round(m.ratio, 4),
                     "analysis bound": round(pg_ratio(beta), 3),
                     "ok": m.within_bound})
    return rows


def test_t7_adversarial_table(benchmark, emit):
    rows, gadget, cfg_pg = run_once(benchmark, compute_rows)
    emit("\n" + format_table(
        rows,
        title="T7a - adversarial instances: measured ratio vs proven bound",
    ))
    assert all(r["ok"] for r in rows)
    assert rows[0]["ratio"] > 1.3   # single-output separation
    assert rows[1]["ratio"] > 1.15  # sustained rotating separation
    assert rows[2]["ratio"] > 1.15  # weighted admission separation

    sens = compute_beta_sensitivity(gadget, cfg_pg)
    emit(format_table(
        sens,
        title="T7b - PG beta sensitivity on the beta*-targeted gadget "
              "(small beta admits the near-beta stream and wins)",
    ))
    assert all(r["ok"] for r in sens)
    # The gadget punishes the beta it was built for relative to beta ~ 1.
    assert sens[0]["ratio"] < sens[-2]["ratio"] + 1e-9
