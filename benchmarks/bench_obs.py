"""Observability overhead benchmark: metrics off must be free.

Pins the ``repro.obs`` design contract (docs/observability.md):

* **off is free** — running with the :data:`~repro.obs.NULL_METRICS`
  no-op recorder must cost at most :data:`OFF_BUDGET_PCT` percent over
  running with no recorder argument at all (the guard is checked once
  per run, not per slot);
* **on is bounded** — an :class:`~repro.obs.InMemoryRecorder` with
  per-slot sampling (``every_k=1``, the worst case) must stay within
  :data:`ON_BUDGET_PCT` percent;
* **payloads are untouched** — all three modes must produce
  exact-equal results on every observable payload field (the same
  bit-identity contract the backend matrix enforces).

Runs two ways:

* ``python benchmarks/bench_obs.py [--quick] [--check]`` — the
  overhead sweep.  Writes ``BENCH_obs.json`` at the repo root (sorted
  keys, no timestamps, trailing newline) and appends a dated entry to
  ``BENCH_history.jsonl``.  ``--check`` turns the budgets into hard
  failures (the CI observability-overhead job); ``--quick`` uses fewer
  timed reps (same schema).
* ``pytest benchmarks/bench_obs.py --benchmark-only`` —
  pytest-benchmark statistics on the off/on reference legs.

The committed ``BENCH_obs.json`` is validated (schema, budgets, payload
equality) by ``tests/test_package.py``; refresh it with
``PYTHONPATH=src python benchmarks/bench_obs.py``.
"""

import time

from repro.core.cgu import CGUPolicy
from repro.core.gm import GMPolicy
from repro.obs import NULL_METRICS, InMemoryRecorder
from repro.simulation.backends import numpy_available
from repro.simulation.engine import (
    run_cioq,
    run_cioq_batch,
    run_crossbar,
    run_crossbar_batch,
)
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import uniform_values

#: Overhead budgets (percent over the no-recorder baseline), enforced
#: by ``--check`` in CI and by the snapshot test on the committed file.
OFF_BUDGET_PCT = 5.0
ON_BUDGET_PCT = 25.0

CONFIG8 = SwitchConfig.square(8, speedup=2, b_in=4, b_out=4, b_cross=1)

#: Observable payload fields (mirrors the backend-equivalence matrix).
PAYLOAD_FIELDS = [
    "policy_name",
    "n_arrival_slots",
    "horizon",
    "n_arrived",
    "value_arrived",
    "n_accepted",
    "value_accepted",
    "n_rejected",
    "value_rejected",
    "n_preempted_voq",
    "value_preempted_voq",
    "n_preempted_cross",
    "value_preempted_cross",
    "n_preempted_out",
    "value_preempted_out",
    "benefit",
    "n_sent",
    "n_residual",
    "value_residual",
    "sent_per_output",
    "value_per_output",
    "occupancy",
]

#: (label, model, policy factory, backend) benchmark rows; fast rows
#: exercise the vectorized snapshot reads in the batched kernel.
WORKLOADS = [
    ("gm", "cioq", GMPolicy, "reference"),
    ("cgu", "crossbar", CGUPolicy, "reference"),
    ("gm", "cioq", GMPolicy, "fast"),
    ("cgu", "crossbar", CGUPolicy, "fast"),
]


def _traces(n=8, batch=8, slots=250):
    tm = BernoulliTraffic(n, n, load=1.2, value_model=uniform_values(1, 9))
    return [tm.generate(slots, seed=s) for s in range(batch)]


def _make_leg(model, factory, backend, config, traces, metrics_factory):
    """A zero-argument runnable executing the whole trace batch with a
    fresh recorder (``metrics_factory() -> recorder or None``)."""
    if backend == "fast":
        batched = run_cioq_batch if model == "cioq" else run_crossbar_batch

        def leg():
            return batched(factory, config, traces, backend="fast",
                           metrics=metrics_factory())
    else:
        serial = run_cioq if model == "cioq" else run_crossbar

        def leg():
            m = metrics_factory()
            return [serial(factory(), config, tr, metrics=m)
                    for tr in traces]
    return leg


def _payloads_identical(a, b):
    for ra, rb in zip(a, b):
        for name in PAYLOAD_FIELDS:
            if getattr(ra, name) != getattr(rb, name):
                return False, name
    return True, None


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _bench_row(label, model, factory, backend, reps):
    traces = _traces()
    config = CONFIG8
    legs = {
        "base": _make_leg(model, factory, backend, config, traces,
                          lambda: None),
        "off": _make_leg(model, factory, backend, config, traces,
                         lambda: NULL_METRICS),
        "on": _make_leg(model, factory, backend, config, traces,
                        lambda: InMemoryRecorder(every_k=1)),
    }
    # Correctness anchor first (also warms every leg): all three modes
    # must agree exactly on every payload field.
    results = {mode: leg() for mode, leg in legs.items()}
    identical = True
    for mode in ("off", "on"):
        same, field = _payloads_identical(results["base"], results[mode])
        if not same:
            raise AssertionError(
                f"metrics={mode} changed payload field {field!r} "
                f"({label}/{backend})"
            )
        identical = identical and same
    # Each round times all three modes back to back (base, off, on) so
    # they share the same machine conditions, then the overhead is the
    # *median of per-round ratios* — robust to background-load spikes
    # that min-of-reps absorbs into one mode but not another.  The
    # collector is paused so a GC pass can't land in one mode's leg.
    import gc
    import statistics

    rounds = {mode: [] for mode in legs}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            for mode, leg in legs.items():
                rounds[mode].append(_timed(leg))
    finally:
        if gc_was_enabled:
            gc.enable()

    def overhead_pct(mode):
        ratios = [t / b for t, b in zip(rounds[mode], rounds["base"])]
        return round((statistics.median(ratios) - 1) * 100, 2)

    lane_slots = len(traces) * traces[0].n_slots
    return {
        "policy": label,
        "model": model,
        "backend": backend,
        "n_ports": config.n_in,
        "batch": len(traces),
        "arrival_slots": traces[0].n_slots,
        "base_slots_per_sec": round(lane_slots / min(rounds["base"]), 1),
        "off_overhead_pct": overhead_pct("off"),
        "on_overhead_pct": overhead_pct("on"),
        "payloads_identical": identical,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark legs
# ---------------------------------------------------------------------------

def test_obs_off_gm_8x8(benchmark):
    traces = _traces(batch=1)
    result = benchmark(run_cioq, GMPolicy(), CONFIG8, traces[0],
                       metrics=NULL_METRICS)
    result.check_conservation()


def test_obs_on_gm_8x8(benchmark):
    traces = _traces(batch=1)

    def leg():
        return run_cioq(GMPolicy(), CONFIG8, traces[0],
                        metrics=InMemoryRecorder(every_k=1))

    result = benchmark(leg)
    result.check_conservation()


# ---------------------------------------------------------------------------
# Standalone sweep
# ---------------------------------------------------------------------------

def write_snapshot(rows, path):
    """Deterministic snapshot: sorted keys, no timestamps, trailing
    newline (same convention as BENCH_engine.json / BENCH_opt.json)."""
    import json

    snapshot = {
        "schema": 1,
        "budgets": {
            "off_overhead_pct": OFF_BUDGET_PCT,
            "on_overhead_pct": ON_BUDGET_PCT,
        },
        "workload": {
            "traffic": "bernoulli load=1.2 uniform(1,9)",
            "speedup": 2,
            "buffers": {"b_in": 4, "b_out": 4, "b_cross": 1},
            "metric": "overhead pct vs no-recorder baseline, best of reps",
            "sampling": "every_k=1 (worst case) in the on mode",
        },
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")


def main(argv=None):
    """Standalone sweep: ``python benchmarks/bench_obs.py``."""
    import argparse
    import pathlib

    from repro.obs import append_bench_history

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="3 timed reps per leg instead of 15 (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) when a budget is exceeded")
    root = pathlib.Path(__file__).resolve().parent.parent
    parser.add_argument("--output", default=str(root / "BENCH_obs.json"),
                        help="snapshot path (default: repo-root "
                             "BENCH_obs.json)")
    parser.add_argument("--history", default=str(root /
                                                 "BENCH_history.jsonl"),
                        help="dated history ledger to append to "
                             "('' disables)")
    args = parser.parse_args(argv)
    reps = 3 if args.quick else 15
    if args.check:
        # Budget enforcement needs the extra reps to keep best-of
        # timings stable on shared CI machines, quick or not.
        reps = max(reps, 7)

    rows = []
    violations = []
    print(f"observability overhead ({reps} timed rep(s) per leg):")
    for label, model, factory, backend in WORKLOADS:
        if backend == "fast" and not numpy_available():
            print(f"  {label:>3} {model:<8} {backend:<9} skipped (no numpy)")
            continue
        row = _bench_row(label, model, factory, backend, reps)
        rows.append(row)
        print(f"  {label:>3} {model:<8} {backend:<9} "
              f"base {row['base_slots_per_sec']:>10.1f} sl/s  "
              f"off {row['off_overhead_pct']:>+6.2f}%  "
              f"on {row['on_overhead_pct']:>+6.2f}%")
        if row["off_overhead_pct"] > OFF_BUDGET_PCT:
            violations.append(
                f"{label}/{backend}: off overhead "
                f"{row['off_overhead_pct']}% > {OFF_BUDGET_PCT}%")
        if row["on_overhead_pct"] > ON_BUDGET_PCT:
            violations.append(
                f"{label}/{backend}: on overhead "
                f"{row['on_overhead_pct']}% > {ON_BUDGET_PCT}%")

    if args.check:
        if violations:
            for v in violations:
                print(f"BUDGET VIOLATION: {v}")
            return 1
        print(f"budgets OK (off <= {OFF_BUDGET_PCT}%, "
              f"on <= {ON_BUDGET_PCT}%; payloads identical)")
        return 0

    write_snapshot(rows, args.output)
    print(f"wrote {args.output}")
    if args.history:
        append_bench_history(args.history, "obs", rows, quick=args.quick)
        print(f"appended to {args.history}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
