"""T9 — ablations: what each design ingredient of PG/CPG buys.

1. **CIOQ weighted**: PG (greedy maximal weighted matching) vs the
   maximum-weight-matching schedule of prior work [Kesselman-Rosen],
   with identical arrival/preemption rules — isolating the scheduling
   engine.  PG must stay within a few percent of the expensive engine's
   benefit (the paper's argument: a cheaper engine at an equal-or-better
   ratio).
2. **Crossbar weighted**: CPG at the paper's decoupled thresholds
   (beta* != alpha*) vs the single-threshold variant beta == alpha (the
   prior 16.24-competitive parameterization), vs a never-preempting
   greedy, vs value-blind CGU — isolating the threshold machinery.
"""

from repro.analysis.report import format_table
from repro.core.cgu import CGUPolicy
from repro.core.cpg import CPGPolicy
from repro.core.params import kesselman_cpg_params
from repro.core.pg import PGPolicy
from repro.offline.opt import cioq_opt, crossbar_opt
from repro.scheduling.baselines import (
    CrossbarGreedyWeightedPolicy,
    MaxWeightMatchPolicy,
)
from repro.simulation.engine import run_cioq, run_crossbar
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.values import pareto_values, two_value

from conftest import run_once


def compute_pg_engine_ablation():
    config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
    rows = []
    for label, model, seed in [
        ("two-value a=20", BernoulliTraffic(
            3, 3, load=1.5, value_model=two_value(20, 0.25)), 0),
        ("pareto 1.3", BernoulliTraffic(
            3, 3, load=1.4, value_model=pareto_values(1.3)), 1),
        ("hotspot two-value", HotspotTraffic(
            3, 3, load=1.5, hot_fraction=0.7,
            value_model=two_value(50, 0.15)), 2),
    ]:
        trace = model.generate(20, seed=seed)
        opt = cioq_opt(trace, config).benefit
        pg = run_cioq(PGPolicy(), config, trace).benefit
        mw = run_cioq(MaxWeightMatchPolicy(), config, trace).benefit
        rows.append({
            "traffic": label,
            "PG (greedy)": round(pg, 1),
            "MaxWeight (prior)": round(mw, 1),
            "OPT": round(opt, 1),
            "PG/MaxWeight": round(pg / mw, 4) if mw else float("nan"),
        })
    return rows


def compute_cpg_threshold_ablation():
    b_single, a_single = kesselman_cpg_params()
    config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
    rows = []
    for label, model, seed in [
        ("two-value a=20", BernoulliTraffic(
            3, 3, load=1.6, value_model=two_value(20, 0.3)), 0),
        ("pareto 1.3", BernoulliTraffic(
            3, 3, load=1.5, value_model=pareto_values(1.3)), 1),
    ]:
        trace = model.generate(18, seed=seed)
        opt = crossbar_opt(trace, config).benefit
        variants = {
            "CPG (beta*!=alpha*)": CPGPolicy(),
            "CPG (beta=alpha)": CPGPolicy(beta=b_single, alpha=a_single),
            "no-preempt greedy": CrossbarGreedyWeightedPolicy(),
            "CGU (value-blind)": CGUPolicy(),
        }
        row = {"traffic": label, "OPT": round(opt, 1)}
        for name, policy in variants.items():
            res = run_crossbar(policy, config, trace)
            row[name] = round(res.benefit, 1)
        rows.append(row)
    return rows


def test_t9_pg_engine_ablation(benchmark, emit):
    rows = run_once(benchmark, compute_pg_engine_ablation)
    emit("\n" + format_table(
        rows,
        title="T9a - scheduling-engine ablation: PG's greedy maximal "
              "matching vs the Hungarian maximum-weight engine",
    ))
    # The cheap engine keeps >= 90% of the expensive engine's benefit.
    assert all(r["PG/MaxWeight"] >= 0.9 for r in rows)


def test_t9_cpg_threshold_ablation(benchmark, emit):
    rows = run_once(benchmark, compute_cpg_threshold_ablation)
    emit("\n" + format_table(
        rows,
        title="T9b - threshold ablation on the buffered crossbar "
              "(decoupled beta*/alpha* vs single threshold vs no "
              "preemption vs value-blind)",
    ))
    for r in rows:
        # Value-aware preemption dominates the value-blind baseline.
        assert r["CPG (beta*!=alpha*)"] >= r["CGU (value-blind)"] - 1e-6
        # And everything respects the optimum.
        for k, v in r.items():
            if k not in ("traffic", "OPT"):
                assert v <= r["OPT"] + 1e-6
