"""Engine microbenchmarks: simulation throughput of the substrate.

Not a paper experiment — substrate performance numbers for users sizing
their own sweeps: slots/second of the full phase-faithful engine (GM on
a loaded 8x8 switch, CGU on the crossbar) and the exact-OPT solve time
on a typical ratio-experiment instance.

Runs two ways:

* ``pytest benchmarks/bench_engine.py --benchmark-only`` — full
  pytest-benchmark statistics;
* ``python benchmarks/bench_engine.py [--quick]`` — standalone timing
  loop printing ms/run and slots/s per workload (``--quick`` does one
  warm-up plus three reps; used as the CI smoke benchmark).
"""

import pytest

from repro.core.cgu import CGUPolicy
from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.offline.opt import cioq_opt
from repro.simulation.engine import run_cioq, run_crossbar
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import uniform_values

CONFIG8 = SwitchConfig.square(8, speedup=2, b_in=4, b_out=4, b_cross=1)
TRACE8 = BernoulliTraffic(8, 8, load=1.2).generate(100, seed=0)
WTRACE8 = BernoulliTraffic(
    8, 8, load=1.2, value_model=uniform_values(1, 100)
).generate(100, seed=0)

OPT_CONFIG = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
OPT_TRACE = BernoulliTraffic(3, 3, load=1.2).generate(20, seed=1)


def test_engine_gm_8x8(benchmark):
    result = benchmark(run_cioq, GMPolicy(), CONFIG8, TRACE8)
    result.check_conservation()
    assert result.n_sent > 0


def test_engine_pg_8x8(benchmark):
    result = benchmark(run_cioq, PGPolicy(), CONFIG8, WTRACE8)
    result.check_conservation()


def test_engine_cgu_8x8(benchmark):
    result = benchmark(run_crossbar, CGUPolicy(), CONFIG8, TRACE8)
    result.check_conservation()


def test_exact_opt_solve(benchmark):
    result = benchmark.pedantic(
        cioq_opt, args=(OPT_TRACE, OPT_CONFIG), rounds=3, iterations=1
    )
    assert result.benefit > 0


def main(argv=None):
    """Standalone timing mode: ``python benchmarks/bench_engine.py``."""
    import argparse
    import time

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="3 reps instead of 20 (CI smoke run)")
    args = parser.parse_args(argv)
    reps = 3 if args.quick else 20

    workloads = [
        ("GM  8x8 cioq    ", lambda: run_cioq(GMPolicy(), CONFIG8, TRACE8)),
        ("PG  8x8 cioq    ", lambda: run_cioq(PGPolicy(), CONFIG8, WTRACE8)),
        ("CGU 8x8 crossbar", lambda: run_crossbar(CGUPolicy(), CONFIG8, TRACE8)),
    ]
    print(f"engine benchmark ({reps} reps, 100 arrival slots, load 1.2):")
    for label, fn in workloads:
        result = fn()  # warm-up; also sanity-checks the run
        result.check_conservation()
        best = min(
            _timed(fn, time.perf_counter) for _ in range(reps)
        )
        print(f"  {label}  {best * 1e3:7.2f} ms/run  "
              f"{result.n_arrival_slots / best:9.0f} arrival-slots/s  "
              f"benefit={result.benefit:g}")
    return 0


def _timed(fn, clock):
    t0 = clock()
    fn()
    return clock() - t0


if __name__ == "__main__":
    raise SystemExit(main())
