"""Engine microbenchmarks: simulation throughput of the substrate.

Not a paper experiment — substrate performance numbers for users sizing
their own sweeps: slots/second of the full phase-faithful engine and
the vectorized ``fast`` backend's speedup over it across a port-count
sweep, plus the exact-OPT solve time on a typical ratio-experiment
instance.

Runs two ways:

* ``pytest benchmarks/bench_engine.py --benchmark-only`` — full
  pytest-benchmark statistics on the single-run reference workloads;
* ``python benchmarks/bench_engine.py [--quick]`` — the backend
  comparison sweep.  Each grid row batches a seed ladder of traces and
  times the reference kernel (serial loop) against the ``fast`` backend
  (one lockstep batch), then writes ``BENCH_engine.json`` at the repo
  root: sorted keys, no timestamps, trailing newline, so regeneration
  on the same machine produces minimal diffs.  ``--quick`` runs one
  timed rep per cell instead of three (CI smoke mode) — same grid,
  same schema.

The committed ``BENCH_engine.json`` is validated (schema + speedup
floor) by ``tests/test_package.py``; refresh it with
``PYTHONPATH=src python benchmarks/bench_engine.py``.
"""

import pytest

from repro.core.cgu import CGUPolicy
from repro.core.gm import GMPolicy
from repro.core.pg import PGPolicy
from repro.offline.opt import cioq_opt
from repro.simulation.engine import (
    run_cioq,
    run_cioq_batch,
    run_crossbar,
    run_crossbar_batch,
)
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import uniform_values

CONFIG8 = SwitchConfig.square(8, speedup=2, b_in=4, b_out=4, b_cross=1)
TRACE8 = BernoulliTraffic(8, 8, load=1.2).generate(100, seed=0)
WTRACE8 = BernoulliTraffic(
    8, 8, load=1.2, value_model=uniform_values(1, 100)
).generate(100, seed=0)

OPT_CONFIG = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
OPT_TRACE = BernoulliTraffic(3, 3, load=1.2).generate(20, seed=1)


def test_engine_gm_8x8(benchmark):
    result = benchmark(run_cioq, GMPolicy(), CONFIG8, TRACE8)
    result.check_conservation()
    assert result.n_sent > 0


def test_engine_pg_8x8(benchmark):
    result = benchmark(run_cioq, PGPolicy(), CONFIG8, WTRACE8)
    result.check_conservation()


def test_engine_cgu_8x8(benchmark):
    result = benchmark(run_crossbar, CGUPolicy(), CONFIG8, TRACE8)
    result.check_conservation()


def test_exact_opt_solve(benchmark):
    result = benchmark.pedantic(
        cioq_opt, args=(OPT_TRACE, OPT_CONFIG), rounds=3, iterations=1
    )
    assert result.benefit > 0


# ---------------------------------------------------------------------------
# Standalone backend-comparison sweep
# ---------------------------------------------------------------------------

#: (n_ports, seed-ladder width, arrival slots) — the ladder shrinks and
#: the trace shortens at N=256 to keep the serial reference leg sane.
GRID = [
    (8, 16, 100),
    (32, 16, 100),
    (64, 16, 100),
    (128, 16, 100),
    (256, 8, 60),
]

POLICIES = [
    ("gm", "cioq", GMPolicy),
    ("pg", "cioq", PGPolicy),
    ("cgu", "crossbar", CGUPolicy),
]


def _bench_row(n, batch, slots, label, model, factory, reps):
    import time

    config = SwitchConfig.square(n, speedup=2, b_in=4, b_out=4, b_cross=1)
    tm = BernoulliTraffic(n, n, load=1.2, value_model=uniform_values(1, 9))
    traces = [tm.generate(slots, seed=s) for s in range(batch)]
    if model == "cioq":
        serial, batched = run_cioq, run_cioq_batch
    else:
        serial, batched = run_crossbar, run_crossbar_batch

    def ref_leg():
        return [serial(factory(), config, tr) for tr in traces]

    def fast_leg():
        return batched(factory, config, traces, backend="fast")

    ref_res = ref_leg()       # warm-up + correctness anchor
    fast_res = fast_leg()
    for a, b in zip(ref_res, fast_res):
        if a.benefit != b.benefit:  # cheap differential guard
            raise AssertionError(
                f"backend divergence in bench ({label}, n={n}): "
                f"{a.benefit} != {b.benefit}"
            )
    t_ref = min(_timed(ref_leg, time.perf_counter) for _ in range(reps))
    t_fast = min(_timed(fast_leg, time.perf_counter) for _ in range(reps))
    lane_slots = batch * slots
    return {
        "policy": label,
        "model": model,
        "n_ports": n,
        "batch": batch,
        "arrival_slots": slots,
        "reference_slots_per_sec": round(lane_slots / t_ref, 1),
        "fast_slots_per_sec": round(lane_slots / t_fast, 1),
        "speedup": round(t_ref / t_fast, 2),
    }


def write_snapshot(rows, path):
    """Write the benchmark snapshot deterministically: sorted keys, no
    timestamps or host identifiers, trailing newline."""
    import json

    snapshot = {
        "schema": 1,
        "workload": {
            "traffic": "bernoulli load=1.2 uniform(1,9)",
            "speedup": 2,
            "buffers": {"b_in": 4, "b_out": 4, "b_cross": 1},
            "metric": "lane arrival-slots per second, best of reps",
        },
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")


def main(argv=None):
    """Standalone sweep: ``python benchmarks/bench_engine.py``."""
    import argparse
    import pathlib

    from repro.obs import append_bench_history

    root = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="1 timed rep per cell instead of 3 (CI smoke)")
    parser.add_argument(
        "--output", default=str(root / "BENCH_engine.json"),
        help="snapshot path (default: repo-root BENCH_engine.json)")
    parser.add_argument(
        "--history", default=str(root / "BENCH_history.jsonl"),
        help="dated history ledger to append to ('' disables); unlike "
             "the snapshot this accumulates a trajectory across runs")
    args = parser.parse_args(argv)
    reps = 1 if args.quick else 3

    rows = []
    print(f"backend sweep ({reps} timed rep(s) per cell):")
    for n, batch, slots in GRID:
        for label, model, factory in POLICIES:
            row = _bench_row(n, batch, slots, label, model, factory, reps)
            rows.append(row)
            print(f"  {label:>3} {model:<8} N={n:<3} S={batch:<2} "
                  f"ref {row['reference_slots_per_sec']:>10.1f} sl/s  "
                  f"fast {row['fast_slots_per_sec']:>10.1f} sl/s  "
                  f"speedup {row['speedup']:.2f}x")
    write_snapshot(rows, args.output)
    print(f"wrote {args.output}")
    if args.history:
        append_bench_history(args.history, "engine", rows, quick=args.quick)
        print(f"appended to {args.history}")
    return 0


def _timed(fn, clock):
    t0 = clock()
    fn()
    return clock() - t0


if __name__ == "__main__":
    raise SystemExit(main())
