"""T10 — crosspoint buffer sizing: benefit vs B(C) for CGU and CPG.

The buffered crossbar adds N^2 crosspoint queues; their size is fabric
SRAM, the scarcest memory in a switch.  The paper's guarantees hold for
*any* capacities, including B(C) = 1.  This experiment sweeps B(C) in
{1, 2, 4} under bursty overload and reports benefit and ratio against
the exact optimum *at the same B(C)* — showing the guarantee costs no
crosspoint memory and bigger crosspoint buffers buy little.
"""

from repro.analysis.report import format_table
from repro.analysis.sweep import buffer_sweep_crossbar
from repro.core.cgu import CGUPolicy
from repro.core.cpg import CPGPolicy
from repro.switch.config import SwitchConfig
from repro.traffic.bursty import BurstyTraffic
from repro.traffic.values import pareto_values, unit_values

from conftest import run_once


def compute_tables(executor=None):
    base = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
    unit_rows = buffer_sweep_crossbar(
        CGUPolicy,
        BurstyTraffic(3, 3, burst_load=2.5, value_model=unit_values()),
        n_slots=16,
        b_cross_values=[1, 2, 4],
        base_config=base,
        seeds=(0, 1),
        executor=executor,
    )
    weighted_rows = buffer_sweep_crossbar(
        CPGPolicy,
        BurstyTraffic(3, 3, burst_load=2.5, value_model=pareto_values(1.4)),
        n_slots=16,
        b_cross_values=[1, 2, 4],
        base_config=base,
        seeds=(0, 1),
        executor=executor,
    )
    return unit_rows, weighted_rows


def test_t10_crossbar_buffer_sweep(benchmark, emit, sweep_executor):
    unit_rows, weighted_rows = run_once(benchmark, compute_tables,
                                        sweep_executor)
    emit("\n" + format_table(
        unit_rows,
        title="T10a - CGU benefit/ratio vs crosspoint capacity B(C) "
              "(bursty unit traffic)",
    ))
    emit(format_table(
        weighted_rows,
        title="T10b - CPG benefit/ratio vs crosspoint capacity B(C) "
              "(bursty Pareto traffic)",
    ))
    for rows, bound in ((unit_rows, 3.0), (weighted_rows, 14.83)):
        for r in rows:
            assert r["ratio"] <= bound + 1e-9
    # The B(C)=1 guarantee is already competitive: worst ratio at B(C)=1
    # stays far below the bound.
    worst_b1 = max(r["ratio"] for r in unit_rows if r["b_cross"] == 1)
    assert worst_b1 < 3.0
