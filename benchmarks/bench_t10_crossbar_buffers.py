"""T10 — crosspoint buffer sizing: benefit vs B(C) for CGU and CPG.

The buffered crossbar adds N^2 crosspoint queues; their size is fabric
SRAM, the scarcest memory in a switch.  The paper's guarantees hold for
*any* capacities, including B(C) = 1.  This experiment sweeps B(C) in
{1, 2, 4} under bursty overload and reports benefit and ratio against
the exact optimum *at the same B(C)* — showing the guarantee costs no
crosspoint memory and bigger crosspoint buffers buy little.
"""

import math

from repro.analysis.report import format_mean_ci, format_table
from repro.analysis.sweep import buffer_sweep_crossbar
from repro.scenarios import get_scenario
from repro.stats import Welford, half_width

from conftest import run_once

#: Experiment parameters come from the registered crossbar scenarios
#: (CGU on unit values, CPG on Pareto values); this driver adds the
#: crosspoint-capacity sweep dimension using each scenario's first
#: policy, replicated over REPLICATES seeds per B(C) cell.
B_CROSS_VALUES = [1, 2, 4]
REPLICATES = 3


def _sweep_scenario(name, executor):
    spec = get_scenario(name)
    _label, factory = spec.policy_factories()[0]
    return buffer_sweep_crossbar(
        factory,
        spec.build_traffic(),
        n_slots=spec.slots,
        b_cross_values=B_CROSS_VALUES,
        base_config=spec.build_config(),
        seeds=range(REPLICATES),
        executor=executor,
    )


def compute_tables(executor=None):
    unit_rows = _sweep_scenario("crossbar-unit-burst", executor)
    weighted_rows = _sweep_scenario("crossbar-weighted-pareto", executor)
    return unit_rows, weighted_rows


def replicated_rows(rows):
    """Per-B(C) mean benefit and mean per-seed ratio ± 95% CI
    half-width (per-seed ratios, never sum-of-benefit ratios; a seed
    with an unbounded ratio is excluded from the mean like
    ``per_seed_ratios`` does)."""
    out = []
    for bc in B_CROSS_VALUES:
        cell = [r for r in rows if r["b_cross"] == bc]
        agg = {"b_cross": bc, "seeds": len(cell)}
        for name in ("benefit", "ratio"):
            acc = Welford.from_values(
                v for r in cell
                if math.isfinite(v := float(r[name]))
            )
            agg[name] = format_mean_ci(acc.mean,
                                       half_width(acc.std, acc.n, 0.95))
        out.append(agg)
    return out


def test_t10_crossbar_buffer_sweep(benchmark, emit, sweep_executor):
    unit_rows, weighted_rows = run_once(benchmark, compute_tables,
                                        sweep_executor)
    emit("\n" + format_table(
        unit_rows,
        title="T10a - CGU benefit/ratio vs crosspoint capacity B(C) "
              "(bursty unit traffic)",
    ))
    emit(format_table(
        replicated_rows(unit_rows),
        title=f"T10a (replicated) - CGU mean ± 95% CI half-width over "
              f"{REPLICATES} seeds",
    ))
    emit(format_table(
        weighted_rows,
        title="T10b - CPG benefit/ratio vs crosspoint capacity B(C) "
              "(bursty Pareto traffic)",
    ))
    emit(format_table(
        replicated_rows(weighted_rows),
        title=f"T10b (replicated) - CPG mean ± 95% CI half-width over "
              f"{REPLICATES} seeds",
    ))
    for rows, bound in ((unit_rows, 3.0), (weighted_rows, 14.83)):
        for r in rows:
            assert r["ratio"] <= bound + 1e-9
    # The B(C)=1 guarantee is already competitive: worst ratio at B(C)=1
    # stays far below the bound.
    worst_b1 = max(r["ratio"] for r in unit_rows if r["b_cross"] == 1)
    assert worst_b1 < 3.0
