"""OPT solver-mode benchmark: exact vs windowed vs bounds.

Times the three offline-OPT solver modes (see ``docs/offline_opt.md``)
and the widths of their certified brackets across three kinds of cells:

* **comparison** — instances where the exact MILP is still feasible:
  every mode runs on the same trace, so speedups and bracket widths are
  measured against the true optimum.  The N=16 cell is the largest
  same-N exact measurement and doubles as the *measured floor* for the
  scale cells: exact cost at the same port count only grows with the
  horizon, so ``speedup_floor_vs_exact`` on the N=16 scale row is a
  certified underestimate of the true speedup.
* **scenario** — builtin non-adversarial scenarios at their registered
  size: bracket width as a fraction of exact OPT (the <= 5% cells the
  snapshot test pins).
* **scale** — port counts and horizons where the exact model is not
  even constructible (N in {8, 16, 64}, horizons up to 10^6 arrival
  slots; the size proxy exceeds ``AUTO_EXACT_BUDGET`` by orders of
  magnitude): windowed/bounds wall-clock and certified relative width,
  with ``exact_status = "infeasible"``.

Runs two ways:

* ``python benchmarks/bench_opt.py [--quick]`` — the sweep.  Writes
  ``BENCH_opt.json`` at the repo root: sorted keys, no timestamps,
  trailing newline.  ``--quick`` (CI smoke) runs a reduced grid with
  the same row schema and skips the quarter-hour exact legs.
* ``pytest benchmarks/bench_opt.py --benchmark-only`` — pytest-benchmark
  statistics on the single-run mode legs.

The committed ``BENCH_opt.json`` (full grid) is validated — schema,
>= 10x speedups, <= 5% scenario widths, infeasibility markers — by
``tests/test_package.py``; refresh it with
``PYTHONPATH=src python benchmarks/bench_opt.py``.
"""

import time

from repro.offline import bounds_opt, cioq_opt, crossbar_opt, windowed_opt
from repro.scenarios import get_scenario
from repro.switch.config import SwitchConfig
from repro.traffic import BernoulliTraffic
from repro.traffic.values import uniform_values

# ---------------------------------------------------------------------------
# pytest-benchmark legs (small, fixed instances)
# ---------------------------------------------------------------------------

_CONFIG4 = SwitchConfig.square(4, speedup=2, b_in=4, b_out=4, b_cross=1)
_TRACE4 = BernoulliTraffic(
    4, 4, load=1.2, value_model=uniform_values(1, 9)
).generate(60, seed=0)


def test_opt_exact_4x4(benchmark):
    result = benchmark.pedantic(
        cioq_opt, args=(_TRACE4, _CONFIG4), rounds=3, iterations=1
    )
    assert result.benefit > 0


def test_opt_windowed_4x4(benchmark):
    result = benchmark.pedantic(
        windowed_opt, args=(_TRACE4, _CONFIG4), kwargs={"window": 20},
        rounds=3, iterations=1,
    )
    assert result.opt_lower <= result.opt_upper


def test_opt_bounds_4x4(benchmark):
    result = benchmark.pedantic(
        bounds_opt, args=(_TRACE4, _CONFIG4), rounds=3, iterations=1
    )
    assert result.opt_lower <= result.opt_upper


# ---------------------------------------------------------------------------
# Standalone sweep
# ---------------------------------------------------------------------------

#: Synthetic workload shared by comparison and scale cells.
_VALUES = uniform_values(1, 9)


def _synth_trace(n, slots, load, seed=0):
    return BernoulliTraffic(n, n, load=load, value_model=_VALUES).generate(
        slots, seed=seed
    )


def _config(n):
    return SwitchConfig.square(n, speedup=2, b_in=4, b_out=4, b_cross=1)


#: (cell, n_ports, arrival_slots, load, window, run_exact)
#: ``window=None`` skips the windowed leg (per-window MILPs at N=16
#: already exceed the window budget).
COMPARISON_CELLS = [
    ("n4-h400", 4, 400, 1.2, 100, True),
    ("n16-h25", 16, 25, 0.8, None, True),
]

#: (scenario name, window) — builtin non-adversarial scenarios whose
#: certified bracket stays within 5% of exact OPT.
SCENARIO_CELLS = [
    ("smoke-bernoulli", 5),
    ("bernoulli-light", 16),
    ("qos-two-class", 20),
    ("crossbar-unit-burst", 8),
]

#: (cell, n_ports, arrival_slots, load, window, floor_ref) —
#: exact-infeasible cells; ``floor_ref`` names a comparison cell whose
#: measured exact time is a floor for this cell's (same-N, longer
#: horizon) exact cost.
SCALE_CELLS = [
    ("n4-h2000", 4, 2000, 1.2, 100, "n4-h400"),
    ("n8-h1e6", 8, 1_000_000, 0.1, None, None),
    ("n16-h1e5", 16, 100_000, 0.6, None, "n16-h25"),
    ("n64-h1e5", 64, 100_000, 0.2, None, None),
]

QUICK_COMPARISON = [("n4-h120", 4, 120, 1.2, 40, True)]
QUICK_SCENARIOS = [("smoke-bernoulli", 5), ("crossbar-unit-burst", 8)]
QUICK_SCALE = [("n16-h2000", 16, 2000, 0.6, None, None)]


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _row(cell, kind, model, n, slots, workload, window, *,
         exact_res=None, exact_s=None, windowed_res=None, windowed_s=None,
         bounds_res=None, bounds_s=None, floor_s=None):
    """One uniform snapshot row; mode legs that did not run stay None."""

    def _width(res, denom):
        if res is None or not denom:
            return None
        return round((res.opt_upper - res.opt_lower) / denom, 4)

    exact_b = exact_res.benefit if exact_res is not None else None
    scalable_s = min(
        s for s in (windowed_s, bounds_s) if s is not None
    ) if (windowed_s is not None or bounds_s is not None) else None
    return {
        "cell": cell,
        "kind": kind,
        "model": model,
        "n_ports": n,
        "arrival_slots": slots,
        "workload": workload,
        "window": window,
        "exact_status": "measured" if exact_s is not None else "infeasible",
        "exact_seconds": round(exact_s, 3) if exact_s is not None else None,
        "windowed_seconds": (
            round(windowed_s, 3) if windowed_s is not None else None),
        "bounds_seconds": round(bounds_s, 4) if bounds_s is not None else None,
        "windowed_width_vs_exact": _width(windowed_res, exact_b),
        "bounds_width_vs_exact": _width(bounds_res, exact_b),
        "windowed_rel_width": (
            round(windowed_res.rel_bracket_width, 4)
            if windowed_res is not None else None),
        "bounds_rel_width": (
            round(bounds_res.rel_bracket_width, 4)
            if bounds_res is not None else None),
        "speedup_windowed": (
            round(exact_s / windowed_s, 2)
            if exact_s is not None and windowed_s else None),
        "speedup_bounds": (
            round(exact_s / bounds_s, 2)
            if exact_s is not None and bounds_s else None),
        # Scale rows: measured same-N exact floor / fastest scalable
        # mode.  The true exact time at this horizon is strictly
        # larger, so this underestimates the real speedup.
        "speedup_floor_vs_exact": (
            round(floor_s / scalable_s, 2)
            if floor_s is not None and scalable_s else None),
    }


def _comparison_row(cell, n, slots, load, window, run_exact):
    config = _config(n)
    trace = _synth_trace(n, slots, load)
    workload = f"bernoulli load={load:g} uniform(1,9)"
    exact_res = exact_s = None
    if run_exact:
        exact_res, exact_s = _timed(lambda: cioq_opt(trace, config))
    windowed_res = windowed_s = None
    if window is not None:
        windowed_res, windowed_s = _timed(
            lambda: windowed_opt(trace, config, window=window))
    bounds_res, bounds_s = _timed(lambda: bounds_opt(trace, config))
    return _row(cell, "comparison", "cioq", n, slots, workload, window,
                exact_res=exact_res, exact_s=exact_s,
                windowed_res=windowed_res, windowed_s=windowed_s,
                bounds_res=bounds_res, bounds_s=bounds_s)


def _scenario_row(name, window):
    spec = get_scenario(name)
    config = spec.build_config()
    trace = spec.build_traffic().generate(spec.slots, seed=spec.seeds[0])
    exact = cioq_opt if spec.model == "cioq" else crossbar_opt
    exact_res, exact_s = _timed(lambda: exact(trace, config))
    windowed_res, windowed_s = _timed(
        lambda: windowed_opt(trace, config, window=window, model=spec.model))
    bounds_res, bounds_s = _timed(
        lambda: bounds_opt(trace, config, model=spec.model))
    return _row(name, "scenario", spec.model, config.n_in, spec.slots,
                f"scenario:{name}", window,
                exact_res=exact_res, exact_s=exact_s,
                windowed_res=windowed_res, windowed_s=windowed_s,
                bounds_res=bounds_res, bounds_s=bounds_s)


def _scale_row(cell, n, slots, load, window, floor_s):
    config = _config(n)
    trace = _synth_trace(n, slots, load)
    workload = f"bernoulli load={load:g} uniform(1,9)"
    windowed_res = windowed_s = None
    if window is not None:
        windowed_res, windowed_s = _timed(
            lambda: windowed_opt(trace, config, window=window))
    bounds_res, bounds_s = _timed(lambda: bounds_opt(trace, config))
    return _row(cell, "scale", "cioq", n, slots, workload, window,
                windowed_res=windowed_res, windowed_s=windowed_s,
                bounds_res=bounds_res, bounds_s=bounds_s, floor_s=floor_s)


def write_snapshot(rows, path):
    """Canonical snapshot: sorted keys, no timestamps or host data,
    trailing newline."""
    import json

    snapshot = {
        "schema": 1,
        "workload": {
            "buffers": {"b_in": 4, "b_out": 4, "b_cross": 1},
            "speedup": 2,
            "metric": "single-run wall-clock seconds per solver mode; "
                      "widths are certified bracket widths",
            "exact_floor": "scale-row speedup floors divide the measured "
                           "exact time of the same-N comparison cell "
                           "(shorter horizon), underestimating the true "
                           "speedup",
        },
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")


def main(argv=None):
    """Standalone sweep: ``python benchmarks/bench_opt.py``."""
    import argparse
    import pathlib

    from repro.obs import append_bench_history

    root = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid, no long exact legs (CI smoke)")
    parser.add_argument(
        "--output", default=str(root / "BENCH_opt.json"),
        help="snapshot path (default: repo-root BENCH_opt.json)")
    parser.add_argument(
        "--history", default=str(root / "BENCH_history.jsonl"),
        help="dated history ledger to append to ('' disables); unlike "
             "the snapshot this accumulates a trajectory across runs")
    args = parser.parse_args(argv)

    comparison = QUICK_COMPARISON if args.quick else COMPARISON_CELLS
    scenarios = QUICK_SCENARIOS if args.quick else SCENARIO_CELLS
    scale = QUICK_SCALE if args.quick else SCALE_CELLS

    rows = []
    exact_times = {}
    print("comparison cells (exact measured):")
    for cell, n, slots, load, window, run_exact in comparison:
        row = _comparison_row(cell, n, slots, load, window, run_exact)
        exact_times[cell] = row["exact_seconds"]
        rows.append(row)
        print(f"  {cell:12s} exact {row['exact_seconds']}s  "
              f"windowed {row['windowed_seconds']}s  "
              f"bounds {row['bounds_seconds']}s  "
              f"speedup_bounds {row['speedup_bounds']}x")
    print("scenario width cells:")
    for name, window in scenarios:
        row = _scenario_row(name, window)
        rows.append(row)
        print(f"  {name:22s} windowed width/exact "
              f"{row['windowed_width_vs_exact']}  bounds width/exact "
              f"{row['bounds_width_vs_exact']}")
    print("scale cells (exact infeasible):")
    for cell, n, slots, load, window, floor_ref in scale:
        floor_s = exact_times.get(floor_ref)
        row = _scale_row(cell, n, slots, load, window, floor_s)
        rows.append(row)
        print(f"  {cell:12s} windowed {row['windowed_seconds']}s  "
              f"bounds {row['bounds_seconds']}s  rel width "
              f"{row['bounds_rel_width']}  speedup floor "
              f"{row['speedup_floor_vs_exact']}x")

    write_snapshot(rows, args.output)
    print(f"wrote {args.output}")
    if args.history:
        append_bench_history(args.history, "opt", rows, quick=args.quick)
        print(f"appended to {args.history}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
