"""Experiment-farm benchmark: incremental resume and pool amortization.

Pins the two performance claims of the farm substrate
(docs/parallel.md):

* **resume is cheap** — re-running a sweep whose points are 75% already
  in the content-addressed result store must be at least
  :data:`RESUME_SPEEDUP_MIN` times faster than the cold run.  The
  workload is deliberately *heterogeneous* (75% long-horizon points,
  25% short ones, the long ones cached): with uniform point costs a 75%
  hit rate caps at exactly 4x, so a realistic mix — resumable studies
  are dominated by their expensive points — is what the resumed cell
  measures, and the workload block records the mix honestly.
* **the pool is amortized** — ten consecutive ``run()`` calls through
  one :class:`~repro.farm.pool.PersistentPool` (including its single
  spawn) must cost at most :data:`POOL_OVERHEAD_PCT_MAX` percent over
  ten warm-pool runs; the per-call-ephemeral-pool total is reported for
  comparison.

Both cells re-assert the determinism contract: cold, warm, and resumed
payload lists must be exactly equal.

Runs two ways:

* ``python benchmarks/bench_farm.py [--quick] [--check]`` — writes
  ``BENCH_farm.json`` at the repo root (sorted keys, no timestamps,
  trailing newline) and appends a dated entry to
  ``BENCH_history.jsonl``.  ``--check`` turns the thresholds into hard
  failures (the CI farm-smoke job); ``--quick`` shrinks the workload
  (same schema).
* the committed ``BENCH_farm.json`` is validated (schema, thresholds,
  byte-identity attestations) by ``tests/test_package.py``; refresh it
  with ``PYTHONPATH=src python benchmarks/bench_farm.py``.
"""

import gc
import shutil
import time
from functools import partial

from repro.core.pg import PGPolicy
from repro.farm import PersistentPool
from repro.parallel import SweepExecutor, SweepPoint
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.values import uniform_values

#: Minimum cold/resumed speedup with 75% of points pre-cached.
RESUME_SPEEDUP_MIN = 4.0

#: Maximum spawn-amortization overhead across 10 consecutive run()
#: calls through one persistent pool, vs the same runs on a warm pool.
POOL_OVERHEAD_PCT_MAX = 5.0

CONFIG4 = SwitchConfig.square(4, speedup=1, b_in=2, b_out=2, b_cross=1)


def _point(slots, seed):
    trace = BernoulliTraffic(
        4, 4, load=1.2, value_model=uniform_values(1, 20)
    ).generate(slots, seed=seed)
    return SweepPoint(model="cioq", config=CONFIG4, trace=trace,
                      policy_factory=partial(PGPolicy, beta=2.0),
                      seed=seed, tag={"seed": seed, "slots": slots})


def resume_points(long_slots, short_slots, n_long, n_short):
    """The heterogeneous resume workload: expensive long-horizon points
    first (those get pre-cached), cheap short ones after."""
    longs = [_point(long_slots, seed) for seed in range(n_long)]
    shorts = [_point(short_slots, 1000 + seed) for seed in range(n_short)]
    return longs, shorts


def _timed_run(executor, points):
    t0 = time.perf_counter()
    payloads = executor.run(points)
    return time.perf_counter() - t0, payloads


def bench_resume(tmp_root, quick):
    long_slots, short_slots = (150, 15) if quick else (400, 40)
    n_long, n_short = (6, 2) if quick else (12, 4)
    longs, shorts = resume_points(long_slots, short_slots, n_long, n_short)
    points = longs + shorts

    gc.disable()
    try:
        cold_dir = f"{tmp_root}/cold"
        cold_s, cold_payloads = _timed_run(
            SweepExecutor(cache_dir=cold_dir), points)

        warm = SweepExecutor(cache_dir=cold_dir)
        warm_s, warm_payloads = _timed_run(warm, points)
        assert warm.cache_misses == 0, "warm run re-executed points"

        # Resumed: a fresh store holding only the 75% expensive points —
        # the state a study killed after its long-horizon prefix leaves.
        # The resumed run gets freshly built points (restart semantics:
        # a new process re-generates its traces, so nothing memoized on
        # the pre-kill objects — trace digests included — carries over).
        resumed_dir = f"{tmp_root}/resumed"
        SweepExecutor(cache_dir=resumed_dir).run(longs)
        fresh_longs, fresh_shorts = resume_points(
            long_slots, short_slots, n_long, n_short)
        resumed = SweepExecutor(cache_dir=resumed_dir)
        resumed_s, resumed_payloads = _timed_run(
            resumed, fresh_longs + fresh_shorts)
        assert resumed.cache_misses == len(shorts)
    finally:
        gc.enable()

    identical = cold_payloads == warm_payloads == resumed_payloads
    return {
        "points": len(points),
        "long_points": n_long,
        "short_points": n_short,
        "long_slots": long_slots,
        "short_slots": short_slots,
        "cached_fraction": round(n_long / len(points), 4),
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "resumed_seconds": round(resumed_s, 4),
        "warm_speedup_vs_cold": round(cold_s / warm_s, 2),
        "resume_speedup_vs_cold": round(cold_s / resumed_s, 2),
        "payloads_identical": identical,
    }


def bench_pool(quick):
    workers = 2
    runs = 10
    reps = 3
    slots = 120 if quick else 150
    n_points = 8 if quick else 16
    points = [_point(slots, seed) for seed in range(n_points)]

    def block(ex):
        t0 = time.perf_counter()
        for _ in range(runs):
            ex.run(points)
        return time.perf_counter() - t0

    gc.disable()
    try:
        # Paired cells: on one fresh pool, time ten run() calls that
        # include the spawn, then ten more on the now-warm pool.  The
        # pair is adjacent in time on the same pool, so CPU drift
        # cancels in the difference — the spawn cost being isolated is
        # ~10ms against ~1s of work.  Median over `reps` pairs.
        cold_blocks, warm_blocks = [], []
        for _ in range(reps):
            with PersistentPool(workers) as pool:
                ex = SweepExecutor(workers=workers, pool=pool)
                cold_blocks.append(block(ex))   # spawn inside
                warm_blocks.append(block(ex))   # same pool, warm
        cold_blocks.sort()
        warm_blocks.sort()
        persistent_total = cold_blocks[reps // 2]
        warm_total = warm_blocks[reps // 2]

        # Per-call cell: the pre-farm behavior, one ephemeral pool per
        # run() call.
        t0 = time.perf_counter()
        ex = SweepExecutor(workers=workers)
        for _ in range(runs):
            ex.run(points)
        per_call_total = time.perf_counter() - t0
    finally:
        gc.enable()

    overhead_pct = round(
        (persistent_total - warm_total) / warm_total * 100, 2)
    return {
        "workers": workers,
        "runs": runs,
        "median_of": reps,
        "points_per_run": n_points,
        "slots_per_point": slots,
        "warm_total_seconds": round(warm_total, 4),
        "persistent_total_seconds": round(persistent_total, 4),
        "per_call_total_seconds": round(per_call_total, 4),
        "spawn_overhead_pct": overhead_pct,
        "speedup_vs_per_call": round(per_call_total / persistent_total, 2),
    }


# ---------------------------------------------------------------------------
# pytest-benchmark legs
# ---------------------------------------------------------------------------

def test_resume_warm_store(benchmark, tmp_path):
    longs, shorts = resume_points(100, 10, 6, 2)
    points = longs + shorts
    cache_dir = str(tmp_path / "store")
    SweepExecutor(cache_dir=cache_dir).run(points)

    def leg():
        return SweepExecutor(cache_dir=cache_dir).run(points)

    payloads = benchmark(leg)
    assert len(payloads) == len(points)


def test_persistent_pool_run(benchmark):
    points = [_point(60, seed) for seed in range(8)]
    with PersistentPool(2) as pool:
        ex = SweepExecutor(workers=2, pool=pool)
        ex.run(points)  # spawn outside the timed region
        payloads = benchmark(ex.run, points)
    assert len(payloads) == len(points)


# ---------------------------------------------------------------------------
# Standalone sweep
# ---------------------------------------------------------------------------

def write_snapshot(sweep_row, pool_row, path):
    """Deterministic snapshot: sorted keys, no timestamps, trailing
    newline (same convention as the other BENCH_*.json files)."""
    import json

    snapshot = {
        "schema": 1,
        "budgets": {
            "resume_speedup_min": RESUME_SPEEDUP_MIN,
            "pool_overhead_pct_max": POOL_OVERHEAD_PCT_MAX,
        },
        "workload": {
            "traffic": "bernoulli 4x4 load=1.2 uniform(1,20), pg beta=2",
            "resume_mix": "75% long-horizon points (pre-cached) + 25% "
                          "short; heterogeneous by design — uniform "
                          "costs cap a 75% hit rate at exactly 4x",
            "pool_metric": "paired: 10 run() calls incl. one spawn vs "
                           "the next 10 on the same warm pool",
        },
        "sweep": sweep_row,
        "pool": pool_row,
    }
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")


def main(argv=None):
    """Standalone sweep: ``python benchmarks/bench_farm.py``."""
    import argparse
    import pathlib
    import tempfile

    from repro.obs import append_bench_history

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload (CI smoke; same schema)")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) when a threshold is missed")
    root = pathlib.Path(__file__).resolve().parent.parent
    parser.add_argument("--output", default=str(root / "BENCH_farm.json"),
                        help="snapshot path (default: repo-root "
                             "BENCH_farm.json)")
    parser.add_argument("--history", default=str(root /
                                                 "BENCH_history.jsonl"),
                        help="dated history ledger to append to "
                             "('' disables)")
    args = parser.parse_args(argv)

    tmp_root = tempfile.mkdtemp(prefix="bench_farm_")
    try:
        sweep_row = bench_resume(tmp_root, args.quick)
    finally:
        shutil.rmtree(tmp_root, ignore_errors=True)
    pool_row = bench_pool(args.quick)

    print("farm benchmark:")
    print(f"  resume: cold {sweep_row['cold_seconds']:.3f}s  "
          f"warm {sweep_row['warm_seconds']:.3f}s  "
          f"resumed(75% cached) {sweep_row['resumed_seconds']:.3f}s  "
          f"-> {sweep_row['resume_speedup_vs_cold']:.1f}x vs cold")
    print(f"  pool:   warm10 {pool_row['warm_total_seconds']:.3f}s  "
          f"persistent10 {pool_row['persistent_total_seconds']:.3f}s  "
          f"per-call10 {pool_row['per_call_total_seconds']:.3f}s  "
          f"-> spawn overhead {pool_row['spawn_overhead_pct']:+.2f}%")

    violations = []
    if sweep_row["resume_speedup_vs_cold"] < RESUME_SPEEDUP_MIN:
        violations.append(
            f"resume speedup {sweep_row['resume_speedup_vs_cold']}x "
            f"< {RESUME_SPEEDUP_MIN}x")
    if pool_row["spawn_overhead_pct"] > POOL_OVERHEAD_PCT_MAX:
        if args.quick:
            # ~1s of quick work cannot amortize a fixed spawn to 5%;
            # the pool budget is only meaningful at the full workload.
            print("note: pool budget not enforced under --quick "
                  f"(measured {pool_row['spawn_overhead_pct']}%)")
        else:
            violations.append(
                f"pool spawn overhead {pool_row['spawn_overhead_pct']}% "
                f"> {POOL_OVERHEAD_PCT_MAX}%")
    if not sweep_row["payloads_identical"]:
        violations.append("cold/warm/resumed payloads differ")

    if args.check:
        if violations:
            for v in violations:
                print(f"THRESHOLD VIOLATION: {v}")
            return 1
        print(f"thresholds OK (resume >= {RESUME_SPEEDUP_MIN}x, pool "
              f"overhead <= {POOL_OVERHEAD_PCT_MAX}%; payloads identical)")
        return 0

    write_snapshot(sweep_row, pool_row, args.output)
    print(f"wrote {args.output}")
    if args.history:
        append_bench_history(args.history, "farm", [sweep_row, pool_row],
                             quick=args.quick)
        print(f"appended to {args.history}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
