"""T6 — throughput vs speedup: GM vs baselines vs OPT.

The paper's guarantees hold "for any speedup"; this experiment shows the
empirical picture behind that phrase: as the fabric speedup grows from 1
to 4 under overloaded hotspot traffic, how much of the exact optimum
each scheduler captures, and where the greedy maximal matching (GM)
lands relative to the maximum-matching schedule (prior work), the
iSLIP-style round-robin heuristic (hardware practice), and a randomized
greedy.
"""

from repro.analysis.report import format_table
from repro.analysis.sweep import speedup_sweep
from repro.scenarios import get_scenario

from conftest import run_once

#: All experiment parameters (switch, traffic, policies, slots, seeds)
#: come from the registered scenario; this driver only adds the
#: speedup sweep dimension.
SCENARIO = "speedup-grid"
SPEEDUPS = [1, 2, 3, 4]


def compute_rows(executor=None):
    spec = get_scenario(SCENARIO)
    rows = speedup_sweep(
        dict(spec.policy_factories()),
        spec.build_traffic(),
        n_slots=spec.slots,
        speedups=SPEEDUPS,
        base_config=spec.build_config(),
        seeds=spec.seeds,
        executor=executor,
    )
    return rows


def test_t6_speedup_table(benchmark, emit, sweep_executor):
    labels = get_scenario(SCENARIO).policy_labels()
    rows = run_once(benchmark, compute_rows, sweep_executor)
    emit("\n" + format_table(
        rows,
        title="T6 - packets delivered vs fabric speedup "
              f"(scenario {SCENARIO}; OPT = exact offline optimum)",
    ))
    for r in rows:
        # Nobody beats OPT; GM stays within its factor-3 guarantee.
        for name in labels:
            assert r[name] <= r["OPT"] + 1e-6
        assert r["OPT"] <= 3 * r["gm"] + 1e-6
    # Speedup monotonicity of the optimum (aggregated over seeds).
    by_speedup = {}
    for r in rows:
        by_speedup.setdefault(r["speedup"], 0.0)
        by_speedup[r["speedup"]] += r["OPT"]
    speeds = sorted(by_speedup)
    for a, b in zip(speeds, speeds[1:]):
        assert by_speedup[b] >= by_speedup[a] - 1e-6
