"""T6 — throughput vs speedup: GM vs baselines vs OPT.

The paper's guarantees hold "for any speedup"; this experiment shows the
empirical picture behind that phrase: as the fabric speedup grows from 1
to 4 under overloaded hotspot traffic, how much of the exact optimum
each scheduler captures, and where the greedy maximal matching (GM)
lands relative to the maximum-matching schedule (prior work), the
iSLIP-style round-robin heuristic (hardware practice), and a randomized
greedy.
"""

from repro.analysis.report import format_table
from repro.analysis.sweep import speedup_sweep
from repro.core.gm import GMPolicy
from repro.scheduling.baselines import (
    MaxMatchPolicy,
    RandomMatchPolicy,
    RoundRobinPolicy,
)
from repro.switch.config import SwitchConfig
from repro.traffic.hotspot import HotspotTraffic

from conftest import run_once


def compute_rows(executor=None):
    base = SwitchConfig.square(4, b_in=2, b_out=2)
    traffic = HotspotTraffic(4, 4, load=1.3, hot_fraction=0.5)
    rows = speedup_sweep(
        {
            "GM": GMPolicy,
            "MaxMatch": MaxMatchPolicy,
            "RoundRobin": RoundRobinPolicy,
            "RandomMatch": RandomMatchPolicy,
        },
        traffic,
        n_slots=20,
        speedups=[1, 2, 3, 4],
        base_config=base,
        seeds=(0, 1),
        executor=executor,
    )
    return rows


def test_t6_speedup_table(benchmark, emit, sweep_executor):
    rows = run_once(benchmark, compute_rows, sweep_executor)
    emit("\n" + format_table(
        rows,
        title="T6 - packets delivered vs fabric speedup "
              "(4x4, hotspot overload; OPT = exact offline optimum)",
    ))
    for r in rows:
        # Nobody beats OPT; GM stays within its factor-3 guarantee.
        for name in ("GM", "MaxMatch", "RoundRobin", "RandomMatch"):
            assert r[name] <= r["OPT"] + 1e-6
        assert r["OPT"] <= 3 * r["GM"] + 1e-6
    # Speedup monotonicity of the optimum (aggregated over seeds).
    by_speedup = {}
    for r in rows:
        by_speedup.setdefault(r["speedup"], 0.0)
        by_speedup[r["speedup"]] += r["OPT"]
    speeds = sorted(by_speedup)
    for a, b in zip(speeds, speeds[1:]):
        assert by_speedup[b] >= by_speedup[a] - 1e-6
