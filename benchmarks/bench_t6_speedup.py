"""T6 — throughput vs speedup: GM vs baselines vs OPT.

The paper's guarantees hold "for any speedup"; this experiment shows the
empirical picture behind that phrase: as the fabric speedup grows from 1
to 4 under overloaded hotspot traffic, how much of the exact optimum
each scheduler captures, and where the greedy maximal matching (GM)
lands relative to the maximum-matching schedule (prior work), the
iSLIP-style round-robin heuristic (hardware practice), and a randomized
greedy.
"""

from repro.analysis.report import format_mean_ci, format_table
from repro.analysis.sweep import speedup_sweep
from repro.scenarios import get_scenario
from repro.stats import Welford, half_width

from conftest import run_once

#: All experiment parameters (switch, traffic, policies, slots, seeds)
#: come from the registered scenario; this driver only adds the
#: speedup sweep dimension and replicates over REPLICATES seeds.
SCENARIO = "speedup-grid"
SPEEDUPS = [1, 2, 3, 4]
REPLICATES = 4


def compute_rows(executor=None):
    spec = get_scenario(SCENARIO)
    rows = speedup_sweep(
        dict(spec.policy_factories()),
        spec.build_traffic(),
        n_slots=spec.slots,
        speedups=SPEEDUPS,
        base_config=spec.build_config(),
        seeds=range(REPLICATES),
        executor=executor,
    )
    return rows


def replicated_rows(rows, columns):
    """Per-speedup mean ± 95% CI half-width over the seed replicates."""
    out = []
    for s in sorted({r["speedup"] for r in rows}):
        cell = [r for r in rows if r["speedup"] == s]
        agg = {"speedup": s, "seeds": len(cell)}
        for name in columns:
            acc = Welford.from_values(float(r[name]) for r in cell)
            agg[name] = format_mean_ci(acc.mean,
                                       half_width(acc.std, acc.n, 0.95))
        out.append(agg)
    return out


def test_t6_speedup_table(benchmark, emit, sweep_executor):
    labels = get_scenario(SCENARIO).policy_labels()
    rows = run_once(benchmark, compute_rows, sweep_executor)
    emit("\n" + format_table(
        rows,
        title="T6 - packets delivered vs fabric speedup "
              f"(scenario {SCENARIO}; OPT = exact offline optimum)",
    ))
    emit(format_table(
        replicated_rows(rows, labels + ["OPT"]),
        title=f"T6 (replicated) - mean benefit ± 95% CI half-width over "
              f"{REPLICATES} seeds",
    ))
    for r in rows:
        # Nobody beats OPT; GM stays within its factor-3 guarantee.
        for name in labels:
            assert r[name] <= r["OPT"] + 1e-6
        assert r["OPT"] <= 3 * r["gm"] + 1e-6
    # Speedup monotonicity of the optimum (aggregated over seeds).
    by_speedup = {}
    for r in rows:
        by_speedup.setdefault(r["speedup"], 0.0)
        by_speedup[r["speedup"]] += r["OPT"]
    speeds = sorted(by_speedup)
    for a, b in zip(speeds, speeds[1:]):
        assert by_speedup[b] >= by_speedup[a] - 1e-6
