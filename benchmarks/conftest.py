"""Shared helpers for the benchmark/experiment harness.

Every ``bench_*.py`` module regenerates one table or figure of the
evaluation (see DESIGN.md Section 6 and EXPERIMENTS.md).  Experiment
payloads run once under ``benchmark.pedantic`` (they are full
simulations plus exact-OPT solves, not microseconds-scale kernels) and
print their tables live via ``emit`` so that

    pytest benchmarks/ --benchmark-only

reproduces the evaluation in the console.
"""

from __future__ import annotations

import os

import pytest

from repro.parallel import SweepExecutor


@pytest.fixture(scope="session")
def sweep_executor():
    """Shared executor for the table benchmarks' sweep calls.

    Serial by default (so timings stay comparable); set
    ``REPRO_BENCH_WORKERS=N`` to fan sweep points out over N processes
    and ``REPRO_BENCH_CACHE=DIR`` to reuse point payloads across runs.
    Results are bit-identical either way.
    """
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0") or "0")
    cache_dir = os.environ.get("REPRO_BENCH_CACHE") or None
    return SweepExecutor(workers=workers, cache_dir=cache_dir)


@pytest.fixture
def emit(capsys):
    """Print around pytest's capture so tables appear in normal runs."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Time one execution of an experiment payload."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
