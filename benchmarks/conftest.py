"""Shared helpers for the benchmark/experiment harness.

Every ``bench_*.py`` module regenerates one table or figure of the
evaluation (see DESIGN.md Section 6 and EXPERIMENTS.md).  Experiment
payloads run once under ``benchmark.pedantic`` (they are full
simulations plus exact-OPT solves, not microseconds-scale kernels) and
print their tables live via ``emit`` so that

    pytest benchmarks/ --benchmark-only

reproduces the evaluation in the console.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def emit(capsys):
    """Print around pytest's capture so tables appear in normal runs."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Time one execution of an experiment payload."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
