"""T8 — proof machinery: paper constants and shadow-OPT certificates.

1. The analytical constants of Theorems 2 and 4 re-derived numerically
   (beta* = 1 + sqrt 2, the Theorem 4 radicals, the 5.83 / 14.83
   minima) — the executable version of the paper's "it can be verified
   that ..." remarks.
2. The modified-OPT replays: Modifications 2.1.1/2.1.2 (Theorem 1) and
   3.1.1-3.1.3 (Theorem 3) executed literally against recorded online
   runs, with the Lemma 1 / Lemma 8 dominance invariants checked after
   every event and the privileged/extra-packet accounting of Lemmas 3,
   9 and 11 reported per instance.

The crossbar replay also reports the *displacement* corner (an OPT
normal transfer finding its modified crosspoint queue pre-filled by
extras), which the paper's prose does not treat — see EXPERIMENTS.md.
"""

from repro.analysis.report import format_table
from repro.core.cgu import CGUPolicy
from repro.core.gm import GMPolicy
from repro.offline.crossbar_timegraph import CrossbarOptModel
from repro.offline.opt import cioq_opt
from repro.simulation.engine import run_cioq, run_crossbar
from repro.switch.config import SwitchConfig
from repro.theory.ratios import verify_paper_constants
from repro.theory.shadow import replay_cgu_shadow, replay_gm_shadow
from repro.traffic.adversarial import (
    SingleOutputOverloadAdversary,
    generate_adaptive_trace,
)
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.hotspot import HotspotTraffic

from conftest import run_once


def test_t8_paper_constants(benchmark, emit):
    report = run_once(benchmark, verify_paper_constants)
    rows = [
        {"constant": "PG beta*", "value": round(report["pg_beta_star"], 6),
         "expected": "1 + sqrt(2)", "ok": report["pg_consistent"]},
        {"constant": "PG ratio*", "value": round(report["pg_ratio_star"], 6),
         "expected": "3 + 2 sqrt(2) ~ 5.8284", "ok": report["pg_consistent"]},
        {"constant": "CPG beta*", "value": round(report["cpg_beta_star"], 6),
         "expected": "(rho^2+rho+4)/(3 rho)", "ok": report["cpg_consistent"]},
        {"constant": "CPG alpha*", "value": round(report["cpg_alpha_star"], 6),
         "expected": "2/(beta*-1)^2", "ok": report["cpg_consistent"]},
        {"constant": "CPG ratio*", "value": round(report["cpg_ratio_star"], 6),
         "expected": "~14.83", "ok": report["cpg_consistent"]},
    ]
    emit("\n" + format_table(
        rows, title="T8a - paper constants vs independent numerical optima"
    ))
    assert report["pg_consistent"] and report["cpg_consistent"]
    assert report["cpg_cubic_residual"] < 1e-5


def compute_gm_certificates():
    rows = []
    cases = [
        ("bernoulli 1.2",
         SwitchConfig.square(3, speedup=1, b_in=2, b_out=2),
         BernoulliTraffic(3, 3, load=1.2).generate(15, seed=0)),
        ("hotspot 70%",
         SwitchConfig.square(3, speedup=1, b_in=2, b_out=2),
         HotspotTraffic(3, 3, load=1.3, hot_fraction=0.7).generate(15, seed=1)),
    ]
    cfg_adv = SwitchConfig.square(4, speedup=1, b_in=2, b_out=2)
    cases.append((
        "adversarial overload",
        cfg_adv,
        generate_adaptive_trace(GMPolicy, cfg_adv,
                                SingleOutputOverloadAdversary(), n_slots=14),
    ))
    for label, cfg, trace in cases:
        gm = run_cioq(GMPolicy(), cfg, trace, record=True)
        opt = cioq_opt(trace, cfg, extract_schedule=True)
        cert = replay_gm_shadow(trace, cfg, gm, opt)
        rows.append({
            "instance": label,
            "GM": cert.gm_benefit,
            "OPT": cert.opt_benefit,
            "S*": cert.s_star,
            "P1": cert.privileged_type1,
            "P2": cert.privileged_type2,
            "checks": cert.invariant_checks,
            "Thm1 ok": cert.theorem1_certified,
        })
    return rows


def compute_cgu_certificates():
    rows = []
    for label, load, seed in [
        ("bernoulli 1.1", 1.1, 0),
        ("bernoulli 1.4", 1.4, 1),
    ]:
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(3, 3, load=load).generate(14, seed=seed)
        cgu = run_crossbar(CGUPolicy(), cfg, trace, record=True)
        model = CrossbarOptModel(trace, cfg)
        opt = model.solve(extract_schedule=True)
        cert = replay_cgu_shadow(trace, cfg, cgu, model, opt)
        rows.append({
            "instance": label,
            "CGU": cert.cgu_benefit,
            "OPT": cert.opt_benefit,
            "S*": cert.s_star_transmissions,
            "priv": cert.privileged,
            "extra1": cert.extra_type1,
            "extra2": cert.extra_type2,
            "displaced": cert.displaced,
            "L9 viol": cert.lemma9_violations,
            "Thm3 ok": cert.theorem3_certified,
        })
    return rows


def test_t8_gm_shadow_certificates(benchmark, emit):
    rows = run_once(benchmark, compute_gm_certificates)
    emit("\n" + format_table(
        rows,
        title="T8b - Theorem 1 shadow certificates (Lemma 1 invariants "
              "checked after every event; S* <= S and P* <= 2S verified)",
    ))
    assert all(r["Thm1 ok"] for r in rows)


def compute_pg_certificates():
    from repro.core.params import pg_optimal_beta
    from repro.core.pg import PGPolicy
    from repro.theory.shadow_weighted import replay_pg_shadow
    from repro.traffic.adversarial import beta_admission_gadget
    from repro.traffic.values import two_value, uniform_values

    beta = pg_optimal_beta()
    rows = []
    cases = [
        ("uniform values",
         SwitchConfig.square(3, speedup=1, b_in=2, b_out=2),
         BernoulliTraffic(3, 3, load=1.4,
                          value_model=uniform_values(1, 50)).generate(14, seed=0)),
        ("two-value a=20",
         SwitchConfig.square(3, speedup=1, b_in=2, b_out=2),
         BernoulliTraffic(3, 3, load=1.5,
                          value_model=two_value(20, 0.25)).generate(14, seed=1)),
        ("beta-admission gadget",
         SwitchConfig.square(2, speedup=2, b_in=4, b_out=4),
         beta_admission_gadget(beta, n=2, b_out=4, rate=3, n_rounds=2)),
    ]
    for label, cfg, trace in cases:
        pg = run_cioq(PGPolicy(beta=beta), cfg, trace, record=True)
        opt = cioq_opt(trace, cfg, extract_schedule=True)
        cert = replay_pg_shadow(trace, cfg, pg, opt, beta)
        rows.append({
            "instance": label,
            "PG": round(cert.pg_benefit, 1),
            "OPT": round(cert.opt_benefit, 1),
            "S*": round(cert.s_star_value, 1),
            "P*": round(cert.privileged_value, 1),
            "P1/P2/P3": "/".join(str(n) for n in cert.n_privileged),
            "checks": cert.invariant_checks,
            "Thm2 ok": cert.theorem2_certified,
        })
    return rows


def test_t8_pg_shadow_certificates(benchmark, emit):
    rows = run_once(benchmark, compute_pg_certificates)
    emit("\n" + format_table(
        rows,
        title="T8d - Theorem 2 shadow certificates (Lemma 4 positional "
              "value alignment checked after every event; "
              "S* <= beta S and P* <= 2beta/(beta-1) S verified)",
    ))
    assert all(r["Thm2 ok"] for r in rows)


def test_t8_cgu_shadow_certificates(benchmark, emit):
    rows = run_once(benchmark, compute_cgu_certificates)
    emit("\n" + format_table(
        rows,
        title="T8c - Theorem 3 shadow certificates (Lemma 8 invariants; "
              "Lemma 9 per cycle; displacement corner reported)",
    ))
    assert all(r["Thm3 ok"] for r in rows)
    assert all(r["L9 viol"] == 0 for r in rows)


def compute_cpg_certificates():
    from repro.core.cpg import CPGPolicy
    from repro.core.params import cpg_optimal_params
    from repro.theory.shadow_cpg import replay_cpg_shadow
    from repro.traffic.values import two_value, uniform_values

    beta, alpha, _ = cpg_optimal_params()
    rows = []
    for label, values, seed in [
        ("uniform values", uniform_values(1, 50), 0),
        ("two-value a=20", two_value(20, 0.25), 1),
    ]:
        cfg = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
        trace = BernoulliTraffic(3, 3, load=1.5,
                                 value_model=values).generate(12, seed=seed)
        cpg = run_crossbar(CPGPolicy(beta=beta, alpha=alpha), cfg, trace,
                           record=True)
        model = CrossbarOptModel(trace, cfg)
        opt = model.solve(extract_schedule=True)
        cert = replay_cpg_shadow(trace, cfg, cpg, model, opt, beta, alpha)
        rows.append({
            "instance": label,
            "CPG": round(cert.cpg_benefit, 1),
            "OPT": round(cert.opt_benefit, 1),
            "S*": round(cert.s_star_value, 1),
            "P*": round(cert.privileged_value, 1),
            "P1/P2/P3": "/".join(str(n) for n in cert.n_privileged),
            "checks": cert.invariant_checks,
            "Thm4 ok": cert.theorem4_certified,
        })
    return rows


def test_t8_cpg_shadow_certificates(benchmark, emit):
    rows = run_once(benchmark, compute_cpg_certificates)
    emit("\n" + format_table(
        rows,
        title="T8e - Theorem 4 shadow certificates (Lemma 12's three-level "
              "alignment I1/I2/I3 checked after every event)",
    ))
    assert all(r["Thm4 ok"] for r in rows)
