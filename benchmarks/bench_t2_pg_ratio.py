"""T2 — Theorem 2: PG's empirical ratio and the beta sweep.

Two parts:

1. PG at the analysis-optimal ``beta* = 1 + sqrt(2)`` against the exact
   OPT across weighted traffic families (bound: 3 + 2 sqrt 2 ~ 5.83).
2. The beta sweep on a fixed instance: the measured ratio as a function
   of the preemption threshold, printed next to the analytical bound
   curve ``beta + 2 beta/(beta-1)``, locating the empirical optimum
   relative to beta*.
"""

from repro.analysis.ratio import measure_cioq_ratio, summarize
from repro.analysis.report import format_table
from repro.analysis.sweep import beta_sweep_pg
from repro.core.params import pg_optimal_beta, pg_optimal_ratio, pg_ratio
from repro.core.pg import PGPolicy
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.values import pareto_values, two_value, uniform_values

from conftest import run_once

CELLS = [
    ("uniform [1,100]", lambda n: BernoulliTraffic(
        n, n, load=1.3, value_model=uniform_values(1, 100)), 0),
    ("two-value a=10", lambda n: BernoulliTraffic(
        n, n, load=1.4, value_model=two_value(10, 0.25)), 1),
    ("two-value a=100", lambda n: BernoulliTraffic(
        n, n, load=1.4, value_model=two_value(100, 0.1)), 2),
    ("pareto 1.3", lambda n: BernoulliTraffic(
        n, n, load=1.3, value_model=pareto_values(1.3)), 3),
    ("hotspot pareto", lambda n: HotspotTraffic(
        n, n, load=1.4, hot_fraction=0.7,
        value_model=pareto_values(1.5)), 4),
]


def compute_ratio_rows():
    rows = []
    measurements = []
    config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
    for label, make, seed in CELLS:
        trace = make(3).generate(20, seed=seed)
        m = measure_cioq_ratio(
            PGPolicy(), trace, config, bound=pg_optimal_ratio()
        )
        measurements.append(m)
        rows.append(
            {
                "values": label,
                "PG": round(m.onl_benefit, 1),
                "OPT": round(m.opt_benefit, 1),
                "ratio": round(m.ratio, 4),
                "<=5.83": m.within_bound,
            }
        )
    return rows, summarize(measurements)


def compute_beta_sweep(executor=None):
    config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2)
    trace = BernoulliTraffic(
        3, 3, load=1.5, value_model=two_value(20, 0.3)
    ).generate(25, seed=11)
    betas = [1.05, 1.2, 1.5, 2.0, pg_optimal_beta(), 3.0, 5.0, 10.0]
    rows = beta_sweep_pg(trace, config, betas, executor=executor)
    for r in rows:
        r["analysis bound"] = round(pg_ratio(r["beta"]), 3)
    return rows


def test_t2_pg_ratio_table(benchmark, emit):
    rows, summary = run_once(benchmark, compute_ratio_rows)
    emit("\n" + format_table(
        rows,
        title="T2a - PG (beta*=1+sqrt2) empirical ratio vs exact OPT "
              "(Theorem 2 bound: 5.8284)",
    ))
    emit(f"worst observed ratio: {summary['max_ratio']:.4f}")
    assert summary["all_within_bound"]


def test_t2_pg_beta_sweep(benchmark, emit, sweep_executor):
    rows = run_once(benchmark, compute_beta_sweep, sweep_executor)
    emit("\n" + format_table(
        rows,
        title="T2b - PG beta sweep (two-value traffic): measured ratio vs "
              "analysis bound beta + 2beta/(beta-1)",
    ))
    best = min(rows, key=lambda r: r["ratio"])
    emit(f"empirical best beta ~ {best['beta']}; analysis optimum "
         f"beta* = {pg_optimal_beta():.4f}")
    # Every measured ratio respects the per-beta analytical bound.
    for r in rows:
        assert r["ratio"] <= r["analysis bound"] + 1e-9
