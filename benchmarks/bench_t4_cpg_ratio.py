"""T4 — Theorem 4: CPG's empirical ratio and the (beta, alpha) grid.

1. CPG at the paper's optimal thresholds (beta* ~ 1.839, alpha* ~ 2.839)
   against the exact crossbar OPT (bound ~ 14.83).
2. A (beta, alpha) grid around the optimum: measured ratio per cell next
   to the analytical bound surface, confirming the paper's choice is a
   sensible operating point and that beta != alpha matters (full
   ablation in T9).
"""

from repro.analysis.ratio import measure_crossbar_ratio, summarize
from repro.analysis.report import format_table
from repro.analysis.sweep import threshold_sweep_cpg
from repro.core.cpg import CPGPolicy
from repro.core.params import cpg_optimal_params, cpg_optimal_ratio, cpg_ratio
from repro.switch.config import SwitchConfig
from repro.traffic.bernoulli import BernoulliTraffic
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.values import pareto_values, two_value, uniform_values

from conftest import run_once

CELLS = [
    ("uniform [1,100]", lambda n: BernoulliTraffic(
        n, n, load=1.4, value_model=uniform_values(1, 100)), 0),
    ("two-value a=10", lambda n: BernoulliTraffic(
        n, n, load=1.5, value_model=two_value(10, 0.25)), 1),
    ("pareto 1.3", lambda n: BernoulliTraffic(
        n, n, load=1.4, value_model=pareto_values(1.3)), 2),
    ("hotspot two-value", lambda n: HotspotTraffic(
        n, n, load=1.5, hot_fraction=0.7,
        value_model=two_value(50, 0.15)), 3),
]


def compute_ratio_rows():
    rows = []
    measurements = []
    config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
    for label, make, seed in CELLS:
        trace = make(3).generate(16, seed=seed)
        m = measure_crossbar_ratio(
            CPGPolicy(), trace, config, bound=cpg_optimal_ratio()
        )
        measurements.append(m)
        rows.append(
            {
                "values": label,
                "CPG": round(m.onl_benefit, 1),
                "OPT": round(m.opt_benefit, 1),
                "ratio": round(m.ratio, 4),
                "<=14.83": m.within_bound,
            }
        )
    return rows, summarize(measurements)


def compute_grid(executor=None):
    beta_star, alpha_star, _ = cpg_optimal_params()
    config = SwitchConfig.square(3, speedup=1, b_in=2, b_out=2, b_cross=1)
    trace = BernoulliTraffic(
        3, 3, load=1.6, value_model=two_value(20, 0.3)
    ).generate(18, seed=9)
    betas = [1.3, beta_star, 3.0]
    alphas = [1.5, alpha_star, 5.0]
    rows = threshold_sweep_cpg(trace, config, betas, alphas,
                               executor=executor)
    for r in rows:
        r["analysis bound"] = round(cpg_ratio(r["beta"], r["alpha"]), 3)
    return rows


def test_t4_cpg_ratio_table(benchmark, emit):
    rows, summary = run_once(benchmark, compute_ratio_rows)
    emit("\n" + format_table(
        rows,
        title="T4a - CPG (beta*, alpha*) empirical ratio vs exact OPT "
              "(Theorem 4 bound: 14.83; previous work: 16.24)",
    ))
    emit(f"worst observed ratio: {summary['max_ratio']:.4f}")
    assert summary["all_within_bound"]


def test_t4_cpg_threshold_grid(benchmark, emit, sweep_executor):
    rows = run_once(benchmark, compute_grid, sweep_executor)
    emit("\n" + format_table(
        rows,
        title="T4b - CPG (beta, alpha) grid: measured ratio vs analytical "
              "bound surface",
    ))
    for r in rows:
        assert r["ratio"] <= r["analysis bound"] + 1e-9
