"""T14 — application-mix sessions under replication (mean ± CI).

The paper's guarantees are worst-case over arbitrary sequences; T14
measures where the *empirically shaped* workloads sit inside them.  The
two ``appmix`` scenarios compose web request/response bursts
(heavy-tailed, Pareto session lengths per the self-similarity
literature), CBR-like video streams and small-packet VoIP talk spurts
over independent per-input session processes, then run each policy
across the scenario's replicate seed ladder and report mean ± CI per
policy — the replication subsystem's summary rows, straight from the
scenario registry.

Sanity assertions pin the structure rather than point values: CIs are
well-formed (lo <= mean <= hi), every policy's mean benefit is positive,
and the preempting/greedy paper policies do at least as well as FIFO on
the QoS mix (within CI noise).
"""

from repro.analysis.report import format_table
from repro.scenarios import get_scenario
from repro.stats import ReplicationPlan, replicate_scenario

from conftest import run_once

SCENARIOS = ("appmix-qos", "appmix-crossbar")


def compute_rows():
    tables = {}
    for name in SCENARIOS:
        spec = get_scenario(name)
        rrun = replicate_scenario(spec, ReplicationPlan.from_spec(spec))
        rows = [
            {
                "policy": r["policy"],
                "n": r["n"],
                "mean benefit": round(float(r["mean"]), 2),
                "95% CI": f"[{float(r['ci_lo']):.2f}, "
                          f"{float(r['ci_hi']):.2f}]",
                "_mean": float(r["mean"]),
                "_lo": float(r["ci_lo"]),
                "_hi": float(r["ci_hi"]),
            }
            for r in rrun.summary
            if r["metric"] == "benefit"
        ]
        tables[name] = rows
    return tables


def test_t14_appmix_replicated_tables(benchmark, emit):
    tables = run_once(benchmark, compute_rows)
    for name, rows in tables.items():
        emit("\n" + format_table(
            [{k: v for k, v in r.items() if not k.startswith("_")}
             for r in rows],
            title=f"T14 - {name}: benefit mean +- 95% CI over the "
                  f"replicate seed ladder",
        ))
        by_policy = {r["policy"]: r for r in rows}
        for r in rows:
            assert r["_lo"] <= r["_mean"] <= r["_hi"], (name, r["policy"])
            assert r["_mean"] > 0.0, (name, r["policy"])
        # The paper's policies should not lose to FIFO beyond CI noise
        # on session traffic (FIFO never preempts / never reorders).
        if "fifo" in by_policy:
            fifo = by_policy["fifo"]
            best = max(
                (r for r in rows if r["policy"] != "fifo"),
                key=lambda r: r["_mean"],
            )
            assert best["_hi"] >= fifo["_lo"], (
                f"{name}: every paper policy CI sits fully below FIFO's"
            )
