"""T5 — the paper's efficiency claim: greedy maximal vs maximum matching.

The systems argument of the paper: per scheduling cycle, GM/PG compute a
greedy maximal matching (one pass over the edges) instead of the maximum
matchings of prior algorithms (Hopcroft-Karp for the unit case,
Hungarian for the weighted case).  This experiment quantifies the gap:

* machine-independent operation counts and wall time per cycle, scaling
  with switch size N (dense occupancy: the regime where switches
  actually need scheduling),
* the quality cost: matched fraction / matched weight of greedy vs
  maximum (theory says >= 1/2; in practice it is near 1).

The per-engine microbenchmarks at the bottom are true pytest-benchmark
timings of a single scheduling cycle at N = 16.
"""

import numpy as np

from repro.analysis.efficiency import (
    efficiency_scaling_table,
    random_occupancy,
    random_weights,
)
from repro.analysis.report import format_table
from repro.scheduling.matching import (
    greedy_maximal_matching,
    greedy_maximal_matching_weighted,
    hopcroft_karp,
    max_weight_matching,
)

from conftest import run_once

SIZES = [4, 8, 16, 32]


def test_t5_unit_scaling_table(benchmark, emit):
    rows = run_once(
        benchmark, efficiency_scaling_table, SIZES, 0.6, 30, 0, False
    )
    emit("\n" + format_table(
        rows,
        title="T5a - per-cycle cost: greedy maximal (GM) vs Hopcroft-Karp "
              "maximum matching (unit case)",
    ))
    # The cost gap must grow with N while greedy stays near-optimal.
    assert rows[-1]["ops_ratio"] >= rows[0]["ops_ratio"] * 0.8
    assert all(r["size_ratio"] >= 0.5 for r in rows)
    assert all(r["maxmatch_ops"] >= r["greedy_ops"] for r in rows)


def test_t5_weighted_scaling_table(benchmark, emit):
    rows = run_once(
        benchmark, efficiency_scaling_table, SIZES, 0.6, 10, 0, True
    )
    emit("\n" + format_table(
        rows,
        title="T5b - per-cycle cost: greedy-by-weight (PG) vs Hungarian "
              "maximum-weight matching (weighted case)",
    ))
    assert all(r["hungarian_ops"] > r["greedy_ops"] for r in rows)
    assert all(r["weight_ratio"] >= 0.5 for r in rows)
    # Hungarian's O(n^3) must dominate sharply by N = 32.
    assert rows[-1]["ops_ratio"] > 5


def _fixed_instance(n=16, density=0.6, seed=7):
    rng = np.random.default_rng(seed)
    occ = random_occupancy(n, density, rng)
    w = random_weights(n, density, rng)
    edges = [(i, j) for i in range(n) for j in range(n) if occ[i, j]]
    adj = [[j for j in range(n) if occ[i, j]] for i in range(n)]
    wedges = [
        (i, j, float(w[i, j])) for i in range(n) for j in range(n) if w[i, j] > 0
    ]
    return edges, adj, w.tolist(), wedges


def test_t5_bench_greedy_unit(benchmark):
    edges, _, _, _ = _fixed_instance()
    result = benchmark(greedy_maximal_matching, edges)
    assert result


def test_t5_bench_hopcroft_karp(benchmark):
    _, adj, _, _ = _fixed_instance()
    result = benchmark(hopcroft_karp, 16, 16, adj)
    assert result


def test_t5_bench_greedy_weighted(benchmark):
    _, _, _, wedges = _fixed_instance()
    result = benchmark(greedy_maximal_matching_weighted, wedges)
    assert result


def test_t5_bench_hungarian(benchmark):
    _, _, w, _ = _fixed_instance()
    result = benchmark(max_weight_matching, w)
    assert result
