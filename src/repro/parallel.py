"""Parallel sweep execution: worker pools and an on-disk result cache.

The experiment suite is dominated by *sweeps*: hundreds of independent
(policy, switch config, trace) simulation points, each a pure function
of its inputs, previously run strictly serially.  This module provides
the fan-out substrate:

* :class:`SweepPoint` — one self-contained unit of work: simulate a
  policy (or solve the exact offline optimum) on a concrete trace and
  config.  Points carry concrete :class:`~repro.traffic.trace.Trace`
  objects (generated in the parent with deterministic per-point seeds)
  because traffic models hold value-model closures that do not pickle.
* :func:`run_sweep_point` — executes one point and returns a plain,
  JSON-serializable payload dict (the fields sweep tables consume).
* :class:`SweepExecutor` — maps points over a ``multiprocessing`` pool
  with chunked dispatch, optionally backed by an on-disk cache keyed by
  (policy spec, config, trace content, seed).  With ``workers <= 1``
  everything runs in-process.

Determinism: a point's payload depends only on the point, every point
carries its own seed-derived trace, and results are returned in point
order regardless of worker scheduling — so a sweep produces bit-identical
tables for any worker count (the ``repro sweep`` CLI exposes exactly
this guarantee).

Used by :mod:`repro.analysis.sweep`, the ``bench_t*.py`` experiment
drivers (via ``benchmarks/conftest.py``), and the ``repro sweep`` CLI
command.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from functools import partial
from multiprocessing import get_context
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from time import perf_counter

from .obs import InMemoryRecorder, merge_snapshots
from .offline.opt import OPT_MODES, cioq_opt, crossbar_opt
from .simulation.backends import DEFAULT_BACKEND, validate_backend
from .simulation.engine import (
    run_cioq,
    run_cioq_batch,
    run_crossbar,
    run_crossbar_batch,
)
from .switch.config import SwitchConfig
from .traffic.trace import Trace

#: Bump when the payload schema changes; part of every cache key.
CACHE_VERSION = 3

PolicyFactory = Callable[[], object]


@dataclass(frozen=True)
class SweepPoint:
    """One unit of sweep work: a policy (or OPT) on a concrete trace.

    Parameters
    ----------
    model:
        ``"cioq"`` or ``"crossbar"``.
    config, trace:
        The switch instance and the input sequence σ.
    policy_factory:
        Zero-argument callable building a *fresh* policy (a policy
        class, or ``functools.partial`` with keyword parameters — both
        pickle across process boundaries; lambdas do not).  ``None``
        means "solve the exact offline optimum instead".
    seed:
        The seed the trace was generated from (part of the cache key;
        purely informational for hand-built traces).
    tag:
        Row metadata echoed back untouched into the payload under
        ``"tag"`` — sweep drivers use it to route payloads into table
        rows.
    opt_mode, opt_window:
        Offline-optimum solver selection for OPT points (see
        :mod:`repro.offline.opt`); ignored for policy points.  Both are
        part of the cache key — an exact OPT payload and a bracketed
        one are never interchangeable.
    """

    model: str
    config: SwitchConfig
    trace: Trace
    policy_factory: Optional[PolicyFactory] = None
    seed: Optional[int] = None
    tag: Mapping[str, object] = field(default_factory=dict)
    opt_mode: str = "exact"
    opt_window: Optional[int] = None

    def __post_init__(self) -> None:
        if self.model not in ("cioq", "crossbar"):
            raise ValueError(f"unknown switch model {self.model!r}")
        if self.opt_mode not in OPT_MODES:
            raise ValueError(
                f"unknown opt mode {self.opt_mode!r}; expected {OPT_MODES}"
            )


def describe_factory(factory: Optional[PolicyFactory]) -> str:
    """Stable textual description of a policy factory (cache key part)."""
    if factory is None:
        return "OPT"
    if isinstance(factory, partial):
        inner = describe_factory(factory.func)
        kwargs = ",".join(f"{k}={v!r}" for k, v in sorted(factory.keywords.items()))
        args = ",".join(repr(a) for a in factory.args)
        return f"{inner}({args};{kwargs})"
    mod = getattr(factory, "__module__", "")
    qual = getattr(factory, "__qualname__", None)
    if qual:
        return f"{mod}.{qual}"
    return repr(factory)  # pragma: no cover - exotic factories defeat caching


def _policy_payload(res, point: SweepPoint) -> Dict[str, object]:
    """Payload dict for a policy point from its simulation result."""
    payload = res.as_payload()
    payload["trace"] = point.trace.name
    payload["seed"] = point.seed
    payload["tag"] = dict(point.tag)
    return payload


def run_sweep_point(
    point: SweepPoint, backend: str = DEFAULT_BACKEND,
    metrics_every: Optional[int] = None,
) -> Dict[str, object]:
    """Execute one sweep point; pure function of the point.

    Returns a JSON-serializable payload.  For policy points::

        {"policy", "benefit", "n_sent", "n_arrived", "n_accepted",
         "n_rejected", "n_preempted", "n_residual", "value_arrived",
         "trace", "seed", "tag"}

    (the accounting fields come from
    :meth:`~repro.simulation.results.SimulationResult.as_payload`).
    For OPT points (``policy_factory is None``)::

        {"policy": "OPT", "benefit", "opt_mode", "opt_lower",
         "opt_upper", "trace", "seed", "tag"}

    where ``opt_mode`` is the *resolved* solver mode (``"auto"``
    resolves per point, deterministically in the trace and config),
    ``opt_lower == opt_upper == benefit`` for exact solves, and
    ``benefit`` is the conservative bracket upper end otherwise.

    ``backend`` selects the slot-loop execution backend for policy
    points (see :mod:`repro.simulation.backends`); by the bit-identical
    backend contract it never changes the payload.  OPT points solve
    with the offline machinery selected by the point's ``opt_mode`` /
    ``opt_window``.

    With ``metrics_every`` set, the point runs under a fresh
    :class:`repro.obs.InMemoryRecorder` sampling every that many slots,
    and the recorder's **deterministic** snapshot is embedded as
    ``payload["obs"]`` — a pure function of the point like everything
    else in the payload, so metric artifacts merged in point order are
    byte-identical for any worker count.  Wall-times never enter the
    payload (the executor keeps them in its quarantined timing ledger).
    """
    if point.policy_factory is None:
        solver = cioq_opt if point.model == "cioq" else crossbar_opt
        opt = solver(point.trace, point.config, mode=point.opt_mode,
                     window=point.opt_window)
        lo, hi = opt.bracket
        payload: Dict[str, object] = {
            "policy": "OPT", "benefit": opt.benefit,
            "opt_mode": opt.mode, "opt_lower": lo, "opt_upper": hi,
            "trace": point.trace.name, "seed": point.seed,
            "tag": dict(point.tag)}
        if metrics_every is not None:
            rec = InMemoryRecorder(every_k=metrics_every)
            rec.counter("opt_solves_total")
            payload["obs"] = rec.snapshot()
        return payload
    policy = point.policy_factory()
    runner = run_cioq if point.model == "cioq" else run_crossbar
    if metrics_every is not None:
        rec = InMemoryRecorder(every_k=metrics_every)
        res = runner(policy, point.config, point.trace, backend=backend,
                     metrics=rec)
        payload = _policy_payload(res, point)
        payload["obs"] = rec.snapshot()
        return payload
    res = runner(policy, point.config, point.trace, backend=backend)
    return _policy_payload(res, point)


def _run_point_timed(point: SweepPoint, backend: str = DEFAULT_BACKEND,
                     metrics_every: Optional[int] = None) -> tuple:
    """Pool wrapper: execute one point and report ``(pid, elapsed,
    payload)`` so the parent can fill its timing ledger and emit
    worker heartbeats (module-level so it pickles)."""
    t0 = perf_counter()
    payload = run_sweep_point(point, backend=backend,
                              metrics_every=metrics_every)
    return os.getpid(), perf_counter() - t0, payload


class SweepExecutor:
    """Runs sweep points, optionally in parallel and/or cached.

    Parameters
    ----------
    workers:
        Process count.  ``<= 1`` (the default) runs in-process; ``N >
        1`` fans uncached points out over a ``multiprocessing`` pool in
        deterministic chunks.
    cache_dir:
        Directory for the on-disk payload cache (created on demand).
        ``None`` disables caching.  Keys cover the policy spec, the
        switch config, the full trace content, the point seed and
        :data:`CACHE_VERSION`, so any input change misses cleanly.
    chunk_size:
        Tasks per pool chunk; default ``ceil(pending / (4 * workers))``.
    backend:
        Slot-loop execution backend for policy points (see
        :mod:`repro.simulation.backends`).  With ``"fast"`` or
        ``"auto"``, uncached policy points are grouped by (model,
        config, policy spec) and executed in lockstep through the
        batched engine entry points *before* any process pool runs —
        the vectorized kernel is the parallelism; only leftover points
        (exact-OPT solves) fan out over workers.  The backend is
        deliberately **not** part of the cache key: backends are
        bit-identical by contract, so cached payloads are
        interchangeable.
    metrics_every:
        When set, every point runs instrumented (see
        :func:`run_sweep_point`) and embeds a deterministic ``"obs"``
        snapshot in its payload; :meth:`merged_obs` merges them in point
        order.  Instrumented points skip the lockstep batch grouping and
        run individually so each point's snapshot stays a pure function
        of that point.  ``metrics_every`` joins the cache key (only when
        set — uninstrumented sweeps keep their existing keys) because
        instrumented and plain payloads differ.
    progress:
        Optional callable receiving progress/heartbeat event dicts from
        :meth:`run` (``{"event": "cache", ...}``, per-point
        ``{"event": "point", "index", "total", "pid", "elapsed"}``,
        ``{"event": "done", ...}``).  Events carry wall-times and worker
        pids — observability only, never part of any artifact.

    After :meth:`run`: ``cache_hits`` / ``cache_misses`` count payload
    cache outcomes, and ``timings`` is the per-point wall-time ledger
    (list of ``{"index", "policy", "trace", "seed", "pid", "elapsed"}``
    dicts) — quarantined, non-deterministic data for ``timings.json``.
    """

    def __init__(
        self,
        workers: int = 0,
        cache_dir: Optional[str] = None,
        chunk_size: Optional[int] = None,
        backend: str = DEFAULT_BACKEND,
        metrics_every: Optional[int] = None,
        progress: Optional[Callable[[Dict[str, object]], None]] = None,
    ):
        validate_backend(backend)
        if metrics_every is not None and metrics_every < 0:
            raise ValueError(
                f"metrics_every must be >= 0, got {metrics_every}"
            )
        self.workers = int(workers or 0)
        self.cache_dir = cache_dir
        self.chunk_size = chunk_size
        self.backend = backend
        self.metrics_every = metrics_every
        self.progress = progress
        self.cache_hits = 0
        self.cache_misses = 0
        self.timings: List[Dict[str, object]] = []
        self._last_results: List[Dict[str, object]] = []

    def _emit(self, event: Dict[str, object]) -> None:
        if self.progress is not None:
            self.progress(event)

    def _time_entry(self, index: int, point: SweepPoint, pid: int,
                    elapsed: float) -> Dict[str, object]:
        return {
            "index": index,
            "policy": describe_factory(point.policy_factory),
            "trace": point.trace.name,
            "seed": point.seed,
            "pid": pid,
            "elapsed": elapsed,
        }

    def merged_obs(self) -> Optional[Dict[str, object]]:
        """Deterministic merge (point order) of the ``"obs"`` snapshots
        embedded by every :meth:`run` this executor has served (batched
        callers like replication share one executor); ``None`` when the
        executor is uninstrumented.  Byte-identical for any worker count
        and for cached vs fresh payloads."""
        if self.metrics_every is None:
            return None
        snap = merge_snapshots(
            p["obs"] for p in self._last_results if "obs" in p
        )
        snap["gauges"]["sweep_points_total"] = len(self._last_results)
        return snap

    # -- cache ---------------------------------------------------------------

    def cache_key(self, point: SweepPoint) -> str:
        c = point.config
        spec = {
            "v": CACHE_VERSION,
            "model": point.model,
            "config": [c.n_in, c.n_out, c.speedup, c.b_in, c.b_out, c.b_cross],
            "policy": describe_factory(point.policy_factory),
            "trace": hashlib.sha256(
                point.trace.to_json().encode("utf-8")
            ).hexdigest(),
            "seed": point.seed,
            "opt": [point.opt_mode, point.opt_window],
        }
        # Instrumented payloads carry an embedded "obs" snapshot, so
        # they get distinct keys; the key is only extended when metrics
        # are on, leaving every pre-existing cache entry addressable.
        if self.metrics_every is not None:
            spec["metrics"] = self.metrics_every
        blob = json.dumps(spec, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def _cache_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _cache_get(self, key: str) -> Optional[Dict[str, object]]:
        path = self._cache_path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def _cache_put(self, key: str, payload: Dict[str, object]) -> None:
        os.makedirs(self.cache_dir, exist_ok=True)
        path = self._cache_path(key)
        # Atomic publish so concurrent sweeps never read torn files.
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- execution -----------------------------------------------------------

    def run(self, points: Sequence[SweepPoint]) -> List[Dict[str, object]]:
        """Execute ``points``; returns payloads in point order."""
        results: List[Optional[Dict[str, object]]] = [None] * len(points)
        caching = self.cache_dir is not None
        # Keys are hashed once per point (they serialize the full trace).
        keys = [self.cache_key(p) for p in points] if caching else None
        pending: List[int] = []
        for idx in range(len(points)):
            hit = self._cache_get(keys[idx]) if caching else None
            if hit is not None:
                self.cache_hits += 1
                results[idx] = hit
            else:
                pending.append(idx)
        self.cache_misses += len(pending)
        self._emit({"event": "cache", "total": len(points),
                    "hits": self.cache_hits, "misses": self.cache_misses})

        # Instrumented points skip lockstep batch grouping: each point
        # must run under its own recorder so payload["obs"] stays a pure
        # per-point function (lockstep would entangle lanes).
        if (pending and self.backend != "reference"
                and self.metrics_every is None):
            pending = self._run_batched(points, results, keys, pending)
        if pending:
            total = len(points)
            if self.workers > 1 and len(pending) > 1:
                payloads = self._run_pool(
                    [points[i] for i in pending], pending, total)
            else:
                pid = os.getpid()
                payloads = []
                for i in pending:
                    t0 = perf_counter()
                    payload = run_sweep_point(
                        points[i], backend=self.backend,
                        metrics_every=self.metrics_every)
                    elapsed = perf_counter() - t0
                    self.timings.append(
                        self._time_entry(i, points[i], pid, elapsed))
                    self._emit({"event": "point", "index": i,
                                "total": total, "pid": pid,
                                "elapsed": elapsed})
                    payloads.append(payload)
            for idx, payload in zip(pending, payloads):
                if caching:
                    self._cache_put(keys[idx], payload)
                results[idx] = payload
        self._last_results.extend(results)  # type: ignore[arg-type]
        self._emit({"event": "done", "total": len(points),
                    "hits": self.cache_hits, "misses": self.cache_misses})
        return results  # type: ignore[return-value]

    def _run_batched(
        self,
        points: Sequence[SweepPoint],
        results: List[Optional[Dict[str, object]]],
        keys: Optional[List[str]],
        pending: List[int],
    ) -> List[int]:
        """Run pending policy points through the batched engine entry
        points, grouped by (model, config, policy spec) so seed ladders
        execute in lockstep.  Returns the indices left for the normal
        path (OPT points).  ``backend="auto"`` groups fall back to
        serial reference runs inside the engine when the fast kernel
        cannot take them; ``backend="fast"`` propagates the error.
        """
        groups: Dict[tuple, List[int]] = {}
        leftover: List[int] = []
        for idx in pending:
            point = points[idx]
            if point.policy_factory is None:
                leftover.append(idx)
                continue
            c = point.config
            key = (
                point.model,
                (c.n_in, c.n_out, c.speedup, c.b_in, c.b_out, c.b_cross),
                describe_factory(point.policy_factory),
            )
            groups.setdefault(key, []).append(idx)
        for (model, _config, _spec), idxs in groups.items():
            first = points[idxs[0]]
            runner = run_cioq_batch if model == "cioq" else run_crossbar_batch
            batch = runner(
                first.policy_factory,
                first.config,
                [points[i].trace for i in idxs],
                backend=self.backend,
            )
            for idx, res in zip(idxs, batch):
                payload = _policy_payload(res, points[idx])
                if keys is not None:
                    self._cache_put(keys[idx], payload)
                results[idx] = payload
        return leftover

    def _run_pool(self, points: List[SweepPoint], indices: List[int],
                  total: int) -> List[Dict[str, object]]:
        workers = min(self.workers, len(points))
        chunk = self.chunk_size or -(-len(points) // (4 * workers))
        ctx = get_context()
        func = partial(_run_point_timed, backend=self.backend,
                       metrics_every=self.metrics_every)
        payloads: List[Dict[str, object]] = []
        with ctx.Pool(processes=workers) as pool:
            # imap preserves point order while streaming completions
            # back, so heartbeats fire as workers finish each chunk.
            for k, (pid, elapsed, payload) in enumerate(
                    pool.imap(func, points, chunksize=max(1, chunk))):
                idx = indices[k]
                self.timings.append(
                    self._time_entry(idx, points[k], pid, elapsed))
                self._emit({"event": "point", "index": idx, "total": total,
                            "pid": pid, "elapsed": elapsed})
                payloads.append(payload)
        return payloads
