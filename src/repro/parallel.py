"""Parallel sweep execution: worker pools and an on-disk result cache.

The experiment suite is dominated by *sweeps*: hundreds of independent
(policy, switch config, trace) simulation points, each a pure function
of its inputs, previously run strictly serially.  This module provides
the fan-out substrate:

* :class:`SweepPoint` — one self-contained unit of work: simulate a
  policy (or solve the exact offline optimum) on a concrete trace and
  config.  Points carry concrete :class:`~repro.traffic.trace.Trace`
  objects (generated in the parent with deterministic per-point seeds)
  because traffic models hold value-model closures that do not pickle.
* :func:`run_sweep_point` — executes one point and returns a plain,
  JSON-serializable payload dict (the fields sweep tables consume).
* :class:`SweepExecutor` — maps points over a ``multiprocessing`` pool
  with chunked dispatch, optionally backed by the content-addressed
  :class:`~repro.farm.store.ResultStore` keyed by (policy spec, config,
  trace content, seed).  With ``workers <= 1`` everything runs
  in-process.

Sweeps are *incremental*: :meth:`SweepExecutor.run` partitions its
points into store hits and missing keys, executes only the missing
ones, and publishes each payload the moment it completes (write-through
— not after the pool drains), so a killed study re-run against the same
store resumes from exactly where it died.  Claim files make concurrent
executors sharing one store cooperate instead of duplicating work, and
completions stream back ``imap_unordered`` (results are re-assembled in
point order, so unordered scheduling never shows in an artifact).

Determinism: a point's payload depends only on the point, every point
carries its own seed-derived trace, and results are returned in point
order regardless of worker scheduling — so a sweep produces bit-identical
tables for any worker count, cold or resumed (the ``repro sweep`` CLI
and the farm CI smoke expose exactly this guarantee).

Used by :mod:`repro.analysis.sweep`, the ``bench_t*.py`` experiment
drivers (via ``benchmarks/conftest.py``), the scenario/replication
runners, the experiment farm (:mod:`repro.farm`) and the ``repro
sweep`` CLI command.  See ``docs/parallel.md`` for the cache key
schema, store layout and determinism contract.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from functools import partial
from multiprocessing import get_context
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set

from time import perf_counter

from .farm.store import ResultStore
from .obs import InMemoryRecorder, merge_snapshots
from .offline.opt import OPT_MODES, cioq_opt, crossbar_opt
from .simulation.backends import DEFAULT_BACKEND, validate_backend
from .simulation.engine import (
    run_cioq,
    run_cioq_batch,
    run_crossbar,
    run_crossbar_batch,
)
from .switch.config import SwitchConfig
from .traffic.trace import Trace

#: Bump when the payload schema changes; part of every cache key.
#: v4: the trace term switched from ``sha256(to_json())`` to the binary
#: :meth:`Trace.content_digest` packing, re-keying every entry.
CACHE_VERSION = 4

#: Fault-injection hook: when set to ``N`` (>= 1), :meth:`SweepExecutor
#: .run` raises :class:`SweepKilled` after publishing its N-th executed
#: point — simulating a study killed mid-sweep with N results durably in
#: the store.  Cache hits don't count; only executed points do.
KILL_AFTER_ENV = "REPRO_FARM_KILL_AFTER"

#: Test hook: when set to a file path, every executed-and-published
#: point appends its cache key (one line, ``O_APPEND``) — the
#: exactly-once ledger the concurrent-writer tests diff.
EXEC_LOG_ENV = "REPRO_FARM_EXEC_LOG"

PolicyFactory = Callable[[], object]


class SweepKilled(RuntimeError):
    """A sweep died mid-run via the :data:`KILL_AFTER_ENV` fault hook.

    Everything published before the kill is durably in the result
    store; re-running the same sweep resumes from those entries."""


def _exec_log(key: str) -> None:
    """Append ``key`` to the exactly-once execution ledger, if enabled."""
    path = os.environ.get(EXEC_LOG_ENV)
    if not path:
        return
    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, (key + "\n").encode("utf-8"))
    finally:
        os.close(fd)


@dataclass(frozen=True)
class SweepPoint:
    """One unit of sweep work: a policy (or OPT) on a concrete trace.

    Parameters
    ----------
    model:
        ``"cioq"`` or ``"crossbar"``.
    config, trace:
        The switch instance and the input sequence σ.
    policy_factory:
        Zero-argument callable building a *fresh* policy (a policy
        class, or ``functools.partial`` with keyword parameters — both
        pickle across process boundaries; lambdas do not).  ``None``
        means "solve the exact offline optimum instead".
    seed:
        The seed the trace was generated from (part of the cache key;
        purely informational for hand-built traces).
    tag:
        Row metadata echoed back untouched into the payload under
        ``"tag"`` — sweep drivers use it to route payloads into table
        rows.
    opt_mode, opt_window:
        Offline-optimum solver selection for OPT points (see
        :mod:`repro.offline.opt`); ignored for policy points.  Both are
        part of the cache key — an exact OPT payload and a bracketed
        one are never interchangeable.
    """

    model: str
    config: SwitchConfig
    trace: Trace
    policy_factory: Optional[PolicyFactory] = None
    seed: Optional[int] = None
    tag: Mapping[str, object] = field(default_factory=dict)
    opt_mode: str = "exact"
    opt_window: Optional[int] = None

    def __post_init__(self) -> None:
        if self.model not in ("cioq", "crossbar"):
            raise ValueError(f"unknown switch model {self.model!r}")
        if self.opt_mode not in OPT_MODES:
            raise ValueError(
                f"unknown opt mode {self.opt_mode!r}; expected {OPT_MODES}"
            )


def describe_factory(factory: Optional[PolicyFactory]) -> str:
    """Stable textual description of a policy factory (cache key part)."""
    if factory is None:
        return "OPT"
    if isinstance(factory, partial):
        inner = describe_factory(factory.func)
        kwargs = ",".join(f"{k}={v!r}" for k, v in sorted(factory.keywords.items()))
        args = ",".join(repr(a) for a in factory.args)
        return f"{inner}({args};{kwargs})"
    mod = getattr(factory, "__module__", "")
    qual = getattr(factory, "__qualname__", None)
    if qual:
        return f"{mod}.{qual}"
    return repr(factory)  # pragma: no cover - exotic factories defeat caching


def _policy_payload(res, point: SweepPoint) -> Dict[str, object]:
    """Payload dict for a policy point from its simulation result."""
    payload = res.as_payload()
    payload["trace"] = point.trace.name
    payload["seed"] = point.seed
    payload["tag"] = dict(point.tag)
    return payload


def run_sweep_point(
    point: SweepPoint, backend: str = DEFAULT_BACKEND,
    metrics_every: Optional[int] = None,
) -> Dict[str, object]:
    """Execute one sweep point; pure function of the point.

    Returns a JSON-serializable payload.  For policy points::

        {"policy", "benefit", "n_sent", "n_arrived", "n_accepted",
         "n_rejected", "n_preempted", "n_residual", "value_arrived",
         "trace", "seed", "tag"}

    (the accounting fields come from
    :meth:`~repro.simulation.results.SimulationResult.as_payload`).
    For OPT points (``policy_factory is None``)::

        {"policy": "OPT", "benefit", "opt_mode", "opt_lower",
         "opt_upper", "trace", "seed", "tag"}

    where ``opt_mode`` is the *resolved* solver mode (``"auto"``
    resolves per point, deterministically in the trace and config),
    ``opt_lower == opt_upper == benefit`` for exact solves, and
    ``benefit`` is the conservative bracket upper end otherwise.

    ``backend`` selects the slot-loop execution backend for policy
    points (see :mod:`repro.simulation.backends`); by the bit-identical
    backend contract it never changes the payload.  OPT points solve
    with the offline machinery selected by the point's ``opt_mode`` /
    ``opt_window``.

    With ``metrics_every`` set, the point runs under a fresh
    :class:`repro.obs.InMemoryRecorder` sampling every that many slots,
    and the recorder's **deterministic** snapshot is embedded as
    ``payload["obs"]`` — a pure function of the point like everything
    else in the payload, so metric artifacts merged in point order are
    byte-identical for any worker count.  Wall-times never enter the
    payload (the executor keeps them in its quarantined timing ledger).
    """
    if point.policy_factory is None:
        solver = cioq_opt if point.model == "cioq" else crossbar_opt
        opt = solver(point.trace, point.config, mode=point.opt_mode,
                     window=point.opt_window)
        lo, hi = opt.bracket
        payload: Dict[str, object] = {
            "policy": "OPT", "benefit": opt.benefit,
            "opt_mode": opt.mode, "opt_lower": lo, "opt_upper": hi,
            "trace": point.trace.name, "seed": point.seed,
            "tag": dict(point.tag)}
        if metrics_every is not None:
            rec = InMemoryRecorder(every_k=metrics_every)
            rec.counter("opt_solves_total")
            payload["obs"] = rec.snapshot()
        return payload
    policy = point.policy_factory()
    runner = run_cioq if point.model == "cioq" else run_crossbar
    if metrics_every is not None:
        rec = InMemoryRecorder(every_k=metrics_every)
        res = runner(policy, point.config, point.trace, backend=backend,
                     metrics=rec)
        payload = _policy_payload(res, point)
        payload["obs"] = rec.snapshot()
        return payload
    res = runner(policy, point.config, point.trace, backend=backend)
    return _policy_payload(res, point)


def _run_task(task: tuple, backend: str = DEFAULT_BACKEND,
              metrics_every: Optional[int] = None) -> tuple:
    """Execute one scheduled task; module-level so it pickles.

    A task is ``(kind, [(index, point), ...])``: ``"batch"`` items share
    (model, config, policy spec) and execute in lockstep through the
    batched engine entry points (the vectorized kernel); ``"single"``
    items run point-by-point (OPT solves, instrumented points, reference
    backend).  Returns ``(pid, elapsed, indices, payloads)`` so the
    parent can publish results, fill its timing ledger and emit worker
    heartbeats.
    """
    kind, items = task
    t0 = perf_counter()
    if kind == "batch":
        first = items[0][1]
        runner = (run_cioq_batch if first.model == "cioq"
                  else run_crossbar_batch)
        batch = runner(first.policy_factory, first.config,
                       [p.trace for _, p in items], backend=backend)
        payloads = [_policy_payload(res, p)
                    for (_, p), res in zip(items, batch)]
    else:
        payloads = [run_sweep_point(p, backend=backend,
                                    metrics_every=metrics_every)
                    for _, p in items]
    return (os.getpid(), perf_counter() - t0,
            [idx for idx, _ in items], payloads)


class SweepExecutor:
    """Runs sweep points, optionally in parallel and/or cached.

    Parameters
    ----------
    workers:
        Process count.  ``<= 1`` (the default) runs in-process; ``N >
        1`` fans uncached points out over a ``multiprocessing`` pool in
        deterministic chunks.
    cache_dir:
        Root of the content-addressed result store
        (:class:`~repro.farm.store.ResultStore`; directories created on
        demand).  ``None`` disables caching.  Keys cover the policy
        spec, the switch config, the full trace content, the point seed
        and :data:`CACHE_VERSION`, so any input change misses cleanly.
        :meth:`run` is *incremental* against the store: hits are
        returned without executing, missing points publish write-through
        as each completes, and points claimed by another live executor
        are awaited instead of duplicated.
    chunk_size:
        Tasks per pool chunk; default ``ceil(tasks / (4 * workers))``.
    backend:
        Slot-loop execution backend for policy points (see
        :mod:`repro.simulation.backends`).  With ``"fast"`` or
        ``"auto"``, uncached policy points are grouped by (model,
        config, policy spec) into lockstep batch tasks for the
        vectorized engine entry points; with ``workers > 1`` each group
        splits into per-worker slices so batches and leftover points
        (exact-OPT solves) fan out over the pool together.  The backend
        is deliberately **not** part of the cache key: backends are
        bit-identical by contract, so cached payloads are
        interchangeable.
    pool:
        Optional :class:`~repro.farm.pool.PersistentPool` reused across
        every :meth:`run` call (the farm serve loop passes one), paying
        worker spawn cost once per pool instead of once per call.
        ``None`` with ``workers > 1`` spawns an ephemeral pool per call,
        matching the pre-farm behavior.
    metrics_every:
        When set, every point runs instrumented (see
        :func:`run_sweep_point`) and embeds a deterministic ``"obs"``
        snapshot in its payload; :meth:`merged_obs` merges them in point
        order.  Instrumented points skip the lockstep batch grouping and
        run individually so each point's snapshot stays a pure function
        of that point.  ``metrics_every`` joins the cache key (only when
        set — uninstrumented sweeps keep their existing keys) because
        instrumented and plain payloads differ.
    progress:
        Optional callable receiving progress/heartbeat event dicts from
        :meth:`run` (``{"event": "cache", ...}``, per-point
        ``{"event": "point", "index", "total", "pid", "elapsed"}``,
        ``{"event": "done", ...}``).  Events carry wall-times and worker
        pids — observability only, never part of any artifact.

    After :meth:`run`: ``cache_hits`` / ``cache_misses`` count payload
    cache outcomes, and ``timings`` is the per-point wall-time ledger
    (list of ``{"index", "policy", "trace", "seed", "pid", "elapsed"}``
    dicts) — quarantined, non-deterministic data for ``timings.json``.
    """

    def __init__(
        self,
        workers: int = 0,
        cache_dir: Optional[str] = None,
        chunk_size: Optional[int] = None,
        backend: str = DEFAULT_BACKEND,
        metrics_every: Optional[int] = None,
        progress: Optional[Callable[[Dict[str, object]], None]] = None,
        pool=None,
    ):
        validate_backend(backend)
        if metrics_every is not None and metrics_every < 0:
            raise ValueError(
                f"metrics_every must be >= 0, got {metrics_every}"
            )
        self.workers = int(workers or 0)
        self.cache_dir = cache_dir
        self.store: Optional[ResultStore] = (
            ResultStore(cache_dir, CACHE_VERSION)
            if cache_dir is not None else None
        )
        self.chunk_size = chunk_size
        self.backend = backend
        self.metrics_every = metrics_every
        self.progress = progress
        self.pool = pool
        self.cache_hits = 0
        self.cache_misses = 0
        self.timings: List[Dict[str, object]] = []
        self._last_results: List[Dict[str, object]] = []

    def _emit(self, event: Dict[str, object]) -> None:
        if self.progress is not None:
            self.progress(event)

    def _time_entry(self, index: int, point: SweepPoint, pid: int,
                    elapsed: float) -> Dict[str, object]:
        return {
            "index": index,
            "policy": describe_factory(point.policy_factory),
            "trace": point.trace.name,
            "seed": point.seed,
            "pid": pid,
            "elapsed": elapsed,
        }

    def merged_obs(self) -> Optional[Dict[str, object]]:
        """Deterministic merge (point order) of the ``"obs"`` snapshots
        embedded by every :meth:`run` this executor has served (batched
        callers like replication share one executor); ``None`` when the
        executor is uninstrumented.  Byte-identical for any worker count
        and for cached vs fresh payloads."""
        if self.metrics_every is None:
            return None
        snap = merge_snapshots(
            p["obs"] for p in self._last_results if "obs" in p
        )
        snap["gauges"]["sweep_points_total"] = len(self._last_results)
        return snap

    # -- cache ---------------------------------------------------------------

    def cache_key(self, point: SweepPoint) -> str:
        c = point.config
        spec = {
            "v": CACHE_VERSION,
            "model": point.model,
            "config": [c.n_in, c.n_out, c.speedup, c.b_in, c.b_out, c.b_cross],
            "policy": describe_factory(point.policy_factory),
            "trace": point.trace.content_digest(),
            "seed": point.seed,
            "opt": [point.opt_mode, point.opt_window],
        }
        # Instrumented payloads carry an embedded "obs" snapshot, so
        # they get distinct keys; the key is only extended when metrics
        # are on, leaving every pre-existing cache entry addressable.
        if self.metrics_every is not None:
            spec["metrics"] = self.metrics_every
        blob = json.dumps(spec, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def _cache_path(self, key: str) -> str:
        """Sharded store path a new entry for ``key`` lands on."""
        return self.store.path(key)

    def _cache_get(self, key: str) -> Optional[Dict[str, object]]:
        return self.store.get(key)

    def _cache_put(self, key: str, payload: Dict[str, object]) -> None:
        self.store.put(key, payload)

    # -- execution -----------------------------------------------------------

    def run(self, points: Sequence[SweepPoint]) -> List[Dict[str, object]]:
        """Execute ``points``; returns payloads in point order.

        Incremental: with a store attached, hits return without
        executing, missing points publish write-through as each
        completes (a killed run leaves everything it finished durably
        cached), and points claimed by another live executor are awaited
        rather than duplicated.  The payload list is assembled by point
        index, so the result is byte-identical regardless of worker
        count, cache state, or how many restarts the sweep took.
        """
        results: List[Optional[Dict[str, object]]] = [None] * len(points)
        caching = self.store is not None
        # Keys are hashed once per point (they serialize the full trace).
        keys = [self.cache_key(p) for p in points] if caching else None
        pending: List[int] = []
        waiting: List[int] = []
        for idx in range(len(points)):
            if caching:
                hit = self.store.get(keys[idx])
                if hit is not None:
                    self.cache_hits += 1
                    results[idx] = hit
                    continue
                if not self.store.claim(keys[idx]):
                    # A live executor elsewhere is computing this exact
                    # point; await its publish instead of duplicating.
                    waiting.append(idx)
                    continue
                hit = self.store.get(keys[idx])
                if hit is not None:
                    # Raced a concurrent publisher: a publish always
                    # precedes its claim release, so re-checking after
                    # winning the claim keeps execution exactly-once.
                    self.store.release(keys[idx])
                    self.cache_hits += 1
                    results[idx] = hit
                    continue
            pending.append(idx)
        self.cache_misses += len(pending)
        self._emit({"event": "cache", "total": len(points),
                    "hits": self.cache_hits, "misses": self.cache_misses})

        claimed: Set[int] = set(pending) if caching else set()
        try:
            if pending:
                self._execute(points, results, keys, pending, claimed)
            for idx in waiting:
                payload = self.store.wait_for(keys[idx])
                if payload is None:
                    # The claimer died/timed out without publishing:
                    # compute locally (idempotent — wasteful at worst).
                    payload = run_sweep_point(
                        points[idx], backend=self.backend,
                        metrics_every=self.metrics_every)
                    self.store.put(keys[idx], payload)
                    self.cache_misses += 1
                else:
                    self.cache_hits += 1
                results[idx] = payload
        finally:
            if caching:
                for idx in claimed:
                    self.store.release(keys[idx])
        self._last_results.extend(results)  # type: ignore[arg-type]
        self._emit({"event": "done", "total": len(points),
                    "hits": self.cache_hits, "misses": self.cache_misses})
        return results  # type: ignore[return-value]

    def _schedule(self, points: Sequence[SweepPoint],
                  pending: List[int]) -> List[tuple]:
        """Build the task list for the pending indices.

        With a fast-capable backend, policy points group by (model,
        config, policy spec) into lockstep batch tasks (seed ladders
        execute through the vectorized kernel); with ``workers > 1``
        each group splits into up to ``workers`` slices so one big
        ladder still saturates the pool.  OPT solves — and, under
        ``metrics_every``, every point, since each must run under its
        own recorder to keep ``payload["obs"]`` a pure per-point
        function — become single-point tasks.  ``backend="auto"`` batch
        groups fall back to serial reference runs inside the engine
        when the fast kernel cannot take them; ``"fast"`` propagates
        the error.
        """
        if self.backend == "reference" or self.metrics_every is not None:
            return [("single", [(i, points[i])]) for i in pending]
        groups: Dict[tuple, List[int]] = {}
        singles: List[int] = []
        for idx in pending:
            point = points[idx]
            if point.policy_factory is None:
                singles.append(idx)
                continue
            c = point.config
            gkey = (
                point.model,
                (c.n_in, c.n_out, c.speedup, c.b_in, c.b_out, c.b_cross),
                describe_factory(point.policy_factory),
            )
            groups.setdefault(gkey, []).append(idx)
        tasks: List[tuple] = []
        for idxs in groups.values():
            slices = min(self.workers, len(idxs)) if self.workers > 1 else 1
            size = -(-len(idxs) // slices)
            for s in range(0, len(idxs), size):
                tasks.append(
                    ("batch", [(i, points[i]) for i in idxs[s:s + size]]))
        tasks.extend(("single", [(i, points[i])]) for i in singles)
        return tasks

    def _execute(
        self,
        points: Sequence[SweepPoint],
        results: List[Optional[Dict[str, object]]],
        keys: Optional[List[str]],
        pending: List[int],
        claimed: Set[int],
    ) -> None:
        """Run the pending indices and publish each completion.

        Completions stream back unordered (``imap_unordered`` — no
        barrier on submission order); publishing is write-through: the
        payload lands in the store, its claim drops, and the result slot
        fills the moment the task finishes, which is what makes a
        killed sweep resumable at point granularity.
        """
        total = len(points)
        tasks = self._schedule(points, pending)
        kill_env = os.environ.get(KILL_AFTER_ENV)
        kill_after = int(kill_env) if kill_env else None
        published = 0

        def publish(idx: int, pid: int, elapsed: float,
                    payload: Dict[str, object]) -> None:
            nonlocal published
            if keys is not None:
                self.store.put(keys[idx], payload)
                self.store.release(keys[idx])
                claimed.discard(idx)
                _exec_log(keys[idx])
            results[idx] = payload
            self.timings.append(
                self._time_entry(idx, points[idx], pid, elapsed))
            self._emit({"event": "point", "index": idx, "total": total,
                        "pid": pid, "elapsed": elapsed})
            published += 1
            if kill_after is not None and published >= kill_after:
                raise SweepKilled(
                    f"fault injection: killed after {published} points")

        func = partial(_run_task, backend=self.backend,
                       metrics_every=self.metrics_every)
        if self.workers > 1 and len(tasks) > 1:
            chunk = self.chunk_size or -(
                -len(tasks) // (4 * min(self.workers, len(tasks))))
            if self.pool is not None:
                stream = self.pool.imap_unordered(
                    func, tasks, chunksize=max(1, chunk))
                self._drain(stream, publish)
            else:
                ctx = get_context()
                workers = min(self.workers, len(tasks))
                with ctx.Pool(processes=workers) as pool:
                    self._drain(
                        pool.imap_unordered(func, tasks,
                                            chunksize=max(1, chunk)),
                        publish)
        else:
            for task in tasks:
                self._drain([func(task)], publish)

    @staticmethod
    def _drain(stream, publish) -> None:
        """Feed completed tasks through the publish callback, splitting
        each task's total wall time evenly over its points (timings are
        quarantined observability, never artifact data)."""
        for pid, elapsed, idxs, payloads in stream:
            per_point = elapsed / max(1, len(idxs))
            for idx, payload in zip(idxs, payloads):
                publish(idx, pid, per_point, payload)
