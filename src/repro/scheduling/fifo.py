"""FIFO-discipline ablation policies.

The paper's algorithms exploit non-FIFO queues (packets may be stored
and released in any order; Assumption A3 keeps them value-sorted).  The
related work it improves on (Section 1.2) largely studies *FIFO* queues,
where packets must leave in arrival order — e.g. Kesselman-Rosen's
4s- and 8 min{k, 2 log alpha}-competitive FIFO CIOQ algorithms and the
7.47-competitive algorithm of Azar-Richter/Kesselman et al.

These policies implement the FIFO discipline on the same switch
substrate, as an *ablation* quantifying what value-ordering buys
(experiment T12).  They are faithful to the FIFO model's rules —
head-of-line transfers and transmissions, tail push-out on arrival —
without claiming to be any specific published algorithm:

* :class:`FifoCIOQPolicy` — arrival: accept if space, else push out the
  queue's cheapest packet when the arrival is strictly more valuable
  (the standard FIFO push-out rule); scheduling: greedy maximal matching
  weighted by the *head-of-line* (earliest) packet's value; transfer the
  head-of-line packet; transmission: head-of-line.
* :class:`FifoCrossbarPolicy` — the same discipline on the buffered
  crossbar.

Head-of-line means earliest arrival (smallest pid).  With unit values
FIFO and non-FIFO behaviour coincides packet-count-wise; under value
skew the head-of-line constraint visibly hurts (see T12).
"""

from __future__ import annotations

from typing import List, Optional

from ..switch.cioq import CIOQSwitch, Transfer
from ..switch.crossbar import CrossbarSwitch, InputTransfer, OutputTransfer
from ..switch.packet import Packet
from ..switch.queue import BoundedQueue
from .base import ArrivalDecision, CIOQPolicy, CrossbarPolicy
from .matching import greedy_maximal_matching_weighted


def head_of_line(q: BoundedQueue) -> Optional[Packet]:
    """The earliest-arrived packet in the queue (smallest pid)."""
    best: Optional[Packet] = None
    for p in q:
        if best is None or p.pid < best.pid:
            best = p
    return best


def _fifo_admit(q: BoundedQueue, packet: Packet) -> ArrivalDecision:
    """FIFO push-out admission: accept if space, else displace the
    cheapest buffered packet when strictly less valuable."""
    if not q.is_full:
        return ArrivalDecision.accepted()
    victim = q.tail()
    if victim is not None and victim.value < packet.value:
        return ArrivalDecision.accepted(preempt=victim)
    return ArrivalDecision.reject()


class FifoCIOQPolicy(CIOQPolicy):
    """FIFO-discipline CIOQ scheduling (ablation baseline)."""

    name = "FIFO-CIOQ"

    def on_arrival(self, switch: CIOQSwitch, packet: Packet) -> ArrivalDecision:
        return _fifo_admit(switch.voq[packet.src][packet.dst], packet)

    def schedule(self, switch: CIOQSwitch, slot: int, cycle: int) -> List[Transfer]:
        edges = []
        hol = {}
        for i in range(switch.n_in):
            for j in range(switch.n_out):
                q = switch.voq[i][j]
                if q.is_empty or switch.out[j].is_full:
                    continue
                h = head_of_line(q)
                assert h is not None
                edges.append((i, j, h.value))
                hol[(i, j)] = h
        matching = greedy_maximal_matching_weighted(edges)
        return [Transfer(i, j, hol[(i, j)]) for i, j, _w in matching]

    def select_transmissions(self, switch: CIOQSwitch):
        sel = {}
        for j, q in enumerate(switch.out):
            h = head_of_line(q)
            if h is not None:
                sel[j] = h
        return sel


class FifoCrossbarPolicy(CrossbarPolicy):
    """FIFO-discipline buffered-crossbar scheduling (ablation baseline)."""

    name = "FIFO-crossbar"

    def on_arrival(self, switch: CrossbarSwitch, packet: Packet) -> ArrivalDecision:
        return _fifo_admit(switch.voq[packet.src][packet.dst], packet)

    def input_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[InputTransfer]:
        transfers: List[InputTransfer] = []
        for i in range(switch.n_in):
            best: Optional[Packet] = None
            best_j = -1
            for j in range(switch.n_out):
                if switch.cross[i][j].is_full:
                    continue
                h = head_of_line(switch.voq[i][j])
                if h is not None and (best is None or h.value > best.value or
                                      (h.value == best.value and h.pid < best.pid)):
                    best = h
                    best_j = j
            if best is not None:
                transfers.append(InputTransfer(i, best_j, best))
        return transfers

    def output_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[OutputTransfer]:
        transfers: List[OutputTransfer] = []
        for j in range(switch.n_out):
            if switch.out[j].is_full:
                continue
            best: Optional[Packet] = None
            best_i = -1
            for i in range(switch.n_in):
                h = head_of_line(switch.cross[i][j])
                if h is not None and (best is None or h.value > best.value or
                                      (h.value == best.value and h.pid < best.pid)):
                    best = h
                    best_i = i
            if best is not None:
                transfers.append(OutputTransfer(best_i, j, best))
        return transfers

    def select_transmissions(self, switch: CrossbarSwitch):
        sel = {}
        for j, q in enumerate(switch.out):
            h = head_of_line(q)
            if h is not None:
                sel[j] = h
        return sel
