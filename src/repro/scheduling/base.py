"""Policy interfaces for the two switch models.

A *policy* makes the decisions of the three phases in Section 1.3:

* **arrival phase** — per arriving packet: accept (possibly preempting a
  queued packet) or reject;
* **scheduling phase** — per scheduling cycle: a set of fabric transfers
  forming an admissible schedule (CIOQ: a matching; crossbar: one packet
  per input port in the input subphase, one per output port in the output
  subphase);
* **transmission phase** — per output port: which packet to send.

Policies only *decide*; the :mod:`repro.simulation.engine` applies the
decisions to the switch state and validates admissibility, so a policy
bug surfaces as a :class:`~repro.switch.cioq.ScheduleError` rather than
as silently inflated benefit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..switch.cioq import CIOQSwitch, Transfer, greedy_head_transmissions
from ..switch.crossbar import CrossbarSwitch, InputTransfer, OutputTransfer
from ..switch.crossbar import greedy_head_transmissions as crossbar_head_transmissions
from ..switch.packet import Packet


@dataclass(frozen=True)
class ArrivalDecision:
    """Outcome of the arrival phase for one packet.

    ``accept=False`` means the packet is rejected (discarded on arrival).
    ``preempt`` optionally names a packet currently in the same VOQ that
    is discarded to make room (PG/CPG arrival rule).

    Frozen: the two parameter-free cases are shared singletons, so
    instances must never be mutated after construction.
    """

    accept: bool
    preempt: Optional[Packet] = None

    @classmethod
    def reject(cls) -> "ArrivalDecision":
        return _REJECT

    @classmethod
    def accepted(cls, preempt: Optional[Packet] = None) -> "ArrivalDecision":
        if preempt is None:
            return _ACCEPT
        return cls(accept=True, preempt=preempt)


# The two parameter-free cases occur once per arriving packet — shared
# (frozen) instances keep the arrival phase allocation-free.
_REJECT = ArrivalDecision(accept=False)
_ACCEPT = ArrivalDecision(accept=True)


class CIOQPolicy(ABC):
    """Decision interface for CIOQ switches."""

    #: Human-readable policy name used in reports and tables.
    name: str = "cioq-policy"

    def reset(self, switch: CIOQSwitch) -> None:
        """Called once before a simulation starts (clear any policy state)."""

    @abstractmethod
    def on_arrival(self, switch: CIOQSwitch, packet: Packet) -> ArrivalDecision:
        """Decide acceptance of ``packet`` into VOQ Q[packet.src][packet.dst]."""

    @abstractmethod
    def schedule(self, switch: CIOQSwitch, slot: int, cycle: int) -> List[Transfer]:
        """Decide the fabric matching for scheduling cycle ``T[s]``."""

    def select_transmissions(self, switch: CIOQSwitch) -> Dict[int, Packet]:
        """Decide the transmission phase; default: send every head packet.

        All four paper algorithms transmit greedily (the most valuable
        packet of every non-empty output queue), so this default is
        rarely overridden.
        """
        return greedy_head_transmissions(switch)


class CrossbarPolicy(ABC):
    """Decision interface for buffered crossbar switches."""

    name: str = "crossbar-policy"

    def reset(self, switch: CrossbarSwitch) -> None:
        """Called once before a simulation starts (clear any policy state)."""

    @abstractmethod
    def on_arrival(self, switch: CrossbarSwitch, packet: Packet) -> ArrivalDecision:
        """Decide acceptance of ``packet`` into VOQ Q[packet.src][packet.dst]."""

    @abstractmethod
    def input_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[InputTransfer]:
        """Decide VOQ -> crosspoint transfers (at most one per input port)."""

    @abstractmethod
    def output_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[OutputTransfer]:
        """Decide crosspoint -> output transfers (at most one per output)."""

    def select_transmissions(self, switch: CrossbarSwitch) -> Dict[int, Packet]:
        """Default transmission phase: send every output-queue head."""
        return crossbar_head_transmissions(switch)
