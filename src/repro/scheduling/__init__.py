"""Scheduling substrate: policy interfaces, matching engines, baselines."""

from .base import ArrivalDecision, CIOQPolicy, CrossbarPolicy
from .matching import (
    MatchingStats,
    greedy_maximal_matching,
    greedy_maximal_matching_weighted,
    hopcroft_karp,
    is_matching,
    is_maximal,
    matching_weight,
    max_weight_matching,
)
from .baselines import (
    CrossbarGreedyWeightedPolicy,
    MaxMatchPolicy,
    MaxWeightMatchPolicy,
    RandomMatchPolicy,
    RoundRobinPolicy,
)
from .fifo import FifoCIOQPolicy, FifoCrossbarPolicy, head_of_line

__all__ = [
    "ArrivalDecision",
    "CIOQPolicy",
    "CrossbarPolicy",
    "MatchingStats",
    "greedy_maximal_matching",
    "greedy_maximal_matching_weighted",
    "hopcroft_karp",
    "is_matching",
    "is_maximal",
    "matching_weight",
    "max_weight_matching",
    "CrossbarGreedyWeightedPolicy",
    "MaxMatchPolicy",
    "MaxWeightMatchPolicy",
    "RandomMatchPolicy",
    "RoundRobinPolicy",
    "FifoCIOQPolicy",
    "FifoCrossbarPolicy",
    "head_of_line",
]
