"""Bipartite matching engines.

The paper's central systems claim is that *greedy maximal* matchings —
built incrementally by scanning edges once — suffice for 3-/5.83-
competitive CIOQ scheduling, whereas earlier algorithms needed *maximum*
(cardinality or weight) matchings recomputed every scheduling cycle.

This module provides all three engines from scratch:

* :func:`greedy_maximal_matching` — O(E) single pass (GM's engine),
* :func:`greedy_maximal_matching_weighted` — O(E log E) sort + single
  pass (PG's engine),
* :func:`hopcroft_karp` — O(E sqrt(V)) maximum-cardinality matching (the
  engine of the Kesselman–Rosén-style baseline),
* :func:`max_weight_matching` — O(n^3) Hungarian algorithm for maximum-
  weight bipartite matching (baseline for the weighted case).

Every engine can be handed a :class:`MatchingStats` accumulator that
counts primitive operations (edge scans, comparisons, augmentation
steps); the efficiency experiment (T5) uses these counters as a
machine-independent cost model alongside wall-clock timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

INF = float("inf")

Edge = Tuple[int, int]
WeightedEdge = Tuple[int, int, float]


@dataclass
class MatchingStats:
    """Primitive-operation counters for matching computations."""

    edge_scans: int = 0
    comparisons: int = 0
    augment_steps: int = 0
    calls: int = 0

    def merge(self, other: "MatchingStats") -> None:
        self.edge_scans += other.edge_scans
        self.comparisons += other.comparisons
        self.augment_steps += other.augment_steps
        self.calls += other.calls

    @property
    def total_ops(self) -> int:
        return self.edge_scans + self.comparisons + self.augment_steps


def greedy_maximal_matching(
    edges: Sequence[Edge],
    stats: Optional[MatchingStats] = None,
) -> List[Edge]:
    """Greedy maximal matching: scan edges in the given order, keep an edge
    whenever both endpoints are still free.

    This is precisely the matching computation of algorithm GM
    (Section 2.1): "Start with an empty matching and iterate over all
    edges of E.  Add an edge e to the current matching if e does not
    violate the matching property."

    The result is maximal: no remaining edge has both endpoints free.
    """
    if stats is not None:
        stats.calls += 1
    matched_left: Dict[int, int] = {}
    matched_right: Dict[int, int] = {}
    matching: List[Edge] = []
    for u, v in edges:
        if stats is not None:
            stats.edge_scans += 1
        if u not in matched_left and v not in matched_right:
            matched_left[u] = v
            matched_right[v] = u
            matching.append((u, v))
    return matching


def greedy_maximal_matching_weighted(
    edges: Sequence[WeightedEdge],
    stats: Optional[MatchingStats] = None,
) -> List[WeightedEdge]:
    """Greedy maximal matching over edges scanned in descending weight.

    This is the matching computation of PG (Section 2.2): "iterate over
    all edges of E in a descending order of their weights".  Ties are
    broken deterministically by the (u, v) indices so runs are
    reproducible (Assumption A3's "arbitrary but consistent").

    The resulting matching is a 1/2-approximation of the maximum-weight
    matching — a classical fact the efficiency experiment quantifies.
    """
    if stats is not None:
        stats.calls += 1
        stats.comparisons += int(len(edges) * max(1, _log2ceil(len(edges))))
    ordered = sorted(edges, key=lambda e: (-e[2], e[0], e[1]))
    matched_left: Dict[int, int] = {}
    matched_right: Dict[int, int] = {}
    matching: List[WeightedEdge] = []
    for u, v, w in ordered:
        if stats is not None:
            stats.edge_scans += 1
        if u not in matched_left and v not in matched_right:
            matched_left[u] = v
            matched_right[v] = u
            matching.append((u, v, w))
    return matching


def _log2ceil(n: int) -> int:
    k = 0
    while (1 << k) < n:
        k += 1
    return k


def is_matching(edges: Sequence[Edge]) -> bool:
    """True if no vertex appears twice on its side."""
    left = set()
    right = set()
    for u, v in edges:
        if u in left or v in right:
            return False
        left.add(u)
        right.add(v)
    return True


def is_maximal(matching: Sequence[Edge], edges: Sequence[Edge]) -> bool:
    """True if no edge of ``edges`` could be added to ``matching``."""
    left = {u for u, _ in matching}
    right = {v for _, v in matching}
    return all(u in left or v in right for u, v in edges)


def hopcroft_karp(
    n_left: int,
    n_right: int,
    adj: Sequence[Sequence[int]],
    stats: Optional[MatchingStats] = None,
) -> List[Edge]:
    """Maximum-cardinality bipartite matching (Hopcroft–Karp, from scratch).

    Parameters
    ----------
    n_left, n_right:
        Sizes of the two vertex sides.
    adj:
        ``adj[u]`` lists the right-side neighbours of left vertex ``u``.

    Returns the matching as ``(u, v)`` pairs.  Runs in O(E sqrt(V)); this
    is the per-cycle engine the prior CIOQ algorithms implicitly require,
    and the cost the paper's greedy approach avoids.
    """
    if stats is not None:
        stats.calls += 1
    match_l: List[int] = [-1] * n_left
    match_r: List[int] = [-1] * n_right
    dist: List[float] = [INF] * n_left

    def bfs() -> bool:
        queue: List[int] = []
        for u in range(n_left):
            if match_l[u] == -1:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = INF
        found = False
        qi = 0
        while qi < len(queue):
            u = queue[qi]
            qi += 1
            for v in adj[u]:
                if stats is not None:
                    stats.edge_scans += 1
                w = match_r[v]
                if w == -1:
                    found = True
                elif dist[w] == INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in adj[u]:
            if stats is not None:
                stats.edge_scans += 1
            w = match_r[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                if stats is not None:
                    stats.augment_steps += 1
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = INF
        return False

    while bfs():
        for u in range(n_left):
            if match_l[u] == -1:
                dfs(u)

    return [(u, match_l[u]) for u in range(n_left) if match_l[u] != -1]


def max_weight_matching(
    weights: Sequence[Sequence[float]],
    stats: Optional[MatchingStats] = None,
) -> List[WeightedEdge]:
    """Maximum-weight bipartite matching via the Hungarian algorithm.

    ``weights[u][v]`` is the weight of edge (u, v); entries ``<= 0`` (or
    ``-inf``) mean "no edge".  Vertices may remain unmatched; only edges
    with strictly positive weight are ever used, so the returned matching
    maximizes total weight over all (partial) matchings.

    Implemented from scratch as the standard O(n^3) shortest augmenting
    path formulation (Jonker–Volgenant style with potentials) on the
    cost matrix ``c = -w`` padded to allow non-assignment at cost 0.
    """
    if stats is not None:
        stats.calls += 1
    n_left = len(weights)
    n_right = len(weights[0]) if n_left else 0
    if n_left == 0 or n_right == 0:
        return []

    # Square cost matrix of size n = n_left + n_right: real left vertices
    # may match a "skip" column (cost 0) and vice versa, which models
    # leaving vertices unmatched in the max-weight objective.
    n = n_left + n_right
    big = 0.0
    for row in weights:
        for w in row:
            if w > big:
                big = w

    def cost(u: int, v: int) -> float:
        if u < n_left and v < n_right:
            w = weights[u][v]
            return -w if w > 0 else 0.0
        return 0.0

    # Hungarian algorithm with row-by-row augmentation (1-based internal
    # arrays per the classical implementation).
    pot_u = [0.0] * (n + 1)
    pot_v = [0.0] * (n + 1)
    way = [0] * (n + 1)
    match_of_col = [0] * (n + 1)  # match_of_col[v] = row matched to column v

    for u in range(1, n + 1):
        match_of_col[0] = u
        j0 = 0
        minv = [INF] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = match_of_col[j0]
            delta = INF
            j1 = -1
            for j in range(1, n + 1):
                if used[j]:
                    continue
                if stats is not None:
                    stats.edge_scans += 1
                cur = cost(i0 - 1, j - 1) - pot_u[i0] - pot_v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    pot_u[match_of_col[j]] += delta
                    pot_v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match_of_col[j0] == 0:
                break
        while j0:
            if stats is not None:
                stats.augment_steps += 1
            j1 = way[j0]
            match_of_col[j0] = match_of_col[j1]
            j0 = j1

    result: List[WeightedEdge] = []
    for v in range(1, n + 1):
        u = match_of_col[v]
        if 1 <= u <= n_left and 1 <= v <= n_right:
            w = weights[u - 1][v - 1]
            if w > 0:
                result.append((u - 1, v - 1, w))
    return result


def matching_weight(matching: Sequence[WeightedEdge]) -> float:
    """Total weight of a weighted matching."""
    return float(sum(w for _, _, w in matching))
