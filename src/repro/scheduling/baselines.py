"""Baseline scheduling policies.

These are the comparators the paper positions its algorithms against:

* :class:`MaxMatchPolicy` — unit-value CIOQ scheduling by *maximum-
  cardinality* matching per cycle (the Kesselman–Rosén style schedule;
  3-competitive but pays O(E sqrt V) per cycle).
* :class:`MaxWeightMatchPolicy` — weighted CIOQ scheduling by *maximum-
  weight* matching per cycle with PG's eligibility/preemption rules
  (the expensive engine PG's greedy maximal matching replaces).
* :class:`RandomMatchPolicy` — greedy maximal matching in a uniformly
  random edge order (sanity baseline; shows GM's ratio is not an
  artifact of the scan order).
* :class:`RoundRobinPolicy` — an iSLIP-flavoured single-iteration
  rotating-priority match (the practical heuristic deployed in real
  CIOQ switches; no competitive guarantee).
* :class:`CrossbarGreedyWeightedPolicy` — CPG without preemption
  thresholds (pure greedy, never preempts); ablation baseline for T9.

All baselines reuse the arrival rules of the corresponding paper
algorithm so that differences isolate the *scheduling phase*.
"""

from __future__ import annotations

from typing import List, Optional

from ..switch.cioq import CIOQSwitch, Transfer
from ..switch.crossbar import CrossbarSwitch, InputTransfer, OutputTransfer
from ..switch.packet import Packet
from .base import ArrivalDecision, CIOQPolicy, CrossbarPolicy
from .matching import (
    MatchingStats,
    greedy_maximal_matching,
    hopcroft_karp,
    max_weight_matching,
)


class MaxMatchPolicy(CIOQPolicy):
    """Unit-value CIOQ scheduling via maximum-cardinality matchings.

    Same arrival/transmission phases as GM; the scheduling phase computes
    a Hopcroft–Karp *maximum* matching on the induced graph each cycle.
    This is the engine prior 3-competitive algorithms required and the
    cost GM avoids (experiment T5 quantifies the gap).
    """

    name = "MaxMatch"

    def __init__(self, stats: Optional[MatchingStats] = None):
        self.stats = stats

    def on_arrival(self, switch: CIOQSwitch, packet: Packet) -> ArrivalDecision:
        if switch.voq[packet.src][packet.dst].is_full:
            return ArrivalDecision.reject()
        return ArrivalDecision.accepted()

    def schedule(self, switch: CIOQSwitch, slot: int, cycle: int) -> List[Transfer]:
        adj: List[List[int]] = [[] for _ in range(switch.n_in)]
        for i in range(switch.n_in):
            for j in range(switch.n_out):
                if not switch.voq[i][j].is_empty and not switch.out[j].is_full:
                    adj[i].append(j)
        matching = hopcroft_karp(switch.n_in, switch.n_out, adj, stats=self.stats)
        transfers: List[Transfer] = []
        for i, j in matching:
            head = switch.voq[i][j].head()
            assert head is not None
            transfers.append(Transfer(i, j, head))
        return transfers


class MaxWeightMatchPolicy(CIOQPolicy):
    """Weighted CIOQ scheduling via maximum-weight matchings.

    Same arrival, eligibility, preemption and transmission rules as PG
    (with threshold ``beta``); the scheduling phase computes a Hungarian
    *maximum-weight* matching instead of PG's greedy maximal one.  This
    mirrors the 6-competitive algorithm of Kesselman and Rosén [24] that
    PG improves upon.
    """

    def __init__(self, beta: float = 1.0 + 2.0 ** 0.5,
                 stats: Optional[MatchingStats] = None):
        if beta < 1.0:
            raise ValueError(f"beta must be >= 1, got {beta}")
        self.beta = float(beta)
        self.stats = stats
        self.name = f"MaxWeightMatch(beta={self.beta:.4g})"

    def on_arrival(self, switch: CIOQSwitch, packet: Packet) -> ArrivalDecision:
        q = switch.voq[packet.src][packet.dst]
        if not q.is_full:
            return ArrivalDecision.accepted()
        tail = q.tail()
        assert tail is not None
        if tail.value < packet.value:
            return ArrivalDecision.accepted(preempt=tail)
        return ArrivalDecision.reject()

    def schedule(self, switch: CIOQSwitch, slot: int, cycle: int) -> List[Transfer]:
        n_in, n_out = switch.n_in, switch.n_out
        weights = [[0.0] * n_out for _ in range(n_in)]
        heads = {}
        any_edge = False
        for i in range(n_in):
            for j in range(n_out):
                g = switch.voq[i][j].head()
                if g is None:
                    continue
                out_q = switch.out[j]
                if out_q.is_full:
                    tail = out_q.tail()
                    assert tail is not None
                    if not g.value > self.beta * tail.value:
                        continue
                weights[i][j] = g.value
                heads[(i, j)] = g
                any_edge = True
        if not any_edge:
            return []
        matching = max_weight_matching(weights, stats=self.stats)
        transfers: List[Transfer] = []
        for i, j, _w in matching:
            g = heads[(i, j)]
            out_q = switch.out[j]
            victim = out_q.tail() if out_q.is_full else None
            transfers.append(Transfer(i, j, g, preempt=victim))
        return transfers


class RandomMatchPolicy(CIOQPolicy):
    """GM with a uniformly random edge scan order each cycle."""

    name = "RandomMatch"

    def __init__(self, seed: int = 0):
        # numpy is imported lazily so the module (and the reference
        # backend's whole import chain) works without it; only actually
        # constructing a RandomMatchPolicy requires numpy's bit-exact
        # PCG64 stream.
        import numpy as np

        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self, switch: CIOQSwitch) -> None:
        import numpy as np

        self._rng = np.random.default_rng(self.seed)

    def on_arrival(self, switch: CIOQSwitch, packet: Packet) -> ArrivalDecision:
        if switch.voq[packet.src][packet.dst].is_full:
            return ArrivalDecision.reject()
        return ArrivalDecision.accepted()

    def schedule(self, switch: CIOQSwitch, slot: int, cycle: int) -> List[Transfer]:
        edges = [
            (i, j)
            for i in range(switch.n_in)
            for j in range(switch.n_out)
            if not switch.voq[i][j].is_empty and not switch.out[j].is_full
        ]
        if edges:
            order = self._rng.permutation(len(edges))
            edges = [edges[k] for k in order]
        matching = greedy_maximal_matching(edges)
        transfers: List[Transfer] = []
        for i, j in matching:
            head = switch.voq[i][j].head()
            assert head is not None
            transfers.append(Transfer(i, j, head))
        return transfers


class RoundRobinPolicy(CIOQPolicy):
    """Single-iteration iSLIP-flavoured rotating-priority matching.

    Each output port grants to the first requesting input at or after
    its grant pointer; each input accepts the first grant at or after
    its accept pointer; pointers advance past successful matches.  This
    is the one-iteration core of iSLIP (McKeown), the de-facto hardware
    heuristic, included as the "current practice" baseline in T6.
    """

    name = "RoundRobin"

    def __init__(self):
        self._grant_ptr: List[int] = []
        self._accept_ptr: List[int] = []

    def reset(self, switch: CIOQSwitch) -> None:
        self._grant_ptr = [0] * switch.n_out
        self._accept_ptr = [0] * switch.n_in

    def on_arrival(self, switch: CIOQSwitch, packet: Packet) -> ArrivalDecision:
        if switch.voq[packet.src][packet.dst].is_full:
            return ArrivalDecision.reject()
        return ArrivalDecision.accepted()

    def schedule(self, switch: CIOQSwitch, slot: int, cycle: int) -> List[Transfer]:
        n_in, n_out = switch.n_in, switch.n_out
        if not self._grant_ptr:
            self.reset(switch)

        requests = [
            [
                not switch.voq[i][j].is_empty and not switch.out[j].is_full
                for j in range(n_out)
            ]
            for i in range(n_in)
        ]

        # Grant: each output picks the first requesting input from its pointer.
        grants: List[List[int]] = [[] for _ in range(n_in)]
        for j in range(n_out):
            for di in range(n_in):
                i = (self._grant_ptr[j] + di) % n_in
                if requests[i][j]:
                    grants[i].append(j)
                    break

        # Accept: each input picks the first granting output from its pointer.
        transfers: List[Transfer] = []
        for i in range(n_in):
            if not grants[i]:
                continue
            best = min(grants[i], key=lambda j: (j - self._accept_ptr[i]) % n_out)
            head = switch.voq[i][best].head()
            assert head is not None
            transfers.append(Transfer(i, best, head))
            self._accept_ptr[i] = (best + 1) % n_out
            self._grant_ptr[best] = (i + 1) % n_in
        return transfers


class CrossbarGreedyWeightedPolicy(CrossbarPolicy):
    """CPG stripped of its preemption thresholds (never preempts).

    Arrival accepts only into non-full VOQs; the subphases move the
    greatest-value eligible packets but refuse to preempt.  Ablation
    baseline isolating the contribution of CPG's threshold machinery.
    """

    name = "CrossbarGreedy(no-preempt)"

    def on_arrival(self, switch: CrossbarSwitch, packet: Packet) -> ArrivalDecision:
        if switch.voq[packet.src][packet.dst].is_full:
            return ArrivalDecision.reject()
        return ArrivalDecision.accepted()

    def input_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[InputTransfer]:
        transfers: List[InputTransfer] = []
        for i in range(switch.n_in):
            best: Optional[Packet] = None
            best_j = -1
            for j in range(switch.n_out):
                if switch.cross[i][j].is_full:
                    continue
                g = switch.voq[i][j].head()
                if g is not None and (best is None or g.beats(best)):
                    best = g
                    best_j = j
            if best is not None:
                transfers.append(InputTransfer(i, best_j, best))
        return transfers

    def output_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[OutputTransfer]:
        transfers: List[OutputTransfer] = []
        for j in range(switch.n_out):
            if switch.out[j].is_full:
                continue
            best: Optional[Packet] = None
            best_i = -1
            for i in range(switch.n_in):
                gc = switch.cross[i][j].head()
                if gc is not None and (best is None or gc.beats(best)):
                    best = gc
                    best_i = i
            if best is not None:
                transfers.append(OutputTransfer(best_i, j, best))
        return transfers
