"""Executable replay of Theorem 4's modified-OPT construction (CPG).

The buffered-crossbar weighted analysis (Section 3.2) modifies OPT with
Modifications 3.2.1–3.2.3 (privileged packets of Types 1–3, all sent
directly out of the switch) and maintains the three-level alignment of
Lemma 12:

* I1: VOQs     — |Q*_ij| <= |Q_ij| and v(δ*_ij(k)) <= v(δ_ij(k)),
* I2: crosspoints — |C*_ij| <= |C_ij| and v(γ*_ij(k)) <= β v(γ_ij(k)),
* I3: outputs  — |Q*_j| <= |Q_j| and v(δ*_j(k)) <= α β v(δ_j(k)).

Unlike the unit-value crossbar construction (Modifications 3.1.x),
nothing here *inserts* packets into OPT's queues, so the modified
crosspoint occupancy never exceeds the original one and the
"displacement" corner of :func:`repro.theory.shadow.replay_cgu_shadow`
cannot arise — the weighted replay is exact.

Certificate checks (instance-level Theorem 4):

* Lemma 12 invariants after every event,
* transmission pairing: OPT's value v from output j implies CPG sends
  >= v / (α β) from j in the same slot,
* Σ S* <= α β Σ S  and
  Σ P* <= (2αβ + αβ(β−1)) / ((α−1)(β−1)) Σ S (Lemma 14's aggregate),
* benefit conservation: S* + P* equals OPT's true benefit, hence
  OPT <= ratio(β, α) · CPG on the instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..core.params import cpg_ratio
from ..offline.timegraph import OptResult
from ..simulation.results import SimulationResult
from ..switch.config import SwitchConfig
from ..traffic.trace import Trace
from .shadow import InvariantViolation
from .shadow_weighted import _ValueQueue, _check_alignment

EPS = 1e-9


@dataclass
class CPGShadowCertificate:
    """Accounting of one Lemma 12 / Lemma 14 replay."""

    beta: float
    alpha: float
    cpg_benefit: float
    opt_benefit: float
    s_star_value: float
    privileged_value: float
    n_privileged: Tuple[int, int, int]
    skipped_y: int
    skipped_z: int
    invariant_checks: int

    @property
    def modified_opt_benefit(self) -> float:
        return self.s_star_value + self.privileged_value

    @property
    def s_star_bounded(self) -> bool:
        """Σ S* <= α β Σ S (consequence of Lemma 12 I3)."""
        return (
            self.s_star_value
            <= self.alpha * self.beta * self.cpg_benefit + 1e-6
        )

    @property
    def privileged_bounded(self) -> bool:
        """Σ P* within the Lemma 14 cap."""
        a, b = self.alpha, self.beta
        cap = (2 * a * b + a * b * (b - 1)) / ((a - 1) * (b - 1))
        return self.privileged_value <= cap * self.cpg_benefit + 1e-6

    @property
    def theorem4_certified(self) -> bool:
        bound = cpg_ratio(self.beta, self.alpha)
        return (
            self.modified_opt_benefit >= self.opt_benefit - 1e-6
            and self.modified_opt_benefit <= bound * self.cpg_benefit + 1e-6
        )


def replay_cpg_shadow(
    trace: Trace,
    config: SwitchConfig,
    cpg_result: SimulationResult,
    opt_model,
    opt_result: OptResult,
    beta: float,
    alpha: float,
) -> CPGShadowCertificate:
    """Execute Modifications 3.2.1–3.2.3 against a recorded CPG run.

    ``cpg_result`` must come from ``run_crossbar(CPGPolicy(...), ...,
    record=True)``; ``opt_model`` is the solved
    :class:`~repro.offline.crossbar_timegraph.CrossbarOptModel` (with
    ``extract_schedule=True``).
    """
    if beta <= 1.0 or alpha <= 1.0:
        raise ValueError("the Lemma 14 bound needs beta > 1 and alpha > 1")
    n_in, n_out = config.n_in, config.n_out
    b_in, b_cross, b_out = config.b_in, config.b_cross, config.b_out
    S = config.speedup

    value_of = {p.pid: p.value for p in trace.packets}
    onl_in: Dict[Tuple[int, int], List] = {}
    onl_out_tr: Dict[Tuple[int, int], List] = {}
    for ev in cpg_result.schedule_log:
        key = (ev.slot, ev.cycle)
        if ev.stage == "in":
            onl_in.setdefault(key, []).append(ev)
        elif ev.stage == "out":
            onl_out_tr.setdefault(key, []).append(ev)
    opt_y: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for t, s, i, j in opt_model.y_events:
        opt_y.setdefault((t, s), []).append((i, j))
    opt_z: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for t, s, i, j in opt_model.z_events:
        opt_z.setdefault((t, s), []).append((i, j))
    opt_accepted = set(opt_result.accepted_pids)

    onl_voq = [[_ValueQueue() for _ in range(n_out)] for _ in range(n_in)]
    onl_cross = [[_ValueQueue() for _ in range(n_out)] for _ in range(n_in)]
    onl_outq = [_ValueQueue() for _ in range(n_out)]
    opt_voq = [[_ValueQueue() for _ in range(n_out)] for _ in range(n_in)]
    opt_cross = [[_ValueQueue() for _ in range(n_out)] for _ in range(n_in)]
    opt_outq = [_ValueQueue() for _ in range(n_out)]

    checks = 0

    def check_all() -> None:
        nonlocal checks
        checks += 1
        for i in range(n_in):
            for j in range(n_out):
                _check_alignment(opt_voq[i][j], onl_voq[i][j], 1.0,
                                 f"VOQ ({i},{j})")
                _check_alignment(opt_cross[i][j], onl_cross[i][j], beta,
                                 f"crosspoint ({i},{j})")
        for j in range(n_out):
            _check_alignment(opt_outq[j], onl_outq[j], alpha * beta,
                             f"output {j}")

    cpg_sent = 0.0
    s_star = 0.0
    priv = [0.0, 0.0, 0.0]
    n_priv = [0, 0, 0]
    skipped_y = 0
    skipped_z = 0

    for t in range(cpg_result.horizon):
        # ---- arrival phase (CPG's PG-style rule re-derived) ----
        for p in trace.arrivals(t):
            q = onl_voq[p.src][p.dst]
            if len(q) < b_in:
                q.push(p.value)
            elif q.tail() < p.value:
                q.pop_min()
                q.push(p.value)
            if p.pid in opt_accepted:
                opt_voq[p.src][p.dst].push(p.value)
            check_all()

        # ---- scheduling phase ----
        for s in range(S):
            key = (t, s)

            # --- input subphase ---
            onl_cycle_in = onl_in.get(key, [])
            opt_cycle_y = opt_y.get(key, [])
            pre_cross_len = [
                [len(onl_cross[i][j]) for j in range(n_out)]
                for i in range(n_in)
            ]
            pre_cross_tail = [
                [onl_cross[i][j].tail() if len(onl_cross[i][j]) else None
                 for j in range(n_out)]
                for i in range(n_in)
            ]
            onl_in_dsts: Set[Tuple[int, int]] = set()
            for ev in onl_cycle_in:
                q = onl_voq[ev.src][ev.dst]
                g = q.pop_max()
                if abs(g - value_of[ev.pid]) > EPS:
                    raise InvariantViolation(
                        f"online input log inconsistent at {key}: pid "
                        f"{ev.pid} value {value_of[ev.pid]} vs head {g}"
                    )
                c = onl_cross[ev.src][ev.dst]
                if ev.preempted_pid is not None:
                    c.pop_min()
                if len(c) >= b_cross:
                    raise InvariantViolation(
                        f"online log overflows crosspoint "
                        f"({ev.src},{ev.dst})"
                    )
                c.push(g)
                onl_in_dsts.add((ev.src, ev.dst))

            executed_y: Set[Tuple[int, int]] = set()
            for i, j in opt_cycle_y:
                if len(opt_voq[i][j]) == 0:
                    skipped_y += 1
                    continue
                v = opt_voq[i][j].pop_max()
                executed_y.add((i, j))
                if (i, j) not in onl_in_dsts:
                    # Modification 3.2.2 (Type 2): CPG did not transfer
                    # into C_ij; redirect if C_ij had room or the packet
                    # beats beta times its cheapest resident.
                    not_full = pre_cross_len[i][j] < b_cross
                    big = (
                        pre_cross_tail[i][j] is not None
                        and v > beta * pre_cross_tail[i][j] + EPS
                    )
                    if not_full or big:
                        priv[1] += v
                        n_priv[1] += 1
                        continue
                opt_cross[i][j].push(v)
                if len(opt_cross[i][j]) > b_cross:
                    raise InvariantViolation(
                        f"modified OPT overflows crosspoint ({i},{j})"
                    )

            # Modification 3.2.1 (Type 1).
            for i, j in onl_in_dsts:
                if (i, j) not in executed_y and len(opt_voq[i][j]) > 0:
                    priv[0] += opt_voq[i][j].pop_max()
                    n_priv[0] += 1

            check_all()

            # --- output subphase ---
            onl_cycle_out = onl_out_tr.get(key, [])
            opt_cycle_z = opt_z.get(key, [])
            onl_out_srcs: Set[Tuple[int, int]] = set()
            for ev in onl_cycle_out:
                c = onl_cross[ev.src][ev.dst]
                gc = c.pop_max()
                if abs(gc - value_of[ev.pid]) > EPS:
                    raise InvariantViolation(
                        f"online output log inconsistent at {key}: pid "
                        f"{ev.pid} value {value_of[ev.pid]} vs head {gc}"
                    )
                out_q = onl_outq[ev.dst]
                if ev.preempted_pid is not None:
                    out_q.pop_min()
                if len(out_q) >= b_out:
                    raise InvariantViolation(
                        f"online log overflows output {ev.dst}"
                    )
                out_q.push(gc)
                onl_out_srcs.add((ev.src, ev.dst))

            executed_z: Set[Tuple[int, int]] = set()
            for i, j in opt_cycle_z:
                if len(opt_cross[i][j]) == 0:
                    skipped_z += 1
                    continue
                v = opt_cross[i][j].pop_max()
                executed_z.add((i, j))
                opt_outq[j].push(v)
                if len(opt_outq[j]) > b_out:
                    raise InvariantViolation(
                        f"modified OPT overflows output {j}"
                    )

            # Modification 3.2.3 (Type 3).
            for i, j in onl_out_srcs:
                if (i, j) not in executed_z and len(opt_cross[i][j]) > 0:
                    priv[2] += opt_cross[i][j].pop_max()
                    n_priv[2] += 1

            check_all()

        # ---- transmission phase (both greedy-by-value) ----
        for j in range(n_out):
            if len(opt_outq[j]) > 0:
                v_star = opt_outq[j].pop_max()
                if len(onl_outq[j]) == 0:
                    raise InvariantViolation(
                        f"OPT transmits from output {j} at slot {t} but "
                        f"CPG cannot"
                    )
                v_onl = onl_outq[j].head()
                if v_star > alpha * beta * v_onl + EPS:
                    raise InvariantViolation(
                        f"transmission pairing violated at output {j}: "
                        f"{v_star} > alpha*beta * {v_onl}"
                    )
                s_star += v_star
            if len(onl_outq[j]) > 0:
                cpg_sent += onl_outq[j].pop_max()
        check_all()

    if abs(cpg_sent - cpg_result.benefit) > 1e-6:
        raise InvariantViolation(
            f"replayed CPG benefit {cpg_sent} != recorded "
            f"{cpg_result.benefit}"
        )
    residual = (
        sum(len(opt_voq[i][j]) + len(opt_cross[i][j])
            for i in range(n_in) for j in range(n_out))
        + sum(len(q) for q in opt_outq)
    )
    if residual:
        raise InvariantViolation(
            f"modified OPT failed to drain: {residual} packets left"
        )
    total_priv = sum(priv)
    if abs(s_star + total_priv - opt_result.benefit) > 1e-6:
        raise InvariantViolation(
            f"benefit conservation broken: {s_star} + {total_priv} != "
            f"{opt_result.benefit}"
        )

    return CPGShadowCertificate(
        beta=beta,
        alpha=alpha,
        cpg_benefit=cpg_sent,
        opt_benefit=opt_result.benefit,
        s_star_value=s_star,
        privileged_value=total_priv,
        n_privileged=(n_priv[0], n_priv[1], n_priv[2]),
        skipped_y=skipped_y,
        skipped_z=skipped_z,
        invariant_checks=checks,
    )
