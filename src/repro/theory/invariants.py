"""Algorithm-faithfulness checkers.

Wrappers that verify, decision by decision, that a policy implementation
obeys the paper's specification: edge eligibility, maximality of the
greedy matching, weight-ordering, and the preemption rules.  Used by
tests and available to any simulation via ``check_faithfulness``-style
wrapping — a policy bug then fails loudly at the first unfaithful
decision instead of skewing measured ratios.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..scheduling.base import ArrivalDecision, CIOQPolicy, CrossbarPolicy
from ..switch.cioq import CIOQSwitch, Transfer
from ..switch.crossbar import CrossbarSwitch, InputTransfer, OutputTransfer
from ..switch.packet import Packet


class FaithfulnessError(AssertionError):
    """A policy decision violated the paper's specification."""


def _gm_eligible_edges(switch: CIOQSwitch) -> Set[Tuple[int, int]]:
    """Edge set of G_{T[s]} for the unit-value case (Section 2.1)."""
    return {
        (i, j)
        for i in range(switch.n_in)
        for j in range(switch.n_out)
        if not switch.voq[i][j].is_empty and not switch.out[j].is_full
    }


def _pg_eligible(switch: CIOQSwitch, beta: float, i: int, j: int) -> Optional[Packet]:
    """g_ij if edge (i, j) is in PG's G_{T[s]} (Section 2.2), else None."""
    g = switch.voq[i][j].head()
    if g is None:
        return None
    out_q = switch.out[j]
    if not out_q.is_full:
        return g
    tail = out_q.tail()
    if tail is not None and g.value > beta * tail.value:
        return g
    return None


def check_matching_property(transfers: List[Transfer]) -> None:
    """At most one packet per input port and per output queue."""
    ins = [tr.src for tr in transfers]
    outs = [tr.dst for tr in transfers]
    if len(set(ins)) != len(ins):
        raise FaithfulnessError(f"input port matched twice: {sorted(ins)}")
    if len(set(outs)) != len(outs):
        raise FaithfulnessError(f"output port matched twice: {sorted(outs)}")


def check_gm_cycle(switch: CIOQSwitch, transfers: List[Transfer]) -> None:
    """Verify one GM scheduling decision against the pre-cycle state.

    Checks: matching property; every matched edge eligible; no
    preemptions; *maximality* — no eligible edge has both ports free.
    """
    check_matching_property(transfers)
    eligible = _gm_eligible_edges(switch)
    used_i = {tr.src for tr in transfers}
    used_j = {tr.dst for tr in transfers}
    for tr in transfers:
        if (tr.src, tr.dst) not in eligible:
            raise FaithfulnessError(
                f"GM matched ineligible edge ({tr.src},{tr.dst})"
            )
        if tr.preempt is not None:
            raise FaithfulnessError("GM must never preempt")
    for i, j in eligible:
        if i not in used_i and j not in used_j:
            raise FaithfulnessError(
                f"GM matching is not maximal: edge ({i},{j}) addable"
            )


def check_pg_cycle(
    switch: CIOQSwitch, transfers: List[Transfer], beta: float
) -> None:
    """Verify one PG scheduling decision against the pre-cycle state.

    Checks: matching property; edges eligible under the beta rule; the
    transferred packet is g_ij; preemption declared exactly when the
    output queue is full and names l_j; maximality w.r.t. PG's edge
    set; and the *greedy-by-weight* property — for every matched edge,
    no strictly heavier eligible edge sharing a port was skippable
    (equivalently, the matching is obtainable by the descending-weight
    scan, which we check via the standard local condition: each
    unmatched eligible edge must share a port with a matched edge of
    weight >= its own).
    """
    check_matching_property(transfers)
    eligible: Dict[Tuple[int, int], Packet] = {}
    for i in range(switch.n_in):
        for j in range(switch.n_out):
            g = _pg_eligible(switch, beta, i, j)
            if g is not None:
                eligible[(i, j)] = g

    used_i: Dict[int, float] = {}
    used_j: Dict[int, float] = {}
    for tr in transfers:
        key = (tr.src, tr.dst)
        if key not in eligible:
            raise FaithfulnessError(f"PG matched ineligible edge {key}")
        g = eligible[key]
        if tr.packet.pid != g.pid:
            raise FaithfulnessError(
                f"PG must transfer g_ij (pid {g.pid}), transferred "
                f"pid {tr.packet.pid}"
            )
        out_q = switch.out[tr.dst]
        if out_q.is_full:
            lj = out_q.tail()
            assert lj is not None
            if tr.preempt is None or tr.preempt.pid != lj.pid:
                raise FaithfulnessError(
                    f"PG must preempt l_j (pid {lj.pid}) when inserting into "
                    f"full output {tr.dst}"
                )
        elif tr.preempt is not None:
            raise FaithfulnessError(
                f"PG declared a preemption into non-full output {tr.dst}"
            )
        used_i[tr.src] = g.value
        used_j[tr.dst] = g.value

    for (i, j), g in eligible.items():
        blocked_i = i in used_i
        blocked_j = j in used_j
        if not blocked_i and not blocked_j:
            raise FaithfulnessError(
                f"PG matching not maximal: eligible edge ({i},{j}) addable"
            )
        # Greedy-by-weight: a skipped edge must be blocked by an edge of
        # weight >= its own (ties broken deterministically are allowed).
        if blocked_i and used_i[i] < g.value - 1e-12 and (
            not blocked_j or used_j[j] < g.value - 1e-12
        ):
            raise FaithfulnessError(
                f"PG skipped edge ({i},{j}) of weight {g.value} though all "
                f"blocking edges are lighter"
            )
        if blocked_j and used_j[j] < g.value - 1e-12 and (
            not blocked_i or used_i[i] < g.value - 1e-12
        ):
            raise FaithfulnessError(
                f"PG skipped edge ({i},{j}) of weight {g.value} though all "
                f"blocking edges are lighter"
            )


class CheckedCIOQPolicy(CIOQPolicy):
    """Wrapper running per-cycle faithfulness checks on GM or PG."""

    def __init__(self, inner: CIOQPolicy, kind: str, beta: float = 1.0):
        if kind not in ("gm", "pg"):
            raise ValueError("kind must be 'gm' or 'pg'")
        self.inner = inner
        self.kind = kind
        self.beta = beta
        self.name = f"checked[{inner.name}]"

    def reset(self, switch: CIOQSwitch) -> None:
        self.inner.reset(switch)

    def on_arrival(self, switch: CIOQSwitch, packet: Packet) -> ArrivalDecision:
        decision = self.inner.on_arrival(switch, packet)
        q = switch.voq[packet.src][packet.dst]
        if self.kind == "gm":
            if decision.accept and q.is_full:
                raise FaithfulnessError("GM accepted into a full VOQ")
            if not decision.accept and not q.is_full:
                raise FaithfulnessError("GM rejected though the VOQ has space")
            if decision.preempt is not None:
                raise FaithfulnessError("GM must never preempt on arrival")
        else:
            tail = q.tail()
            should_accept = (not q.is_full) or (
                tail is not None and tail.value < packet.value
            )
            if decision.accept != should_accept:
                raise FaithfulnessError(
                    f"PG arrival rule violated for packet {packet.pid}"
                )
            if decision.accept and q.is_full:
                if decision.preempt is None or decision.preempt.pid != tail.pid:
                    raise FaithfulnessError(
                        "PG must preempt l_ij when accepting into a full VOQ"
                    )
        return decision

    def schedule(self, switch: CIOQSwitch, slot: int, cycle: int) -> List[Transfer]:
        transfers = self.inner.schedule(switch, slot, cycle)
        if self.kind == "gm":
            check_gm_cycle(switch, transfers)
        else:
            check_pg_cycle(switch, transfers, self.beta)
        return transfers

    def select_transmissions(self, switch: CIOQSwitch) -> Dict[int, Packet]:
        selections = self.inner.select_transmissions(switch)
        for j, q in enumerate(switch.out):
            head = q.head()
            if head is None:
                if j in selections:
                    raise FaithfulnessError(f"transmission from empty output {j}")
            else:
                if j not in selections:
                    raise FaithfulnessError(
                        f"work-conservation violated: output {j} non-empty but idle"
                    )
                if selections[j].value < head.value - 1e-12:
                    raise FaithfulnessError(
                        f"transmission from output {j} is not the head packet"
                    )
        return selections


def check_cgu_input_subphase(
    switch: CrossbarSwitch, transfers: List[InputTransfer]
) -> None:
    """CGU input subphase: per input, one transfer from an eligible VOQ,
    and none only if no VOQ is eligible."""
    by_input: Dict[int, InputTransfer] = {}
    for tr in transfers:
        if tr.src in by_input:
            raise FaithfulnessError(f"input {tr.src} released two packets")
        by_input[tr.src] = tr
        if switch.voq[tr.src][tr.dst].is_empty:
            raise FaithfulnessError("CGU transferred from an empty VOQ")
        if switch.cross[tr.src][tr.dst].is_full:
            raise FaithfulnessError("CGU transferred into a full crosspoint")
        if tr.preempt is not None:
            raise FaithfulnessError("CGU must never preempt")
    for i in range(switch.n_in):
        if i in by_input:
            continue
        for j in range(switch.n_out):
            if not switch.voq[i][j].is_empty and not switch.cross[i][j].is_full:
                raise FaithfulnessError(
                    f"CGU idle at input {i} though VOQ ({i},{j}) is eligible"
                )


def check_cgu_output_subphase(
    switch: CrossbarSwitch, transfers: List[OutputTransfer]
) -> None:
    """CGU output subphase: per output, one transfer from a non-empty
    crosspoint while the output queue has room; none only if impossible."""
    by_output: Dict[int, OutputTransfer] = {}
    for tr in transfers:
        if tr.dst in by_output:
            raise FaithfulnessError(f"output {tr.dst} admitted two packets")
        by_output[tr.dst] = tr
        if switch.cross[tr.src][tr.dst].is_empty:
            raise FaithfulnessError("CGU transferred from an empty crosspoint")
        if switch.out[tr.dst].is_full:
            raise FaithfulnessError("CGU transferred into a full output queue")
        if tr.preempt is not None:
            raise FaithfulnessError("CGU must never preempt")
    for j in range(switch.n_out):
        if j in by_output or switch.out[j].is_full:
            continue
        for i in range(switch.n_in):
            if not switch.cross[i][j].is_empty:
                raise FaithfulnessError(
                    f"CGU idle at output {j} though crosspoint ({i},{j}) is "
                    f"non-empty"
                )


class CheckedCGUPolicy(CrossbarPolicy):
    """Wrapper running per-subphase faithfulness checks on CGU."""

    def __init__(self, inner: CrossbarPolicy):
        self.inner = inner
        self.name = f"checked[{inner.name}]"

    def reset(self, switch: CrossbarSwitch) -> None:
        self.inner.reset(switch)

    def on_arrival(self, switch: CrossbarSwitch, packet: Packet) -> ArrivalDecision:
        decision = self.inner.on_arrival(switch, packet)
        q = switch.voq[packet.src][packet.dst]
        if decision.accept and q.is_full:
            raise FaithfulnessError("CGU accepted into a full VOQ")
        if not decision.accept and not q.is_full:
            raise FaithfulnessError("CGU rejected though the VOQ has space")
        return decision

    def input_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[InputTransfer]:
        transfers = self.inner.input_subphase(switch, slot, cycle)
        check_cgu_input_subphase(switch, transfers)
        return transfers

    def output_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[OutputTransfer]:
        transfers = self.inner.output_subphase(switch, slot, cycle)
        check_cgu_output_subphase(switch, transfers)
        return transfers
