"""Executable replay of the proofs' "modified OPT" constructions.

The paper's analyses (Sections 2.1 and 3.1) compare the online algorithm
against an optimal offline algorithm that is *modified on the fly*: at
the end of each scheduling cycle, OPT is granted "privileged" packets it
may send directly out of the switch (Modifications 2.1.1/2.1.2) and — in
the crossbar analysis — freshly created "extra" packets (Modifications
3.1.1–3.1.3).  These modifications are engineered so that simple
dominance invariants hold at all times:

* Lemma 1 (CIOQ, unit values):  |Q*_ij| <= |Q_ij| and |Q*_j| <= |Q_j|,
* Lemma 8 (crossbar, unit values):  |Q*_ij| <= |Q_ij| and
  |C*_ij| >= |C_ij|,

from which the competitive ratios follow by the mapping schemes of
Lemmas 3, 9 and 11.

This module *executes* those constructions on concrete instances: it
replays the recorded online run and the exact offline schedule side by
side, applies each modification literally, checks every invariant after
every event, and returns the resulting accounting — an instance-level
certificate that the proof machinery behaves as claimed (experiment T8).

Unit-value instances only (packets are anonymous units, which is what
makes the replay's bookkeeping exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..offline.timegraph import OptResult
from ..simulation.results import SimulationResult
from ..switch.config import SwitchConfig
from ..traffic.trace import Trace


class InvariantViolation(AssertionError):
    """A dominance invariant from the paper's lemmas failed during replay."""


# ---------------------------------------------------------------------------
# CIOQ / GM — Theorem 1 machinery
# ---------------------------------------------------------------------------

@dataclass
class GMShadowCertificate:
    """Accounting of one Lemma 1 / Lemma 3 replay."""

    gm_benefit: int
    opt_benefit: int
    s_star: int              #: modified OPT's normal transmissions
    privileged_type1: int    #: Modification 2.1.1 packets
    privileged_type2: int    #: Modification 2.1.2 packets
    skipped_departures: int  #: OPT departures voided by earlier privileges
    invariant_checks: int    #: number of I1/I2 checks performed

    @property
    def modified_opt_benefit(self) -> int:
        return self.s_star + self.privileged_type1 + self.privileged_type2

    @property
    def lemma1_held(self) -> bool:
        return True  # replay raises InvariantViolation otherwise

    @property
    def s_star_bounded(self) -> bool:
        """|S*| <= |S| (consequence of Lemma 1)."""
        return self.s_star <= self.gm_benefit

    @property
    def privileged_bounded(self) -> bool:
        """|P*| <= 2 |S| (Lemma 3)."""
        return (
            self.privileged_type1 + self.privileged_type2 <= 2 * self.gm_benefit
        )

    @property
    def theorem1_certified(self) -> bool:
        """Modified OPT benefit <= 3 GM benefit, and it dominates OPT."""
        return (
            self.modified_opt_benefit >= self.opt_benefit
            and self.modified_opt_benefit <= 3 * self.gm_benefit
        )


def replay_gm_shadow(
    trace: Trace,
    config: SwitchConfig,
    gm_result: SimulationResult,
    opt_result: OptResult,
) -> GMShadowCertificate:
    """Execute Modifications 2.1.1/2.1.2 against a recorded GM run.

    ``gm_result`` must come from ``run_cioq(GMPolicy(), ..., record=True)``
    and ``opt_result`` from ``cioq_opt(..., extract_schedule=True)`` on
    the *same* trace and configuration.
    """
    if not trace.is_unit_valued:
        raise ValueError("shadow replay requires a unit-value trace")
    n_in, n_out = config.n_in, config.n_out
    b_in, b_out = config.b_in, config.b_out
    S = config.speedup

    onl_transfers: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for ev in gm_result.schedule_log:
        onl_transfers.setdefault((ev.slot, ev.cycle), []).append((ev.src, ev.dst))
    opt_departures: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for t, s, i, j in opt_result.departures:
        opt_departures.setdefault((t, s), []).append((i, j))
    opt_accepted: Set[int] = set(opt_result.accepted_pids)

    onl_voq = [[0] * n_out for _ in range(n_in)]
    onl_out = [0] * n_out
    opt_voq = [[0] * n_out for _ in range(n_in)]
    opt_out = [0] * n_out

    checks = 0

    def check_invariants() -> None:
        nonlocal checks
        checks += 1
        for i in range(n_in):
            for j in range(n_out):
                if opt_voq[i][j] > onl_voq[i][j]:
                    raise InvariantViolation(
                        f"Lemma 1 I1 violated at VOQ ({i},{j}): "
                        f"|Q*|={opt_voq[i][j]} > |Q|={onl_voq[i][j]}"
                    )
        for j in range(n_out):
            if opt_out[j] > onl_out[j]:
                raise InvariantViolation(
                    f"Lemma 1 I2 violated at output {j}: "
                    f"|Q*|={opt_out[j]} > |Q|={onl_out[j]}"
                )

    s_star = 0
    s_onl = 0
    priv1 = 0
    priv2 = 0
    skipped = 0

    horizon = gm_result.horizon
    for t in range(horizon):
        # ---- arrival phase ----
        for p in trace.arrivals(t):
            if onl_voq[p.src][p.dst] < b_in:  # GM's arrival rule
                onl_voq[p.src][p.dst] += 1
            if p.pid in opt_accepted:
                opt_voq[p.src][p.dst] += 1
            check_invariants()

        # ---- scheduling phase ----
        for s in range(S):
            onl_cycle = onl_transfers.get((t, s), [])
            opt_cycle = opt_departures.get((t, s), [])
            pre_out = list(onl_out)
            onl_dsts = {j for _, j in onl_cycle}

            for i, j in onl_cycle:
                if onl_voq[i][j] <= 0 or onl_out[j] >= b_out:
                    raise InvariantViolation(
                        f"online log inconsistent at cycle ({t},{s}), edge "
                        f"({i},{j})"
                    )
                onl_voq[i][j] -= 1
                onl_out[j] += 1

            executed: Set[Tuple[int, int]] = set()
            for i, j in opt_cycle:
                if opt_voq[i][j] <= 0:
                    # The scheduled packet was already sent as a
                    # privileged packet in an earlier cycle.
                    skipped += 1
                    continue
                opt_voq[i][j] -= 1
                executed.add((i, j))
                if j not in onl_dsts and pre_out[j] < b_out:
                    priv2 += 1  # Modification 2.1.2: sent directly out
                else:
                    opt_out[j] += 1

            # Modification 2.1.1: GM transferred from Q_ij, OPT did not
            # transfer from Q*_ij, and Q*_ij is non-empty.
            for i, j in onl_cycle:
                if (i, j) not in executed and opt_voq[i][j] > 0:
                    opt_voq[i][j] -= 1
                    priv1 += 1

            check_invariants()

        # ---- transmission phase (both sides greedy) ----
        for j in range(n_out):
            if opt_out[j] > 0:
                if onl_out[j] <= 0:
                    raise InvariantViolation(
                        f"OPT transmits from output {j} at slot {t} but GM "
                        f"cannot (Lemma 1 consequence violated)"
                    )
                opt_out[j] -= 1
                s_star += 1
            if onl_out[j] > 0:
                onl_out[j] -= 1
                s_onl += 1
        check_invariants()

    # Drain completeness and consistency with the recorded runs.
    if any(v for row in opt_voq for v in row) or any(opt_out):
        raise InvariantViolation("modified OPT failed to drain by the horizon")
    if s_onl != gm_result.n_sent:
        raise InvariantViolation(
            f"replayed GM benefit {s_onl} != recorded {gm_result.n_sent}"
        )
    if priv1 != skipped:
        raise InvariantViolation(
            f"privileged/skip conservation broken: {priv1} != {skipped}"
        )
    if s_star + priv1 + priv2 != len(opt_accepted):
        raise InvariantViolation(
            "modified OPT accounting does not cover all accepted packets"
        )

    return GMShadowCertificate(
        gm_benefit=s_onl,
        opt_benefit=int(round(opt_result.benefit)),
        s_star=s_star,
        privileged_type1=priv1,
        privileged_type2=priv2,
        skipped_departures=skipped,
        invariant_checks=checks,
    )


# ---------------------------------------------------------------------------
# Buffered crossbar / CGU — Theorem 3 machinery
# ---------------------------------------------------------------------------

@dataclass
class CGUShadowCertificate:
    """Accounting of one Lemma 8 / Lemma 9 / Lemma 11 replay."""

    cgu_benefit: int
    opt_benefit: int
    s_star_transmissions: int  #: uncounted (normal) units transmitted
    privileged: int            #: Modification 3.1.1 packets
    extra_type1: int           #: Modification 3.1.2 packets
    extra_type2: int           #: Modification 3.1.3 packets
    displaced: int             #: normal y-transfers deflected by a full C*
    skipped_y: int
    skipped_z: int
    lemma9_violations: int     #: cycles with |S*_T[s]| > |S_T[s]|
    lemma11_violations: int    #: cycles with |P*_T[s]| > 2 |S_T[s]|
    invariant_checks: int

    @property
    def modified_opt_benefit(self) -> int:
        return (
            self.s_star_transmissions
            + self.privileged
            + self.extra_type1
            + self.extra_type2
            + self.displaced
        )

    @property
    def theorem3_certified(self) -> bool:
        """The theorem-level certificate: the modified OPT dominates the
        true OPT, stays within 3x CGU, and Lemma 9 holds per cycle."""
        return (
            self.modified_opt_benefit >= self.opt_benefit
            and self.modified_opt_benefit <= 3 * self.cgu_benefit
            and self.lemma9_violations == 0
        )

    @property
    def mapping_fully_certified(self) -> bool:
        """The stricter per-cycle mapping bound of Lemma 11.

        Displaced packets (the corner where OPT's normal transfer finds
        its modified crosspoint queue pre-filled by extras — a case the
        paper's prose does not treat) are counted against this bound, so
        it can fail on instances with displacement even though the
        aggregate Theorem 3 bound holds with large slack.  See
        EXPERIMENTS.md (T8) for the discussion.
        """
        return self.lemma11_violations == 0 and self.lemma9_violations == 0


def replay_cgu_shadow(
    trace: Trace,
    config: SwitchConfig,
    cgu_result: SimulationResult,
    opt_model,
    opt_result: OptResult,
) -> CGUShadowCertificate:
    """Execute Modifications 3.1.1–3.1.3 against a recorded CGU run.

    ``cgu_result`` must come from ``run_crossbar(CGUPolicy(), ...,
    record=True)``; ``opt_model`` is the solved
    :class:`~repro.offline.crossbar_timegraph.CrossbarOptModel` (with
    ``extract_schedule=True``), providing ``y_events`` / ``z_events``.

    Bookkeeping detail: units in the modified OPT's crosspoint and
    output queues carry a *credited* flag — privileged and extra packets
    contribute to OPT's benefit at creation (per the paper), so their
    later transmissions must not be credited again.  Normal units are
    credited at transmission (or at displacement, the corner case where
    a normal transfer finds its crosspoint queue filled by earlier
    extras; the paper's prose glosses this case, and the replay counts
    it separately for transparency).
    """
    if not trace.is_unit_valued:
        raise ValueError("shadow replay requires a unit-value trace")
    n_in, n_out = config.n_in, config.n_out
    b_in, b_cross, b_out = config.b_in, config.b_cross, config.b_out
    S = config.speedup

    onl_in: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    onl_out_tr: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for ev in cgu_result.schedule_log:
        key = (ev.slot, ev.cycle)
        if ev.stage == "in":
            onl_in.setdefault(key, []).append((ev.src, ev.dst))
        elif ev.stage == "out":
            onl_out_tr.setdefault(key, []).append((ev.src, ev.dst))
    opt_y: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for t, s, i, j in opt_model.y_events:
        opt_y.setdefault((t, s), []).append((i, j))
    opt_z: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for t, s, i, j in opt_model.z_events:
        opt_z.setdefault((t, s), []).append((i, j))
    opt_accepted: Set[int] = set(opt_result.accepted_pids)

    onl_voq = [[0] * n_out for _ in range(n_in)]
    onl_cross = [[0] * n_out for _ in range(n_in)]
    onl_outq = [0] * n_out
    opt_voq = [[0] * n_out for _ in range(n_in)]
    # Crosspoint and output queues of the modified OPT, split by credit
    # status: [uncounted, counted].
    opt_cross_u = [[0] * n_out for _ in range(n_in)]
    opt_cross_c = [[0] * n_out for _ in range(n_in)]
    opt_outq_u = [0] * n_out
    opt_outq_c = [0] * n_out

    checks = 0

    def check_invariants() -> None:
        nonlocal checks
        checks += 1
        for i in range(n_in):
            for j in range(n_out):
                if opt_voq[i][j] > onl_voq[i][j]:
                    raise InvariantViolation(
                        f"Lemma 8 I1 violated at VOQ ({i},{j}): "
                        f"|Q*|={opt_voq[i][j]} > |Q|={onl_voq[i][j]}"
                    )
                total_c_star = opt_cross_u[i][j] + opt_cross_c[i][j]
                if total_c_star < onl_cross[i][j]:
                    raise InvariantViolation(
                        f"Lemma 8 I2 violated at crosspoint ({i},{j}): "
                        f"|C*|={total_c_star} < |C|={onl_cross[i][j]}"
                    )

    s_star_trans = 0
    s_onl = 0
    priv = 0
    extra1 = 0
    extra2 = 0
    displaced = 0
    skipped_y = 0
    skipped_z = 0
    lemma9_violations = 0
    lemma11_violations = 0

    horizon = cgu_result.horizon
    for t in range(horizon):
        # ---- arrival phase ----
        for p in trace.arrivals(t):
            if onl_voq[p.src][p.dst] < b_in:  # CGU's arrival rule
                onl_voq[p.src][p.dst] += 1
            if p.pid in opt_accepted:
                opt_voq[p.src][p.dst] += 1
            check_invariants()

        # ---- scheduling phase ----
        for s in range(S):
            key = (t, s)
            onl_cycle_in = onl_in.get(key, [])
            onl_cycle_out = onl_out_tr.get(key, [])
            opt_cycle_y = opt_y.get(key, [])
            opt_cycle_z = opt_z.get(key, [])
            cycle_priv_extra = 0

            # --- input subphase ---
            for i, j in onl_cycle_in:
                if onl_voq[i][j] <= 0 or onl_cross[i][j] >= b_cross:
                    raise InvariantViolation(
                        f"online input log inconsistent at {key}, ({i},{j})"
                    )
                onl_voq[i][j] -= 1
                onl_cross[i][j] += 1

            executed_y: Set[Tuple[int, int]] = set()
            s_star_cycle = 0
            for i, j in opt_cycle_y:
                if opt_voq[i][j] <= 0:
                    skipped_y += 1
                    continue
                opt_voq[i][j] -= 1
                executed_y.add((i, j))
                if opt_cross_u[i][j] + opt_cross_c[i][j] < b_cross:
                    opt_cross_u[i][j] += 1
                    s_star_cycle += 1  # a normal-channel transfer (S*)
                else:
                    # Corner case the paper's prose glosses: the modified
                    # C*_ij was pre-filled by earlier extra/privileged
                    # packets, so the normal packet cannot use the normal
                    # channel.  It is deflected directly out (credited
                    # once) and accounted with the privileged packets —
                    # NOT with S*, preserving Lemma 9's per-cycle claim.
                    displaced += 1
                    cycle_priv_extra += 1

            # Modifications 3.1.1 / 3.1.2 (mutually exclusive per cycle).
            for i, j in onl_cycle_in:
                if (i, j) in executed_y:
                    continue
                c_star = opt_cross_u[i][j] + opt_cross_c[i][j]
                if opt_voq[i][j] > 0:
                    # 3.1.1: privileged packet from Q*_ij.
                    opt_voq[i][j] -= 1
                    priv += 1
                    cycle_priv_extra += 1
                    if c_star < b_cross:
                        opt_cross_c[i][j] += 1
                    # else: sent directly out (already credited).
                elif c_star < b_cross:
                    # 3.1.2: extra packet of Type 1.
                    opt_cross_c[i][j] += 1
                    extra1 += 1
                    cycle_priv_extra += 1

            if s_star_cycle > len(onl_cycle_in):
                lemma9_violations += 1

            # --- output subphase ---
            pre_onl_cross = [row[:] for row in onl_cross]
            for i, j in onl_cycle_out:
                if onl_cross[i][j] <= 0 or onl_outq[j] >= b_out:
                    raise InvariantViolation(
                        f"online output log inconsistent at {key}, ({i},{j})"
                    )
                onl_cross[i][j] -= 1
                onl_outq[j] += 1

            onl_out_srcs = {(i, j) for i, j in onl_cycle_out}
            for i, j in opt_cycle_z:
                took_uncounted = False
                if opt_cross_u[i][j] > 0:
                    opt_cross_u[i][j] -= 1
                    took_uncounted = True
                elif opt_cross_c[i][j] > 0:
                    opt_cross_c[i][j] -= 1
                else:
                    skipped_z += 1
                    continue
                if took_uncounted:
                    opt_outq_u[j] += 1
                else:
                    opt_outq_c[j] += 1
                # Modification 3.1.3: OPT transferred from C*_ij, CGU did
                # not transfer from C_ij, and C_ij is non-empty.
                if (i, j) not in onl_out_srcs and pre_onl_cross[i][j] > 0:
                    opt_cross_c[i][j] += 1
                    extra2 += 1
                    cycle_priv_extra += 1

            if cycle_priv_extra > 2 * len(onl_cycle_in):
                lemma11_violations += 1

            check_invariants()

        # ---- transmission phase (both greedy) ----
        for j in range(n_out):
            if opt_outq_u[j] > 0:
                opt_outq_u[j] -= 1
                s_star_trans += 1
            elif opt_outq_c[j] > 0:
                opt_outq_c[j] -= 1
            if onl_outq[j] > 0:
                onl_outq[j] -= 1
                s_onl += 1
        check_invariants()

    if s_onl != cgu_result.n_sent:
        raise InvariantViolation(
            f"replayed CGU benefit {s_onl} != recorded {cgu_result.n_sent}"
        )
    # Normal (uncounted) units must fully drain; credited units may
    # legitimately remain in crosspoint queues — extras contribute to the
    # benefit at creation, and the original schedule has no transfer
    # events for them.
    residual_normal = (
        sum(v for row in opt_voq for v in row)
        + sum(opt_cross_u[i][j] for i in range(n_in) for j in range(n_out))
        + sum(opt_outq_u)
    )
    if residual_normal:
        raise InvariantViolation(
            f"modified OPT failed to drain normal packets: "
            f"{residual_normal} units left"
        )
    credits = s_star_trans + priv + extra1 + extra2 + displaced
    if credits != len(opt_accepted) + extra1 + extra2:
        raise InvariantViolation(
            f"credit conservation broken: {credits} != "
            f"{len(opt_accepted)} + {extra1} + {extra2}"
        )

    return CGUShadowCertificate(
        cgu_benefit=s_onl,
        opt_benefit=int(round(opt_result.benefit)),
        s_star_transmissions=s_star_trans,
        privileged=priv,
        extra_type1=extra1,
        extra_type2=extra2,
        displaced=displaced,
        skipped_y=skipped_y,
        skipped_z=skipped_z,
        lemma9_violations=lemma9_violations,
        lemma11_violations=lemma11_violations,
        invariant_checks=checks,
    )
