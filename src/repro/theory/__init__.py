"""Analysis machinery from the paper's proofs, made executable."""

from .ratios import (
    OptimumCheck,
    cpg_alpha_given_beta,
    verify_cpg_beta_cubic,
    verify_cpg_optimum,
    verify_paper_constants,
    verify_pg_optimum,
)
from .invariants import (
    CheckedCGUPolicy,
    CheckedCIOQPolicy,
    FaithfulnessError,
    check_cgu_input_subphase,
    check_cgu_output_subphase,
    check_gm_cycle,
    check_matching_property,
    check_pg_cycle,
)
from .shadow import (
    CGUShadowCertificate,
    GMShadowCertificate,
    InvariantViolation,
    replay_cgu_shadow,
    replay_gm_shadow,
)
from .shadow_weighted import PGShadowCertificate, replay_pg_shadow
from .shadow_cpg import CPGShadowCertificate, replay_cpg_shadow

__all__ = [
    "OptimumCheck",
    "cpg_alpha_given_beta",
    "verify_cpg_beta_cubic",
    "verify_cpg_optimum",
    "verify_paper_constants",
    "verify_pg_optimum",
    "CheckedCGUPolicy",
    "CheckedCIOQPolicy",
    "FaithfulnessError",
    "check_cgu_input_subphase",
    "check_cgu_output_subphase",
    "check_gm_cycle",
    "check_matching_property",
    "check_pg_cycle",
    "CGUShadowCertificate",
    "GMShadowCertificate",
    "InvariantViolation",
    "replay_cgu_shadow",
    "replay_gm_shadow",
    "PGShadowCertificate",
    "replay_pg_shadow",
    "CPGShadowCertificate",
    "replay_cpg_shadow",
]
