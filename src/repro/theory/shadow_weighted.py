"""Executable replay of Theorem 2's modified-OPT construction (weighted).

Extends :mod:`repro.theory.shadow` to the general-value CIOQ case: PG
versus an offline optimum modified by Modifications 2.2.1–2.2.3, with
the *positional value-alignment* invariants of Lemma 4 checked after
every event:

* I1: |Q*_ij| <= |Q_ij| and v(δ*_ij(k)) <= v(δ_ij(k)) for every
  position k (each OPT packet is aligned to an online packet of at
  least its value in the same VOQ),
* I2: |Q*_j| <= |Q_j| and v(δ*_j(k)) <= β v(δ_j(k)) at every output.

The offline schedule comes from the exact MILP; because the time-
expanded model is anonymous within each (i, j) chain, *any* departure
order is feasible, so the replay applies Assumption A1 (OPT releases
the most valuable packet of a queue first) literally, exactly as the
proof assumes.

Certificate checks (instance-level Theorem 2):

* Lemma 4 invariants hold at every event (else
  :class:`~repro.theory.shadow.InvariantViolation`),
* whenever modified OPT transmits value v from output j, PG transmits
  value >= v / β from j in the same slot (the I2 consequence),
* Σ S* <= β Σ S and Σ P* <= 2β/(β−1) Σ S (Lemma 7's aggregate),
* benefit conservation: S* + P* equals OPT's true benefit, so
  OPT <= (β + 2β/(β−1)) · PG on the instance.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..offline.timegraph import OptResult
from ..simulation.results import SimulationResult
from ..switch.config import SwitchConfig
from ..traffic.trace import Trace
from .shadow import InvariantViolation

EPS = 1e-9


@dataclass
class PGShadowCertificate:
    """Accounting of one Lemma 4 / Lemma 7 replay."""

    beta: float
    pg_benefit: float
    opt_benefit: float
    s_star_value: float        #: value of modified OPT's normal transmissions
    privileged_value: float    #: total value of Types 1-3 privileged packets
    n_privileged: Tuple[int, int, int]
    skipped_departures: int
    invariant_checks: int

    @property
    def modified_opt_benefit(self) -> float:
        return self.s_star_value + self.privileged_value

    @property
    def s_star_bounded(self) -> bool:
        """Σ S* <= β Σ S (consequence of Lemma 4 I2)."""
        return self.s_star_value <= self.beta * self.pg_benefit + 1e-6

    @property
    def privileged_bounded(self) -> bool:
        """Σ P* <= 2β/(β−1) Σ S (Lemma 7)."""
        cap = 2.0 * self.beta / (self.beta - 1.0)
        return self.privileged_value <= cap * self.pg_benefit + 1e-6

    @property
    def theorem2_certified(self) -> bool:
        ratio_bound = self.beta + 2.0 * self.beta / (self.beta - 1.0)
        return (
            self.modified_opt_benefit >= self.opt_benefit - 1e-6
            and self.modified_opt_benefit
            <= ratio_bound * self.pg_benefit + 1e-6
        )


class _ValueQueue:
    """A queue as a descending-sorted list of values (Assumption A3)."""

    __slots__ = ("vals",)

    def __init__(self):
        self.vals: List[float] = []  # ascending; head is vals[-1]

    def __len__(self) -> int:
        return len(self.vals)

    def push(self, v: float) -> None:
        insort(self.vals, v)

    def pop_max(self) -> float:
        return self.vals.pop()

    def pop_min(self) -> float:
        return self.vals.pop(0)

    def head(self) -> float:
        return self.vals[-1]

    def tail(self) -> float:
        return self.vals[0]

    def descending(self) -> List[float]:
        return self.vals[::-1]


def _check_alignment(q_star: _ValueQueue, q_onl: _ValueQueue,
                     factor: float, where: str) -> None:
    """Positional dominance: v(δ*(k)) <= factor * v(δ(k)) for all k."""
    if len(q_star) > len(q_onl):
        raise InvariantViolation(
            f"Lemma 4 length violated at {where}: "
            f"|Q*|={len(q_star)} > |Q|={len(q_onl)}"
        )
    star = q_star.descending()
    onl = q_onl.descending()
    for k, v_star in enumerate(star):
        if v_star > factor * onl[k] + EPS:
            raise InvariantViolation(
                f"Lemma 4 alignment violated at {where}, position {k + 1}: "
                f"{v_star} > {factor} * {onl[k]}"
            )


def replay_pg_shadow(
    trace: Trace,
    config: SwitchConfig,
    pg_result: SimulationResult,
    opt_result: OptResult,
    beta: float,
) -> PGShadowCertificate:
    """Execute Modifications 2.2.1–2.2.3 against a recorded PG run.

    ``pg_result`` must come from ``run_cioq(PGPolicy(beta=...), ...,
    record=True)`` and ``opt_result`` from ``cioq_opt(...,
    extract_schedule=True)`` on the same instance.
    """
    if beta <= 1.0:
        raise ValueError("the Lemma 7 bound needs beta > 1")
    n_in, n_out = config.n_in, config.n_out
    b_in, b_out = config.b_in, config.b_out
    S = config.speedup

    value_of = {p.pid: p.value for p in trace.packets}
    onl_events: Dict[Tuple[int, int], List] = {}
    for ev in pg_result.schedule_log:
        onl_events.setdefault((ev.slot, ev.cycle), []).append(ev)
    opt_departures: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for t, s, i, j in opt_result.departures:
        opt_departures.setdefault((t, s), []).append((i, j))
    opt_accepted = set(opt_result.accepted_pids)

    onl_voq = [[_ValueQueue() for _ in range(n_out)] for _ in range(n_in)]
    onl_out = [_ValueQueue() for _ in range(n_out)]
    opt_voq = [[_ValueQueue() for _ in range(n_out)] for _ in range(n_in)]
    opt_out = [_ValueQueue() for _ in range(n_out)]

    checks = 0

    def check_all() -> None:
        nonlocal checks
        checks += 1
        for i in range(n_in):
            for j in range(n_out):
                _check_alignment(opt_voq[i][j], onl_voq[i][j], 1.0,
                                 f"VOQ ({i},{j})")
        for j in range(n_out):
            _check_alignment(opt_out[j], onl_out[j], beta, f"output {j}")

    pg_sent = 0.0
    s_star = 0.0
    priv = [0.0, 0.0, 0.0]
    n_priv = [0, 0, 0]
    skipped = 0

    for t in range(pg_result.horizon):
        # ---- arrival phase (PG's rule re-derived; OPT from accept set) ----
        for p in trace.arrivals(t):
            q = onl_voq[p.src][p.dst]
            if len(q) < b_in:
                q.push(p.value)
            elif q.tail() < p.value:
                q.pop_min()
                q.push(p.value)
            if p.pid in opt_accepted:
                opt_voq[p.src][p.dst].push(p.value)
            check_all()

        # ---- scheduling phase ----
        for s in range(S):
            onl_cycle = onl_events.get((t, s), [])
            opt_cycle = opt_departures.get((t, s), [])
            pre_out_len = [len(onl_out[j]) for j in range(n_out)]
            pre_out_tail = [
                onl_out[j].tail() if len(onl_out[j]) else None
                for j in range(n_out)
            ]

            # Apply the online transfers from the recorded log.
            onl_value_to: Dict[int, float] = {}
            onl_from: set = set()
            for ev in onl_cycle:
                q = onl_voq[ev.src][ev.dst]
                g = q.pop_max()
                if abs(g - value_of[ev.pid]) > EPS:
                    raise InvariantViolation(
                        f"online log inconsistent: transferred pid {ev.pid} "
                        f"value {value_of[ev.pid]} but queue head is {g}"
                    )
                out_q = onl_out[ev.dst]
                if ev.preempted_pid is not None:
                    out_q.pop_min()
                if len(out_q) >= b_out:
                    raise InvariantViolation(
                        f"online log overflows output {ev.dst}"
                    )
                out_q.push(g)
                onl_value_to[ev.dst] = g
                onl_from.add((ev.src, ev.dst))

            # OPT's normal departures under Assumption A1 (greatest value
            # first), with Modifications 2.2.2 / 2.2.3 applied inline.
            executed: set = set()
            for i, j in opt_cycle:
                if len(opt_voq[i][j]) == 0:
                    skipped += 1
                    continue
                v = opt_voq[i][j].pop_max()
                executed.add((i, j))
                if j in onl_value_to:
                    if onl_value_to[j] < v - EPS:
                        priv[1] += v  # Modification 2.2.2 (Type 2)
                        n_priv[1] += 1
                        continue
                else:
                    not_full = pre_out_len[j] < b_out
                    big = (
                        pre_out_tail[j] is not None
                        and v > beta * pre_out_tail[j] + EPS
                    )
                    if not_full or big:
                        priv[2] += v  # Modification 2.2.3 (Type 3)
                        n_priv[2] += 1
                        continue
                opt_out[j].push(v)
                if len(opt_out[j]) > b_out:
                    raise InvariantViolation(
                        f"modified OPT overflows output {j}"
                    )

            # Modification 2.2.1 (Type 1): PG transferred from Q_ij, OPT
            # did not transfer from Q*_ij, and Q*_ij is non-empty.
            for i, j in onl_from:
                if (i, j) not in executed and len(opt_voq[i][j]) > 0:
                    priv[0] += opt_voq[i][j].pop_max()
                    n_priv[0] += 1

            check_all()

        # ---- transmission phase (both greedy-by-value, A2) ----
        for j in range(n_out):
            if len(opt_out[j]) > 0:
                v_star = opt_out[j].pop_max()
                if len(onl_out[j]) == 0:
                    raise InvariantViolation(
                        f"OPT transmits from output {j} at slot {t} but PG "
                        f"cannot"
                    )
                v_onl = onl_out[j].head()
                if v_star > beta * v_onl + EPS:
                    raise InvariantViolation(
                        f"transmission pairing violated at output {j}: "
                        f"{v_star} > beta * {v_onl}"
                    )
                s_star += v_star
            if len(onl_out[j]) > 0:
                pg_sent += onl_out[j].pop_max()
        check_all()

    if abs(pg_sent - pg_result.benefit) > 1e-6:
        raise InvariantViolation(
            f"replayed PG benefit {pg_sent} != recorded {pg_result.benefit}"
        )
    residual = (
        sum(len(opt_voq[i][j]) for i in range(n_in) for j in range(n_out))
        + sum(len(q) for q in opt_out)
    )
    if residual:
        raise InvariantViolation(
            f"modified OPT failed to drain: {residual} packets left"
        )
    total_priv = sum(priv)
    if abs(s_star + total_priv - opt_result.benefit) > 1e-6:
        raise InvariantViolation(
            f"benefit conservation broken: {s_star} + {total_priv} != "
            f"{opt_result.benefit}"
        )

    return PGShadowCertificate(
        beta=beta,
        pg_benefit=pg_sent,
        opt_benefit=opt_result.benefit,
        s_star_value=s_star,
        privileged_value=total_priv,
        n_privileged=(n_priv[0], n_priv[1], n_priv[2]),
        skipped_departures=skipped,
        invariant_checks=checks,
    )
