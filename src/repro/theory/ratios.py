"""Numeric verification of the paper's analytical constants.

The closed forms live in :mod:`repro.core.params`; this module verifies,
by independent numerical optimization, that

* ``beta* = 1 + sqrt(2)`` minimizes PG's ratio ``beta + 2 beta/(beta-1)``
  and the minimum is ``3 + 2 sqrt(2)`` (Theorem 2),
* the radical expressions of Theorem 4 — ``rho = (19 + 3 sqrt 33)^(1/3)``,
  ``beta* = (rho^2 + rho + 4)/(3 rho)``, ``alpha* = 2/(beta*-1)^2`` —
  jointly minimize CPG's two-parameter ratio, and the claimed closed
  form of the minimum (~14.83) matches,
* ``beta*`` is a root of the stationarity condition (the cubic the
  authors solved), confirming the radicals were transcribed correctly.

These checks turn the paper's "it can be verified that..." remarks into
executable assertions (experiment T8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import optimize

from ..core.params import (
    cpg_optimal_params,
    cpg_ratio,
    pg_optimal_beta,
    pg_optimal_ratio,
    pg_ratio,
)


@dataclass
class OptimumCheck:
    """Comparison of an analytical optimum against a numerical one."""

    analytic_params: Tuple[float, ...]
    analytic_value: float
    numeric_params: Tuple[float, ...]
    numeric_value: float

    @property
    def params_error(self) -> float:
        return max(
            abs(a - b) for a, b in zip(self.analytic_params, self.numeric_params)
        )

    @property
    def value_error(self) -> float:
        return abs(self.analytic_value - self.numeric_value)

    @property
    def consistent(self) -> bool:
        return self.params_error < 1e-5 and self.value_error < 1e-8


def verify_pg_optimum() -> OptimumCheck:
    """Numerically minimize PG's ratio and compare with ``1 + sqrt 2``."""
    res = optimize.minimize_scalar(
        pg_ratio, bounds=(1.0 + 1e-9, 50.0), method="bounded",
        options={"xatol": 1e-12},
    )
    return OptimumCheck(
        analytic_params=(pg_optimal_beta(),),
        analytic_value=pg_optimal_ratio(),
        numeric_params=(float(res.x),),
        numeric_value=float(res.fun),
    )


def verify_cpg_optimum() -> OptimumCheck:
    """Numerically minimize CPG's two-parameter ratio and compare with
    the paper's radicals."""
    beta_star, alpha_star, ratio_star = cpg_optimal_params()

    def f(v: np.ndarray) -> float:
        return cpg_ratio(float(v[0]), float(v[1]))

    res = optimize.minimize(
        f,
        x0=np.array([2.0, 3.0]),
        method="Nelder-Mead",
        options={"xatol": 1e-12, "fatol": 1e-14, "maxiter": 20000},
    )
    return OptimumCheck(
        analytic_params=(beta_star, alpha_star),
        analytic_value=ratio_star,
        numeric_params=(float(res.x[0]), float(res.x[1])),
        numeric_value=float(res.fun),
    )


def cpg_alpha_given_beta(beta: float) -> float:
    """The inner optimum: for fixed beta, the alpha minimizing the ratio.

    Setting d/d alpha of ``ab + ab(beta+1)/((a-1)(b-1))`` to zero gives
    ``alpha* = 1 + sqrt((beta+1)/(beta-1))``.
    """
    if beta <= 1.0:
        raise ValueError("beta must exceed 1")
    return 1.0 + math.sqrt((beta + 1.0) / (beta - 1.0))


def verify_cpg_beta_cubic() -> float:
    """Residual of the stationarity condition at the paper's beta*.

    After eliminating alpha via :func:`cpg_alpha_given_beta`, the outer
    objective ``g(beta) = cpg_ratio(beta, alpha*(beta))`` must be
    stationary at beta*; returns |g'(beta*)| (numerical derivative),
    which should be ~0.
    """
    beta_star, _, _ = cpg_optimal_params()

    def g(b: float) -> float:
        return cpg_ratio(b, cpg_alpha_given_beta(b))

    h = 1e-6
    deriv = (g(beta_star + h) - g(beta_star - h)) / (2 * h)
    return abs(deriv)


def verify_paper_constants() -> dict:
    """One-call summary used by tests and the T8 bench."""
    pg = verify_pg_optimum()
    cpg = verify_cpg_optimum()
    beta_star, alpha_star, ratio_star = cpg_optimal_params()
    return {
        "pg_beta_star": pg.analytic_params[0],
        "pg_ratio_star": pg.analytic_value,
        "pg_consistent": pg.consistent,
        "cpg_beta_star": beta_star,
        "cpg_alpha_star": alpha_star,
        "cpg_ratio_star": ratio_star,
        "cpg_consistent": cpg.consistent,
        "cpg_alpha_formula_matches": abs(
            cpg_alpha_given_beta(beta_star) - alpha_star
        ),
        "cpg_cubic_residual": verify_cpg_beta_cubic(),
    }
