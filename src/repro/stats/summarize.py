"""Summary statistics over per-seed metric series.

The shared aggregation core of the replication subsystem:
:func:`collect_series` turns a scenario run's per-seed rows and metrics
table into ordered ``(policy, metric) -> [values]`` series, and
:func:`build_summary_rows` reduces each series to one summary row —
count, mean, sample stddev, standard error, normal CI bounds and
half-width, and (optionally) percentile-bootstrap bounds — in the fixed
:data:`SUMMARY_COLUMNS` schema.  :func:`summarize_artifact` applies the
same reduction to a previously written ``results/<name>/result.json``
artifact, so ``repro stats summarize`` can aggregate existing results
without re-simulating anything.

All reductions are pure functions of their inputs (the bootstrap is
seeded), and every non-finite statistic is serialized as ``None`` —
summary artifacts stay strict JSON and byte-reproducible.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.ratio import per_seed_ratios
from ..scenarios.spec import ScenarioSpec
from .ci import bootstrap_interval, normal_interval
from .welford import Welford

#: Column schema of one summary row (the order ``summary.csv`` uses).
#: Documented column-by-column in ``docs/statistics.md`` (a docs
#: consistency test enforces the pairing, like the scenario catalog's).
SUMMARY_COLUMNS = (
    "policy",
    "metric",
    "n",
    "n_undefined",
    "mean",
    "std",
    "sem",
    "ci_lo",
    "ci_hi",
    "half_width",
    "boot_lo",
    "boot_hi",
)

#: Bump when the summary artifact schema changes (consumers check this).
SUMMARY_VERSION = 1

Series = Dict[Tuple[str, str], List[Optional[float]]]


def _finite_or_none(x: float, digits: int = 6) -> Optional[float]:
    return round(x, digits) if math.isfinite(x) else None


def collect_series(
    rows: Sequence[Mapping[str, object]],
    metrics: Sequence[Mapping[str, object]],
    labels: Sequence[str],
    metric_names: Sequence[str],
    include_opt: bool,
) -> Series:
    """Ordered per-(policy, metric) value series from run tables.

    ``benefit`` comes from the per-seed benefit rows (it is always
    present, also for OPT); the remaining metrics come from the
    per-(seed, policy) metrics table.  Ratio series are added per policy
    when OPT ran, as *per-seed* ratios (None marks a seed whose ratio is
    unbounded).  Ordering is deterministic: policies in spec order, OPT
    last, metrics in spec order with ``benefit`` first.
    """
    all_labels = list(labels) + (["OPT"] if include_opt else [])
    names = ["benefit"] + [m for m in metric_names if m != "benefit"]
    series: Series = {}
    for label in all_labels:
        series[(label, "benefit")] = [float(r[label]) for r in rows]
    by_policy: Dict[str, List[Mapping[str, object]]] = {}
    for m in metrics:
        by_policy.setdefault(str(m["policy"]), []).append(m)
    for label in all_labels:
        for name in names[1:]:
            values = [m.get(name) for m in by_policy.get(label, [])]
            # OPT rows only carry benefit; skip all-missing series.
            if not values or any(v is None for v in values):
                continue
            series[(label, name)] = [float(v) for v in values]
    if include_opt:
        opt = series[("OPT", "benefit")]
        for label in labels:
            series[(label, "ratio")] = per_seed_ratios(
                opt, series[(label, "benefit")]
            )
    return series


def build_summary_rows(
    series: Series,
    confidence: float = 0.95,
    bootstrap: int = 0,
    bootstrap_seed: int = 0,
) -> List[Dict[str, object]]:
    """One :data:`SUMMARY_COLUMNS` row per (policy, metric) series.

    ``None`` entries in a series (unbounded per-seed ratios) are
    excluded from every statistic and counted in ``n_undefined``.
    Bootstrap bounds are computed only when ``bootstrap > 0``; the
    bootstrap seed is salted per series position so distinct rows use
    distinct (but reproducible) resampling streams.
    """
    out: List[Dict[str, object]] = []
    for idx, ((policy, metric), values) in enumerate(series.items()):
        finite = [v for v in values if v is not None]
        acc = Welford.from_values(finite)
        lo, hi = normal_interval(acc.mean, acc.std, acc.n, confidence)
        hw = (acc.mean - lo) if math.isfinite(lo) else float("nan")
        row: Dict[str, object] = {
            "policy": policy,
            "metric": metric,
            "n": acc.n,
            "n_undefined": len(values) - len(finite),
            "mean": _finite_or_none(acc.mean) if finite else None,
            "std": _finite_or_none(acc.std),
            "sem": _finite_or_none(acc.sem),
            "ci_lo": _finite_or_none(lo),
            "ci_hi": _finite_or_none(hi),
            "half_width": _finite_or_none(hw),
            "boot_lo": None,
            "boot_hi": None,
        }
        if bootstrap > 0 and acc.n >= 2:
            blo, bhi = bootstrap_interval(
                finite, confidence=confidence, resamples=bootstrap,
                seed=bootstrap_seed + idx,
            )
            row["boot_lo"] = _finite_or_none(blo)
            row["boot_hi"] = _finite_or_none(bhi)
        out.append(row)
    return out


# --------------------------------------------------------------------------
# Summarizing existing result artifacts
# --------------------------------------------------------------------------

def load_artifact(target: str, results_root: str = "results") -> Dict:
    """Load a scenario result artifact by name, directory, or file path.

    ``target`` may be a registered-style scenario name (resolved to
    ``<results_root>/<name>/result.json``), a directory containing
    ``result.json``, or a path to the JSON file itself.
    """
    candidates = [
        target,
        os.path.join(target, "result.json"),
        os.path.join(results_root, target, "result.json"),
    ]
    for path in candidates:
        if os.path.isfile(path):
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
    raise FileNotFoundError(
        f"no result artifact for {target!r} (tried: {candidates})"
    )


def summarize_artifact(
    artifact: Mapping[str, object],
    confidence: Optional[float] = None,
    bootstrap: Optional[int] = None,
    bootstrap_seed: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Summary rows for a written ``result.json`` artifact.

    Statistical parameters default to the artifact's own ``replicates``
    block when the recorded spec has one, else to 95% normal CIs with no
    bootstrap.  Re-summarizing a replicated run's ``result.json`` with
    its recorded parameters reproduces its ``summary.json`` rows
    exactly.
    """
    spec = ScenarioSpec.from_dict(artifact["scenario"])
    block = dict(spec.replicates)
    if confidence is None:
        confidence = float(block.get("confidence", 0.95))
    if bootstrap is None:
        bootstrap = int(block.get("bootstrap", 0))
    if bootstrap_seed is None:
        bootstrap_seed = int(block.get("bootstrap_seed", 0))
    series = collect_series(
        artifact["rows"],
        artifact["metrics"],
        spec.policy_labels(),
        spec.metrics,
        spec.include_opt,
    )
    return build_summary_rows(series, confidence=confidence,
                              bootstrap=bootstrap,
                              bootstrap_seed=bootstrap_seed)
