"""Streaming moment accumulation (Welford's algorithm).

Replicated experiments aggregate per-seed metrics one payload at a time
as the sweep executor yields them; :class:`Welford` maintains the count,
mean and centered second moment in a single pass without storing the
sample, using the numerically stable update from Welford (1962).  Two
accumulators built from disjoint sample halves combine exactly via
:meth:`Welford.merge` (the parallel formula of Chan, Golub & LeVeque),
so batched early-stopping rounds aggregate into the same statistics a
single pass would produce.

The property-based suite pins both claims: streaming mean/variance match
their batch (two-pass) counterparts to 1e-9 relative error, and a merge
of split halves matches the un-split accumulator.
"""

from __future__ import annotations

import math
from typing import Iterable


class Welford:
    """Single-pass count / mean / variance accumulator.

    ``variance`` is the *sample* variance (``n - 1`` denominator); with
    fewer than two observations it is ``nan``, as are ``std`` and
    ``sem`` — callers that serialize these must map non-finite values to
    ``None`` to stay strict-JSON.
    """

    __slots__ = ("n", "mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "Welford":
        acc = cls()
        acc.add_many(values)
        return acc

    def add(self, x: float) -> "Welford":
        """Accumulate one observation; returns self for chaining."""
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)
        return self

    def add_many(self, values: Iterable[float]) -> "Welford":
        for x in values:
            self.add(x)
        return self

    def merge(self, other: "Welford") -> "Welford":
        """Exact combination of two accumulators over disjoint samples."""
        out = Welford()
        out.n = self.n + other.n
        if out.n == 0:
            return out
        delta = other.mean - self.mean
        out.mean = self.mean + delta * other.n / out.n
        out._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / out.n
        return out

    @property
    def variance(self) -> float:
        if self.n < 2:
            return float("nan")
        return self._m2 / (self.n - 1)

    @property
    def std(self) -> float:
        var = self.variance
        # Guard the tiny negative values float cancellation can produce.
        return math.sqrt(var) if var == var and var > 0.0 else (
            0.0 if var == 0.0 else float("nan")
        )

    @property
    def sem(self) -> float:
        """Standard error of the mean: ``std / sqrt(n)``."""
        std = self.std
        return std / math.sqrt(self.n) if std == std else float("nan")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Welford(n={self.n}, mean={self.mean!r}, m2={self._m2!r})"
