"""Confidence intervals: normal (z) and percentile bootstrap.

Both interval kinds are deliberately dependency-free and deterministic:

* :func:`normal_interval` uses the two-sided normal quantile from
  :class:`statistics.NormalDist` — appropriate for the replicated-run
  setting where each observation is itself a full simulation (seeds are
  i.i.d. draws) and replicate counts are moderate.  We report z rather
  than Student-t intervals; at the n >= 8 replicate counts the subsystem
  defaults to, the difference is small and the z half-width has the
  clean ``~ 1/sqrt(n)`` shrinkage the acceptance tests pin.
* :func:`bootstrap_interval` is the percentile bootstrap over resampled
  means, driven by ``random.Random(seed)`` so the interval is a pure
  function of (values, confidence, resamples, seed) — artifacts carrying
  bootstrap bounds stay byte-reproducible.

Non-finite results (undefined with n < 2) are returned as ``nan``;
serializers map them to ``None`` to keep artifacts strict JSON.
"""

from __future__ import annotations

import math
import random
from statistics import NormalDist
from typing import List, Sequence, Tuple

_NAN = float("nan")


def z_value(confidence: float) -> float:
    """Two-sided normal quantile, e.g. ``z_value(0.95) ~= 1.96``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def half_width(std: float, n: int, confidence: float = 0.95) -> float:
    """Normal CI half-width ``z * std / sqrt(n)`` (nan when undefined)."""
    if n < 2 or std != std:
        return _NAN
    return z_value(confidence) * std / math.sqrt(n)


def normal_interval(
    mean: float, std: float, n: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Two-sided normal CI for the mean; ``(nan, nan)`` when undefined."""
    hw = half_width(std, n, confidence)
    if hw != hw:
        return (_NAN, _NAN)
    return (mean - hw, mean + hw)


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending sequence."""
    if not sorted_values:
        return _NAN
    pos = q * (len(sorted_values) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return float(sorted_values[lo])
    frac = pos - lo
    return float(sorted_values[lo]) * (1 - frac) + float(sorted_values[hi]) * frac


def bootstrap_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the mean of ``values``.

    Resamples with replacement ``resamples`` times, takes the empirical
    ``(1 - confidence) / 2`` and ``1 - (1 - confidence) / 2`` quantiles
    of the resampled means.  Deterministic in ``seed``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    n = len(values)
    if n < 2:
        return (_NAN, _NAN)
    rng = random.Random(seed)
    means: List[float] = []
    for _ in range(resamples):
        total = 0.0
        for _ in range(n):
            total += values[rng.randrange(n)]
        means.append(total / n)
    means.sort()
    alpha = 1.0 - confidence
    return (_quantile(means, alpha / 2.0), _quantile(means, 1.0 - alpha / 2.0))
