"""Multi-seed replication and statistics.

Every number the experiment suite reports used to be a single-seed
point estimate; this package turns any scenario (or ratio measurement)
into a *replicated* estimate with honest uncertainty:

* :mod:`~repro.stats.welford` — streaming mean/variance accumulators
  with exact parallel merge;
* :mod:`~repro.stats.ci` — normal (z) and seeded percentile-bootstrap
  confidence intervals;
* :mod:`~repro.stats.summarize` — the per-(policy, metric) summary-row
  schema (:data:`SUMMARY_COLUMNS`) and re-summarization of written
  ``results/`` artifacts;
* :mod:`~repro.stats.replication` — :func:`replicate_scenario`: fan a
  scenario across a seed ladder through the parallel sweep substrate,
  with optional sequential early stopping at a target CI half-width.

Exposed on the CLI as ``repro scenarios run --replicates N --ci 95``
and ``repro stats summarize``; the model is documented in
``docs/statistics.md``.
"""

from .ci import (
    bootstrap_interval,
    half_width,
    normal_interval,
    z_value,
)
from .replication import (
    ReplicatedRun,
    ReplicationPlan,
    replicate_scenario,
    write_replicated_artifacts,
)
from .summarize import (
    SUMMARY_COLUMNS,
    SUMMARY_VERSION,
    build_summary_rows,
    collect_series,
    load_artifact,
    summarize_artifact,
)
from .welford import Welford

__all__ = [
    "Welford",
    "z_value",
    "half_width",
    "normal_interval",
    "bootstrap_interval",
    "SUMMARY_COLUMNS",
    "SUMMARY_VERSION",
    "build_summary_rows",
    "collect_series",
    "load_artifact",
    "summarize_artifact",
    "ReplicationPlan",
    "ReplicatedRun",
    "replicate_scenario",
    "write_replicated_artifacts",
]
