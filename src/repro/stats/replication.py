"""Multi-seed replication of scenarios with sequential early stopping.

:func:`replicate_scenario` runs a registered (or file-loaded)
:class:`~repro.scenarios.spec.ScenarioSpec` across a batch of replicate
seeds through the same :class:`~repro.parallel.SweepExecutor` substrate
as single runs — every (seed, policy) point fans out over ``--workers``
processes and caches on disk — and aggregates the per-seed metrics with
streaming :class:`~repro.stats.welford.Welford` accumulators into
mean / stddev / normal-CI / bootstrap-CI summary rows.

When the plan carries a ``target_half_width``, seeds run in batches and
replication stops at the end of the first batch where *every* policy's
CI half-width for the target metric has shrunk to the target — the
sequential early-stopping rule documented in ``docs/statistics.md``.
Stopping decisions depend only on deterministic payloads, so a
replicated run (including whether and where it stopped) is bit-identical
for any worker count.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .._version import __version__
from ..analysis.ratio import ratio_of
from ..analysis.report import csv_table, format_summary_table
from ..obs import write_manifest
from ..parallel import SweepExecutor
from ..scenarios.runner import (
    ScenarioRun,
    build_run_manifest,
    compute_aggregates,
    run_scenario,
    write_artifacts,
)
from ..scenarios.spec import REPLICATES_DEFAULTS, ScenarioSpec
from ..simulation.backends import DEFAULT_BACKEND
from .ci import half_width
from .summarize import (
    SUMMARY_COLUMNS,
    SUMMARY_VERSION,
    build_summary_rows,
    collect_series,
)
from .welford import Welford


@dataclass(frozen=True)
class ReplicationPlan:
    """Resolved replication parameters (spec block + overrides).

    Field semantics match the spec's ``replicates`` block (see
    :data:`repro.scenarios.spec.REPLICATES_DEFAULTS`); a plan is always
    fully resolved — no missing keys.
    """

    n: int = REPLICATES_DEFAULTS["n"]
    base_seed: int = REPLICATES_DEFAULTS["base_seed"]
    confidence: float = REPLICATES_DEFAULTS["confidence"]
    bootstrap: int = REPLICATES_DEFAULTS["bootstrap"]
    bootstrap_seed: int = REPLICATES_DEFAULTS["bootstrap_seed"]
    target_half_width: Optional[float] = None
    target_metric: str = REPLICATES_DEFAULTS["target_metric"]
    batch: int = REPLICATES_DEFAULTS["batch"]

    @classmethod
    def from_spec(cls, spec: ScenarioSpec, **overrides) -> "ReplicationPlan":
        """Plan from a spec's ``replicates`` block, with overrides
        (``None`` override values mean "keep the spec's value").

        Validation happens by round-tripping the merged block through
        the spec itself, so CLI overrides obey exactly the rules a
        hand-written block does.
        """
        merged = dict(spec.replicates)
        for key, value in overrides.items():
            if value is not None:
                merged[key] = value
        # Re-validate the merged block (also resolves target_metric /
        # include_opt interactions).
        spec.with_overrides(replicates=merged)
        fields = {**REPLICATES_DEFAULTS, **merged}
        return cls(
            n=fields["n"],
            base_seed=fields["base_seed"],
            confidence=fields["confidence"],
            bootstrap=fields["bootstrap"],
            bootstrap_seed=fields["bootstrap_seed"],
            target_half_width=fields.get("target_half_width"),
            target_metric=fields["target_metric"],
            batch=fields["batch"],
        )

    def seeds(self) -> Tuple[int, ...]:
        """The full replicate seed ladder ``base_seed .. base_seed+n-1``."""
        return tuple(range(self.base_seed, self.base_seed + self.n))

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "n": self.n,
            "base_seed": self.base_seed,
            "confidence": self.confidence,
            "bootstrap": self.bootstrap,
            "bootstrap_seed": self.bootstrap_seed,
            "target_metric": self.target_metric,
            "batch": self.batch,
        }
        if self.target_half_width is not None:
            out["target_half_width"] = self.target_half_width
        return out


@dataclass
class ReplicatedRun:
    """Outcome of one replicated scenario execution."""

    spec: ScenarioSpec
    plan: ReplicationPlan
    #: The combined per-seed run over every seed that actually executed
    #: (its artifact is what ``result.json``/``result.csv`` record).
    run: ScenarioRun
    #: One :data:`SUMMARY_COLUMNS` row per (policy, metric).
    summary: List[Dict[str, object]]
    seeds_used: Tuple[int, ...]
    stopped_early: bool

    def artifact(self) -> Dict[str, object]:
        """The versioned, JSON-serializable summary record."""
        return {
            "summary_version": SUMMARY_VERSION,
            "repro_version": __version__,
            "scenario": self.spec.to_dict(),
            "plan": self.plan.as_dict(),
            "opt": {"mode": self.run.opt_mode,
                    "window": self.run.opt_window},
            "seeds_used": list(self.seeds_used),
            "stopped_early": self.stopped_early,
            "summary": self.summary,
        }

    def tables(self) -> str:
        """Per-seed tables plus the replication summary."""
        stopped = " (stopped early)" if self.stopped_early else ""
        title = (
            f"replication summary: {len(self.seeds_used)}/{self.plan.n} "
            f"seeds{stopped}, {self.plan.confidence * 100:g}% CI"
        )
        return "\n".join([
            self.run.tables(),
            format_summary_table(self.summary, title=title),
        ])


def _target_values(
    run: ScenarioRun, label: str, metric: str
) -> List[Optional[float]]:
    """Per-seed values of the early-stopping target for one policy."""
    if metric == "benefit":
        return [float(r[label]) for r in run.rows]
    if metric == "ratio":
        # With an inexact OPT solver, r["OPT"] is the certified bracket
        # upper end, so the stopping target is the conservative ratio.
        out: List[Optional[float]] = []
        for r in run.rows:
            ratio = ratio_of(float(r["OPT"]), float(r[label]))
            out.append(ratio if math.isfinite(ratio) else None)
        return out
    return [
        float(m[metric])
        for m in run.metrics
        if m["policy"] == label and m.get(metric) is not None
    ]


def replicate_scenario(
    spec: ScenarioSpec,
    plan: Optional[ReplicationPlan] = None,
    workers: int = 0,
    cache_dir: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
    backend: str = DEFAULT_BACKEND,
    opt_mode: str = "exact",
    opt_window: Optional[int] = None,
) -> ReplicatedRun:
    """Run ``spec`` across the plan's replicate seeds; pure function of
    (spec, plan).

    Without a plan argument, the spec's own ``replicates`` block is
    used (it must be non-empty).  Results — per-seed artifact and
    summary rows alike — are bit-identical for any worker count, and by
    the backend contract for any ``backend``: with ``"fast"``/``"auto"``
    each seed batch's (policy, seed) ladder executes in lockstep inside
    the vectorized kernel (see :class:`~repro.parallel.SweepExecutor`),
    which is where multi-seed replication amortizes the slot loop.
    """
    if plan is None:
        if not spec.replicates:
            raise ValueError(
                f"scenario {spec.name!r} has no replicates block; pass a "
                f"ReplicationPlan or use run_scenario for single runs"
            )
        plan = ReplicationPlan.from_spec(spec)
    ex = executor if executor is not None else SweepExecutor(
        workers=workers, cache_dir=cache_dir, backend=backend
    )

    all_seeds = plan.seeds()
    if plan.target_half_width is None:
        batches = [all_seeds]
    else:
        batches = [all_seeds[i:i + plan.batch]
                   for i in range(0, len(all_seeds), plan.batch)]

    labels = spec.policy_labels()
    accumulators: Dict[str, Welford] = {label: Welford() for label in labels}
    rows: List[Dict[str, object]] = []
    metrics: List[Dict[str, object]] = []
    stopped_early = False
    seeds_used: List[int] = []

    for batch_no, batch in enumerate(batches):
        sub = spec.with_overrides(seeds=batch)
        part = run_scenario(sub, executor=ex, opt_mode=opt_mode,
                            opt_window=opt_window)
        rows.extend(part.rows)
        metrics.extend(part.metrics)
        seeds_used.extend(batch)
        if plan.target_half_width is None:
            continue
        for label in labels:
            accumulators[label].add_many(
                v for v in _target_values(part, label, plan.target_metric)
                if v is not None
            )
        done = all(
            acc.n >= 2
            and math.isfinite(hw := half_width(acc.std, acc.n,
                                               plan.confidence))
            and hw <= plan.target_half_width
            for acc in accumulators.values()
        )
        if done and batch_no + 1 < len(batches):
            stopped_early = True
            break
        if done:
            break

    spec_used = spec.with_overrides(seeds=seeds_used)
    benefits = {label: [float(r[label]) for r in rows] for label in labels}
    opt_benefits = ([float(r["OPT"]) for r in rows]
                    if spec.include_opt else None)
    opt_bounds = ([(float(r.get("OPT_lo", r["OPT"])),
                    float(r.get("OPT_hi", r["OPT"]))) for r in rows]
                  if spec.include_opt else None)
    combined = ScenarioRun(
        spec=spec_used,
        rows=rows,
        aggregates=compute_aggregates(labels, benefits, opt_benefits,
                                      opt_bounds),
        metrics=metrics,
        opt_mode=opt_mode,
        opt_window=opt_window,
        backend=ex.backend,
    )
    series = collect_series(rows, metrics, labels, spec.metrics,
                            spec.include_opt)
    summary = build_summary_rows(
        series,
        confidence=plan.confidence,
        bootstrap=plan.bootstrap,
        bootstrap_seed=plan.bootstrap_seed,
    )
    return ReplicatedRun(
        spec=spec_used,
        plan=plan,
        run=combined,
        summary=summary,
        seeds_used=tuple(seeds_used),
        stopped_early=stopped_early,
    )


def write_replicated_artifacts(
    rrun: ReplicatedRun, out_dir: str = "results"
) -> Tuple[str, ...]:
    """Persist a replicated run under ``out_dir/<name>/``.

    Writes the three per-seed artifacts (``result.json``,
    ``result.csv``, ``scenario.toml`` — via the scenario runner's
    :func:`~repro.scenarios.runner.write_artifacts`) plus
    ``summary.json`` (the versioned summary record) and ``summary.csv``
    (:data:`SUMMARY_COLUMNS` rows).  Returns all five paths.  Like
    every artifact in the repo, the files carry no timestamps and
    reproduce byte-for-byte.

    The directory's ``manifest.json`` (written by ``write_artifacts``)
    is rewritten with ``kind="replication"`` and the resolved plan so
    provenance records how the seeds were chosen.
    """
    paths = write_artifacts(rrun.run, out_dir)
    target = os.path.join(out_dir, rrun.spec.name)
    write_manifest(target, build_run_manifest(
        rrun.run, kind="replication",
        extra={"plan": rrun.plan.as_dict(),
               "stopped_early": rrun.stopped_early},
    ))
    summary_json = os.path.join(target, "summary.json")
    summary_csv = os.path.join(target, "summary.csv")
    with open(summary_json, "w", encoding="utf-8") as fh:
        json.dump(rrun.artifact(), fh, indent=2, sort_keys=True,
                  allow_nan=False)
        fh.write("\n")
    with open(summary_csv, "w", encoding="utf-8", newline="") as fh:
        fh.write(csv_table(rrun.summary, columns=list(SUMMARY_COLUMNS)))
    return (*paths, summary_json, summary_csv)
