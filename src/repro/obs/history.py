"""Benchmark trajectory ledger (``BENCH_history.jsonl``).

The canonical ``BENCH_*.json`` snapshots are overwritten in place on
every refresh, which loses the performance *trajectory*.  This module
appends one dated entry per benchmark run to an append-only JSONL ledger
so regressions and wins are visible over time.  Unlike the canonical
snapshots (timestamp-free so they byte-diff), the history file is
explicitly allowed to carry dates and machine noise — it is a log, not
an artifact.
"""

from __future__ import annotations

import json
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional

#: Default trajectory ledger, sibling to the BENCH_*.json snapshots.
HISTORY_FILENAME = "BENCH_history.jsonl"


def append_bench_history(
    path: Path,
    bench: str,
    rows: object,
    *,
    quick: bool = False,
    extra: Optional[Dict[str, object]] = None,
    now: Optional[str] = None,
) -> Path:
    """Append one dated entry for a benchmark run.

    ``bench`` names the producing benchmark (``"engine"``, ``"opt"``,
    ``"obs"``); ``rows`` is the same payload the canonical snapshot
    holds.  ``now`` overrides the timestamp (for tests).
    """
    from repro._version import __version__

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry: Dict[str, object] = {
        "date": now or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "bench": bench,
        "quick": bool(quick),
        "repro_version": __version__,
        "python": platform.python_version(),
        "rows": rows,
    }
    if extra:
        entry.update(extra)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def read_bench_history(path: Path) -> list:
    """Load every entry from a trajectory ledger (empty if absent)."""
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries
