"""Metric sinks: JSONL stream and Prometheus-style text export.

Two on-disk/export shapes for a recorder snapshot:

* **JSONL** (``write_jsonl`` / ``iter_jsonl``) — one self-describing
  event per line: counters, gauges, histograms, then the per-slot
  series in slot order.  Deterministic (built from ``snapshot()``,
  which excludes wall-times), append-friendly, and streamable — the
  format ``repro obs tail`` reads.
* **Prometheus text** (``prometheus_text``) — the ``# HELP`` /
  ``# TYPE`` exposition format, for scraping a results dir or pasting
  into a dashboard.  Series samples are exported as the *last* sample's
  gauges (Prometheus has no native series type).

Wall-times are handled separately: ``write_walltimes`` quarantines them
in ``timings.json``, which CI byte-diff jobs must exclude (they never
appear in ``metrics.jsonl`` or the Prometheus export).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List

from .recorder import METRIC_CATALOG, SERIES_FIELDS, SNAPSHOT_VERSION

#: Default metrics stream filename inside a results dir.
METRICS_FILENAME = "metrics.jsonl"
#: Quarantined wall-time ledger filename (non-deterministic; never
#: byte-diffed).
TIMINGS_FILENAME = "timings.json"


def snapshot_events(snapshot: Dict[str, object]) -> Iterator[Dict[str, object]]:
    """Flatten a deterministic snapshot into a stream of JSONL events."""
    yield {
        "event": "meta",
        "version": snapshot.get("version", SNAPSHOT_VERSION),
        "every_k": snapshot.get("every_k", 0),
    }
    for name, value in snapshot.get("counters", {}).items():
        yield {"event": "counter", "name": name, "value": value}
    for name, value in snapshot.get("gauges", {}).items():
        yield {"event": "gauge", "name": name, "value": value}
    for name, hist in snapshot.get("histograms", {}).items():
        yield {"event": "histogram", "name": name, **hist}
    for row in snapshot.get("series", []):
        yield {"event": "sample", **dict(zip(SERIES_FIELDS, row))}


def write_jsonl(path: Path, snapshot: Dict[str, object]) -> Path:
    """Write a snapshot as a JSONL metrics stream (deterministic bytes:
    sorted keys, one event per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for event in snapshot_events(snapshot):
            fh.write(json.dumps(event, sort_keys=True,
                                separators=(",", ":")) + "\n")
    return path


def iter_jsonl(path: Path) -> Iterator[Dict[str, object]]:
    """Stream events back from a JSONL metrics file, skipping blanks."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_jsonl(path: Path) -> List[Dict[str, object]]:
    """Materialize every event in a JSONL metrics file."""
    return list(iter_jsonl(path))


def snapshot_from_events(
    events: Iterator[Dict[str, object]]
) -> Dict[str, object]:
    """Rebuild a snapshot dict from a JSONL event stream — the inverse
    of :func:`snapshot_events` (``snapshot -> events -> snapshot`` is an
    exact round trip), so ``repro obs export`` can render Prometheus
    text from a written ``metrics.jsonl``."""
    snap: Dict[str, object] = {
        "version": SNAPSHOT_VERSION,
        "every_k": 0,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "series": [],
    }
    for ev in events:
        kind = ev.get("event")
        if kind == "meta":
            snap["version"] = ev.get("version", SNAPSHOT_VERSION)
            snap["every_k"] = ev.get("every_k", 0)
        elif kind == "counter":
            snap["counters"][ev["name"]] = ev["value"]
        elif kind == "gauge":
            snap["gauges"][ev["name"]] = ev["value"]
        elif kind == "histogram":
            snap["histograms"][ev["name"]] = {
                k: v for k, v in ev.items() if k not in ("event", "name")
            }
        elif kind == "sample":
            snap["series"].append([ev[f] for f in SERIES_FIELDS])
    return snap


def _prom_name(name: str) -> str:
    return "repro_" + name.replace("-", "_").replace(".", "_")


def prometheus_text(snapshot: Dict[str, object]) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []

    def emit(name: str, kind: str, values: List[tuple]) -> None:
        prom = _prom_name(name)
        meta = METRIC_CATALOG.get(name)
        help_text = meta[1] if meta else name
        lines.append(f"# HELP {prom} {help_text}")
        lines.append(f"# TYPE {prom} {kind}")
        for labels, value in values:
            lines.append(f"{prom}{labels} {value:g}")

    for name, value in snapshot.get("counters", {}).items():
        emit(name, "counter", [("", float(value))])
    for name, value in snapshot.get("gauges", {}).items():
        emit(name, "gauge", [("", float(value))])
    for name, hist in snapshot.get("histograms", {}).items():
        prom = _prom_name(name)
        meta = METRIC_CATALOG.get(name)
        lines.append(f"# HELP {prom} {meta[1] if meta else name}")
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bucket, count in sorted(hist.get("buckets", {}).items(),
                                    key=lambda kv: int(kv[0])):
            cumulative += count
            le = float(2 ** int(bucket))
            lines.append(f'{prom}_bucket{{le="{le:g}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{prom}_sum {hist['sum']:g}")
        lines.append(f"{prom}_count {hist['count']}")
    series = snapshot.get("series", [])
    if series:
        last = dict(zip(SERIES_FIELDS, series[-1]))
        emit("queue_occupancy", "gauge", [
            ('{site="voq"}', float(last["voq"])),
            ('{site="cross"}', float(last["cross"])),
            ('{site="out"}', float(last["out"])),
        ])
        emit("matching_size", "gauge", [("", float(last["matched"]))])
    return "\n".join(lines) + "\n"


def write_walltimes(path: Path, walltimes: Dict[str, float],
                    extra: Dict[str, object] | None = None) -> Path:
    """Write the quarantined wall-time ledger (``timings.json``).

    Deliberately a *separate* file from all deterministic artifacts:
    byte-diff jobs compare results dirs excluding this filename.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: Dict[str, object] = {"walltimes_seconds": dict(sorted(walltimes.items()))}
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
