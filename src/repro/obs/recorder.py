"""Metrics recorders: the zero-overhead-when-off telemetry core.

Three recorder shapes implement one protocol (:class:`MetricsRecorder`):

``None`` / :data:`NULL_METRICS`
    Metrics off.  Every engine entry point accepts ``metrics=None`` (the
    default) or the shared :class:`NullRecorder` instance; both resolve
    to the *same* compiled-out path — the kernel checks
    ``metrics is None or not metrics.enabled`` **once per run**, before
    the slot loop, and the loop body then pays at most one short-circuit
    boolean test per slot (never per packet, never per lane).  The
    bit-identity and performance contracts of the ``reference`` and
    ``fast`` backends are untouched: a run with metrics off produces a
    payload byte-identical to a run that never heard of metrics
    (``tests/test_backend_equivalence.py`` pins this differentially, and
    ``benchmarks/bench_obs.py`` enforces the <= 5% overhead budget).

:class:`InMemoryRecorder`
    Metrics on.  Collects

    * **counters** — monotone totals (packets arrived/sent/rejected/
      preempted, executed slots, cache hits, ...);
    * **gauges** — last-write-wins instantaneous values;
    * **histograms** — ``(count, sum, min, max)`` plus power-of-two
      bucket counts, cheap enough for per-point latencies;
    * a **per-slot series** via the sampling hook
      (:meth:`InMemoryRecorder.slot_sample`), taken every ``every_k``
      slots: queue occupancy (VOQ/crosspoint/output totals), cumulative
      drops and preemptions, and the slot's matching size;
    * **wall-times** (:meth:`InMemoryRecorder.timer` /
      :meth:`InMemoryRecorder.add_time`) — quarantined in a separate
      section (:meth:`InMemoryRecorder.walltimes`) because they are the
      one non-deterministic thing a recorder holds.

    :meth:`InMemoryRecorder.snapshot` returns only the deterministic
    sections, so snapshots embedded in sweep payloads merge
    byte-identically for any worker count.

The split matters: everything consumed by artifacts and CI byte-diffs
comes from ``snapshot()``; everything timing-related stays in
``walltimes()`` and is written to a separate, diff-excluded ledger.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Protocol, runtime_checkable

#: Schema version of recorder snapshots (and the JSONL stream built from
#: them); bump when the snapshot layout changes.
SNAPSHOT_VERSION = 1

#: Catalog of every metric the subsystem emits: name -> (type, help).
#: ``docs/observability.md`` must document each name with a `### <name>`
#: section (pinned by tests/test_package.py, the same registry<->docs
#: pattern as scenarios, backends and OPT modes).
METRIC_CATALOG: Dict[str, tuple] = {
    "runs_total": ("counter", "engine runs executed"),
    "slots_total": ("counter", "slots executed across runs (incl. drain)"),
    "packets_arrived_total": ("counter", "packets offered to the switch"),
    "packets_sent_total": ("counter", "packets transmitted"),
    "packets_rejected_total": ("counter", "packets dropped on arrival"),
    "packets_preempted_total": ("counter", "packets preempted (all sites)"),
    "benefit_total": ("counter", "total transmitted value"),
    "opt_solves_total": ("counter", "offline OPT solves executed"),
    "cache_hits_total": ("counter", "sweep-cache payload hits"),
    "cache_misses_total": ("counter", "sweep-cache payload misses"),
    "sweep_points_total": ("gauge", "points in the current sweep"),
    "farm_queue_depth": ("gauge", "jobs waiting in the farm queue"),
    "farm_workers": ("gauge", "worker processes serving the farm"),
    "farm_jobs_total": ("counter", "farm jobs completed"),
    "farm_jobs_failed_total": ("counter", "farm jobs failed"),
    "farm_points_executed_total": ("counter",
                                   "sweep points executed by farm jobs"),
    "queue_occupancy": ("series", "per-slot VOQ/crosspoint/output totals"),
    "matching_size": ("series", "packets transmitted in the sampled slot"),
    "phase_arrival_seconds": ("timer", "wall time in the arrival phase"),
    "phase_schedule_seconds": ("timer", "wall time in scheduling cycles"),
    "phase_transmit_seconds": ("timer", "wall time in the transmission phase"),
    "run_seconds": ("timer", "wall time of one engine run"),
    "point_seconds": ("timer", "wall time of one sweep point"),
    "worker_busy_seconds": ("timer",
                            "cumulative worker wall time across farm jobs"),
}

#: Keys of one per-slot series sample, in emission order.
SERIES_FIELDS = (
    "slot", "lane", "voq", "cross", "out",
    "matched", "arrived", "sent", "rejected", "preempted",
)


@runtime_checkable
class MetricsRecorder(Protocol):
    """Structural protocol every recorder satisfies.

    ``enabled`` is the once-per-run guard; ``every_k`` the per-slot
    sampling period (0 disables the series hook); ``timed`` opts into
    per-phase wall-time measurement (off by default even when metrics
    are on, because clock reads are the costly part).
    """

    enabled: bool
    every_k: int
    timed: bool

    def counter(self, name: str, inc: float = 1) -> None: ...

    def gauge(self, name: str, value: float) -> None: ...

    def observe(self, name: str, value: float) -> None: ...

    def slot_sample(self, slot: int, lane: int, voq: int, cross: int,
                    out: int, matched: int, arrived: int, sent: int,
                    rejected: int, preempted: int) -> None: ...

    def add_time(self, name: str, seconds: float) -> None: ...


class NullRecorder:
    """Metrics-off recorder: every call is a no-op.

    The kernel never actually calls these in a run — ``enabled`` is
    checked once before the slot loop and the metrics branches are then
    dead — the methods exist only so a recorder can be passed (and type-
    checked) unconditionally.  A run with ``metrics=NULL_METRICS`` is
    payload-byte-identical to one with ``metrics=None``.
    """

    __slots__ = ()
    enabled = False
    every_k = 0
    timed = False

    def counter(self, name: str, inc: float = 1) -> None:
        """Ignore a counter increment."""

    def gauge(self, name: str, value: float) -> None:
        """Ignore a gauge write."""

    def observe(self, name: str, value: float) -> None:
        """Ignore a histogram observation."""

    def slot_sample(self, slot: int, lane: int, voq: int, cross: int,
                    out: int, matched: int, arrived: int, sent: int,
                    rejected: int, preempted: int) -> None:
        """Ignore a per-slot sample."""

    def add_time(self, name: str, seconds: float) -> None:
        """Ignore a wall-time measurement."""

    @contextmanager
    def timer(self, name: str):
        """No-op timing context."""
        yield


#: Shared stateless metrics-off instance.  Named ``NULL_METRICS`` (not
#: ``NULL_RECORDER``) to avoid clashing with the kernel's event-log
#: ``NULL_RECORDER`` in modules that import both.
NULL_METRICS = NullRecorder()


def resolve(metrics: Optional[MetricsRecorder]):
    """The once-per-run guard: an active recorder, or ``None``.

    Engine code calls this exactly once per run; a ``None`` return means
    every metrics branch in the hot path is skipped via one local
    boolean.
    """
    if metrics is None or not metrics.enabled:
        return None
    return metrics


def _bucket(value: float) -> int:
    """Power-of-two bucket index for histogram observations (bucket ``b``
    holds values in ``(2^(b-1), 2^b]``; non-positive values land in 0)."""
    b = 0
    v = abs(value)
    while v > 1 and b < 63:
        v /= 2.0
        b += 1
    return b


class InMemoryRecorder:
    """Collecting recorder (metrics on).

    Parameters
    ----------
    every_k:
        Per-slot sampling period for :meth:`slot_sample`; every
        ``every_k``-th slot is recorded (1 = every slot, 0 = series off
        while counters stay on).
    timed:
        Enable wall-time measurement (phase timers in the kernel and the
        :meth:`timer` context); wall-times live in the quarantined
        :meth:`walltimes` section, never in :meth:`snapshot`.
    """

    __slots__ = ("every_k", "timed", "counters", "gauges", "hists",
                 "series", "times", "_clock")
    enabled = True

    def __init__(self, every_k: int = 1, timed: bool = False,
                 clock=time.perf_counter):
        if every_k < 0:
            raise ValueError(f"every_k must be >= 0, got {every_k}")
        self.every_k = int(every_k)
        self.timed = bool(timed)
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        # name -> [count, total, min, max, {bucket: count}]
        self.hists: Dict[str, list] = {}
        self.series: List[tuple] = []
        self.times: Dict[str, float] = {}
        self._clock = clock

    # -- deterministic instruments ----------------------------------------

    def counter(self, name: str, inc: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + inc

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        h = self.hists.get(name)
        if h is None:
            h = [0, 0.0, value, value, {}]
            self.hists[name] = h
        h[0] += 1
        h[1] += value
        if value < h[2]:
            h[2] = value
        if value > h[3]:
            h[3] = value
        b = _bucket(value)
        h[4][b] = h[4].get(b, 0) + 1

    def slot_sample(self, slot: int, lane: int, voq: int, cross: int,
                    out: int, matched: int, arrived: int, sent: int,
                    rejected: int, preempted: int) -> None:
        self.series.append((slot, lane, voq, cross, out, matched,
                            arrived, sent, rejected, preempted))

    # -- quarantined wall-times -------------------------------------------

    def add_time(self, name: str, seconds: float) -> None:
        self.times[name] = self.times.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str):
        """Measure a block's wall time into the quarantined section."""
        t0 = self._clock()
        try:
            yield
        finally:
            self.add_time(name, self._clock() - t0)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The deterministic sections only (no wall-times): safe to embed
        in sweep payloads, cache on disk, and byte-diff across worker
        counts."""
        return {
            "version": SNAPSHOT_VERSION,
            "every_k": self.every_k,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: {
                    "count": h[0], "sum": h[1], "min": h[2], "max": h[3],
                    "buckets": {str(k): v for k, v in sorted(h[4].items())},
                }
                for name, h in sorted(self.hists.items())
            },
            "series": [list(s) for s in self.series],
        }

    def walltimes(self) -> Dict[str, float]:
        """The non-deterministic section: accumulated wall-times, kept
        out of :meth:`snapshot` so deterministic artifacts never carry
        machine-speed noise."""
        return dict(sorted(self.times.items()))

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        """Fold another recorder's deterministic snapshot into this one
        (series appended in call order — callers are responsible for a
        deterministic merge order, e.g. sweep-point order)."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name, value)
        self.gauges.update(snap.get("gauges", {}))
        for name, h in snap.get("histograms", {}).items():
            mine = self.hists.get(name)
            if mine is None:
                mine = [0, 0.0, h["min"], h["max"], {}]
                self.hists[name] = mine
            mine[0] += h["count"]
            mine[1] += h["sum"]
            mine[2] = min(mine[2], h["min"])
            mine[3] = max(mine[3], h["max"])
            for b, c in h.get("buckets", {}).items():
                b = int(b)
                mine[4][b] = mine[4].get(b, 0) + c
        for row in snap.get("series", []):
            self.series.append(tuple(row))


def merge_snapshots(snaps: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Deterministically merge snapshots (in iteration order) into one."""
    out = InMemoryRecorder(every_k=0)
    every = 0
    for snap in snaps:
        out.merge_snapshot(snap)
        every = max(every, int(snap.get("every_k", 0)))
    out.every_k = every
    return out.snapshot()
