"""repro.obs — zero-overhead-when-off observability.

The telemetry substrate for the experiment farm: metrics recorders
(:mod:`repro.obs.recorder`), provenance manifests
(:mod:`repro.obs.manifest`), export sinks (:mod:`repro.obs.sinks`), and
the benchmark trajectory ledger (:mod:`repro.obs.history`).

Design contract (pinned by ``tests/test_obs.py``,
``tests/test_backend_equivalence.py`` and ``benchmarks/bench_obs.py``):

* metrics **off** (``metrics=None`` or :data:`NULL_METRICS`) costs
  nothing measurable (<= 5% budget) and changes no payload byte;
* metrics **on** collects deterministic counters/series that merge
  byte-identically for any worker count;
* wall-times are quarantined in a separate non-deterministic section
  and never enter deterministic artifacts.

This package imports no third-party modules (it must work in the
numpy-free CI job alongside the reference backend).
"""

from .history import HISTORY_FILENAME, append_bench_history, read_bench_history
from .manifest import (
    MANIFEST_VERSION,
    build_manifest,
    read_manifest,
    spec_hash,
    write_manifest,
)
from .recorder import (
    METRIC_CATALOG,
    NULL_METRICS,
    SERIES_FIELDS,
    SNAPSHOT_VERSION,
    InMemoryRecorder,
    MetricsRecorder,
    NullRecorder,
    merge_snapshots,
    resolve,
)
from .sinks import (
    METRICS_FILENAME,
    TIMINGS_FILENAME,
    iter_jsonl,
    prometheus_text,
    read_jsonl,
    snapshot_events,
    snapshot_from_events,
    write_jsonl,
    write_walltimes,
)

__all__ = [
    # recorder
    "MetricsRecorder",
    "NullRecorder",
    "InMemoryRecorder",
    "NULL_METRICS",
    "METRIC_CATALOG",
    "SERIES_FIELDS",
    "SNAPSHOT_VERSION",
    "merge_snapshots",
    "resolve",
    # manifest
    "MANIFEST_VERSION",
    "build_manifest",
    "write_manifest",
    "read_manifest",
    "spec_hash",
    # sinks
    "METRICS_FILENAME",
    "TIMINGS_FILENAME",
    "snapshot_events",
    "snapshot_from_events",
    "write_jsonl",
    "iter_jsonl",
    "read_jsonl",
    "prometheus_text",
    "write_walltimes",
    # history
    "HISTORY_FILENAME",
    "append_bench_history",
    "read_bench_history",
]
