"""Run provenance manifests.

Every ``results/<name>/`` artifact directory gets a ``manifest.json``
tying the artifact to the code version, scenario spec hash, seeds,
backend, and OPT mode that produced it, plus a coarse environment
fingerprint.  The manifest is **deterministic on one machine**: it never
records worker counts, wall times, hostnames, or timestamps, so the
serial-vs-parallel ``diff -r`` byte-identity checks in CI hold with the
manifest present.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

#: Schema version of ``manifest.json``; bump when fields change.
MANIFEST_VERSION = 1


def spec_hash(payload: object) -> str:
    """sha256 over the canonical JSON form of a serializable payload
    (a ``ScenarioSpec.to_dict()``, a sweep description, ...)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _environment() -> Dict[str, object]:
    """Coarse, deterministic-per-machine environment fingerprint."""
    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "numpy": numpy_version,
    }


def build_manifest(
    *,
    kind: str,
    name: str,
    spec: Optional[object] = None,
    seeds: Sequence[int] = (),
    backend: str = "reference",
    opt_mode: str = "exact",
    opt_window: Optional[int] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble a manifest dict.

    ``kind`` names the producing surface (``"scenario"``,
    ``"replication"``, ``"sweep"``, ``"replay"``); ``spec`` is any
    JSON-serializable description of the workload, hashed into
    ``spec_sha256``.  No timestamps and no worker counts by design —
    see the module docstring.
    """
    from repro._version import __version__

    manifest: Dict[str, object] = {
        "manifest_version": MANIFEST_VERSION,
        "repro_version": __version__,
        "kind": kind,
        "name": name,
        "spec_sha256": spec_hash(spec) if spec is not None else None,
        "seeds": sorted(set(int(s) for s in seeds)),
        "backend": backend,
        "opt_mode": opt_mode,
        "opt_window": opt_window,
        "environment": _environment(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(directory: Path, manifest: Dict[str, object]) -> Path:
    """Write ``manifest.json`` into ``directory`` in canonical form
    (sorted keys, 2-space indent, trailing newline — the same convention
    as every other committed JSON artifact)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "manifest.json"
    text = json.dumps(manifest, indent=2, sort_keys=True,
                      allow_nan=False) + "\n"
    path.write_text(text, encoding="utf-8")
    return path


def read_manifest(directory: Path) -> Dict[str, object]:
    """Load ``manifest.json`` from an artifact directory."""
    path = Path(directory) / "manifest.json"
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
