"""The paper's four scheduling algorithms and their analysis constants.

* :class:`~repro.core.gm.GMPolicy` — Greedy Matching (CIOQ, unit values,
  3-competitive, Theorem 1).
* :class:`~repro.core.pg.PGPolicy` — Preemptive Greedy (CIOQ, general
  values, (3 + 2 sqrt 2)-competitive, Theorem 2).
* :class:`~repro.core.cgu.CGUPolicy` — Crossbar Greedy Unit (buffered
  crossbar, unit values, 3-competitive, Theorem 3).
* :class:`~repro.core.cpg.CPGPolicy` — Crossbar Preemptive Greedy
  (buffered crossbar, general values, ~14.83-competitive, Theorem 4).
"""

from .gm import GMPolicy
from .pg import PGPolicy, BETA_STAR
from .cgu import CGUPolicy
from .cpg import CPGPolicy
from .params import (
    GM_RATIO,
    CGU_RATIO,
    PREVIOUS_CGU_RATIO,
    PREVIOUS_CPG_RATIO,
    PREVIOUS_PG_RATIO,
    cpg_optimal_params,
    cpg_optimal_ratio,
    cpg_ratio,
    kesselman_cpg_params,
    pg_optimal_beta,
    pg_optimal_ratio,
    pg_ratio,
)

__all__ = [
    "GMPolicy",
    "PGPolicy",
    "BETA_STAR",
    "CGUPolicy",
    "CPGPolicy",
    "GM_RATIO",
    "CGU_RATIO",
    "PREVIOUS_CGU_RATIO",
    "PREVIOUS_CPG_RATIO",
    "PREVIOUS_PG_RATIO",
    "cpg_optimal_params",
    "cpg_optimal_ratio",
    "cpg_ratio",
    "kesselman_cpg_params",
    "pg_optimal_beta",
    "pg_optimal_ratio",
    "pg_ratio",
]
