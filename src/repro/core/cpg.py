"""Crossbar Preemptive Greedy (CPG) — Section 3.2 of the paper.

CPG is the paper's general-value buffered-crossbar algorithm, shown
about 14.83-competitive for any speedup (Theorem 4), improving on the
16.24-competitive algorithm of Kesselman, Kogan and Segal.  The key
difference from the prior algorithm is that the two preemption
thresholds — ``beta`` at the crosspoint queues, ``alpha`` at the output
queues — take *different* optimal values (the prior work used
``beta == alpha``; experiment T9 quantifies the gap).

With ``g_ij``/``l_ij`` the greatest/least-value packets of VOQ ``Q_ij``,
``gc_ij``/``lc_ij`` those of crosspoint queue ``C_ij``, and ``l_j`` the
least-value packet of output queue ``Q_j``:

* **Arrival phase** — as PG: accept iff the VOQ is not full or
  ``v(l_ij) < v(p)``, preempting ``l_ij`` in the latter case.
* **Input subphase** — for each input port ``i``, among
  ``J = { j : |Q_ij| > 0 and (|C_ij| < B(C_ij) or
  v(g_ij) > beta * v(lc_ij)) }`` choose the ``j`` maximizing
  ``v(g_ij)``; transfer ``g_ij`` to ``C_ij``, preempting ``lc_ij`` if
  the crosspoint queue is full.
* **Output subphase** — for each output port ``j``, choose the ``i``
  maximizing ``v(gc_ij)`` among non-empty crosspoint queues; transfer
  ``gc_ij`` to ``Q_j`` iff ``|Q_j| < B(Q_j)`` or
  ``v(gc_ij) > alpha * v(l_j)``, preempting ``l_j`` if full.
* **Transmission phase** — send the most valuable packet of every
  non-empty output queue.

All ties are broken deterministically by packet id (Assumption A3).
"""

from __future__ import annotations

from typing import List, Optional

from ..scheduling.base import ArrivalDecision, CrossbarPolicy
from ..switch.crossbar import CrossbarSwitch, InputTransfer, OutputTransfer
from ..switch.packet import Packet
from .params import cpg_optimal_params


class CPGPolicy(CrossbarPolicy):
    """Crossbar Preemptive Greedy: ~14.83-competitive weighted crossbar
    scheduling.

    Parameters
    ----------
    beta:
        Crosspoint-queue preemption threshold (>= 1).  Defaults to the
        analysis optimum (~1.8393).
    alpha:
        Output-queue preemption threshold (>= 1).  Defaults to the
        analysis optimum ``2 / (beta - 1)^2`` (~2.8393).
    """

    def __init__(self, beta: Optional[float] = None, alpha: Optional[float] = None):
        beta_star, alpha_star, _ = cpg_optimal_params()
        self.beta = float(beta) if beta is not None else beta_star
        self.alpha = float(alpha) if alpha is not None else alpha_star
        if self.beta < 1.0 or self.alpha < 1.0:
            raise ValueError(
                f"thresholds must be >= 1, got beta={self.beta}, alpha={self.alpha}"
            )
        self.name = f"CPG(beta={self.beta:.4g}, alpha={self.alpha:.4g})"

    def on_arrival(self, switch: CrossbarSwitch, packet: Packet) -> ArrivalDecision:
        q = switch.voq[packet.src][packet.dst]
        if not q.is_full:
            return ArrivalDecision.accepted()
        tail = q.tail()
        assert tail is not None
        if tail.value < packet.value:
            return ArrivalDecision.accepted(preempt=tail)
        return ArrivalDecision.reject()

    def input_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[InputTransfer]:
        transfers: List[InputTransfer] = []
        for i in range(switch.n_in):
            best: Optional[Packet] = None
            best_j = -1
            for j in range(switch.n_out):
                g = switch.voq[i][j].head()
                if g is None:
                    continue
                c = switch.cross[i][j]
                if c.is_full:
                    lc = c.tail()
                    assert lc is not None
                    if not g.value > self.beta * lc.value:
                        continue
                if best is None or g.beats(best):
                    best = g
                    best_j = j
            if best is not None:
                c = switch.cross[i][best_j]
                victim = c.tail() if c.is_full else None
                transfers.append(InputTransfer(i, best_j, best, preempt=victim))
        return transfers

    def output_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[OutputTransfer]:
        transfers: List[OutputTransfer] = []
        for j in range(switch.n_out):
            best: Optional[Packet] = None
            best_i = -1
            for i in range(switch.n_in):
                gc = switch.cross[i][j].head()
                if gc is None:
                    continue
                if best is None or gc.beats(best):
                    best = gc
                    best_i = i
            if best is None:
                continue
            out_q = switch.out[j]
            if out_q.is_full:
                lj = out_q.tail()
                assert lj is not None
                if not best.value > self.alpha * lj.value:
                    continue
                transfers.append(OutputTransfer(best_i, j, best, preempt=lj))
            else:
                transfers.append(OutputTransfer(best_i, j, best))
        return transfers
