"""Crossbar Greedy Unit (CGU) — Section 3.1 of the paper.

CGU is the unit-value buffered-crossbar algorithm of Kesselman, Kogan
and Segal; the paper's contribution is an improved analysis showing it
is 3-competitive for any speedup (Theorem 3), down from the previously
known ratio of 4.

* **Arrival phase** — as GM: accept iff the VOQ is not full.
* **Input subphase** — for each input port ``i``, choose an *arbitrary*
  VOQ ``Q_ij`` with ``|Q_ij| > 0`` and ``|C_ij| < B(C_ij)`` and transfer
  its head packet to the crosspoint queue ``C_ij``.
* **Output subphase** — for each output port ``j``, choose an arbitrary
  crosspoint queue ``C_ij`` with ``|C_ij| > 0`` while ``|Q_j| < B(Q_j)``
  and transfer its head packet to the output queue.
* **Transmission phase** — send the head of every non-empty output
  queue.

"Arbitrary" is implemented as a deterministic first-eligible scan with a
per-cycle rotating offset (reproducible, starvation-free); CGU never
preempts.
"""

from __future__ import annotations

from typing import List

from ..scheduling.base import ArrivalDecision, CrossbarPolicy
from ..switch.crossbar import CrossbarSwitch, InputTransfer, OutputTransfer
from ..switch.packet import Packet


class CGUPolicy(CrossbarPolicy):
    """Crossbar Greedy Unit: 3-competitive unit-value crossbar scheduling.

    Parameters
    ----------
    rotate:
        Rotate the first-eligible scan offset each cycle (default True).
        Any arbitrary choice rule satisfies Theorem 3.
    """

    name = "CGU"

    def __init__(self, rotate: bool = True):
        self.rotate = rotate
        self._cycle_count = 0

    def reset(self, switch: CrossbarSwitch) -> None:
        self._cycle_count = 0

    def on_arrival(self, switch: CrossbarSwitch, packet: Packet) -> ArrivalDecision:
        q = switch.voq[packet.src][packet.dst]
        if len(q._items) >= q.capacity:
            return ArrivalDecision.reject()
        return ArrivalDecision.accepted()

    def input_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[InputTransfer]:
        n_out = switch.n_out
        offset = self._cycle_count % n_out if self.rotate else 0
        # Rotated first-eligible scan order, precomputed once per cycle.
        order = range(n_out) if offset == 0 else (
            *range(offset, n_out), *range(offset))
        transfers: List[InputTransfer] = []
        append = transfers.append
        # Hot loop: reads queue internals directly (see BoundedQueue docs).
        cross = switch.cross
        for i, vrow in enumerate(switch.voq):
            crow = cross[i]
            for j in order:
                items = vrow[j]._items
                if items:
                    cq = crow[j]
                    if len(cq._items) < cq.capacity:
                        append(InputTransfer(i, j, items[-1]))
                        break
        return transfers

    def output_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[OutputTransfer]:
        n_in = switch.n_in
        offset = self._cycle_count % n_in if self.rotate else 0
        self._cycle_count += 1
        order = range(n_in) if offset == 0 else (
            *range(offset, n_in), *range(offset))
        transfers: List[OutputTransfer] = []
        append = transfers.append
        cross = switch.cross
        for j, oq in enumerate(switch.out):
            if len(oq._items) >= oq.capacity:
                continue
            for i in order:
                items = cross[i][j]._items
                if items:
                    append(OutputTransfer(i, j, items[-1]))
                    break
        return transfers
