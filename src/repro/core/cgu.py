"""Crossbar Greedy Unit (CGU) — Section 3.1 of the paper.

CGU is the unit-value buffered-crossbar algorithm of Kesselman, Kogan
and Segal; the paper's contribution is an improved analysis showing it
is 3-competitive for any speedup (Theorem 3), down from the previously
known ratio of 4.

* **Arrival phase** — as GM: accept iff the VOQ is not full.
* **Input subphase** — for each input port ``i``, choose an *arbitrary*
  VOQ ``Q_ij`` with ``|Q_ij| > 0`` and ``|C_ij| < B(C_ij)`` and transfer
  its head packet to the crosspoint queue ``C_ij``.
* **Output subphase** — for each output port ``j``, choose an arbitrary
  crosspoint queue ``C_ij`` with ``|C_ij| > 0`` while ``|Q_j| < B(Q_j)``
  and transfer its head packet to the output queue.
* **Transmission phase** — send the head of every non-empty output
  queue.

"Arbitrary" is implemented as a deterministic first-eligible scan with a
per-cycle rotating offset (reproducible, starvation-free); CGU never
preempts.
"""

from __future__ import annotations

from typing import List

from ..scheduling.base import ArrivalDecision, CrossbarPolicy
from ..switch.crossbar import CrossbarSwitch, InputTransfer, OutputTransfer
from ..switch.packet import Packet


class CGUPolicy(CrossbarPolicy):
    """Crossbar Greedy Unit: 3-competitive unit-value crossbar scheduling.

    Parameters
    ----------
    rotate:
        Rotate the first-eligible scan offset each cycle (default True).
        Any arbitrary choice rule satisfies Theorem 3.
    """

    name = "CGU"

    def __init__(self, rotate: bool = True):
        self.rotate = rotate
        self._cycle_count = 0

    def reset(self, switch: CrossbarSwitch) -> None:
        self._cycle_count = 0

    def on_arrival(self, switch: CrossbarSwitch, packet: Packet) -> ArrivalDecision:
        if switch.voq[packet.src][packet.dst].is_full:
            return ArrivalDecision.reject()
        return ArrivalDecision.accepted()

    def input_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[InputTransfer]:
        n_out = switch.n_out
        offset = self._cycle_count % n_out if self.rotate else 0
        transfers: List[InputTransfer] = []
        for i in range(switch.n_in):
            for dj in range(n_out):
                j = (offset + dj) % n_out
                if not switch.voq[i][j].is_empty and not switch.cross[i][j].is_full:
                    head = switch.voq[i][j].head()
                    assert head is not None
                    transfers.append(InputTransfer(i, j, head))
                    break
        return transfers

    def output_subphase(
        self, switch: CrossbarSwitch, slot: int, cycle: int
    ) -> List[OutputTransfer]:
        n_in = switch.n_in
        offset = self._cycle_count % n_in if self.rotate else 0
        self._cycle_count += 1
        transfers: List[OutputTransfer] = []
        for j in range(switch.n_out):
            if switch.out[j].is_full:
                continue
            for di in range(n_in):
                i = (offset + di) % n_in
                if not switch.cross[i][j].is_empty:
                    head = switch.cross[i][j].head()
                    assert head is not None
                    transfers.append(OutputTransfer(i, j, head))
                    break
        return transfers
