"""Greedy Matching (GM) — Section 2.1 of the paper.

GM is the paper's unit-value CIOQ algorithm, shown 3-competitive for any
speedup (Theorem 1):

* **Arrival phase** — accept packet ``p`` iff VOQ ``Q_{in(p),out(p)}`` is
  not full; never preempt.
* **Scheduling phase** — in cycle ``T[s]``, build the bipartite graph
  ``G_{T[s]}`` with an edge (u_i, v_j) iff ``Q_ij`` is non-empty and
  ``Q_j`` is not full; compute a *greedy maximal matching* by scanning
  edges in an arbitrary fixed order; transfer the head packet of ``Q_ij``
  along every matched edge.
* **Transmission phase** — send the head packet of every non-empty
  output queue.

The edge scan order is a deterministic row-major sweep starting from a
rotating offset.  The paper allows any fixed order; the rotation (off by
one each cycle) avoids the pathological starvation a static order could
induce under sustained overload while keeping runs reproducible.  Set
``rotate=False`` for the plain static row-major order.
"""

from __future__ import annotations

from typing import List, Optional

from ..scheduling.base import ArrivalDecision, CIOQPolicy
from ..scheduling.matching import MatchingStats, greedy_maximal_matching
from ..switch.cioq import CIOQSwitch, Transfer
from ..switch.packet import Packet


class GMPolicy(CIOQPolicy):
    """Greedy Matching: 3-competitive unit-value CIOQ scheduling.

    Parameters
    ----------
    rotate:
        Rotate the edge-scan starting offset by one each scheduling
        cycle (default True).  Any fixed order satisfies Theorem 1.
    stats:
        Optional :class:`MatchingStats` accumulator for the efficiency
        experiment (counts edge scans per cycle).
    """

    name = "GM"

    def __init__(self, rotate: bool = True, stats: Optional[MatchingStats] = None):
        self.rotate = rotate
        self.stats = stats
        self._cycle_count = 0

    def reset(self, switch: CIOQSwitch) -> None:
        self._cycle_count = 0

    def on_arrival(self, switch: CIOQSwitch, packet: Packet) -> ArrivalDecision:
        q = switch.voq[packet.src][packet.dst]
        if len(q._items) >= q.capacity:
            return ArrivalDecision.reject()
        return ArrivalDecision.accepted()

    def schedule(self, switch: CIOQSwitch, slot: int, cycle: int) -> List[Transfer]:
        n_in, n_out = switch.n_in, switch.n_out
        offset = self._cycle_count % n_in if self.rotate else 0
        self._cycle_count += 1

        # Induced bipartite graph G_{T[s]}: edge (i, j) iff Q_ij non-empty
        # and Q_j not full, scanned row-major from the rotating offset.
        # Hot loop: reads queue internals directly (see BoundedQueue docs).
        voq = switch.voq
        eligible_j = [
            j for j, q in enumerate(switch.out) if len(q._items) < q.capacity
        ]
        order = range(n_in) if offset == 0 else (
            *range(offset, n_in), *range(offset))
        edges = []
        append = edges.append
        for i in order:
            row = voq[i]
            for j in eligible_j:
                if row[j]._items:
                    append((i, j))

        if self.stats is not None:
            matching = greedy_maximal_matching(edges, stats=self.stats)
        else:
            # Same single pass, without the instrumentation indirection.
            matched_left = set()
            matched_right = set()
            matching = []
            for i, j in edges:
                if i not in matched_left and j not in matched_right:
                    matched_left.add(i)
                    matched_right.add(j)
                    matching.append((i, j))
        return [Transfer(i, j, voq[i][j]._items[-1]) for i, j in matching]
