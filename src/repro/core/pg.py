"""Preemptive Greedy (PG) — Section 2.2 of the paper.

PG is the paper's general-value CIOQ algorithm, shown (3 + 2*sqrt(2))-
competitive, about 5.83, for any speedup when beta = sqrt(2) + 1
(Theorem 2).  It improves on the 6-competitive maximum-matching
algorithm of Kesselman and Rosen by using a *greedy maximal weighted*
matching instead.

With ``g_ij(t)`` the most valuable packet of VOQ ``Q_ij`` and ``l_ij(t)``
/ ``l_j(t)`` the least valuable packets of ``Q_ij`` / output queue
``Q_j``:

* **Arrival phase** — accept ``p`` iff ``|Q_ij| < B(Q_ij)`` or
  ``v(l_ij) < v(p)``; when accepting into a full queue, preempt
  ``l_ij``.
* **Scheduling phase** — edge (u_i, v_j) exists iff ``|Q_ij| > 0`` and
  (``|Q_j| < B(Q_j)`` or ``v(g_ij) > beta * v(l_j)``); its weight is
  ``v(g_ij)``.  Compute a greedy maximal matching scanning edges in
  descending weight; transfer ``g_ij`` along each matched edge,
  preempting ``l_j`` when the output queue is full.
* **Transmission phase** — send the most valuable packet of every
  non-empty output queue.

The preemption threshold ``beta >= 1`` trades admission aggressiveness
against preemption waste; the analysis optimum is ``beta* = 1 + sqrt(2)``
(see :mod:`repro.core.params` and experiment T2).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..scheduling.base import ArrivalDecision, CIOQPolicy
from ..scheduling.matching import MatchingStats, greedy_maximal_matching_weighted
from ..switch.cioq import CIOQSwitch, Transfer
from ..switch.packet import Packet

#: The analysis-optimal preemption threshold beta* = 1 + sqrt(2).
BETA_STAR = 1.0 + math.sqrt(2.0)


class PGPolicy(CIOQPolicy):
    """Preemptive Greedy: (3 + 2 sqrt 2)-competitive weighted CIOQ
    scheduling.

    Parameters
    ----------
    beta:
        Preemption threshold (>= 1).  Defaults to the analysis optimum
        ``1 + sqrt(2)``.
    stats:
        Optional :class:`MatchingStats` accumulator.
    """

    def __init__(self, beta: float = BETA_STAR, stats: Optional[MatchingStats] = None):
        if beta < 1.0:
            raise ValueError(f"beta must be >= 1, got {beta}")
        self.beta = float(beta)
        self.stats = stats
        self.name = f"PG(beta={self.beta:.4g})"

    def on_arrival(self, switch: CIOQSwitch, packet: Packet) -> ArrivalDecision:
        q = switch.voq[packet.src][packet.dst]
        items = q._items
        if len(items) < q.capacity:
            return ArrivalDecision.accepted()
        tail = items[0]
        if tail.value < packet.value:
            return ArrivalDecision.accepted(preempt=tail)
        return ArrivalDecision.reject()

    def _edge_eligible(self, switch: CIOQSwitch, i: int, j: int) -> Optional[Packet]:
        """Return g_ij if edge (i, j) is in G_{T[s]}, else None."""
        g = switch.voq[i][j].head()
        if g is None:
            return None
        out_q = switch.out[j]
        if not out_q.is_full:
            return g
        tail = out_q.tail()
        assert tail is not None
        if g.value > self.beta * tail.value:
            return g
        return None

    def schedule(self, switch: CIOQSwitch, slot: int, cycle: int) -> List[Transfer]:
        # Hot loop: same edge rule as _edge_eligible, with queue internals
        # read directly (see BoundedQueue docs).  Edges are built as
        # (-weight, i, j, g) so that a plain tuple sort yields exactly the
        # descending-weight, (u, v)-tie-broken scan order the paper (and
        # greedy_maximal_matching_weighted) prescribes.
        beta = self.beta
        voq, outs = switch.voq, switch.out
        n_out = switch.n_out
        # Per-output admission state is constant within one cycle: a full
        # output queue Q_j admits g only if v(g) > beta * v(l_j); an open
        # one admits anything (threshold 0 — values are positive).  The
        # full queues' tails are the preemption victims.
        thresholds = [0.0] * n_out
        victims: List[Optional[Packet]] = [None] * n_out
        for j, oq in enumerate(outs):
            oitems = oq._items
            if len(oitems) >= oq.capacity:
                tail = oitems[0]
                thresholds[j] = beta * tail.value
                victims[j] = tail
        edges = []
        append = edges.append
        for i in range(switch.n_in):
            row = voq[i]
            for j in range(n_out):
                items = row[j]._items
                if items:
                    g = items[-1]
                    gv = g.value
                    if gv > thresholds[j]:
                        append((-gv, i, j, g))

        if self.stats is not None:
            # Instrumented path: route through the shared matching engine
            # so the efficiency experiment's operation counters accumulate.
            matching = greedy_maximal_matching_weighted(
                [(i, j, -negw) for negw, i, j, _g in edges], stats=self.stats
            )
            matched = {(i, j) for i, j, _w in matching}
            chosen = [(i, j, g) for negw, i, j, g in sorted(edges)
                      if (i, j) in matched]
        else:
            edges.sort()
            n_free = min(switch.n_in, n_out)
            matched_left = set()
            matched_right = set()
            chosen = []
            for _negw, i, j, g in edges:
                if i not in matched_left and j not in matched_right:
                    matched_left.add(i)
                    matched_right.add(j)
                    chosen.append((i, j, g))
                    n_free -= 1
                    if not n_free:
                        break

        return [Transfer(i, j, g, preempt=victims[j]) for i, j, g in chosen]
