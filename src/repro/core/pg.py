"""Preemptive Greedy (PG) — Section 2.2 of the paper.

PG is the paper's general-value CIOQ algorithm, shown (3 + 2*sqrt(2))-
competitive, about 5.83, for any speedup when beta = sqrt(2) + 1
(Theorem 2).  It improves on the 6-competitive maximum-matching
algorithm of Kesselman and Rosen by using a *greedy maximal weighted*
matching instead.

With ``g_ij(t)`` the most valuable packet of VOQ ``Q_ij`` and ``l_ij(t)``
/ ``l_j(t)`` the least valuable packets of ``Q_ij`` / output queue
``Q_j``:

* **Arrival phase** — accept ``p`` iff ``|Q_ij| < B(Q_ij)`` or
  ``v(l_ij) < v(p)``; when accepting into a full queue, preempt
  ``l_ij``.
* **Scheduling phase** — edge (u_i, v_j) exists iff ``|Q_ij| > 0`` and
  (``|Q_j| < B(Q_j)`` or ``v(g_ij) > beta * v(l_j)``); its weight is
  ``v(g_ij)``.  Compute a greedy maximal matching scanning edges in
  descending weight; transfer ``g_ij`` along each matched edge,
  preempting ``l_j`` when the output queue is full.
* **Transmission phase** — send the most valuable packet of every
  non-empty output queue.

The preemption threshold ``beta >= 1`` trades admission aggressiveness
against preemption waste; the analysis optimum is ``beta* = 1 + sqrt(2)``
(see :mod:`repro.core.params` and experiment T2).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..scheduling.base import ArrivalDecision, CIOQPolicy
from ..scheduling.matching import MatchingStats, greedy_maximal_matching_weighted
from ..switch.cioq import CIOQSwitch, Transfer
from ..switch.packet import Packet

#: The analysis-optimal preemption threshold beta* = 1 + sqrt(2).
BETA_STAR = 1.0 + math.sqrt(2.0)


class PGPolicy(CIOQPolicy):
    """Preemptive Greedy: (3 + 2 sqrt 2)-competitive weighted CIOQ
    scheduling.

    Parameters
    ----------
    beta:
        Preemption threshold (>= 1).  Defaults to the analysis optimum
        ``1 + sqrt(2)``.
    stats:
        Optional :class:`MatchingStats` accumulator.
    """

    def __init__(self, beta: float = BETA_STAR, stats: Optional[MatchingStats] = None):
        if beta < 1.0:
            raise ValueError(f"beta must be >= 1, got {beta}")
        self.beta = float(beta)
        self.stats = stats
        self.name = f"PG(beta={self.beta:.4g})"

    def on_arrival(self, switch: CIOQSwitch, packet: Packet) -> ArrivalDecision:
        q = switch.voq[packet.src][packet.dst]
        if not q.is_full:
            return ArrivalDecision.accepted()
        tail = q.tail()
        assert tail is not None
        if tail.value < packet.value:
            return ArrivalDecision.accepted(preempt=tail)
        return ArrivalDecision.reject()

    def _edge_eligible(self, switch: CIOQSwitch, i: int, j: int) -> Optional[Packet]:
        """Return g_ij if edge (i, j) is in G_{T[s]}, else None."""
        g = switch.voq[i][j].head()
        if g is None:
            return None
        out_q = switch.out[j]
        if not out_q.is_full:
            return g
        tail = out_q.tail()
        assert tail is not None
        if g.value > self.beta * tail.value:
            return g
        return None

    def schedule(self, switch: CIOQSwitch, slot: int, cycle: int) -> List[Transfer]:
        edges = []
        heads = {}
        for i in range(switch.n_in):
            for j in range(switch.n_out):
                g = self._edge_eligible(switch, i, j)
                if g is not None:
                    edges.append((i, j, g.value))
                    heads[(i, j)] = g

        matching = greedy_maximal_matching_weighted(edges, stats=self.stats)
        transfers: List[Transfer] = []
        for i, j, _w in matching:
            g = heads[(i, j)]
            out_q = switch.out[j]
            victim = out_q.tail() if out_q.is_full else None
            transfers.append(Transfer(i, j, g, preempt=victim))
        return transfers
