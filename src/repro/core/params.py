"""Closed-form competitive ratios and optimal parameters.

This module encodes the ratio expressions derived in the paper's
analyses, the optimal parameter choices, and the exotic radical constants
of Theorem 4, so that tests and experiments can verify them numerically
and sweeps can compare empirical optima against the analytical ones.

* PG (Theorem 2): ratio(beta) = beta + 2*beta/(beta - 1), minimized at
  ``beta* = 1 + sqrt(2)`` with value ``3 + 2*sqrt(2) ~ 5.8284``.
* CPG (Theorem 4): ratio(beta, alpha) =
  alpha*beta + (2*alpha*beta + alpha*beta*(beta-1)) / ((alpha-1)*(beta-1)),
  minimized at ``beta* = (rho^2 + rho + 4) / (3*rho)`` with
  ``rho = (19 + 3*sqrt(33))^(1/3)`` and ``alpha* = 2/(beta*-1)^2``; the
  minimum is ``((chi+4)*rho^2 + (chi+16)*rho + 56)/12 ~ 14.83`` with
  ``chi = 19 - 3*sqrt(33)``.
"""

from __future__ import annotations

import math
from typing import Tuple

#: GM / CGU competitive ratio (Theorems 1 and 3).
GM_RATIO = 3.0
CGU_RATIO = 3.0

#: Previously known ratios the paper improves upon (for reporting).
PREVIOUS_CGU_RATIO = 4.0
PREVIOUS_PG_RATIO = 6.0
PREVIOUS_CPG_RATIO = 16.24


def pg_ratio(beta: float) -> float:
    """PG's competitive ratio bound ``beta + 2 beta / (beta - 1)``.

    Valid for ``beta > 1``; diverges as beta -> 1+ (the preemption-chain
    term) and grows linearly for large beta (the output-alignment term).
    """
    if beta <= 1.0:
        return math.inf
    return beta + 2.0 * beta / (beta - 1.0)


def pg_optimal_beta() -> float:
    """The minimizer of :func:`pg_ratio`: ``1 + sqrt(2)``."""
    return 1.0 + math.sqrt(2.0)


def pg_optimal_ratio() -> float:
    """The minimum PG ratio: ``3 + 2 sqrt(2) ~ 5.8284`` (Theorem 2)."""
    return 3.0 + 2.0 * math.sqrt(2.0)


def cpg_ratio(beta: float, alpha: float) -> float:
    """CPG's competitive ratio bound (Theorem 4's final expression).

    ``alpha*beta + (2 alpha beta + alpha beta (beta-1)) /
    ((alpha-1)(beta-1))``, valid for ``alpha > 1`` and ``beta > 1``.
    """
    if beta <= 1.0 or alpha <= 1.0:
        return math.inf
    ab = alpha * beta
    return ab + (2.0 * ab + ab * (beta - 1.0)) / ((alpha - 1.0) * (beta - 1.0))


def cpg_optimal_params() -> Tuple[float, float, float]:
    """The paper's optimal ``(beta*, alpha*, ratio*)`` for CPG.

    ``beta* = (rho^2 + rho + 4)/(3 rho)`` with
    ``rho = (19 + 3 sqrt(33))^(1/3)``, ``alpha* = 2/(beta* - 1)^2``, and
    ``ratio* = ((chi+4) rho^2 + (chi+16) rho + 56)/12`` with
    ``chi = 19 - 3 sqrt(33)`` — approximately (1.8393, 2.8392, 14.83).
    """
    rho = (19.0 + 3.0 * math.sqrt(33.0)) ** (1.0 / 3.0)
    beta = (rho * rho + rho + 4.0) / (3.0 * rho)
    alpha = 2.0 / (beta - 1.0) ** 2
    chi = 19.0 - 3.0 * math.sqrt(33.0)
    ratio = ((chi + 4.0) * rho * rho + (chi + 16.0) * rho + 56.0) / 12.0
    return beta, alpha, ratio


def cpg_optimal_ratio() -> float:
    """The minimum CPG ratio (~14.83, Theorem 4)."""
    return cpg_optimal_params()[2]


def kesselman_cpg_params() -> Tuple[float, float]:
    """The single-threshold choice ``beta == alpha`` of the prior
    16.24-competitive algorithm (Kesselman, Kogan, Segal 2012): the
    minimizer of ``cpg_ratio(t, t)``.

    Used by the T9 ablation to quantify the benefit of decoupling the
    thresholds.  Computed numerically by golden-section search.
    """
    lo, hi = 1.0 + 1e-9, 16.0
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    for _ in range(200):
        if cpg_ratio(c, c) < cpg_ratio(d, d):
            b = d
        else:
            a = c
        c = b - phi * (b - a)
        d = a + phi * (b - a)
    t = (a + b) / 2.0
    return t, t
