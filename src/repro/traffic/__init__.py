"""Traffic substrate: traces, value models and arrival generators.

Names resolve lazily (PEP 562): :class:`~repro.traffic.trace.Trace` is
pure Python and the reference simulation backend depends on it, so this
package must import without numpy — the generators (which do need
numpy's bit-exact PCG64 streams) only load when first touched.
"""

from importlib import import_module

_EXPORTS = {
    "Trace": ".trace",
    "is_stream_file": ".trace",
    "iter_stream_slots": ".trace",
    "read_stream_header": ".trace",
    "ValueModel": ".values",
    "exponential_values": ".values",
    "geometric_class_values": ".values",
    "pareto_values": ".values",
    "two_value": ".values",
    "uniform_values": ".values",
    "unit_values": ".values",
    "TrafficModel": ".base",
    "concat": ".transforms",
    "map_values": ".transforms",
    "merge": ".transforms",
    "restrict_ports": ".transforms",
    "scale_values": ".transforms",
    "time_dilate": ".transforms",
    "BernoulliTraffic": ".bernoulli",
    "BurstyTraffic": ".bursty",
    "DiagonalTraffic": ".hotspot",
    "HotspotTraffic": ".hotspot",
    "MarkovModulatedTraffic": ".markov",
    "ParetoBurstTraffic": ".paretoburst",
    "ApplicationMixTraffic": ".appmix",
    "TraceReplayTraffic": ".replay",
    "AdaptiveAdversary": ".adversarial",
    "FullQueuePressureAdversary": ".adversarial",
    "PreemptionBaitAdversary": ".adversarial",
    "RotatingBurstAdversary": ".adversarial",
    "SingleOutputOverloadAdversary": ".adversarial",
    "beta_admission_gadget": ".adversarial",
    "burst_reject_gadget": ".adversarial",
    "escalating_values_gadget": ".adversarial",
    "generate_adaptive_trace": ".adversarial",
    "two_value_contention_gadget": ".adversarial",
}


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module, __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "Trace",
    "is_stream_file",
    "iter_stream_slots",
    "read_stream_header",
    "ValueModel",
    "exponential_values",
    "geometric_class_values",
    "pareto_values",
    "two_value",
    "uniform_values",
    "unit_values",
    "TrafficModel",
    "concat",
    "map_values",
    "merge",
    "restrict_ports",
    "scale_values",
    "time_dilate",
    "BernoulliTraffic",
    "BurstyTraffic",
    "DiagonalTraffic",
    "HotspotTraffic",
    "MarkovModulatedTraffic",
    "ParetoBurstTraffic",
    "ApplicationMixTraffic",
    "TraceReplayTraffic",
    "AdaptiveAdversary",
    "FullQueuePressureAdversary",
    "PreemptionBaitAdversary",
    "RotatingBurstAdversary",
    "SingleOutputOverloadAdversary",
    "beta_admission_gadget",
    "burst_reject_gadget",
    "escalating_values_gadget",
    "generate_adaptive_trace",
    "two_value_contention_gadget",
]
