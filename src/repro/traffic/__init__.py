"""Traffic substrate: traces, value models and arrival generators."""

from .trace import Trace
from .values import (
    ValueModel,
    exponential_values,
    geometric_class_values,
    pareto_values,
    two_value,
    uniform_values,
    unit_values,
)
from .base import TrafficModel
from .transforms import (
    concat,
    map_values,
    merge,
    restrict_ports,
    scale_values,
    time_dilate,
)
from .bernoulli import BernoulliTraffic
from .bursty import BurstyTraffic
from .hotspot import DiagonalTraffic, HotspotTraffic
from .markov import MarkovModulatedTraffic
from .paretoburst import ParetoBurstTraffic
from .replay import TraceReplayTraffic
from .adversarial import (
    AdaptiveAdversary,
    FullQueuePressureAdversary,
    PreemptionBaitAdversary,
    RotatingBurstAdversary,
    SingleOutputOverloadAdversary,
    beta_admission_gadget,
    burst_reject_gadget,
    escalating_values_gadget,
    generate_adaptive_trace,
    two_value_contention_gadget,
)

__all__ = [
    "Trace",
    "ValueModel",
    "exponential_values",
    "geometric_class_values",
    "pareto_values",
    "two_value",
    "uniform_values",
    "unit_values",
    "TrafficModel",
    "concat",
    "map_values",
    "merge",
    "restrict_ports",
    "scale_values",
    "time_dilate",
    "BernoulliTraffic",
    "BurstyTraffic",
    "DiagonalTraffic",
    "HotspotTraffic",
    "MarkovModulatedTraffic",
    "ParetoBurstTraffic",
    "TraceReplayTraffic",
    "AdaptiveAdversary",
    "FullQueuePressureAdversary",
    "PreemptionBaitAdversary",
    "RotatingBurstAdversary",
    "SingleOutputOverloadAdversary",
    "beta_admission_gadget",
    "burst_reject_gadget",
    "escalating_values_gadget",
    "generate_adaptive_trace",
    "two_value_contention_gadget",
]
