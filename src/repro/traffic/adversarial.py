"""Adversarial instance generators.

Competitive ratios are worst-case statements, so random traffic alone
cannot exhibit them.  This module provides two kinds of hard instances:

1. **Deterministic gadgets** — fixed sequences encoding the structural
   weaknesses the lower-bound literature (Section 1.2) exploits:
   admission loss under VOQ bursts, preemption-chain waste under
   escalating values, and the beta-threshold admission/preemption
   trade-off the paper's conclusion discusses.

2. **Adaptive adversaries** — slot-by-slot generators that observe the
   *online* switch state and aim arrivals at its weakest queue.  Against
   a deterministic policy this is equivalent to the oblivious adversary
   of the competitive framework (the adversary could have precomputed
   the run).  :func:`generate_adaptive_trace` runs the online policy
   while the adversary builds the sequence, then returns the recorded
   :class:`~repro.traffic.trace.Trace` so the exact offline optimum can
   be computed on it afterwards.

Measured ratios on these instances are *lower bounds on the worst case*
of the specific policy run — they demonstrate the guarantees are not
vacuous (experiment T7), not that the analysis is tight.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Tuple

from ..switch.cioq import CIOQSwitch
from ..switch.config import SwitchConfig
from ..switch.packet import Packet
from .trace import Trace

ArrivalSpec = Tuple[int, int, float]  # (src, dst, value)


# ---------------------------------------------------------------------------
# Deterministic gadgets
# ---------------------------------------------------------------------------

def burst_reject_gadget(
    n: int = 4,
    b_in: int = 2,
    n_rounds: int = 8,
) -> Trace:
    """Unit-value VOQ-overflow gadget for an n x n switch.

    Every round, each input receives a burst of ``2 * b_in`` packets for
    a single round-dependent output (overflowing any VOQ of capacity
    ``b_in``), followed by ``b_in`` quiet slots in which only one fresh
    packet per input arrives, aimed at the output the burst just
    saturated.  A greedy online algorithm has its VOQ still full and
    rejects the fresh packets; the optimum can reject part of the burst
    instead and keep room.  Measured ratios grow with ``b_in``.
    """
    packets: List[Packet] = []
    pid = 0
    t = 0
    for r in range(n_rounds):
        hot = r % n
        for i in range(n):
            for _ in range(2 * b_in):
                packets.append(Packet(pid, 1.0, t, i, hot))
                pid += 1
        for q in range(b_in):
            t += 1
            for i in range(n):
                packets.append(Packet(pid, 1.0, t, i, hot))
                pid += 1
        t += 1
    return Trace(packets, n, n, name=f"burst-reject(n={n},b_in={b_in})")


def escalating_values_gadget(
    beta: float,
    n: int = 2,
    chain_length: int = 6,
    n_chains: int = 4,
    eps: float = 0.05,
) -> Trace:
    """Preemption-chain gadget for weighted policies (PG analysis,
    Lemma 7).

    Within a single slot, a chain of packets with values
    ``1, c, c^2, ..., c^k`` (``c = beta + eps``) arrives at input 0, all
    for output 0.  Each is just valuable enough to preempt its
    predecessor at a capacity-1 queue, so an online policy with
    threshold ``beta`` preempts its way up the chain and salvages only
    ``c^k`` — while the optimum simply rejects everything but the top
    packet and loses nothing.  Chains repeat every other slot on
    rotating outputs so transmissions cannot amortize the waste.
    """
    if beta < 1.0:
        raise ValueError(f"beta must be >= 1, got {beta}")
    c = beta + eps
    packets: List[Packet] = []
    pid = 0
    for chain in range(n_chains):
        t = 2 * chain
        dst = chain % n
        for k in range(chain_length + 1):
            packets.append(Packet(pid, c ** k, t, 0, dst))
            pid += 1
    return Trace(
        packets, n, n, name=f"escalating(beta={beta:g},k={chain_length})"
    )


def beta_admission_gadget(
    beta: float,
    n: int = 2,
    b_out: int = 4,
    rate: int = 3,
    n_rounds: int = 3,
    eps: float = 0.05,
) -> Trace:
    """The "first term" scenario of the paper's Section 4 discussion:
    PG's ratio pays ``beta`` when it admits cheap packets into output
    queues that block almost-``beta``-times-more-valuable traffic.

    Each round: (a) value-1 packets from every input fill output 0's
    queue; (b) during the ``b_out`` slots the queue takes to drain, a
    stream of value-``(beta - eps)`` packets floods VOQ (0, 0) — PG
    cannot schedule them (``v <= beta * 1``) and, once the VOQ
    overflows, cannot even accept them (equal-value tails are not
    preempted), while the optimum simply rejects the 1s and delivers
    the whole stream.  Run against ``PGPolicy(beta=beta)`` with
    ``SwitchConfig.square(n, speedup=n, b_in=b_out, b_out=b_out)``;
    measured ratios are ~1.3 (paper bound 5.83), and sweeping the
    *policy's* beta on this fixed trace reproduces the admission-
    aggressiveness trade-off (experiments T7/T9).
    """
    if beta < 1.0:
        raise ValueError(f"beta must be >= 1, got {beta}")
    v = beta - eps
    if v <= 1.0:
        raise ValueError("beta - eps must exceed the low value 1")
    packets: List[Packet] = []
    pid = 0
    t = 0
    for _ in range(n_rounds):
        for _ in range(b_out):
            for i in range(n):
                packets.append(Packet(pid, 1.0, t, i, 0))
                pid += 1
            t += 1
        for _ in range(b_out):
            for _ in range(rate):
                packets.append(Packet(pid, v, t, 0, 0))
                pid += 1
            t += 1
        t += rate * b_out  # quiet drain period
    return Trace(packets, n, n, name=f"beta-admission(beta={beta:g})")


def two_value_contention_gadget(
    alpha: float = 10.0,
    n: int = 4,
    b_out: int = 4,
    n_rounds: int = 6,
) -> Trace:
    """Two-value gadget for the beta trade-off of Section 4.

    Each round floods output 0 with value-1 packets from every input
    (filling online output queues with cheap traffic), then delivers a
    burst of value-``alpha`` packets for the same output.  A small beta
    admits the high-value burst by preempting the cheap packets (good
    here); a large beta refuses to preempt and forfeits the burst.  The
    reverse pattern (cheap traffic that would all have been deliverable)
    appears in rounds where no burst follows, punishing small beta.
    """
    if alpha < 1.0:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    packets: List[Packet] = []
    pid = 0
    t = 0
    for r in range(n_rounds):
        burst_round = r % 2 == 0
        for _ in range(b_out):
            for i in range(n):
                packets.append(Packet(pid, 1.0, t, i, 0))
                pid += 1
            t += 1
        if burst_round:
            for i in range(n):
                for _ in range(b_out):
                    packets.append(Packet(pid, alpha, t, i, 0))
                    pid += 1
            t += 1
        # Quiet drain period.
        t += b_out
    return Trace(packets, n, n, name=f"two-value(alpha={alpha:g})")


# ---------------------------------------------------------------------------
# Adaptive adversaries
# ---------------------------------------------------------------------------

class AdaptiveAdversary(ABC):
    """Generates arrivals slot-by-slot while observing the online switch."""

    name = "adaptive"

    @abstractmethod
    def next_arrivals(self, slot: int, switch: CIOQSwitch) -> List[ArrivalSpec]:
        """Arrivals for ``slot``, chosen after seeing the online state
        at the end of slot ``slot - 1``."""


class FullQueuePressureAdversary(AdaptiveAdversary):
    """Unit-value adversary that aims packets at the online algorithm's
    fullest VOQs.

    Each slot it sends one packet to every VOQ that is currently *full*
    in the online switch (guaranteed rejections for non-preemptive
    policies, while an optimum that drained differently could accept)
    plus a sustaining packet to the most loaded output of each input so
    queues never empty.  This adapts the classical multi-queue greedy
    lower-bound pressure pattern to the CIOQ setting.
    """

    name = "full-queue-pressure"

    def __init__(self, sustain: bool = True):
        self.sustain = sustain

    def next_arrivals(self, slot: int, switch: CIOQSwitch) -> List[ArrivalSpec]:
        out: List[ArrivalSpec] = []
        if slot == 0:
            # Opening burst: fill every VOQ to capacity.
            for i in range(switch.n_in):
                for j in range(switch.n_out):
                    for _ in range(switch.config.b_in):
                        out.append((i, j, 1.0))
            return out
        for i in range(switch.n_in):
            row = switch.voq[i]
            targeted = False
            for j in range(switch.n_out):
                if row[j].is_full:
                    out.append((i, j, 1.0))
                    targeted = True
            if self.sustain and not targeted:
                # Keep the input busy: top up its longest VOQ.
                j_best = max(range(switch.n_out), key=lambda j: len(row[j]))
                out.append((i, j_best, 1.0))
        return out


class SingleOutputOverloadAdversary(AdaptiveAdversary):
    """Unit-value adversary reducing the switch to the IQ model: all
    packets target output 0, and bursts of ``b_in`` packets are aimed at
    a *full* online VOQ (rotating among the full ones) — guaranteed
    rejections for a greedy online algorithm, while the optimum, which
    drained that VOQ earlier, accepts them and delivers during the drain
    period.

    The classical multi-queue lower bounds (Section 1.2: >= 2 - 1/m for
    greedy policies) use exactly this end-effect structure over short
    sequences; on N=6, B=3, ~18 slots this adversary pushes GM's
    measured ratio to ~1.6-1.7 (bound: 3).
    """

    name = "single-output-overload"

    def next_arrivals(self, slot: int, switch: CIOQSwitch) -> List[ArrivalSpec]:
        b_in = switch.config.b_in
        out: List[ArrivalSpec] = []
        if slot == 0:
            for i in range(switch.n_in):
                out.extend([(i, 0, 1.0)] * b_in)
            return out
        fulls = [
            i for i in range(switch.n_in) if len(switch.voq[i][0]) >= b_in
        ]
        if fulls:
            i = fulls[slot % len(fulls)]
            out.extend([(i, 0, 1.0)] * b_in)
        else:
            i = max(range(switch.n_in), key=lambda k: len(switch.voq[k][0]))
            out.append((i, 0, 1.0))
        return out


class RotatingBurstAdversary(AdaptiveAdversary):
    """Unit-value adversary sustaining the overload gap over long
    sequences: phase ``p`` attacks output ``p mod N`` with an initial
    over-capacity burst into every VOQ of that output, then refills
    exactly the online algorithm's *full* VOQs each slot.  The optimum
    drains phase-``p`` packets in parallel with later phases (different
    outputs), so the per-phase gap accumulates instead of amortizing;
    measured GM ratios stay ~1.25-1.35 regardless of sequence length.
    """

    name = "rotating-burst"

    def __init__(self, phase_len: Optional[int] = None):
        self.phase_len = phase_len

    def next_arrivals(self, slot: int, switch: CIOQSwitch) -> List[ArrivalSpec]:
        b_in = switch.config.b_in
        length = self.phase_len if self.phase_len is not None else b_in + 1
        j = (slot // length) % switch.n_out
        out: List[ArrivalSpec] = []
        if slot % length == 0:
            for i in range(switch.n_in):
                out.extend([(i, j, 1.0)] * (2 * b_in))
        else:
            for i in range(switch.n_in):
                if len(switch.voq[i][j]) >= b_in:
                    out.append((i, j, 1.0))
        return out


class PreemptionBaitAdversary(AdaptiveAdversary):
    """Weighted adversary that escalates values just above ``beta`` times
    the cheapest packet in the online algorithm's fullest output queue,
    baiting threshold policies into preemption chains (the x(q_m)
    recursion of Lemma 7)."""

    name = "preemption-bait"

    def __init__(self, beta: float, eps: float = 0.05, ceiling: float = 1e9):
        if beta < 1.0:
            raise ValueError(f"beta must be >= 1, got {beta}")
        self.beta = beta
        self.eps = eps
        self.ceiling = ceiling

    def next_arrivals(self, slot: int, switch: CIOQSwitch) -> List[ArrivalSpec]:
        out: List[ArrivalSpec] = []
        if slot == 0:
            for i in range(switch.n_in):
                for j in range(switch.n_out):
                    for _ in range(switch.config.b_in):
                        out.append((i, j, 1.0))
            return out
        src = slot % switch.n_in
        for j in range(switch.n_out):
            # Bait the arrival-phase preemption: if the targeted VOQ is
            # full, arrive just above beta times its cheapest resident
            # (also above the resident itself), forcing the online
            # algorithm to discard buffered value for marginal gain.
            voq = switch.voq[src][j]
            tail = voq.tail()
            if voq.is_full and tail is not None:
                bait = min((self.beta + self.eps) * tail.value, self.ceiling)
                out.append((src, j, bait))
            else:
                out.append((src, j, 1.0))
        return out


def generate_adaptive_trace(
    policy_factory: Callable[[], "object"],
    config: SwitchConfig,
    adversary: AdaptiveAdversary,
    n_slots: int,
) -> Trace:
    """Run ``policy`` on a CIOQ switch while ``adversary`` generates the
    arrivals, and return the recorded trace.

    The returned trace can then be fed to both the same policy (whose
    run is deterministic, hence identical) and the offline optimum for
    ratio measurement.
    """
    # Local import: the engine imports traffic types, avoid a cycle.
    from ..simulation.engine import run_cioq_streaming

    arrivals_log: List[List[ArrivalSpec]] = []

    def source(slot: int, switch: CIOQSwitch) -> List[ArrivalSpec]:
        specs = adversary.next_arrivals(slot, switch)
        arrivals_log.append(list(specs))
        return specs

    run_cioq_streaming(policy_factory(), config, source, n_slots)

    packets: List[Packet] = []
    pid = 0
    for t, specs in enumerate(arrivals_log):
        for src, dst, value in specs:
            packets.append(Packet(pid, value, t, src, dst))
            pid += 1
    return Trace(
        packets,
        config.n_in,
        config.n_out,
        name=f"adaptive/{adversary.name}",
    )
