"""Trace container: a concrete input sequence σ.

A :class:`Trace` is a finite arrival sequence — the σ of the competitive
framework.  It stores every packet with its arrival slot and exposes the
per-slot arrival lists the simulation engine consumes, summary statistics
for reports, and JSON (de)serialization so that interesting instances
(e.g. adversarial gadgets or ratio outliers found in sweeps) can be saved
and replayed.

Two on-disk formats exist:

* the **legacy single-document JSON** written by :meth:`Trace.save` —
  fine for small instances, but loading materializes every packet;
* the **chunked stream format** written by :meth:`Trace.save_stream` —
  a JSONL file (one header line, then one line per fixed-width slot
  chunk) that :func:`iter_stream_slots` replays at O(chunk) peak
  memory, so multi-million-packet recordings never have to fit in RAM.

:meth:`Trace.load` sniffs the format, so every consumer that accepts a
trace path transparently reads both.

A trace's slot count is part of the instance: a recording that ends
with intended idle time (drain slots, the gap of a warm-up/attack
composition) keeps it through ``n_slots``, which both serializers
persist and :func:`~repro.traffic.transforms.concat` and
:class:`~repro.traffic.replay.TraceReplayTraffic` tiling respect.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..switch.packet import Packet, total_value, validate_packets

#: Magic ``format`` value of the chunked stream header line.
STREAM_FORMAT = "repro-trace-stream"

#: Bump when the stream schema changes (readers check this).
STREAM_VERSION = 1

#: Default arrival slots per stream chunk line.
STREAM_CHUNK_SLOTS = 4096


class Trace:
    """An input sequence of packets for an ``n_in x n_out`` switch.

    Parameters
    ----------
    packets:
        The arrival sequence (validated, sorted by ``(arrival, pid)``).
    n_in, n_out:
        Switch dimensions.
    name:
        Display name, propagated into result reports.
    n_slots:
        Explicit arrival-slot count.  Defaults to ``last arrival + 1``
        (0 for an empty trace), but a recording that ends with intended
        idle slots must say so — otherwise concatenation and replay
        tiling would silently drop the trailing idle time.  Must be at
        least the derived value.
    """

    def __init__(
        self,
        packets: Iterable[Packet],
        n_in: int,
        n_out: int,
        name: str = "trace",
        n_slots: Optional[int] = None,
    ):
        self.n_in = int(n_in)
        self.n_out = int(n_out)
        self.name = name
        self.packets: List[Packet] = validate_packets(packets, self.n_in, self.n_out)
        derived = (self.packets[-1].arrival + 1) if self.packets else 0
        if n_slots is None:
            self.n_slots = derived
        else:
            n_slots = int(n_slots)
            if n_slots < derived:
                raise ValueError(
                    f"n_slots={n_slots} is smaller than the last arrival "
                    f"slot + 1 ({derived})"
                )
            self.n_slots = n_slots
        self._by_slot: List[List[Packet]] = [[] for _ in range(self.n_slots)]
        for p in self.packets:
            self._by_slot[p.arrival].append(p)
        self._slot_tuples: Optional[Tuple[Tuple[Packet, ...], ...]] = None
        self._digest: Optional[str] = None

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.packets)

    def arrivals(self, slot: int) -> Sequence[Packet]:
        """Packets arriving in ``slot`` (empty past the last arrival)."""
        if 0 <= slot < len(self._by_slot):
            return self._by_slot[slot]
        return ()

    def arrival_slots(self) -> Tuple[Tuple[Packet, ...], ...]:
        """Per-slot arrival arrays, precomputed once per trace.

        ``arrival_slots()[t]`` is the (possibly empty) tuple of packets
        arriving in slot ``t`` for ``t in range(n_slots)``.  The
        simulation kernel indexes this directly in its slot loop instead
        of paying a bounds-checked :meth:`arrivals` call per slot; the
        tuples are built lazily on first use and cached.
        """
        if self._slot_tuples is None:
            self._slot_tuples = tuple(tuple(s) for s in self._by_slot)
        return self._slot_tuples

    @property
    def total_value(self) -> float:
        return total_value(self.packets)

    @property
    def is_unit_valued(self) -> bool:
        return all(p.value == 1.0 for p in self.packets)

    def max_value(self) -> float:
        return max((p.value for p in self.packets), default=0.0)

    def min_value(self) -> float:
        return min((p.value for p in self.packets), default=0.0)

    def load_matrix(self) -> List[List[int]]:
        """Packet counts per (input, output) pair."""
        m = [[0] * self.n_out for _ in range(self.n_in)]
        for p in self.packets:
            m[p.src][p.dst] += 1
        return m

    def offered_load(self) -> float:
        """Mean arrivals per output port per slot (1.0 = line rate)."""
        if self.n_slots == 0:
            return 0.0
        return len(self.packets) / (self.n_slots * self.n_out)

    def describe(self) -> Dict[str, object]:
        """Summary statistics for reports."""
        return {
            "name": self.name,
            "n_in": self.n_in,
            "n_out": self.n_out,
            "n_slots": self.n_slots,
            "n_packets": len(self.packets),
            "total_value": self.total_value,
            "offered_load": round(self.offered_load(), 4),
            "unit_valued": self.is_unit_valued,
            "value_range": (self.min_value(), self.max_value()),
        }

    def content_digest(self) -> str:
        """SHA-256 over the trace content, memoized after the first call.

        Hashes a fixed little-endian binary packing of the dimensions
        and the packet records instead of the JSON text — an order of
        magnitude cheaper than ``sha256(to_json())``, which matters
        because the sweep cache re-keys every trace on every
        :meth:`~repro.parallel.SweepExecutor.run` call.  Traces are
        immutable after construction, so the memo never invalidates.
        The packing (not the JSON form) is the digest's definition;
        changing it requires a ``CACHE_VERSION`` bump.
        """
        if self._digest is None:
            h = hashlib.sha256(
                struct.pack("<4q", self.n_in, self.n_out, self.n_slots,
                            len(self.packets))
            )
            pack = struct.Struct("<qdqqq").pack
            for p in self.packets:
                h.update(pack(p.pid, p.value, p.arrival, p.src, p.dst))
            self._digest = h.hexdigest()
        return self._digest

    # -- (de)serialization ----------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "name": self.name,
            "n_in": self.n_in,
            "n_out": self.n_out,
            "n_slots": self.n_slots,
            "packets": [
                [p.pid, p.value, p.arrival, p.src, p.dst] for p in self.packets
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        payload = json.loads(text)
        packets = [
            Packet(pid=int(r[0]), value=float(r[1]), arrival=int(r[2]),
                   src=int(r[3]), dst=int(r[4]))
            for r in payload["packets"]
        ]
        # Files written before the explicit-slot-count fix carry no
        # "n_slots"; fall back to the derived value they always implied.
        return cls(packets, payload["n_in"], payload["n_out"],
                   name=payload.get("name", "trace"),
                   n_slots=payload.get("n_slots"))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Load a trace from either on-disk format (sniffed)."""
        if is_stream_file(path):
            return cls.load_stream(path)
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # -- chunked stream format ------------------------------------------------

    def save_stream(self, path: str,
                    chunk_slots: int = STREAM_CHUNK_SLOTS) -> None:
        """Write the trace as a chunked JSONL stream.

        Line 1 is the header (format/version/dimensions/``n_slots``/
        packet count); each further line covers ``chunk_slots`` arrival
        slots ``[base, base + chunk_slots)`` with its packets as
        ``[pid, value, arrival, src, dst]`` rows.  Trailing idle slots
        are represented by the header's ``n_slots`` (empty chunks are
        not written), so the format round-trips exactly and
        :func:`iter_stream_slots` replays it at O(chunk) peak memory.
        """
        if chunk_slots < 1:
            raise ValueError("chunk_slots must be >= 1")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "format": STREAM_FORMAT,
                "version": STREAM_VERSION,
                "name": self.name,
                "n_in": self.n_in,
                "n_out": self.n_out,
                "n_slots": self.n_slots,
                "n_packets": len(self.packets),
                "chunk_slots": int(chunk_slots),
            }))
            fh.write("\n")
            i = 0
            packets = self.packets
            n = len(packets)
            for base in range(0, self.n_slots, chunk_slots):
                stop = base + chunk_slots
                rows = []
                while i < n and packets[i].arrival < stop:
                    p = packets[i]
                    rows.append([p.pid, p.value, p.arrival, p.src, p.dst])
                    i += 1
                if rows:
                    fh.write(json.dumps({"base": base, "packets": rows}))
                    fh.write("\n")

    @classmethod
    def load_stream(cls, path: str) -> "Trace":
        """Materialize a chunked stream file into a :class:`Trace`.

        This loads every packet into RAM — it is the *control* path for
        differential tests; memory-bounded consumers should use
        :func:`iter_stream_slots` (or
        :class:`~repro.traffic.replay.TraceReplayTraffic`'s streaming
        source) instead.
        """
        header = read_stream_header(path)
        packets: List[Packet] = []
        for _slot, arrivals in iter_stream_slots(path):
            packets.extend(arrivals)
        return cls(packets, header["n_in"], header["n_out"],
                   name=header.get("name", "trace"),
                   n_slots=header["n_slots"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({self.name!r}, {len(self.packets)} packets, "
            f"{self.n_in}x{self.n_out}, {self.n_slots} slots)"
        )


# --------------------------------------------------------------------------
# Stream readers (module-level: usable without materializing a Trace)
# --------------------------------------------------------------------------

def is_stream_file(path: str) -> bool:
    """True if ``path`` starts with a chunked-stream header line."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            head = fh.readline()
        return json.loads(head).get("format") == STREAM_FORMAT
    except (OSError, ValueError):
        return False


def read_stream_header(path: str) -> Dict[str, object]:
    """Parse and validate the header line of a chunked stream file."""
    with open(path, "r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
    if header.get("format") != STREAM_FORMAT:
        raise ValueError(f"{path} is not a {STREAM_FORMAT} file")
    if header.get("version") != STREAM_VERSION:
        raise ValueError(
            f"{path}: unsupported stream version {header.get('version')!r} "
            f"(this build reads version {STREAM_VERSION})"
        )
    for key in ("n_in", "n_out", "n_slots", "n_packets"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            raise ValueError(f"{path}: bad stream header field {key!r}")
    return header


def iter_stream_slots(path: str) -> Iterator[Tuple[int, List[Packet]]]:
    """Yield ``(slot, packets)`` for every slot ``0 .. n_slots - 1``.

    Empty slots (including trailing idle ones) yield an empty list, so
    consuming the generator replays the exact recorded timeline.  Peak
    memory is one chunk of packets — the file is read strictly forward
    and nothing is retained across chunks.
    """
    header = read_stream_header(path)
    n_in, n_out = header["n_in"], header["n_out"]
    n_slots = header["n_slots"]
    n_seen = 0
    with open(path, "r", encoding="utf-8") as fh:
        fh.readline()  # header
        slot = 0
        prev_base = -1
        for line in fh:
            if not line.strip():
                continue
            chunk = json.loads(line)
            base = int(chunk["base"])
            if base <= prev_base or base >= n_slots:
                raise ValueError(
                    f"{path}: chunk base {base} out of order or range"
                )
            prev_base = base
            while slot < base:
                yield slot, []
                slot += 1
            by_slot: Dict[int, List[Packet]] = {}
            for r in chunk["packets"]:
                p = Packet(pid=int(r[0]), value=float(r[1]),
                           arrival=int(r[2]), src=int(r[3]), dst=int(r[4]))
                if not (0 <= p.src < n_in and 0 <= p.dst < n_out):
                    raise ValueError(
                        f"{path}: packet {p.pid} ports out of range"
                    )
                if p.arrival < base:
                    raise ValueError(
                        f"{path}: packet {p.pid} arrival {p.arrival} "
                        f"before its chunk base {base}"
                    )
                if p.arrival >= n_slots:
                    raise ValueError(
                        f"{path}: packet {p.pid} arrival {p.arrival} "
                        f"beyond n_slots {n_slots}"
                    )
                by_slot.setdefault(p.arrival, []).append(p)
                n_seen += 1
            for t in sorted(by_slot):
                while slot < t:
                    yield slot, []
                    slot += 1
                arrivals = by_slot[t]
                arrivals.sort(key=lambda p: p.pid)
                yield slot, arrivals
                slot += 1
        while slot < n_slots:
            yield slot, []
            slot += 1
    if n_seen != header["n_packets"]:
        raise ValueError(
            f"{path}: stream carries {n_seen} packets but the header "
            f"promises {header['n_packets']}"
        )
