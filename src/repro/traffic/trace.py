"""Trace container: a concrete input sequence σ.

A :class:`Trace` is a finite arrival sequence — the σ of the competitive
framework.  It stores every packet with its arrival slot and exposes the
per-slot arrival lists the simulation engine consumes, summary statistics
for reports, and JSON (de)serialization so that interesting instances
(e.g. adversarial gadgets or ratio outliers found in sweeps) can be saved
and replayed.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..switch.packet import Packet, total_value, validate_packets


class Trace:
    """An input sequence of packets for an ``n_in x n_out`` switch."""

    def __init__(
        self,
        packets: Iterable[Packet],
        n_in: int,
        n_out: int,
        name: str = "trace",
    ):
        self.n_in = int(n_in)
        self.n_out = int(n_out)
        self.name = name
        self.packets: List[Packet] = validate_packets(packets, self.n_in, self.n_out)
        self.n_slots = (self.packets[-1].arrival + 1) if self.packets else 0
        self._by_slot: List[List[Packet]] = [[] for _ in range(self.n_slots)]
        for p in self.packets:
            self._by_slot[p.arrival].append(p)
        self._slot_tuples: Optional[Tuple[Tuple[Packet, ...], ...]] = None

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.packets)

    def arrivals(self, slot: int) -> Sequence[Packet]:
        """Packets arriving in ``slot`` (empty past the last arrival)."""
        if 0 <= slot < self.n_slots:
            return self._by_slot[slot]
        return ()

    def arrival_slots(self) -> Tuple[Tuple[Packet, ...], ...]:
        """Per-slot arrival arrays, precomputed once per trace.

        ``arrival_slots()[t]`` is the (possibly empty) tuple of packets
        arriving in slot ``t`` for ``t in range(n_slots)``.  The
        simulation kernel indexes this directly in its slot loop instead
        of paying a bounds-checked :meth:`arrivals` call per slot; the
        tuples are built lazily on first use and cached.
        """
        if self._slot_tuples is None:
            self._slot_tuples = tuple(tuple(s) for s in self._by_slot)
        return self._slot_tuples

    @property
    def total_value(self) -> float:
        return total_value(self.packets)

    @property
    def is_unit_valued(self) -> bool:
        return all(p.value == 1.0 for p in self.packets)

    def max_value(self) -> float:
        return max((p.value for p in self.packets), default=0.0)

    def min_value(self) -> float:
        return min((p.value for p in self.packets), default=0.0)

    def load_matrix(self) -> List[List[int]]:
        """Packet counts per (input, output) pair."""
        m = [[0] * self.n_out for _ in range(self.n_in)]
        for p in self.packets:
            m[p.src][p.dst] += 1
        return m

    def offered_load(self) -> float:
        """Mean arrivals per output port per slot (1.0 = line rate)."""
        if self.n_slots == 0:
            return 0.0
        return len(self.packets) / (self.n_slots * self.n_out)

    def describe(self) -> Dict[str, object]:
        """Summary statistics for reports."""
        return {
            "name": self.name,
            "n_in": self.n_in,
            "n_out": self.n_out,
            "n_slots": self.n_slots,
            "n_packets": len(self.packets),
            "total_value": self.total_value,
            "offered_load": round(self.offered_load(), 4),
            "unit_valued": self.is_unit_valued,
            "value_range": (self.min_value(), self.max_value()),
        }

    # -- (de)serialization ----------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "name": self.name,
            "n_in": self.n_in,
            "n_out": self.n_out,
            "packets": [
                [p.pid, p.value, p.arrival, p.src, p.dst] for p in self.packets
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        payload = json.loads(text)
        packets = [
            Packet(pid=int(r[0]), value=float(r[1]), arrival=int(r[2]),
                   src=int(r[3]), dst=int(r[4]))
            for r in payload["packets"]
        ]
        return cls(packets, payload["n_in"], payload["n_out"],
                   name=payload.get("name", "trace"))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({self.name!r}, {len(self.packets)} packets, "
            f"{self.n_in}x{self.n_out}, {self.n_slots} slots)"
        )
