"""Uniform Bernoulli i.i.d. traffic.

The classical admissible-traffic benchmark for switch scheduling: in
each slot, each input port independently receives a packet with
probability ``load``; its destination is uniform over the output ports.
``load <= 1`` keeps both inputs and outputs under line rate on average;
``load > 1`` is modelled by allowing multiple independent arrivals per
input per slot (a Poisson-ish burst), since the paper's arrival phase
explicitly allows "arbitrarily many packets" per slot.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .base import TrafficModel, bernoulli_count
from .values import ValueModel


class BernoulliTraffic(TrafficModel):
    """i.i.d. Bernoulli arrivals with uniform destinations.

    Parameters
    ----------
    n_in, n_out:
        Switch dimensions.
    load:
        Expected arrivals per input port per slot.  Values > 1 produce
        ``floor(load)`` deterministic arrivals plus a Bernoulli
        remainder.
    value_model:
        Packet value distribution (default unit).
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        load: float = 0.8,
        value_model: Optional[ValueModel] = None,
    ):
        if load < 0:
            raise ValueError(f"load must be >= 0, got {load}")
        super().__init__(n_in, n_out, value_model, name=f"bernoulli(load={load:g})")
        self.load = float(load)

    def arrivals_for_slot(
        self, slot: int, rng: np.random.Generator
    ) -> List[Tuple[int, int]]:
        out: List[Tuple[int, int]] = []
        for i in range(self.n_in):
            for _ in range(bernoulli_count(rng, self.load)):
                out.append((i, int(rng.integers(0, self.n_out))))
        return out
