"""Nonuniform destination patterns: hotspot and diagonal traffic.

Standard stress patterns from the switching literature:

* **hotspot** — a fraction of all traffic targets one (or a few) output
  ports, creating sustained output contention; this is the regime where
  output-queue capacity and the scheduling policy's output choices
  dominate throughput.
* **diagonal** — input ``i`` sends mostly to output ``i`` and the rest
  to ``i+1 (mod N)``; the classical hard case for maximal-matching
  schedulers because the bipartite graph is near-degenerate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .base import TrafficModel, bernoulli_count
from .values import ValueModel


class HotspotTraffic(TrafficModel):
    """Bernoulli arrivals with a hotspot destination distribution.

    With probability ``hot_fraction`` a packet targets the hotspot
    output (port 0 by default); otherwise its destination is uniform
    over the remaining ports.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        load: float = 0.9,
        hot_fraction: float = 0.5,
        hot_port: int = 0,
        value_model: Optional[ValueModel] = None,
    ):
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0,1], got {hot_fraction}")
        if not 0 <= hot_port < n_out:
            raise ValueError(f"hot_port {hot_port} out of range")
        if load < 0:
            raise ValueError(f"load must be >= 0, got {load}")
        super().__init__(
            n_in,
            n_out,
            value_model,
            name=f"hotspot(load={load:g},hot={hot_fraction:g}@{hot_port})",
        )
        self.load = float(load)
        self.hot_fraction = float(hot_fraction)
        self.hot_port = int(hot_port)

    def arrivals_for_slot(
        self, slot: int, rng: np.random.Generator
    ) -> List[Tuple[int, int]]:
        out: List[Tuple[int, int]] = []
        cold_ports = [j for j in range(self.n_out) if j != self.hot_port]
        for i in range(self.n_in):
            for _ in range(bernoulli_count(rng, self.load)):
                if self.n_out == 1 or rng.random() < self.hot_fraction:
                    dst = self.hot_port
                else:
                    dst = cold_ports[int(rng.integers(0, len(cold_ports)))]
                out.append((i, dst))
        return out


class DiagonalTraffic(TrafficModel):
    """Diagonal loading: input i -> output i w.p. ``diag_fraction``,
    else output (i+1) mod n_out.  Requires a square-ish switch
    (destinations are taken mod ``n_out``)."""

    def __init__(
        self,
        n_in: int,
        n_out: int,
        load: float = 0.9,
        diag_fraction: float = 2.0 / 3.0,
        value_model: Optional[ValueModel] = None,
    ):
        if not 0.0 <= diag_fraction <= 1.0:
            raise ValueError(f"diag_fraction must be in [0,1], got {diag_fraction}")
        if load < 0:
            raise ValueError(f"load must be >= 0, got {load}")
        super().__init__(
            n_in,
            n_out,
            value_model,
            name=f"diagonal(load={load:g},diag={diag_fraction:g})",
        )
        self.load = float(load)
        self.diag_fraction = float(diag_fraction)

    def arrivals_for_slot(
        self, slot: int, rng: np.random.Generator
    ) -> List[Tuple[int, int]]:
        out: List[Tuple[int, int]] = []
        for i in range(self.n_in):
            for _ in range(bernoulli_count(rng, self.load)):
                if rng.random() < self.diag_fraction:
                    dst = i % self.n_out
                else:
                    dst = (i + 1) % self.n_out
                out.append((i, dst))
        return out
