"""Trace replay: drive experiments from a recorded arrival sequence.

Interesting instances — adversarial gadgets, ratio outliers found in
sweeps, captures from other simulators — are saved via
:meth:`~repro.traffic.trace.Trace.save` (single-document JSON) or
:meth:`~repro.traffic.trace.Trace.save_stream` (chunked JSONL).  This
model replays such a recording through the
:class:`~repro.traffic.base.TrafficModel` interface so that every
consumer of traffic models (scenarios, benchmarks, the CLI) can run on
recorded inputs exactly like on synthetic ones.

Replay preserves the recorded packet *values* (the value model of the
original instance is part of the instance): ``arrivals_for_slot``
returns ``(src, dst, value)`` triples, so both the materialized and the
streaming path carry them.  ``generate`` is a pure function of its
arguments: the same recording and ``n_slots`` always produce the same
trace, for any seed.

Memory behaviour depends on the recording's format.  A chunked stream
file is **not** materialized at construction: only its header is read,
and :meth:`TraceReplayTraffic.arrival_source` replays it forward at
O(chunk) peak memory (``repeat=True`` re-reads the file per period), so
multi-million-packet recordings can drive ``run_*_streaming`` without
ever fitting in RAM.  ``generate`` and random-access
``arrivals_for_slot`` materialize the recording on first use — they are
the small-instance/control paths.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..switch.packet import Packet
from .base import TrafficModel
from .trace import Trace, is_stream_file, iter_stream_slots, read_stream_header


class TraceReplayTraffic(TrafficModel):
    """Replays a recorded :class:`Trace` (from memory or a file).

    Parameters
    ----------
    source:
        A :class:`Trace` instance, or a path to a file written by
        :meth:`Trace.save` or :meth:`Trace.save_stream` (format is
        sniffed; stream files stay on disk until a materializing
        method needs them).
    repeat:
        If true, the recording is tiled end-to-end — with period
        ``n_slots`` of the recording, trailing idle slots included —
        to fill the requested horizon; otherwise arrivals beyond the
        recording simply stop (and arrivals past ``n_slots`` are
        truncated).
    """

    def __init__(self, source: Union[Trace, str], repeat: bool = False):
        self._path: Optional[str] = None
        if isinstance(source, str) and is_stream_file(source):
            header = read_stream_header(source)
            self._path = source
            self._trace: Optional[Trace] = None
            n_in, n_out = int(header["n_in"]), int(header["n_out"])
            self._src_n_slots = int(header["n_slots"])
            src_name = str(header.get("name", "trace"))
        else:
            trace = Trace.load(source) if isinstance(source, str) else source
            self._trace = trace
            n_in, n_out = trace.n_in, trace.n_out
            self._src_n_slots = trace.n_slots
            src_name = trace.name
        super().__init__(n_in, n_out, None, name=f"replay({src_name})")
        self.repeat = bool(repeat)

    @property
    def source(self) -> Trace:
        """The recording as an in-memory :class:`Trace` (materializes a
        stream-backed recording on first access)."""
        if self._trace is None:
            self._trace = Trace.load_stream(self._path)
        return self._trace

    @property
    def src_n_slots(self) -> int:
        """Slot count of the recording (tiling period when repeating),
        available without materializing a stream-backed recording."""
        return self._src_n_slots

    def arrivals_for_slot(
        self, slot: int, rng: np.random.Generator
    ) -> List[Tuple[int, int, float]]:
        if self.repeat and self._src_n_slots > 0:
            slot = slot % self._src_n_slots
        return [(p.src, p.dst, p.value) for p in self.source.arrivals(slot)]

    def _iter_recorded_slots(self) -> Iterator[List[Tuple[int, int, float]]]:
        """Per-slot ``(src, dst, value)`` lists over one recording
        period, reading a stream-backed recording forward from disk."""
        if self._trace is not None:
            for t in range(self._trace.n_slots):
                yield [(p.src, p.dst, p.value)
                       for p in self._trace.arrivals(t)]
        else:
            for _t, pkts in iter_stream_slots(self._path):
                yield [(p.src, p.dst, p.value) for p in pkts]

    def arrival_source(
        self, seed: int = 0
    ) -> Callable[[int, object], Sequence[Tuple[int, int, float]]]:
        """Forward-only streaming source over the recording.

        Peak memory is one stream chunk for file-backed recordings.
        ``repeat=True`` restarts the recording (re-reading the file)
        each period; without repeat, slots past the recording are
        empty.  The seed is ignored — replay is seed-independent.
        """
        it = self._iter_recorded_slots()
        expected = 0

        def source(t: int, switch: object) -> List[Tuple[int, int, float]]:
            nonlocal it, expected
            if t != expected:
                raise ValueError(
                    f"arrival_source must be called with consecutive slots "
                    f"(expected {expected}, got {t})"
                )
            expected += 1
            nxt = next(it, None)
            if nxt is None:
                if self.repeat and self._src_n_slots > 0:
                    it = self._iter_recorded_slots()
                    nxt = next(it, None)
                if nxt is None:
                    return []
            return nxt

        return source

    def generate(self, n_slots: int, seed: int = 0) -> Trace:
        """Replay the recording over ``n_slots`` slots (materializing).

        Unlike the stochastic models, values come from the recording
        itself, so the result is seed-independent (the seed only names
        the trace, keeping report labels uniform across models).
        Without ``repeat`` the result keeps the recording's own slot
        count (capped at ``n_slots``), trailing idle slots included.
        """
        packets: List[Packet] = []
        pid = 0
        src = self.source
        src_slots = self._src_n_slots
        for t in range(n_slots):
            if not self.repeat and t >= src_slots:
                break
            base = t % src_slots if (self.repeat and src_slots) else t
            for p in src.arrivals(base):
                packets.append(Packet(pid, p.value, t, p.src, p.dst))
                pid += 1
        out_slots = n_slots if self.repeat else min(n_slots, src_slots)
        return Trace(
            packets,
            self.n_in,
            self.n_out,
            name=f"{self.name}/seed{seed}",
            n_slots=out_slots,
        )
