"""Trace replay: drive experiments from a recorded arrival sequence.

Interesting instances — adversarial gadgets, ratio outliers found in
sweeps, captures from other simulators — are saved as JSON via
:meth:`~repro.traffic.trace.Trace.save`.  This model replays such a
recording through the :class:`~repro.traffic.base.TrafficModel`
interface so that every consumer of traffic models (scenarios,
benchmarks, the CLI) can run on recorded inputs exactly like on
synthetic ones.

Replay preserves the recorded packet *values* (the value model of the
original instance is part of the instance); the ``value_model``
argument of the base class is therefore ignored.  ``generate`` is a
pure function of its arguments: the same file and ``n_slots`` always
produce the same trace, for any seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from ..switch.packet import Packet
from .base import TrafficModel
from .trace import Trace


class TraceReplayTraffic(TrafficModel):
    """Replays a recorded :class:`Trace` (from memory or a JSON file).

    Parameters
    ----------
    source:
        A :class:`Trace` instance, or a path to a file written by
        :meth:`Trace.save`.
    repeat:
        If true, the recording is tiled end-to-end to fill the
        requested ``n_slots``; otherwise arrivals beyond the recording
        simply stop (and arrivals past ``n_slots`` are truncated).
    """

    def __init__(self, source: Union[Trace, str], repeat: bool = False):
        trace = Trace.load(source) if isinstance(source, str) else source
        super().__init__(
            trace.n_in, trace.n_out, None, name=f"replay({trace.name})"
        )
        self.source = trace
        self.repeat = bool(repeat)

    def arrivals_for_slot(
        self, slot: int, rng: np.random.Generator
    ) -> List[Tuple[int, int]]:
        if self.repeat and self.source.n_slots > 0:
            slot = slot % self.source.n_slots
        return [(p.src, p.dst) for p in self.source.arrivals(slot)]

    def generate(self, n_slots: int, seed: int = 0) -> Trace:
        """Replay the recording over ``n_slots`` slots.

        Unlike the stochastic models, values come from the recording
        itself, so the result is seed-independent (the seed only names
        the trace, keeping report labels uniform across models).
        """
        packets: List[Packet] = []
        pid = 0
        src_slots = self.source.n_slots
        for t in range(n_slots):
            if not self.repeat and t >= src_slots:
                break
            base = t % src_slots if (self.repeat and src_slots) else t
            for p in self.source.arrivals(base):
                packets.append(Packet(pid, p.value, t, p.src, p.dst))
                pid += 1
        return Trace(
            packets,
            self.n_in,
            self.n_out,
            name=f"{self.name}/seed{seed}",
        )
