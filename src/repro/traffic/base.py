"""Traffic model interface.

A :class:`TrafficModel` turns a seeded RNG and a slot count into a
:class:`~repro.traffic.trace.Trace`.  Models are deterministic given the
seed, so every experiment is replayable.

The common machinery here assigns packet ids in arrival order (the order
arrival events occur within a slot is the id order, matching the paper's
convention that all events happen at distinct fractional times).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from ..switch.packet import Packet
from .trace import Trace
from .values import ValueModel, unit_values


def bernoulli_count(rng: np.random.Generator, rate: float) -> int:
    """Arrivals for one (input, slot) cell at expected ``rate``:
    ``floor(rate)`` deterministic arrivals plus a Bernoulli remainder
    (consumes exactly one uniform draw — the shared convention that
    keeps every stochastic model's traces seed-stable)."""
    whole = int(rate)
    return whole + (1 if rng.random() < rate - whole else 0)


def normalized_dst_weights(n_out: int, weights) -> np.ndarray:
    """Validate and normalize a destination distribution; ``None``
    means uniform over the ``n_out`` output ports."""
    if weights is None:
        return np.full(n_out, 1.0 / n_out)
    w = np.asarray(weights, dtype=float)
    if w.shape != (n_out,) or (w < 0).any() or w.sum() <= 0:
        raise ValueError("dst_weights must be n_out non-negative weights")
    return w / w.sum()


class TrafficModel(ABC):
    """Generates traces for an ``n_in x n_out`` switch."""

    def __init__(
        self,
        n_in: int,
        n_out: int,
        value_model: Optional[ValueModel] = None,
        name: str = "traffic",
    ):
        if n_in < 1 or n_out < 1:
            raise ValueError("traffic model needs at least one port per side")
        self.n_in = n_in
        self.n_out = n_out
        self.value_model = value_model if value_model is not None else unit_values()
        self.name = name

    @abstractmethod
    def arrivals_for_slot(
        self, slot: int, rng: np.random.Generator
    ) -> List[tuple]:
        """Return the slot's arrivals as (src, dst) pairs."""

    def generate(self, n_slots: int, seed: int = 0) -> Trace:
        """Generate a trace of ``n_slots`` arrival slots."""
        rng = np.random.default_rng(seed)
        packets: List[Packet] = []
        pid = 0
        for t in range(n_slots):
            for src, dst in self.arrivals_for_slot(t, rng):
                packets.append(
                    Packet(
                        pid=pid,
                        value=self.value_model(rng),
                        arrival=t,
                        src=src,
                        dst=dst,
                    )
                )
                pid += 1
        return Trace(
            packets,
            self.n_in,
            self.n_out,
            name=f"{self.name}/{self.value_model.name}/seed{seed}",
        )
