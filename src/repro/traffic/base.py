"""Traffic model interface.

A :class:`TrafficModel` turns a seeded RNG and a slot count into a
:class:`~repro.traffic.trace.Trace`.  Models are deterministic given the
seed, so every experiment is replayable.

The common machinery here assigns packet ids in arrival order (the order
arrival events occur within a slot is the id order, matching the paper's
convention that all events happen at distinct fractional times).

Two entry points share one arrival contract:

* :meth:`TrafficModel.generate` materializes a full :class:`Trace`;
* :meth:`TrafficModel.arrival_source` wraps the same draw sequence in a
  per-slot callback matching the engine's ``run_*_streaming`` signature,
  so streaming runs are byte-identical to materialized ones.

``arrivals_for_slot`` may return either ``(src, dst)`` pairs — the value
is then drawn from ``value_model``, one draw per packet in arrival
order — or ``(src, dst, value)`` triples for models (like trace replay)
whose values are part of the instance rather than sampled.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..switch.packet import Packet
from .trace import Trace
from .values import ValueModel, unit_values


def bernoulli_count(rng: np.random.Generator, rate: float) -> int:
    """Arrivals for one (input, slot) cell at expected ``rate``:
    ``floor(rate)`` deterministic arrivals plus a Bernoulli remainder
    (consumes exactly one uniform draw — the shared convention that
    keeps every stochastic model's traces seed-stable)."""
    whole = int(rate)
    return whole + (1 if rng.random() < rate - whole else 0)


def normalized_dst_weights(n_out: int, weights) -> np.ndarray:
    """Validate and normalize a destination distribution; ``None``
    means uniform over the ``n_out`` output ports."""
    if weights is None:
        return np.full(n_out, 1.0 / n_out)
    w = np.asarray(weights, dtype=float)
    if w.shape != (n_out,):
        raise ValueError("dst_weights must be n_out non-negative weights")
    # NaN/inf slip through sign/sum checks (NaN compares False, inf sums
    # to inf) and would only blow up much later inside rng.choice.
    if not np.isfinite(w).all():
        raise ValueError("dst_weights must be finite (got NaN or inf)")
    if (w < 0).any() or w.sum() <= 0:
        raise ValueError("dst_weights must be n_out non-negative weights")
    return w / w.sum()


class TrafficModel(ABC):
    """Generates traces for an ``n_in x n_out`` switch."""

    def __init__(
        self,
        n_in: int,
        n_out: int,
        value_model: Optional[ValueModel] = None,
        name: str = "traffic",
    ):
        if n_in < 1 or n_out < 1:
            raise ValueError("traffic model needs at least one port per side")
        self.n_in = n_in
        self.n_out = n_out
        self.value_model = value_model if value_model is not None else unit_values()
        self.name = name

    @abstractmethod
    def arrivals_for_slot(
        self, slot: int, rng: np.random.Generator
    ) -> List[tuple]:
        """Return the slot's arrivals as ``(src, dst)`` pairs or
        ``(src, dst, value)`` triples (see the module docstring)."""

    def reset(self) -> None:
        """Clear any cross-slot state so the model can be reused.

        Stateful models (Markov chains, burst generators) override this
        to drop their carried state.  Every entry point that starts a
        fresh run — :meth:`generate` and :meth:`arrival_source` — calls
        it first, so one model instance can drive many runs without
        leaking chain/burst state between them.  Stateless models keep
        this no-op.
        """

    def _emit_slot(
        self, t: int, rng: np.random.Generator, pid: int,
        packets: List[Packet],
    ) -> int:
        """Append slot ``t``'s packets (id-stamped) and return next pid."""
        for arrival in self.arrivals_for_slot(t, rng):
            if len(arrival) == 3:
                src, dst, value = arrival
            else:
                src, dst = arrival
                value = self.value_model(rng)
            packets.append(
                Packet(pid=pid, value=value, arrival=t, src=src, dst=dst)
            )
            pid += 1
        return pid

    def generate(self, n_slots: int, seed: int = 0) -> Trace:
        """Generate a trace of ``n_slots`` arrival slots."""
        self.reset()
        rng = np.random.default_rng(seed)
        packets: List[Packet] = []
        pid = 0
        for t in range(n_slots):
            pid = self._emit_slot(t, rng, pid, packets)
        return Trace(
            packets,
            self.n_in,
            self.n_out,
            name=f"{self.name}/{self.value_model.name}/seed{seed}",
            n_slots=n_slots,
        )

    def arrival_source(
        self, seed: int = 0
    ) -> Callable[[int, object], Sequence[Tuple[int, int, float]]]:
        """A per-slot arrival callback for ``run_*_streaming``.

        Returns ``source(t, switch) -> [(src, dst, value), ...]`` that
        replays exactly the draw sequence of ``generate(n_slots, seed)``
        — same RNG, same per-packet value draws, same order — so a
        streaming run is byte-identical to the materialized one.  The
        engine calls slots in order starting at 0; out-of-order calls
        raise, since skipping a slot would silently desynchronize the
        RNG stream.
        """
        self.reset()
        rng = np.random.default_rng(seed)
        expected = 0

        def source(t: int, switch: object) -> List[Tuple[int, int, float]]:
            nonlocal expected
            if t != expected:
                raise ValueError(
                    f"arrival_source must be called with consecutive slots "
                    f"(expected {expected}, got {t})"
                )
            expected += 1
            out: List[Tuple[int, int, float]] = []
            for arrival in self.arrivals_for_slot(t, rng):
                if len(arrival) == 3:
                    src, dst, value = arrival
                else:
                    src, dst = arrival
                    value = self.value_model(rng)
                out.append((src, dst, value))
            return out

        return source
