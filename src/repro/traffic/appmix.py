"""Application-mix traffic: web, video and VoIP sessions composed.

The paper argues worst-case analysis precisely because measured traffic
defies simple stochastic models (Paxson & Floyd; Veres & Boda).  This
model brings the empirical side in: each input port carries a *mix* of
independent application sessions, one session process per traffic
class, composed over the shared :class:`~repro.traffic.base.TrafficModel`
interface so scenarios, benchmarks and the CLI treat it like any other
generator.

Every class is an alternating-renewal session process per input —
geometric idle gaps (``p_start`` per slot), a class-specific
session-length distribution, and an in-session per-slot load emitted
through the shared :func:`~repro.traffic.base.bernoulli_count`
convention.  A session holds one destination for its whole lifetime (a
flow), so concurrent sessions from several inputs can converge on one
output.  The default parameters follow the measurement literature the
repo already cites:

* **web** — request/response bursts whose sizes are heavy-tailed
  (Pareto, tail index ~1.2 per the self-similarity results of
  Paxson–Floyd and the web-traffic measurements behind them): short,
  intense transfers, occasionally enormous.
* **video** — CBR-like streams: rare session starts, long geometric
  durations, a steady ~1 packet/slot while active.
* **voip** — small-packet talk spurts (Brady's ON/OFF conversation
  model): frequent short sessions at low constant rate.

Parameters are plain per-class dicts (TOML-friendly), merged over the
defaults, so a scenario can retune one knob — e.g.
``web = {rate = 2.5}`` — without restating a class.  Setting a class's
``p_start`` to 0 removes it from the mix.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import TrafficModel, bernoulli_count, normalized_dst_weights
from .values import ValueModel

#: Class order is part of the determinism contract: draws happen in this
#: order each slot, so reordering would change seeded traces.
CLASS_ORDER = ("web", "video", "voip")

#: Literature-grounded defaults (see module docstring).  ``duration`` is
#: either ``"pareto"`` (heavy-tailed; ``shape``/``max_len``) or
#: ``"geometric"`` (``mean_len``).  ``p_start`` is the per-input,
#: per-slot session-start probability (mean idle gap ``1/p_start``);
#: ``rate`` is the expected packets per active session per slot.
DEFAULT_CLASSES: Dict[str, Dict[str, object]] = {
    "web": {
        "p_start": 0.06,
        "duration": "pareto",
        "shape": 1.2,
        "max_len": 100,
        "rate": 1.5,
    },
    "video": {
        "p_start": 0.01,
        "duration": "geometric",
        "mean_len": 150.0,
        "rate": 0.9,
    },
    "voip": {
        "p_start": 0.05,
        "duration": "geometric",
        "mean_len": 20.0,
        "rate": 0.3,
    },
}


def _merged_class(name: str, overrides: Optional[dict]) -> Dict[str, object]:
    params = dict(DEFAULT_CLASSES[name])
    if overrides:
        unknown = set(overrides) - {
            "p_start", "duration", "shape", "max_len", "mean_len", "rate",
        }
        if unknown:
            raise ValueError(
                f"unknown {name} parameter(s): {', '.join(sorted(unknown))}"
            )
        params.update(overrides)
    p_start = float(params["p_start"])
    if not 0.0 <= p_start <= 1.0:
        raise ValueError(f"{name}: p_start must be in [0,1], got {p_start}")
    rate = float(params["rate"])
    if not (rate > 0 and math.isfinite(rate)):
        raise ValueError(f"{name}: rate must be finite and > 0, got {rate}")
    duration = params["duration"]
    if duration == "pareto":
        shape = float(params["shape"])
        max_len = int(params["max_len"])
        if shape <= 0:
            raise ValueError(f"{name}: shape must be > 0, got {shape}")
        if max_len < 1:
            raise ValueError(f"{name}: max_len must be >= 1, got {max_len}")
    elif duration == "geometric":
        mean_len = float(params["mean_len"])
        if not (mean_len >= 1.0 and math.isfinite(mean_len)):
            raise ValueError(
                f"{name}: mean_len must be >= 1, got {mean_len}"
            )
    else:
        raise ValueError(
            f"{name}: duration must be 'pareto' or 'geometric', "
            f"got {duration!r}"
        )
    params["p_start"] = p_start
    params["rate"] = rate
    return params


class ApplicationMixTraffic(TrafficModel):
    """Composed web/video/VoIP session traffic per input port.

    Parameters
    ----------
    n_in, n_out:
        Switch dimensions.
    web, video, voip:
        Per-class parameter overrides, merged over
        :data:`DEFAULT_CLASSES` (keys: ``p_start``, ``duration``,
        ``shape``/``max_len`` or ``mean_len``, ``rate``).  A class with
        ``p_start = 0`` never starts sessions, i.e. is removed from
        the mix.
    load_scale:
        Global multiplier on every class's in-session ``rate`` —
        scales the offered load of the whole mix without retuning
        session dynamics.
    dst_weights:
        Optional destination distribution (length ``n_out``) shared by
        all classes; defaults to uniform.  Sessions pick their (fixed)
        destination from it, so a skewed distribution turns the mix
        into a hotspot workload.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        web: Optional[dict] = None,
        video: Optional[dict] = None,
        voip: Optional[dict] = None,
        load_scale: float = 1.0,
        dst_weights: Optional[Sequence[float]] = None,
        value_model: Optional[ValueModel] = None,
    ):
        if not (load_scale > 0 and math.isfinite(load_scale)):
            raise ValueError(
                f"load_scale must be finite and > 0, got {load_scale}"
            )
        overrides = {"web": web, "video": video, "voip": voip}
        classes = {
            name: _merged_class(name, overrides[name])
            for name in CLASS_ORDER
        }
        label = ",".join(
            f"{name[0]}{float(cfg['rate']) * load_scale:g}"
            for name, cfg in classes.items()
        )
        super().__init__(
            n_in, n_out, value_model, name=f"appmix({label})"
        )
        self.classes = classes
        self.load_scale = float(load_scale)
        self.dst_probs = normalized_dst_weights(n_out, dst_weights)
        # Active sessions per (class, input): lists of [remaining, dst].
        self._sessions: Optional[Dict[str, List[List[List[int]]]]] = None

    def reset(self) -> None:
        """Drop every in-flight session so the next run starts idle."""
        self._sessions = None

    def _draw_length(
        self, cfg: Dict[str, object], rng: np.random.Generator
    ) -> int:
        if cfg["duration"] == "pareto":
            length = int(np.ceil(rng.pareto(float(cfg["shape"])) + 1e-12)) or 1
            return min(max(length, 1), int(cfg["max_len"]))
        # Geometric with the configured mean, support {1, 2, ...}.
        p = 1.0 / float(cfg["mean_len"])
        return int(rng.geometric(p))

    def arrivals_for_slot(
        self, slot: int, rng: np.random.Generator
    ) -> List[Tuple[int, int]]:
        if slot == 0 or self._sessions is None:
            self._sessions = {
                name: [[] for _ in range(self.n_in)] for name in CLASS_ORDER
            }

        out: List[Tuple[int, int]] = []
        for name in CLASS_ORDER:
            cfg = self.classes[name]
            p_start = float(cfg["p_start"])
            rate = float(cfg["rate"]) * self.load_scale
            per_input = self._sessions[name]
            for i in range(self.n_in):
                if p_start > 0.0 and rng.random() < p_start:
                    length = self._draw_length(cfg, rng)
                    dst = int(rng.choice(self.n_out, p=self.dst_probs))
                    per_input[i].append([length, dst])
                live: List[List[int]] = []
                for session in per_input[i]:
                    for _ in range(bernoulli_count(rng, rate)):
                        out.append((i, session[1]))
                    session[0] -= 1
                    if session[0] > 0:
                        live.append(session)
                per_input[i] = live
        return out

    def mean_offered_load(self) -> float:
        """Expected steady-state arrivals per output per slot (1.0 =
        line rate) — the session-renewal mean, for scenario tuning."""
        total = 0.0
        for name in CLASS_ORDER:
            cfg = self.classes[name]
            p_start = float(cfg["p_start"])
            if p_start <= 0.0:
                continue
            if cfg["duration"] == "pareto":
                # Mean of the capped ceil-Pareto, computed exactly:
                # P(len >= k) = (k - 1)^-shape for k >= 2.
                shape = float(cfg["shape"])
                max_len = int(cfg["max_len"])
                mean_len = 1.0 + sum(
                    float(k - 1) ** -shape for k in range(2, max_len + 1)
                )
            else:
                mean_len = float(cfg["mean_len"])
            # Renewal reward: sessions start at rate p_start per input
            # per slot, each contributing rate * mean_len packets.
            total += p_start * mean_len * float(cfg["rate"]) * self.load_scale
        return total * self.n_in / self.n_out
