"""Markov-modulated traffic: a k-state load chain per input port.

Generalizes the two-state ON/OFF process of
:class:`~repro.traffic.bursty.BurstyTraffic` to an arbitrary finite
Markov chain over *load levels*: each input port runs an independent
copy of the chain; in state ``s`` it offers ``loads[s]`` expected
arrivals per slot (destinations uniform unless ``dst_weights`` skews
them).  With ``loads=(0, burst)`` and a 2x2 transition matrix this is
exactly the ON/OFF model; with three or more states it produces the
multi-timescale rate variation (quiet / steady / storm phases) that
motivates the paper's worst-case stance — admissible on average, but
transiently far above line rate.

Chains start from their stationary distribution (computed by power
iteration), so traces are statistically homogeneous from slot 0, and
every trace is a pure function of the seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import TrafficModel, bernoulli_count, normalized_dst_weights
from .values import ValueModel


def _stationary(transition: np.ndarray, iters: int = 400) -> np.ndarray:
    """Stationary distribution of a row-stochastic matrix.

    Iterates the *lazy* chain (P + I)/2, which has the same stationary
    distribution but no periodic components, so the power iteration
    converges even for periodic matrices (plain iteration oscillates on
    those and would silently return a wrong distribution).
    """
    pi = np.full(transition.shape[0], 1.0 / transition.shape[0])
    for _ in range(iters):
        pi = 0.5 * (pi + pi @ transition)
    return pi / pi.sum()


class MarkovModulatedTraffic(TrafficModel):
    """Arrivals modulated by an independent per-input Markov chain.

    Parameters
    ----------
    n_in, n_out:
        Switch dimensions.
    loads:
        Expected arrivals per slot in each chain state (length k,
        entries >= 0; values > 1 emit ``floor`` deterministic arrivals
        plus a Bernoulli remainder, like every stochastic model here).
    transition:
        Row-stochastic k x k matrix; ``transition[s][t]`` is the
        per-slot probability of moving from state ``s`` to state ``t``.
    dst_weights:
        Optional destination distribution (length ``n_out``); defaults
        to uniform.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        loads: Sequence[float] = (0.1, 0.8, 2.5),
        transition: Optional[Sequence[Sequence[float]]] = None,
        dst_weights: Optional[Sequence[float]] = None,
        value_model: Optional[ValueModel] = None,
    ):
        loads_arr = np.asarray(loads, dtype=float)
        if loads_arr.ndim != 1 or loads_arr.size < 1 or (loads_arr < 0).any():
            raise ValueError("loads must be a non-empty vector of rates >= 0")
        k = loads_arr.size
        if transition is None:
            # Sticky default: stay with p=0.9, otherwise move uniformly.
            trans = np.full((k, k), 0.1 / max(k - 1, 1))
            np.fill_diagonal(trans, 0.9 if k > 1 else 1.0)
        else:
            trans = np.asarray(transition, dtype=float)
        if trans.shape != (k, k) or (trans < 0).any():
            raise ValueError(f"transition must be a non-negative {k}x{k} matrix")
        if not np.allclose(trans.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("transition rows must each sum to 1")
        super().__init__(
            n_in,
            n_out,
            value_model,
            name=f"markov(k={k},loads={','.join(f'{x:g}' for x in loads_arr)})",
        )
        self.loads = loads_arr
        self.transition = trans
        self._cumulative = np.cumsum(trans, axis=1)
        self._pi = _stationary(trans)
        self.dst_probs = normalized_dst_weights(n_out, dst_weights)
        self._state: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Drop per-input chain state so the next run redraws from the
        stationary distribution instead of leaking the previous run's
        final states."""
        self._state = None

    def arrivals_for_slot(
        self, slot: int, rng: np.random.Generator
    ) -> List[Tuple[int, int]]:
        if slot == 0 or self._state is None:
            draws = rng.random(self.n_in)
            cum_pi = np.cumsum(self._pi)
            self._state = np.searchsorted(cum_pi, draws).clip(0, len(self._pi) - 1)
        else:
            draws = rng.random(self.n_in)
            k = len(self._pi) - 1
            for i in range(self.n_in):
                row = self._cumulative[self._state[i]]
                # Clip like the initial draw: float error can leave
                # row[-1] marginally below 1, and searchsorted would
                # then return an out-of-range state.
                self._state[i] = min(int(np.searchsorted(row, draws[i])), k)

        out: List[Tuple[int, int]] = []
        for i in range(self.n_in):
            rate = float(self.loads[self._state[i]])
            for _ in range(bernoulli_count(rng, rate)):
                dst = int(rng.choice(self.n_out, p=self.dst_probs))
                out.append((i, dst))
        return out
