"""Packet value models.

The paper's general-value case allows arbitrary positive values; the
literature it cites distinguishes several structured regimes that our
experiments reuse:

* **unit** — all values 1 (the GM/CGU setting);
* **two-value {1, alpha}** — the QoS regime of Englert–Westermann and
  Kobayashi et al. (two service classes); the ratio alpha is the "α"
  of Section 1.2;
* **uniform / exponential / Pareto** — smooth and heavy-tailed value
  mixes used to stress PG/CPG's preemption thresholds.

A value model is a callable ``(rng) -> float`` plus a descriptive name.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


class ValueModel:
    """A named distribution over packet values."""

    def __init__(self, name: str, sample: Callable[[np.random.Generator], float]):
        self.name = name
        self._sample = sample

    def __call__(self, rng: np.random.Generator) -> float:
        v = float(self._sample(rng))
        if v <= 0:
            raise ValueError(f"value model {self.name} produced non-positive {v}")
        return v

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValueModel({self.name})"


def unit_values() -> ValueModel:
    """Every packet has value 1 (the unit-value case)."""
    return ValueModel("unit", lambda rng: 1.0)


def uniform_values(lo: float = 1.0, hi: float = 100.0) -> ValueModel:
    """Values uniform on [lo, hi]."""
    if not 0 < lo <= hi:
        raise ValueError(f"need 0 < lo <= hi, got [{lo}, {hi}]")
    return ValueModel(
        f"uniform[{lo:g},{hi:g}]", lambda rng: rng.uniform(lo, hi)
    )


def two_value(alpha: float = 10.0, p_high: float = 0.2) -> ValueModel:
    """Two service classes: value 1 w.p. (1 - p_high), value alpha w.p.
    p_high — the {1, α} regime of Section 1.2's related work."""
    if alpha < 1.0:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    if not 0.0 <= p_high <= 1.0:
        raise ValueError(f"p_high must be in [0,1], got {p_high}")
    return ValueModel(
        f"two-value(alpha={alpha:g},p={p_high:g})",
        lambda rng: alpha if rng.random() < p_high else 1.0,
    )


def exponential_values(mean: float = 10.0) -> ValueModel:
    """Values 1 + Exp(mean - 1): light-tailed, strictly positive."""
    if mean <= 1.0:
        raise ValueError(f"mean must be > 1, got {mean}")
    return ValueModel(
        f"exp(mean={mean:g})", lambda rng: 1.0 + rng.exponential(mean - 1.0)
    )


def pareto_values(shape: float = 1.5, scale: float = 1.0) -> ValueModel:
    """Heavy-tailed Pareto values: ``scale * (1 + Pareto(shape))``.

    Small shapes create extreme value skew, the regime where preemption
    decisions (and the beta threshold) matter most.
    """
    if shape <= 0 or scale <= 0:
        raise ValueError("shape and scale must be positive")
    return ValueModel(
        f"pareto(shape={shape:g},scale={scale:g})",
        lambda rng: scale * (1.0 + rng.pareto(shape)),
    )


def geometric_class_values(n_classes: int = 4, base: float = 4.0) -> ValueModel:
    """``n_classes`` priority classes with values base^0..base^(k-1),
    drawn uniformly — models strict-priority QoS tiers."""
    if n_classes < 1 or base <= 1.0:
        raise ValueError("need n_classes >= 1 and base > 1")
    values = [base ** k for k in range(n_classes)]
    return ValueModel(
        f"classes(k={n_classes},base={base:g})",
        lambda rng: values[int(rng.integers(0, n_classes))],
    )
