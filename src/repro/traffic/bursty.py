"""Bursty traffic via a two-state Markov-modulated Bernoulli process.

The paper motivates worst-case analysis by noting that Internet traffic
does not follow Poisson-like models (Paxson & Floyd [29]; Veres & Boda
[32]): real traffic is bursty and correlated.  This model captures that:
each input port has an independent ON/OFF Markov chain; in ON state it
emits ``burst_load`` arrivals per slot (possibly > 1), in OFF state none.

The mean burst length is ``1 / p_off`` slots.  During ON periods several
inputs can simultaneously overload one output (hotspot bursts are
obtained by combining this with a skewed destination distribution).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import TrafficModel, bernoulli_count, normalized_dst_weights
from .values import ValueModel


class BurstyTraffic(TrafficModel):
    """ON/OFF Markov-modulated arrivals.

    Parameters
    ----------
    n_in, n_out:
        Switch dimensions.
    p_on:
        Per-slot probability of switching OFF -> ON.
    p_off:
        Per-slot probability of switching ON -> OFF (mean burst length
        is ``1/p_off``).
    burst_load:
        Expected arrivals per ON input per slot (may exceed 1).
    dst_weights:
        Optional destination distribution (length ``n_out``); defaults
        to uniform.  A skewed distribution creates hotspot bursts.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        p_on: float = 0.2,
        p_off: float = 0.2,
        burst_load: float = 2.0,
        dst_weights: Optional[Sequence[float]] = None,
        value_model: Optional[ValueModel] = None,
    ):
        for nm, p in (("p_on", p_on), ("p_off", p_off)):
            if not 0.0 < p <= 1.0:
                raise ValueError(f"{nm} must be in (0,1], got {p}")
        if burst_load <= 0:
            raise ValueError(f"burst_load must be > 0, got {burst_load}")
        super().__init__(
            n_in,
            n_out,
            value_model,
            name=f"bursty(on={p_on:g},off={p_off:g},load={burst_load:g})",
        )
        self.p_on = float(p_on)
        self.p_off = float(p_off)
        self.burst_load = float(burst_load)
        self.dst_probs = normalized_dst_weights(n_out, dst_weights)
        self._state: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Drop per-input ON/OFF state so the next run redraws from the
        stationary distribution."""
        self._state = None

    def arrivals_for_slot(
        self, slot: int, rng: np.random.Generator
    ) -> List[Tuple[int, int]]:
        if slot == 0 or self._state is None:
            # Start each trace from the chain's stationary distribution.
            pi_on = self.p_on / (self.p_on + self.p_off)
            self._state = rng.random(self.n_in) < pi_on
        else:
            flips = rng.random(self.n_in)
            for i in range(self.n_in):
                if self._state[i]:
                    if flips[i] < self.p_off:
                        self._state[i] = False
                elif flips[i] < self.p_on:
                    self._state[i] = True

        out: List[Tuple[int, int]] = []
        for i in range(self.n_in):
            if not self._state[i]:
                continue
            for _ in range(bernoulli_count(rng, self.burst_load)):
                dst = int(rng.choice(self.n_out, p=self.dst_probs))
                out.append((i, dst))
        return out
