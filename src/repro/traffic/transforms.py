"""Trace composition and transformation utilities.

Experiment suites often need traces assembled from parts: a warm-up
phase followed by an attack, two workloads merged on the same switch, a
recorded instance replayed at a different value scale, or the same
arrival pattern restricted to a sub-switch.  These helpers build new
:class:`~repro.traffic.trace.Trace` objects (packets are re-issued with
fresh, arrival-ordered pids, preserving the determinism conventions).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..switch.packet import Packet
from .trace import Trace


def _reissue(packets: Sequence[Packet], n_in: int, n_out: int,
             name: str, n_slots: Optional[int] = None) -> Trace:
    """Rebuild a trace with canonical arrival-ordered pids."""
    ordered = sorted(packets, key=lambda p: (p.arrival, p.pid))
    fresh = [
        Packet(pid, p.value, p.arrival, p.src, p.dst)
        for pid, p in enumerate(ordered)
    ]
    return Trace(fresh, n_in, n_out, name=name, n_slots=n_slots)


def concat(first: Trace, second: Trace, gap: int = 0) -> Trace:
    """Play ``second`` after ``first`` (with ``gap`` empty slots between).

    Useful for warm-up + attack sequences: e.g. a Bernoulli phase that
    fills buffers followed by an adversarial gadget.
    """
    if (first.n_in, first.n_out) != (second.n_in, second.n_out):
        raise ValueError("traces must share switch dimensions")
    if gap < 0:
        raise ValueError("gap must be >= 0")
    offset = first.n_slots + gap
    packets: List[Packet] = list(first.packets)
    for p in second.packets:
        packets.append(
            Packet(-1, p.value, p.arrival + offset, p.src, p.dst)
        )
    return _reissue(
        packets, first.n_in, first.n_out,
        name=f"concat({first.name},{second.name})",
        n_slots=offset + second.n_slots,
    )


def merge(first: Trace, second: Trace) -> Trace:
    """Superimpose two traces slot-by-slot on the same switch.

    Models two independent workloads sharing a fabric (e.g. background
    Bernoulli traffic plus a hotspot attack).
    """
    if (first.n_in, first.n_out) != (second.n_in, second.n_out):
        raise ValueError("traces must share switch dimensions")
    return _reissue(
        list(first.packets) + list(second.packets),
        first.n_in,
        first.n_out,
        name=f"merge({first.name},{second.name})",
        n_slots=max(first.n_slots, second.n_slots),
    )


def scale_values(trace: Trace, factor: float) -> Trace:
    """Multiply every packet value by ``factor`` (> 0).

    Competitive ratios are invariant under value scaling — a property
    the tests verify end-to-end using this transform.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    return _reissue(
        [
            Packet(p.pid, p.value * factor, p.arrival, p.src, p.dst)
            for p in trace.packets
        ],
        trace.n_in,
        trace.n_out,
        name=f"scale({trace.name},x{factor:g})",
        n_slots=trace.n_slots,
    )


def map_values(trace: Trace, fn: Callable[[float], float]) -> Trace:
    """Apply an arbitrary positive value transformation."""
    return _reissue(
        [
            Packet(p.pid, fn(p.value), p.arrival, p.src, p.dst)
            for p in trace.packets
        ],
        trace.n_in,
        trace.n_out,
        name=f"mapped({trace.name})",
        n_slots=trace.n_slots,
    )


def restrict_ports(
    trace: Trace,
    inputs: Sequence[int],
    outputs: Sequence[int],
) -> Trace:
    """Keep only packets between the given port subsets, renumbering the
    ports densely — a sub-switch view of the same workload."""
    in_map = {old: new for new, old in enumerate(sorted(set(inputs)))}
    out_map = {old: new for new, old in enumerate(sorted(set(outputs)))}
    if not in_map or not out_map:
        raise ValueError("need at least one input and one output port")
    for old in in_map:
        if not 0 <= old < trace.n_in:
            raise ValueError(f"input port {old} out of range")
    for old in out_map:
        if not 0 <= old < trace.n_out:
            raise ValueError(f"output port {old} out of range")
    kept = [
        Packet(-1, p.value, p.arrival, in_map[p.src], out_map[p.dst])
        for p in trace.packets
        if p.src in in_map and p.dst in out_map
    ]
    return _reissue(
        kept, len(in_map), len(out_map),
        name=f"restrict({trace.name})",
        n_slots=trace.n_slots,
    )


def time_dilate(trace: Trace, factor: int) -> Trace:
    """Stretch time by an integer factor (slot t -> t * factor).

    The same packets arrive at a lower rate; with unchanged capacities
    this reduces contention, so any work-conserving policy's benefit is
    non-decreasing under dilation (a property test).
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    return _reissue(
        [
            Packet(p.pid, p.value, p.arrival * factor, p.src, p.dst)
            for p in trace.packets
        ],
        trace.n_in,
        trace.n_out,
        name=f"dilate({trace.name},x{factor})",
        n_slots=(trace.n_slots - 1) * factor + 1 if trace.n_slots else 0,
    )
