"""Heavy-tailed burst traffic: Pareto-distributed ON periods.

The ON/OFF and Markov models have geometrically distributed burst
lengths — light tails, short-range dependence.  Measured network
traffic instead shows heavy-tailed activity periods (the self-similarity
literature the paper cites: Paxson–Floyd, Veres–Boda).  This model makes
each input alternate geometric OFF gaps with ON bursts whose lengths are
drawn from a Pareto distribution: ``len = ceil(Pareto(shape))`` slots,
so for ``shape <= 2`` burst lengths have infinite variance and a single
burst occasionally dominates an entire trace.

Each burst picks one destination and holds it for the burst's whole
duration (an incast-style flow), which concentrates the heavy tail on a
single output queue — the hardest regime for admission decisions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .base import TrafficModel, bernoulli_count
from .values import ValueModel


class ParetoBurstTraffic(TrafficModel):
    """Alternating-renewal arrivals with Pareto ON periods.

    Parameters
    ----------
    n_in, n_out:
        Switch dimensions.
    shape:
        Pareto tail index of the burst length (smaller = heavier tail;
        ``shape <= 2`` gives infinite variance).
    p_start:
        Per-slot probability that an idle input starts a burst (OFF
        gaps are geometric with mean ``1/p_start``).
    burst_load:
        Expected arrivals per ON input per slot (may exceed 1).
    max_burst:
        Hard cap on a single burst's length in slots, so one tail draw
        cannot exceed the trace horizon by orders of magnitude.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        shape: float = 1.5,
        p_start: float = 0.15,
        burst_load: float = 2.0,
        max_burst: int = 1000,
        value_model: Optional[ValueModel] = None,
    ):
        if shape <= 0:
            raise ValueError(f"shape must be > 0, got {shape}")
        if not 0.0 < p_start <= 1.0:
            raise ValueError(f"p_start must be in (0,1], got {p_start}")
        if burst_load <= 0:
            raise ValueError(f"burst_load must be > 0, got {burst_load}")
        if max_burst < 1:
            raise ValueError(f"max_burst must be >= 1, got {max_burst}")
        super().__init__(
            n_in,
            n_out,
            value_model,
            name=f"pareto-burst(shape={shape:g},load={burst_load:g})",
        )
        self.shape = float(shape)
        self.p_start = float(p_start)
        self.burst_load = float(burst_load)
        self.max_burst = int(max_burst)
        # Per-input renewal state: remaining ON slots and the burst's target.
        self._remaining: Optional[np.ndarray] = None
        self._target: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Drop in-flight burst state (remaining length and target) so
        the next run starts with every input idle."""
        self._remaining = None
        self._target = None

    def _draw_burst(self, rng: np.random.Generator, i: int) -> None:
        length = int(np.ceil(rng.pareto(self.shape) + 1e-12)) or 1
        self._remaining[i] = min(max(length, 1), self.max_burst)
        self._target[i] = int(rng.integers(0, self.n_out))

    def arrivals_for_slot(
        self, slot: int, rng: np.random.Generator
    ) -> List[Tuple[int, int]]:
        if slot == 0 or self._remaining is None:
            self._remaining = np.zeros(self.n_in, dtype=np.int64)
            self._target = np.zeros(self.n_in, dtype=np.int64)

        out: List[Tuple[int, int]] = []
        for i in range(self.n_in):
            if self._remaining[i] <= 0 and rng.random() < self.p_start:
                self._draw_burst(rng, i)
            if self._remaining[i] <= 0:
                continue
            self._remaining[i] -= 1
            for _ in range(bernoulli_count(rng, self.burst_load)):
                out.append((i, int(self._target[i])))
        return out
