"""Packet model (Section 1.3 of the paper).

Every packet ``p`` in an input sequence carries four attributes: its value
``v(p)``, its arrival time ``arr(p)`` (an integer slot index), its input
port ``in(p)`` and its output port ``out(p)``.  All packets have the same
size.  We additionally give every packet a unique integer id, which serves
as the deterministic tie-breaker required by Assumption A3 ("ties are
broken arbitrarily but consistently"): among packets of equal value, the
one with the *smaller* id is treated as the more valuable one.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


class Packet:
    """A single fixed-size packet.

    Parameters
    ----------
    pid:
        Unique integer identifier.  Used for deterministic tie-breaking
        (Assumption A3) and for tracking packets through the simulator and
        the offline optimum.
    value:
        The packet's value ``v(p)``; must be positive.  Unit-value
        instances use ``value == 1.0`` for every packet.
    arrival:
        Arrival slot ``arr(p)`` (0-based integer).
    src:
        Input port ``in(p)`` (0-based; the paper uses 1-based).
    dst:
        Output port ``out(p)`` (0-based).
    """

    __slots__ = ("pid", "value", "arrival", "src", "dst", "_key")

    def __init__(self, pid: int, value: float, arrival: int, src: int, dst: int):
        if value <= 0:
            raise ValueError(f"packet value must be positive, got {value!r}")
        if arrival < 0:
            raise ValueError(f"arrival slot must be >= 0, got {arrival!r}")
        if src < 0 or dst < 0:
            raise ValueError("ports must be non-negative")
        self.pid = pid
        self.value = float(value)
        self.arrival = int(arrival)
        self.src = int(src)
        self.dst = int(dst)
        # Cached sort key: packets are immutable, and the key is consulted
        # on every queue insertion/removal (the simulator's hottest path).
        self._key = (self.value, -pid)

    # Ordering: "greater" means more valuable, with smaller pid winning ties.
    # This is the total order used everywhere (queues, matchings, OPT).
    def sort_key(self) -> Tuple[float, int]:
        """Key such that sorting ascending puts the *least* valuable first."""
        return self._key

    def beats(self, other: "Packet") -> bool:
        """True if this packet is strictly preferred over ``other``."""
        return self.sort_key() > other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(pid={self.pid}, v={self.value:g}, t={self.arrival}, "
            f"{self.src}->{self.dst})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return self.pid == other.pid

    def __hash__(self) -> int:
        return hash(self.pid)


def total_value(packets: Iterable[Packet]) -> float:
    """Sum of packet values (the *benefit* of sending these packets)."""
    return float(sum(p.value for p in packets))


def validate_packets(packets: Iterable[Packet], n_in: int, n_out: int) -> List[Packet]:
    """Validate a packet collection against switch dimensions.

    Checks port ranges and pid uniqueness; returns the packets as a list
    sorted by ``(arrival, pid)`` — the canonical arrival-event order.
    """
    seen = set()
    out: List[Packet] = []
    for p in packets:
        if p.pid in seen:
            raise ValueError(f"duplicate packet id {p.pid}")
        seen.add(p.pid)
        if not (0 <= p.src < n_in):
            raise ValueError(f"packet {p.pid}: src {p.src} out of range [0,{n_in})")
        if not (0 <= p.dst < n_out):
            raise ValueError(f"packet {p.pid}: dst {p.dst} out of range [0,{n_out})")
        out.append(p)
    out.sort(key=lambda p: (p.arrival, p.pid))
    return out
