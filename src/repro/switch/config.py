"""Switch configuration shared by the simulator and the offline optimum.

The paper studies N x N switches but remarks (Section 4) that all results
generalize to N x M; the simulator therefore supports asymmetric port
counts via ``n_in`` / ``n_out``.

Capacities follow Section 1.3: each input queue (VOQ) ``Q_ij`` has
capacity ``B(Q_ij)``, each output queue ``Q_j`` capacity ``B(Q_j)``, and —
in the buffered crossbar model — each crosspoint queue ``C_ij`` capacity
``B(C_ij)``.  We use uniform capacities per queue class, which is the
standard hardware assumption.

The *speedup* ``s`` is the number of scheduling cycles per time slot
(written ``ŝ`` in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SwitchConfig:
    """Dimensions, capacities and speedup of a switch instance.

    Parameters
    ----------
    n_in:
        Number of input ports N (paper: ``i = 1..N``).
    n_out:
        Number of output ports (paper: ``j = 1..N``; may differ from
        ``n_in`` per the paper's N x M remark).
    speedup:
        Scheduling cycles per time slot (``ŝ >= 1``).
    b_in:
        Capacity of every input queue ``Q_ij``.
    b_out:
        Capacity of every output queue ``Q_j``.
    b_cross:
        Capacity of every crosspoint queue ``C_ij`` (buffered crossbar
        model only; ignored by the CIOQ model).
    """

    n_in: int
    n_out: int
    speedup: int = 1
    b_in: int = 8
    b_out: int = 8
    b_cross: int = 1

    def __post_init__(self) -> None:
        if self.n_in < 1 or self.n_out < 1:
            raise ValueError("switch must have at least one input and output port")
        if self.speedup < 1:
            raise ValueError(f"speedup must be >= 1, got {self.speedup}")
        for name in ("b_in", "b_out", "b_cross"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")

    @classmethod
    def square(
        cls,
        n: int,
        speedup: int = 1,
        b_in: int = 8,
        b_out: int = 8,
        b_cross: int = 1,
    ) -> "SwitchConfig":
        """Convenience constructor for the paper's N x N switch."""
        return cls(
            n_in=n,
            n_out=n,
            speedup=speedup,
            b_in=b_in,
            b_out=b_out,
            b_cross=b_cross,
        )

    @property
    def is_square(self) -> bool:
        return self.n_in == self.n_out

    def cycles(self, n_slots: int) -> int:
        """Total number of scheduling cycles over ``n_slots`` time slots."""
        return n_slots * self.speedup
