"""CIOQ switch state (paper Section 1.3, Figure 1).

An N x N CIOQ switch has N input ports, each equipped with N virtual
output queues (VOQs) ``Q_ij``, and N output ports, each with a single
output queue ``Q_j``.  The switching fabric moves packets from VOQs to
output queues in scheduling cycles; in each cycle the set of transfers
must form a *matching*: at most one packet leaves each input port and at
most one packet enters each output queue.

:class:`CIOQSwitch` holds the queue state and applies phase actions that
policies decide.  It performs strict feasibility validation so that a
buggy policy cannot silently produce an inadmissible schedule — this is
the simulator-level guarantee that all measured benefits correspond to
schedules a real switch could execute.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from .config import SwitchConfig
from .packet import Packet
from .queue import BoundedQueue


class ScheduleError(RuntimeError):
    """Raised when a policy proposes an inadmissible scheduling decision."""


class Transfer:
    """One fabric transfer decision for a CIOQ scheduling cycle.

    Moves ``packet`` from VOQ ``Q_{src,dst}`` to output queue ``Q_dst``.
    If the output queue is full, the policy must name the packet it
    preempts (``preempt``); the switch verifies it is currently the queue
    member named and removes it.
    """

    __slots__ = ("src", "dst", "packet", "preempt")

    def __init__(
        self, src: int, dst: int, packet: Packet, preempt: Optional[Packet] = None
    ):
        self.src = src
        self.dst = dst
        self.packet = packet
        self.preempt = preempt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = f"Transfer({self.src}->{self.dst}, pid={self.packet.pid}"
        if self.preempt is not None:
            s += f", preempt pid={self.preempt.pid}"
        return s + ")"


class CIOQSwitch:
    """Mutable queue state of a CIOQ switch."""

    def __init__(self, config: SwitchConfig):
        self.config = config
        #: VOQs indexed ``voq[i][j]`` = Q_ij.
        self.voq: List[List[BoundedQueue]] = [
            [BoundedQueue(config.b_in) for _ in range(config.n_out)]
            for _ in range(config.n_in)
        ]
        #: Output queues indexed ``out[j]`` = Q_j.
        self.out: List[BoundedQueue] = [
            BoundedQueue(config.b_out) for _ in range(config.n_out)
        ]
        # Flattened item-deque views, cached once: occupancy_totals()
        # runs every slot when the occupancy trace or per-slot metric
        # sampling is on, so it must not rebuild the grid walk.
        self._voq_items = [q._items for row in self.voq for q in row]
        self._out_items = [q._items for q in self.out]

    # -- inspection ---------------------------------------------------------

    @property
    def n_in(self) -> int:
        return self.config.n_in

    @property
    def n_out(self) -> int:
        return self.config.n_out

    def voq_lengths(self) -> List[List[int]]:
        return [[len(q) for q in row] for row in self.voq]

    def out_lengths(self) -> List[int]:
        return [len(q) for q in self.out]

    def buffered_packets(self) -> List[Packet]:
        """All packets currently residing somewhere in the switch."""
        residents: List[Packet] = []
        for row in self.voq:
            for q in row:
                residents.extend(q.packets())
        for q in self.out:
            residents.extend(q.packets())
        return residents

    def is_drained(self) -> bool:
        """True when every queue in the switch is empty."""
        return all(q.is_empty for row in self.voq for q in row) and all(
            q.is_empty for q in self.out
        )

    def occupancy_totals(self) -> Tuple[int, int, int]:
        """End-of-slot totals ``(voq, cross, out)`` for the occupancy trace.

        The CIOQ model has no crosspoint buffers, so the ``cross``
        column is always 0 (see the ``occupancy`` schema documented in
        :class:`~repro.simulation.results.SimulationResult`).
        """
        return sum(map(len, self._voq_items)), 0, sum(map(len, self._out_items))

    # -- phase actions ------------------------------------------------------

    def enqueue_arrival(self, p: Packet) -> None:
        """Insert an accepted packet into its VOQ (policy guarantees space)."""
        self.voq[p.src][p.dst].push(p)

    def apply_transfers(self, transfers: Sequence[Transfer]) -> None:
        """Execute one scheduling cycle's matching.

        Validates the matching property (each input port releases at most
        one packet, each output queue admits at most one packet), packet
        membership, and output capacity (possibly after a declared
        preemption).
        """
        # Single fused validate-and-apply pass with the BoundedQueue
        # primitives inlined (membership = binary search on the sort
        # key; see the BoundedQueue internals contract).  Any violation
        # raises ScheduleError, which always aborts the whole run, so
        # validation need not precede application of earlier transfers.
        n_in, n_out = self.n_in, self.n_out
        used_in: set = set()
        used_out: set = set()
        voq, out = self.voq, self.out
        for tr in transfers:
            src, dst = tr.src, tr.dst
            if not (0 <= src < n_in and 0 <= dst < n_out):
                raise ScheduleError(f"transfer ports out of range: {tr!r}")
            if src in used_in:
                raise ScheduleError(f"input port {src} matched twice in one cycle")
            if dst in used_out:
                raise ScheduleError(f"output port {dst} matched twice in one cycle")
            used_in.add(src)
            used_out.add(dst)

            src_q = voq[src][dst]
            pk = tr.packet
            skeys = src_q._keys
            sitems = src_q._items
            idx = bisect_left(skeys, pk._key)
            if idx >= len(sitems) or sitems[idx].pid != pk.pid:
                raise ScheduleError(
                    f"packet {pk.pid} not in VOQ ({src},{dst})"
                )
            dst_q = out[dst]
            dkeys = dst_q._keys
            ditems = dst_q._items
            victim = tr.preempt
            if victim is not None:
                vidx = bisect_left(dkeys, victim._key)
                if vidx >= len(ditems) or ditems[vidx].pid != victim.pid:
                    raise ScheduleError(
                        f"preemption victim {victim.pid} not in output queue "
                        f"{dst}"
                    )
                del dkeys[vidx]
                del ditems[vidx]
            if len(ditems) >= dst_q.capacity:
                raise ScheduleError(
                    f"output queue {dst} full; transfer of packet "
                    f"{pk.pid} needs a preemption"
                )
            del skeys[idx]
            pk = sitems.pop(idx)
            key = pk._key
            didx = bisect_left(dkeys, key)
            dkeys.insert(didx, key)
            ditems.insert(didx, pk)

    def transmit(self, selections: Dict[int, Packet]) -> List[Packet]:
        """Execute the transmission phase: at most one packet per output.

        ``selections`` maps output port -> packet to send.  Returns the
        sent packets.
        """
        sent: List[Packet] = []
        n_out, out = self.n_out, self.out
        for j, p in selections.items():
            if not (0 <= j < n_out):
                raise ScheduleError(f"transmit port {j} out of range")
            q = out[j]
            keys = q._keys
            items = q._items
            idx = bisect_left(keys, p._key)
            if idx >= len(items) or items[idx].pid != p.pid:
                raise ScheduleError(f"packet {p.pid} not in output queue {j}")
            del keys[idx]
            sent.append(items.pop(idx))
        return sent

    # -- invariants ---------------------------------------------------------

    def check_invariants(self) -> None:
        for row in self.voq:
            for q in row:
                q.check_invariants()
        for q in self.out:
            q.check_invariants()


def greedy_head_transmissions(switch: CIOQSwitch) -> Dict[int, Packet]:
    """Default transmission rule: send the head (max value) of every
    non-empty output queue.  This is the transmission phase of all four
    paper algorithms (for unit values, "head" is just any packet)."""
    sel: Dict[int, Packet] = {}
    for j, q in enumerate(switch.out):
        items = q._items
        if items:
            sel[j] = items[-1]
    return sel
