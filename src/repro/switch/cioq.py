"""CIOQ switch state (paper Section 1.3, Figure 1).

An N x N CIOQ switch has N input ports, each equipped with N virtual
output queues (VOQs) ``Q_ij``, and N output ports, each with a single
output queue ``Q_j``.  The switching fabric moves packets from VOQs to
output queues in scheduling cycles; in each cycle the set of transfers
must form a *matching*: at most one packet leaves each input port and at
most one packet enters each output queue.

:class:`CIOQSwitch` holds the queue state and applies phase actions that
policies decide.  It performs strict feasibility validation so that a
buggy policy cannot silently produce an inadmissible schedule — this is
the simulator-level guarantee that all measured benefits correspond to
schedules a real switch could execute.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .config import SwitchConfig
from .packet import Packet
from .queue import BoundedQueue


class ScheduleError(RuntimeError):
    """Raised when a policy proposes an inadmissible scheduling decision."""


class Transfer:
    """One fabric transfer decision for a CIOQ scheduling cycle.

    Moves ``packet`` from VOQ ``Q_{src,dst}`` to output queue ``Q_dst``.
    If the output queue is full, the policy must name the packet it
    preempts (``preempt``); the switch verifies it is currently the queue
    member named and removes it.
    """

    __slots__ = ("src", "dst", "packet", "preempt")

    def __init__(
        self, src: int, dst: int, packet: Packet, preempt: Optional[Packet] = None
    ):
        self.src = src
        self.dst = dst
        self.packet = packet
        self.preempt = preempt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = f"Transfer({self.src}->{self.dst}, pid={self.packet.pid}"
        if self.preempt is not None:
            s += f", preempt pid={self.preempt.pid}"
        return s + ")"


class CIOQSwitch:
    """Mutable queue state of a CIOQ switch."""

    def __init__(self, config: SwitchConfig):
        self.config = config
        #: VOQs indexed ``voq[i][j]`` = Q_ij.
        self.voq: List[List[BoundedQueue]] = [
            [BoundedQueue(config.b_in) for _ in range(config.n_out)]
            for _ in range(config.n_in)
        ]
        #: Output queues indexed ``out[j]`` = Q_j.
        self.out: List[BoundedQueue] = [
            BoundedQueue(config.b_out) for _ in range(config.n_out)
        ]

    # -- inspection ---------------------------------------------------------

    @property
    def n_in(self) -> int:
        return self.config.n_in

    @property
    def n_out(self) -> int:
        return self.config.n_out

    def voq_lengths(self) -> List[List[int]]:
        return [[len(q) for q in row] for row in self.voq]

    def out_lengths(self) -> List[int]:
        return [len(q) for q in self.out]

    def buffered_packets(self) -> List[Packet]:
        """All packets currently residing somewhere in the switch."""
        residents: List[Packet] = []
        for row in self.voq:
            for q in row:
                residents.extend(q.packets())
        for q in self.out:
            residents.extend(q.packets())
        return residents

    def is_drained(self) -> bool:
        """True when every queue in the switch is empty."""
        return all(q.is_empty for row in self.voq for q in row) and all(
            q.is_empty for q in self.out
        )

    # -- phase actions ------------------------------------------------------

    def enqueue_arrival(self, p: Packet) -> None:
        """Insert an accepted packet into its VOQ (policy guarantees space)."""
        self.voq[p.src][p.dst].push(p)

    def apply_transfers(self, transfers: Sequence[Transfer]) -> None:
        """Execute one scheduling cycle's matching.

        Validates the matching property (each input port releases at most
        one packet, each output queue admits at most one packet), packet
        membership, and output capacity (possibly after a declared
        preemption).
        """
        used_in: Dict[int, int] = {}
        used_out: Dict[int, int] = {}
        for tr in transfers:
            if not (0 <= tr.src < self.n_in and 0 <= tr.dst < self.n_out):
                raise ScheduleError(f"transfer ports out of range: {tr!r}")
            if tr.src in used_in:
                raise ScheduleError(f"input port {tr.src} matched twice in one cycle")
            if tr.dst in used_out:
                raise ScheduleError(f"output port {tr.dst} matched twice in one cycle")
            used_in[tr.src] = 1
            used_out[tr.dst] = 1

        for tr in transfers:
            src_q = self.voq[tr.src][tr.dst]
            if tr.packet not in src_q:
                raise ScheduleError(
                    f"packet {tr.packet.pid} not in VOQ ({tr.src},{tr.dst})"
                )
            dst_q = self.out[tr.dst]
            if tr.preempt is not None:
                if tr.preempt not in dst_q:
                    raise ScheduleError(
                        f"preemption victim {tr.preempt.pid} not in output queue "
                        f"{tr.dst}"
                    )
                dst_q.remove(tr.preempt)
            if dst_q.is_full:
                raise ScheduleError(
                    f"output queue {tr.dst} full; transfer of packet "
                    f"{tr.packet.pid} needs a preemption"
                )
            src_q.remove(tr.packet)
            dst_q.push(tr.packet)

    def transmit(self, selections: Dict[int, Packet]) -> List[Packet]:
        """Execute the transmission phase: at most one packet per output.

        ``selections`` maps output port -> packet to send.  Returns the
        sent packets.
        """
        sent: List[Packet] = []
        for j, p in selections.items():
            if not (0 <= j < self.n_out):
                raise ScheduleError(f"transmit port {j} out of range")
            q = self.out[j]
            if p not in q:
                raise ScheduleError(f"packet {p.pid} not in output queue {j}")
            q.remove(p)
            sent.append(p)
        return sent

    # -- invariants ---------------------------------------------------------

    def check_invariants(self) -> None:
        for row in self.voq:
            for q in row:
                q.check_invariants()
        for q in self.out:
            q.check_invariants()


def greedy_head_transmissions(switch: CIOQSwitch) -> Dict[int, Packet]:
    """Default transmission rule: send the head (max value) of every
    non-empty output queue.  This is the transmission phase of all four
    paper algorithms (for unit values, "head" is just any packet)."""
    sel: Dict[int, Packet] = {}
    for j, q in enumerate(switch.out):
        h = q.head()
        if h is not None:
            sel[j] = h
    return sel
