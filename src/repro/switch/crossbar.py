"""Buffered crossbar switch state (paper Section 1.3, Figure 2).

The buffered crossbar model augments the CIOQ switch with one crosspoint
queue ``C_ij`` per (input i, output j) pair, placed inside the switching
fabric.  Each scheduling cycle splits into two subphases:

* **input subphase** — from each input port ``i``, at most one packet may
  move from some VOQ ``Q_ij`` to its crosspoint queue ``C_ij``;
* **output subphase** — into each output queue ``Q_j``, at most one packet
  may move from some crosspoint queue ``C_ij``.

Because the two subphases impose *per-port* constraints only (no bipartite
matching across ports is required), crossbar scheduling decisions are
purely local — the practical appeal the paper's introduction describes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from .config import SwitchConfig
from .cioq import ScheduleError
from .packet import Packet
from .queue import BoundedQueue


class InputTransfer:
    """Input-subphase decision: move ``packet`` from VOQ Q_ij into C_ij.

    ``preempt`` names the crosspoint-queue victim if C_ij is full (CPG's
    preemption rule); it must currently reside in C_ij.
    """

    __slots__ = ("src", "dst", "packet", "preempt")

    def __init__(
        self, src: int, dst: int, packet: Packet, preempt: Optional[Packet] = None
    ):
        self.src = src
        self.dst = dst
        self.packet = packet
        self.preempt = preempt

    def __repr__(self) -> str:  # pragma: no cover
        return f"InputTransfer(Q[{self.src}][{self.dst}] -> C, pid={self.packet.pid})"


class OutputTransfer:
    """Output-subphase decision: move ``packet`` from C_ij into Q_j."""

    __slots__ = ("src", "dst", "packet", "preempt")

    def __init__(
        self, src: int, dst: int, packet: Packet, preempt: Optional[Packet] = None
    ):
        self.src = src
        self.dst = dst
        self.packet = packet
        self.preempt = preempt

    def __repr__(self) -> str:  # pragma: no cover
        return f"OutputTransfer(C[{self.src}][{self.dst}] -> out, pid={self.packet.pid})"


class CrossbarSwitch:
    """Mutable queue state of a buffered crossbar switch."""

    def __init__(self, config: SwitchConfig):
        self.config = config
        self.voq: List[List[BoundedQueue]] = [
            [BoundedQueue(config.b_in) for _ in range(config.n_out)]
            for _ in range(config.n_in)
        ]
        #: Crosspoint queues ``cross[i][j]`` = C_ij.
        self.cross: List[List[BoundedQueue]] = [
            [BoundedQueue(config.b_cross) for _ in range(config.n_out)]
            for _ in range(config.n_in)
        ]
        self.out: List[BoundedQueue] = [
            BoundedQueue(config.b_out) for _ in range(config.n_out)
        ]
        # Flattened item-deque views, cached once: occupancy_totals()
        # runs every slot when the occupancy trace or per-slot metric
        # sampling is on, so it must not rebuild the grid walk.
        self._voq_items = [q._items for row in self.voq for q in row]
        self._cross_items = [q._items for row in self.cross for q in row]
        self._out_items = [q._items for q in self.out]

    # -- inspection ---------------------------------------------------------

    @property
    def n_in(self) -> int:
        return self.config.n_in

    @property
    def n_out(self) -> int:
        return self.config.n_out

    def voq_lengths(self) -> List[List[int]]:
        return [[len(q) for q in row] for row in self.voq]

    def cross_lengths(self) -> List[List[int]]:
        return [[len(q) for q in row] for row in self.cross]

    def out_lengths(self) -> List[int]:
        return [len(q) for q in self.out]

    def buffered_packets(self) -> List[Packet]:
        residents: List[Packet] = []
        for grid in (self.voq, self.cross):
            for row in grid:
                for q in row:
                    residents.extend(q.packets())
        for q in self.out:
            residents.extend(q.packets())
        return residents

    def is_drained(self) -> bool:
        return (
            all(q.is_empty for row in self.voq for q in row)
            and all(q.is_empty for row in self.cross for q in row)
            and all(q.is_empty for q in self.out)
        )

    def occupancy_totals(self) -> Tuple[int, int, int]:
        """End-of-slot totals ``(voq, cross, out)`` for the occupancy trace
        (see the ``occupancy`` schema documented in
        :class:`~repro.simulation.results.SimulationResult`)."""
        return (sum(map(len, self._voq_items)),
                sum(map(len, self._cross_items)),
                sum(map(len, self._out_items)))

    # -- phase actions ------------------------------------------------------

    def enqueue_arrival(self, p: Packet) -> None:
        self.voq[p.src][p.dst].push(p)

    def apply_input_subphase(self, transfers: Sequence[InputTransfer]) -> None:
        """Execute the input subphase: at most one transfer per input port."""
        # Single fused validate-and-apply pass (see apply_transfers in
        # the CIOQ switch for the rationale; ScheduleError always aborts
        # the run, so per-transfer validation may interleave with
        # application).
        n_in, n_out = self.n_in, self.n_out
        used_in: set = set()
        voq, cross = self.voq, self.cross
        for tr in transfers:
            src, dst = tr.src, tr.dst
            if not (0 <= src < n_in and 0 <= dst < n_out):
                raise ScheduleError(f"input transfer out of range: {tr!r}")
            if src in used_in:
                raise ScheduleError(
                    f"input port {src} released two packets in one input subphase"
                )
            used_in.add(src)

            src_q = voq[src][dst]
            pk = tr.packet
            skeys = src_q._keys
            sitems = src_q._items
            idx = bisect_left(skeys, pk._key)
            if idx >= len(sitems) or sitems[idx].pid != pk.pid:
                raise ScheduleError(
                    f"packet {pk.pid} not in VOQ ({src},{dst})"
                )
            dst_q = cross[src][dst]
            dkeys = dst_q._keys
            ditems = dst_q._items
            victim = tr.preempt
            if victim is not None:
                vidx = bisect_left(dkeys, victim._key)
                if vidx >= len(ditems) or ditems[vidx].pid != victim.pid:
                    raise ScheduleError(
                        f"preemption victim {victim.pid} not in crosspoint "
                        f"queue ({src},{dst})"
                    )
                del dkeys[vidx]
                del ditems[vidx]
            if len(ditems) >= dst_q.capacity:
                raise ScheduleError(
                    f"crosspoint queue ({src},{dst}) full; needs preemption"
                )
            del skeys[idx]
            pk = sitems.pop(idx)
            key = pk._key
            didx = bisect_left(dkeys, key)
            dkeys.insert(didx, key)
            ditems.insert(didx, pk)

    def apply_output_subphase(self, transfers: Sequence[OutputTransfer]) -> None:
        """Execute the output subphase: at most one transfer per output port."""
        n_in, n_out = self.n_in, self.n_out
        used_out: set = set()
        cross, out = self.cross, self.out
        for tr in transfers:
            src, dst = tr.src, tr.dst
            if not (0 <= src < n_in and 0 <= dst < n_out):
                raise ScheduleError(f"output transfer out of range: {tr!r}")
            if dst in used_out:
                raise ScheduleError(
                    f"output port {dst} admitted two packets in one output "
                    f"subphase"
                )
            used_out.add(dst)

            src_q = cross[src][dst]
            pk = tr.packet
            skeys = src_q._keys
            sitems = src_q._items
            idx = bisect_left(skeys, pk._key)
            if idx >= len(sitems) or sitems[idx].pid != pk.pid:
                raise ScheduleError(
                    f"packet {pk.pid} not in crosspoint queue "
                    f"({src},{dst})"
                )
            dst_q = out[dst]
            dkeys = dst_q._keys
            ditems = dst_q._items
            victim = tr.preempt
            if victim is not None:
                vidx = bisect_left(dkeys, victim._key)
                if vidx >= len(ditems) or ditems[vidx].pid != victim.pid:
                    raise ScheduleError(
                        f"preemption victim {victim.pid} not in output queue "
                        f"{dst}"
                    )
                del dkeys[vidx]
                del ditems[vidx]
            if len(ditems) >= dst_q.capacity:
                raise ScheduleError(f"output queue {dst} full; needs preemption")
            del skeys[idx]
            pk = sitems.pop(idx)
            key = pk._key
            didx = bisect_left(dkeys, key)
            dkeys.insert(didx, key)
            ditems.insert(didx, pk)

    def transmit(self, selections: Dict[int, Packet]) -> List[Packet]:
        sent: List[Packet] = []
        n_out, out = self.n_out, self.out
        for j, p in selections.items():
            if not (0 <= j < n_out):
                raise ScheduleError(f"transmit port {j} out of range")
            q = out[j]
            keys = q._keys
            items = q._items
            idx = bisect_left(keys, p._key)
            if idx >= len(items) or items[idx].pid != p.pid:
                raise ScheduleError(f"packet {p.pid} not in output queue {j}")
            del keys[idx]
            sent.append(items.pop(idx))
        return sent

    def check_invariants(self) -> None:
        for grid in (self.voq, self.cross):
            for row in grid:
                for q in row:
                    q.check_invariants()
        for q in self.out:
            q.check_invariants()


def greedy_head_transmissions(switch: CrossbarSwitch) -> Dict[int, Packet]:
    """Send the head of every non-empty output queue (all paper policies)."""
    sel: Dict[int, Packet] = {}
    for j, q in enumerate(switch.out):
        items = q._items
        if items:
            sel[j] = items[-1]
    return sel
