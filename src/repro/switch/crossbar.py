"""Buffered crossbar switch state (paper Section 1.3, Figure 2).

The buffered crossbar model augments the CIOQ switch with one crosspoint
queue ``C_ij`` per (input i, output j) pair, placed inside the switching
fabric.  Each scheduling cycle splits into two subphases:

* **input subphase** — from each input port ``i``, at most one packet may
  move from some VOQ ``Q_ij`` to its crosspoint queue ``C_ij``;
* **output subphase** — into each output queue ``Q_j``, at most one packet
  may move from some crosspoint queue ``C_ij``.

Because the two subphases impose *per-port* constraints only (no bipartite
matching across ports is required), crossbar scheduling decisions are
purely local — the practical appeal the paper's introduction describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .config import SwitchConfig
from .cioq import ScheduleError
from .packet import Packet
from .queue import BoundedQueue


class InputTransfer:
    """Input-subphase decision: move ``packet`` from VOQ Q_ij into C_ij.

    ``preempt`` names the crosspoint-queue victim if C_ij is full (CPG's
    preemption rule); it must currently reside in C_ij.
    """

    __slots__ = ("src", "dst", "packet", "preempt")

    def __init__(
        self, src: int, dst: int, packet: Packet, preempt: Optional[Packet] = None
    ):
        self.src = src
        self.dst = dst
        self.packet = packet
        self.preempt = preempt

    def __repr__(self) -> str:  # pragma: no cover
        return f"InputTransfer(Q[{self.src}][{self.dst}] -> C, pid={self.packet.pid})"


class OutputTransfer:
    """Output-subphase decision: move ``packet`` from C_ij into Q_j."""

    __slots__ = ("src", "dst", "packet", "preempt")

    def __init__(
        self, src: int, dst: int, packet: Packet, preempt: Optional[Packet] = None
    ):
        self.src = src
        self.dst = dst
        self.packet = packet
        self.preempt = preempt

    def __repr__(self) -> str:  # pragma: no cover
        return f"OutputTransfer(C[{self.src}][{self.dst}] -> out, pid={self.packet.pid})"


class CrossbarSwitch:
    """Mutable queue state of a buffered crossbar switch."""

    def __init__(self, config: SwitchConfig):
        self.config = config
        self.voq: List[List[BoundedQueue]] = [
            [BoundedQueue(config.b_in) for _ in range(config.n_out)]
            for _ in range(config.n_in)
        ]
        #: Crosspoint queues ``cross[i][j]`` = C_ij.
        self.cross: List[List[BoundedQueue]] = [
            [BoundedQueue(config.b_cross) for _ in range(config.n_out)]
            for _ in range(config.n_in)
        ]
        self.out: List[BoundedQueue] = [
            BoundedQueue(config.b_out) for _ in range(config.n_out)
        ]

    # -- inspection ---------------------------------------------------------

    @property
    def n_in(self) -> int:
        return self.config.n_in

    @property
    def n_out(self) -> int:
        return self.config.n_out

    def voq_lengths(self) -> List[List[int]]:
        return [[len(q) for q in row] for row in self.voq]

    def cross_lengths(self) -> List[List[int]]:
        return [[len(q) for q in row] for row in self.cross]

    def out_lengths(self) -> List[int]:
        return [len(q) for q in self.out]

    def buffered_packets(self) -> List[Packet]:
        residents: List[Packet] = []
        for grid in (self.voq, self.cross):
            for row in grid:
                for q in row:
                    residents.extend(q.packets())
        for q in self.out:
            residents.extend(q.packets())
        return residents

    def is_drained(self) -> bool:
        return (
            all(q.is_empty for row in self.voq for q in row)
            and all(q.is_empty for row in self.cross for q in row)
            and all(q.is_empty for q in self.out)
        )

    # -- phase actions ------------------------------------------------------

    def enqueue_arrival(self, p: Packet) -> None:
        self.voq[p.src][p.dst].push(p)

    def apply_input_subphase(self, transfers: Sequence[InputTransfer]) -> None:
        """Execute the input subphase: at most one transfer per input port."""
        used_in: Dict[int, int] = {}
        for tr in transfers:
            if not (0 <= tr.src < self.n_in and 0 <= tr.dst < self.n_out):
                raise ScheduleError(f"input transfer out of range: {tr!r}")
            if tr.src in used_in:
                raise ScheduleError(
                    f"input port {tr.src} released two packets in one input subphase"
                )
            used_in[tr.src] = 1

        for tr in transfers:
            src_q = self.voq[tr.src][tr.dst]
            if tr.packet not in src_q:
                raise ScheduleError(
                    f"packet {tr.packet.pid} not in VOQ ({tr.src},{tr.dst})"
                )
            dst_q = self.cross[tr.src][tr.dst]
            if tr.preempt is not None:
                if tr.preempt not in dst_q:
                    raise ScheduleError(
                        f"preemption victim {tr.preempt.pid} not in crosspoint "
                        f"queue ({tr.src},{tr.dst})"
                    )
                dst_q.remove(tr.preempt)
            if dst_q.is_full:
                raise ScheduleError(
                    f"crosspoint queue ({tr.src},{tr.dst}) full; needs preemption"
                )
            src_q.remove(tr.packet)
            dst_q.push(tr.packet)

    def apply_output_subphase(self, transfers: Sequence[OutputTransfer]) -> None:
        """Execute the output subphase: at most one transfer per output port."""
        used_out: Dict[int, int] = {}
        for tr in transfers:
            if not (0 <= tr.src < self.n_in and 0 <= tr.dst < self.n_out):
                raise ScheduleError(f"output transfer out of range: {tr!r}")
            if tr.dst in used_out:
                raise ScheduleError(
                    f"output port {tr.dst} admitted two packets in one output "
                    f"subphase"
                )
            used_out[tr.dst] = 1

        for tr in transfers:
            src_q = self.cross[tr.src][tr.dst]
            if tr.packet not in src_q:
                raise ScheduleError(
                    f"packet {tr.packet.pid} not in crosspoint queue "
                    f"({tr.src},{tr.dst})"
                )
            dst_q = self.out[tr.dst]
            if tr.preempt is not None:
                if tr.preempt not in dst_q:
                    raise ScheduleError(
                        f"preemption victim {tr.preempt.pid} not in output queue "
                        f"{tr.dst}"
                    )
                dst_q.remove(tr.preempt)
            if dst_q.is_full:
                raise ScheduleError(f"output queue {tr.dst} full; needs preemption")
            src_q.remove(tr.packet)
            dst_q.push(tr.packet)

    def transmit(self, selections: Dict[int, Packet]) -> List[Packet]:
        sent: List[Packet] = []
        for j, p in selections.items():
            if not (0 <= j < self.n_out):
                raise ScheduleError(f"transmit port {j} out of range")
            q = self.out[j]
            if p not in q:
                raise ScheduleError(f"packet {p.pid} not in output queue {j}")
            q.remove(p)
            sent.append(p)
        return sent

    def check_invariants(self) -> None:
        for grid in (self.voq, self.cross):
            for row in grid:
                for q in row:
                    q.check_invariants()
        for q in self.out:
            q.check_invariants()


def greedy_head_transmissions(switch: CrossbarSwitch) -> Dict[int, Packet]:
    """Send the head of every non-empty output queue (all paper policies)."""
    sel: Dict[int, Packet] = {}
    for j, q in enumerate(switch.out):
        h = q.head()
        if h is not None:
            sel[j] = h
    return sel
