"""Switch substrate: packets, queues and the two switch architectures.

This subpackage implements the hardware model of Section 1.3 of the
paper: the :class:`~repro.switch.cioq.CIOQSwitch` (Figure 1) and the
:class:`~repro.switch.crossbar.CrossbarSwitch` (Figure 2), together with
the bounded non-FIFO queues both are built from.
"""

from .config import SwitchConfig
from .packet import Packet, total_value, validate_packets
from .queue import BoundedQueue, QueueOverflowError
from .cioq import CIOQSwitch, ScheduleError, Transfer, greedy_head_transmissions
from .crossbar import CrossbarSwitch, InputTransfer, OutputTransfer
from .diagram import render, render_cioq, render_crossbar

__all__ = [
    "SwitchConfig",
    "Packet",
    "total_value",
    "validate_packets",
    "BoundedQueue",
    "QueueOverflowError",
    "CIOQSwitch",
    "ScheduleError",
    "Transfer",
    "greedy_head_transmissions",
    "CrossbarSwitch",
    "InputTransfer",
    "OutputTransfer",
    "render",
    "render_cioq",
    "render_crossbar",
]
