"""Bounded non-FIFO packet queues.

The paper's queues (Section 1.3) are *non-FIFO*: packets may be stored in
and released from queues in any order.  Assumption A3 lets us keep every
queue sorted by value, with the most valuable packet at the *head*
(position 1 in the paper's notation) and the least valuable at the *tail*.
Ties are broken consistently by packet id (smaller id = closer to head).

:class:`BoundedQueue` maintains exactly this order with O(log n) binary
search per insertion and O(n) list insertion (queues are small: capacities
are the B(Q) of a switch, typically <= a few dozen), and exposes the
primitives the paper's algorithms need:

* ``head()``   — ``g(t)``: greatest-value packet,
* ``tail()``   — ``l(t)``: least-value packet,
* ``pop_head()`` / ``pop_tail()``,
* ``push()``   — insert, assuming capacity is available,
* ``admit_preemptive()`` — the arrival rule shared by PG/CPG
  ("accept if not full or the tail is worth less; preempt the tail").
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Optional, Tuple

from .packet import Packet


class QueueOverflowError(RuntimeError):
    """Raised when a packet is pushed into a full queue without preemption."""


class BoundedQueue:
    """A capacity-bounded queue kept sorted by descending packet value.

    Internally packets are stored in a Python list sorted *ascending* by
    :meth:`Packet.sort_key`, i.e. ``_items[-1]`` is the head (greatest
    value) and ``_items[0]`` is the tail (least value).  This makes both
    ``pop_head`` and ``pop_tail`` cheap (tail pop is O(n) but n <= B).

    In-package fast paths (the simulation kernel and the paper policies'
    scheduling loops) are allowed to *read* ``_items`` directly — it is
    always the ascending-sorted packet list, so ``_items[-1]`` is the
    head, ``_items[0]`` the tail, and ``len(_items) < capacity`` means
    "not full" — but must mutate only through the methods below.
    """

    __slots__ = ("capacity", "_items", "_keys")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._items: List[Packet] = []
        self._keys: List[Tuple[float, int]] = []

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Packet]:
        """Iterate from head (greatest value) to tail (least value)."""
        return iter(reversed(self._items))

    def __contains__(self, p: Packet) -> bool:
        return self.find(p) >= 0

    def find(self, p: Packet) -> int:
        """Index of ``p`` in the internal ascending order, or -1.

        O(log n) via the sort key; equal-key runs cannot occur (keys
        embed the unique pid), so at most one probe is needed.
        """
        keys = self._keys
        idx = bisect_left(keys, p._key)
        if idx < len(keys) and self._items[idx].pid == p.pid:
            return idx
        return -1

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def head(self) -> Optional[Packet]:
        """The most valuable packet (``g_ij(t)``), or None if empty."""
        return self._items[-1] if self._items else None

    def tail(self) -> Optional[Packet]:
        """The least valuable packet (``l_ij(t)``), or None if empty."""
        return self._items[0] if self._items else None

    def at_position(self, k: int) -> Packet:
        """Packet at 1-based position ``k`` from the head (paper's δ(k, t))."""
        if not 1 <= k <= len(self._items):
            raise IndexError(f"position {k} out of range 1..{len(self._items)}")
        return self._items[len(self._items) - k]

    def packets(self) -> List[Packet]:
        """Snapshot list from head to tail."""
        return list(reversed(self._items))

    def values(self) -> List[float]:
        """Packet values from head to tail."""
        return [p.value for p in reversed(self._items)]

    def total_value(self) -> float:
        return sum(p.value for p in self._items)

    # -- mutation -----------------------------------------------------------

    def push(self, p: Packet) -> None:
        """Insert ``p`` maintaining sort order; raises if the queue is full."""
        items = self._items
        if len(items) >= self.capacity:
            raise QueueOverflowError(
                f"queue at capacity {self.capacity}; cannot push packet {p.pid}"
            )
        key = p._key
        idx = bisect_left(self._keys, key)
        items.insert(idx, p)
        self._keys.insert(idx, key)

    def pop_head(self) -> Packet:
        """Remove and return the most valuable packet."""
        if not self._items:
            raise IndexError("pop_head from empty queue")
        self._keys.pop()
        return self._items.pop()

    def pop_tail(self) -> Packet:
        """Remove and return the least valuable packet."""
        if not self._items:
            raise IndexError("pop_tail from empty queue")
        self._keys.pop(0)
        return self._items.pop(0)

    def remove(self, p: Packet) -> None:
        """Remove a specific packet (used by preemption bookkeeping)."""
        idx = self.find(p)
        if idx < 0:
            raise ValueError(f"packet {p.pid} not in queue")
        del self._items[idx]
        del self._keys[idx]

    def clear(self) -> None:
        self._items.clear()
        self._keys.clear()

    def admit_preemptive(self, p: Packet) -> Tuple[bool, Optional[Packet]]:
        """Shared arrival/insertion rule of PG and CPG.

        Accept ``p`` if the queue has free space, or if the tail packet is
        worth strictly less than ``p`` (in which case the tail is
        preempted).  Returns ``(accepted, preempted_packet_or_None)``.

        This is exactly the paper's arrival-phase rule: accept iff
        ``|Q| < B(Q)  or  v(l(t)) < v(p)``.
        """
        if not self.is_full:
            self.push(p)
            return True, None
        victim = self.tail()
        assert victim is not None
        if victim.value < p.value:
            self.pop_tail()
            self.push(p)
            return True, victim
        return False, None

    def check_invariants(self) -> None:
        """Assert internal consistency (used by tests and debug hooks)."""
        assert len(self._items) == len(self._keys)
        assert len(self._items) <= self.capacity
        for i, p in enumerate(self._items):
            assert self._keys[i] == p.sort_key()
            if i > 0:
                assert self._keys[i - 1] < self._keys[i], "queue must be sorted"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        vals = ", ".join(f"{p.value:g}" for p in reversed(self._items))
        return f"BoundedQueue(cap={self.capacity}, head->tail=[{vals}])"
