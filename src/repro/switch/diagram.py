"""ASCII renderings of the paper's architecture figures.

Figure 1 of the paper depicts an N=3 CIOQ switch: every input port holds
N VOQs feeding a bufferless switching fabric that connects to one queue
per output port.  Figure 2 depicts the buffered crossbar variant with an
additional queue at every crosspoint of the fabric.

These renderers draw the same topologies from live simulator state, so a
diagram doubles as a queue-occupancy snapshot: each queue is drawn as a
row of cells, ``#`` for an occupied slot and ``.`` for a free one.
"""

from __future__ import annotations

from typing import List, Union

from .cioq import CIOQSwitch
from .crossbar import CrossbarSwitch
from .queue import BoundedQueue


def _queue_cells(q: BoundedQueue, width: int = None) -> str:
    """Render a queue as ``[##..]`` with one cell per capacity slot."""
    cap = q.capacity if width is None else width
    used = min(len(q), cap)
    return "[" + "#" * used + "." * (cap - used) + "]"


def render_cioq(switch: CIOQSwitch, title: str = "CIOQ switch") -> str:
    """Render a CIOQ switch in the style of the paper's Figure 1.

    Layout (per input port i)::

        in i  -> Q_i1 [..]  \\
                 Q_i2 [..]   >--- fabric ---> Q_j [..] -> out j
                 Q_i3 [..]  /
    """
    n_in, n_out = switch.n_in, switch.n_out
    lines: List[str] = [f"{title}  (N_in={n_in}, N_out={n_out}, "
                        f"speedup={switch.config.speedup})", ""]
    lines.append("input ports                    switching fabric    output ports")
    lines.append("-" * 66)
    fabric_rows = max(n_in * (n_out + 1), n_out * 2)
    block: List[str] = []
    for i in range(n_in):
        for j in range(n_out):
            q = switch.voq[i][j]
            label = f"in {i}  Q[{i}][{j}] " if j == 0 else f"      Q[{i}][{j}] "
            block.append(f"{label}{_queue_cells(q)}")
        block.append("")
    # Right-hand column: output queues, vertically spread.
    right: List[str] = []
    for j in range(n_out):
        q = switch.out[j]
        right.append(f"Q[{j}] {_queue_cells(q)}  -> out {j}")
        right.append("")
    height = max(len(block), len(right), fabric_rows)
    block += [""] * (height - len(block))
    right += [""] * (height - len(right))
    mid = height // 2
    for r in range(height):
        left = block[r].ljust(30)
        if r == mid:
            fabric = ">>== fabric ==>>".center(18)
        elif block[r] and right[r]:
            fabric = "----".center(18)
        else:
            fabric = " " * 18
        lines.append(f"{left}{fabric}{right[r]}".rstrip())
    return "\n".join(lines).rstrip() + "\n"


def render_crossbar(switch: CrossbarSwitch, title: str = "Buffered crossbar switch") -> str:
    """Render a buffered crossbar switch in the style of Figure 2.

    The fabric is drawn as an ``n_in x n_out`` grid of crosspoint queues;
    VOQs feed grid rows, output queues drain grid columns.
    """
    n_in, n_out = switch.n_in, switch.n_out
    lines: List[str] = [f"{title}  (N_in={n_in}, N_out={n_out}, "
                        f"speedup={switch.config.speedup}, "
                        f"B(C)={switch.config.b_cross})", ""]
    cell_w = max(switch.config.b_cross + 2, 6) + 2

    header = " " * 24 + "".join(f"col {j}".center(cell_w) for j in range(n_out))
    lines.append(header)
    lines.append(" " * 24 + "-" * (cell_w * n_out))
    for i in range(n_in):
        voq_cells = " ".join(_queue_cells(switch.voq[i][j]) for j in range(n_out))
        lines.append(f"in {i}: VOQs {voq_cells}")
        row = f"   row {i} ".ljust(24)
        row += "".join(
            _queue_cells(switch.cross[i][j]).center(cell_w) for j in range(n_out)
        )
        lines.append(row)
    lines.append(" " * 24 + "-" * (cell_w * n_out))
    outs = " " * 24 + "".join(
        _queue_cells(switch.out[j]).center(cell_w) for j in range(n_out)
    )
    lines.append(outs)
    lines.append(" " * 24 + "".join(f"out {j}".center(cell_w) for j in range(n_out)))
    return "\n".join(lines).rstrip() + "\n"


def render(switch: Union[CIOQSwitch, CrossbarSwitch]) -> str:
    """Dispatch to the appropriate renderer for the switch type."""
    if isinstance(switch, CrossbarSwitch):
        return render_crossbar(switch)
    if isinstance(switch, CIOQSwitch):
        return render_cioq(switch)
    raise TypeError(f"cannot render {type(switch).__name__}")
