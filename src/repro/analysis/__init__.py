"""Experiment harness: ratio measurements, sweeps, tables, efficiency."""

from .ratio import (
    RatioMeasurement,
    RatioSummary,
    measure_cioq_ratio,
    measure_crossbar_ratio,
    measure_many,
    per_seed_ratios,
    ratio_of,
    summarize,
    worst,
)
from .report import (
    csv_table,
    format_mean_ci,
    format_summary_table,
    format_table,
    markdown_table,
    print_table,
)
from .sweep import (
    beta_sweep_pg,
    buffer_sweep_crossbar,
    grid,
    measurements_to_rows,
    speedup_sweep,
    threshold_sweep_cpg,
)
from .efficiency import (
    compare_unit_matching_cost,
    compare_weighted_matching_cost,
    efficiency_scaling_table,
    random_occupancy,
    random_weights,
)
from .latency import delay_rows, occupancy_report, sparkline
from .classes import banded_breakdown, class_breakdown, value_classes

__all__ = [
    "RatioMeasurement",
    "RatioSummary",
    "measure_cioq_ratio",
    "measure_crossbar_ratio",
    "measure_many",
    "per_seed_ratios",
    "ratio_of",
    "summarize",
    "worst",
    "csv_table",
    "format_mean_ci",
    "format_summary_table",
    "format_table",
    "markdown_table",
    "print_table",
    "beta_sweep_pg",
    "buffer_sweep_crossbar",
    "grid",
    "measurements_to_rows",
    "speedup_sweep",
    "threshold_sweep_cpg",
    "compare_unit_matching_cost",
    "compare_weighted_matching_cost",
    "efficiency_scaling_table",
    "random_occupancy",
    "random_weights",
    "delay_rows",
    "occupancy_report",
    "sparkline",
    "banded_breakdown",
    "class_breakdown",
    "value_classes",
]
