"""Per-cycle scheduling cost: greedy maximal vs maximum matchings (T5).

The paper's practicality argument: prior competitive CIOQ algorithms
recompute a *maximum* (cardinality or weight) matching every scheduling
cycle — O(E sqrt V) (Hopcroft–Karp) or O(n^3) (Hungarian) — whereas GM
and PG need a single greedy pass, O(E) after an O(E log E) sort for the
weighted case.  This module measures both the machine-independent
operation counts (via :class:`~repro.scheduling.matching.MatchingStats`)
and wall-clock time per cycle on synthetic switch occupancies of varying
size and density, plus end-to-end instrumented simulations.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from ..scheduling.matching import (
    MatchingStats,
    greedy_maximal_matching,
    greedy_maximal_matching_weighted,
    hopcroft_karp,
    max_weight_matching,
)


def random_occupancy(
    n: int, density: float, rng: np.random.Generator
) -> np.ndarray:
    """A random 0/1 VOQ-occupancy matrix at the given edge density."""
    return (rng.random((n, n)) < density).astype(np.int64)


def random_weights(
    n: int, density: float, rng: np.random.Generator
) -> np.ndarray:
    """A random weight matrix; zero entries mean 'no edge'."""
    occ = rng.random((n, n)) < density
    w = rng.uniform(1.0, 100.0, size=(n, n))
    return np.where(occ, w, 0.0)


def compare_unit_matching_cost(
    n: int,
    density: float,
    trials: int = 50,
    seed: int = 0,
) -> Dict:
    """Greedy maximal vs Hopcroft–Karp on random unit instances.

    Returns operation counts, per-call wall time, and the matching-size
    ratio (greedy is a 1/2-approximation in theory; in practice it is
    much closer to maximum).
    """
    rng = np.random.default_rng(seed)
    greedy_stats = MatchingStats()
    hk_stats = MatchingStats()
    greedy_sizes = 0
    hk_sizes = 0
    greedy_time = 0.0
    hk_time = 0.0
    for _ in range(trials):
        occ = random_occupancy(n, density, rng)
        edges = [(i, j) for i in range(n) for j in range(n) if occ[i, j]]
        adj = [[j for j in range(n) if occ[i, j]] for i in range(n)]

        t0 = time.perf_counter()
        gm = greedy_maximal_matching(edges, stats=greedy_stats)
        greedy_time += time.perf_counter() - t0
        greedy_sizes += len(gm)

        t0 = time.perf_counter()
        mm = hopcroft_karp(n, n, adj, stats=hk_stats)
        hk_time += time.perf_counter() - t0
        hk_sizes += len(mm)

    return {
        "n": n,
        "density": density,
        "greedy_ops": greedy_stats.total_ops // trials,
        "maxmatch_ops": hk_stats.total_ops // trials,
        "ops_ratio": round(hk_stats.total_ops / max(1, greedy_stats.total_ops), 2),
        "greedy_us": round(1e6 * greedy_time / trials, 2),
        "maxmatch_us": round(1e6 * hk_time / trials, 2),
        "time_ratio": round(hk_time / max(greedy_time, 1e-12), 2),
        "size_ratio": round(greedy_sizes / max(1, hk_sizes), 4),
    }


def compare_weighted_matching_cost(
    n: int,
    density: float,
    trials: int = 20,
    seed: int = 0,
) -> Dict:
    """Greedy-by-weight vs Hungarian on random weighted instances."""
    rng = np.random.default_rng(seed)
    greedy_stats = MatchingStats()
    hung_stats = MatchingStats()
    greedy_weight = 0.0
    hung_weight = 0.0
    greedy_time = 0.0
    hung_time = 0.0
    for _ in range(trials):
        w = random_weights(n, density, rng)
        edges = [
            (i, j, float(w[i, j]))
            for i in range(n)
            for j in range(n)
            if w[i, j] > 0
        ]

        t0 = time.perf_counter()
        gm = greedy_maximal_matching_weighted(edges, stats=greedy_stats)
        greedy_time += time.perf_counter() - t0
        greedy_weight += sum(e[2] for e in gm)

        t0 = time.perf_counter()
        mw = max_weight_matching(w.tolist(), stats=hung_stats)
        hung_time += time.perf_counter() - t0
        hung_weight += sum(e[2] for e in mw)

    return {
        "n": n,
        "density": density,
        "greedy_ops": greedy_stats.total_ops // trials,
        "hungarian_ops": hung_stats.total_ops // trials,
        "ops_ratio": round(hung_stats.total_ops / max(1, greedy_stats.total_ops), 2),
        "greedy_us": round(1e6 * greedy_time / trials, 2),
        "hungarian_us": round(1e6 * hung_time / trials, 2),
        "time_ratio": round(hung_time / max(greedy_time, 1e-12), 2),
        "weight_ratio": round(greedy_weight / max(hung_weight, 1e-12), 4),
    }


def efficiency_scaling_table(
    sizes: List[int],
    density: float = 0.6,
    trials: int = 20,
    seed: int = 0,
    weighted: bool = False,
) -> List[Dict]:
    """Cost-vs-N scaling rows for the T5 table."""
    rows = []
    for n in sizes:
        if weighted:
            rows.append(
                compare_weighted_matching_cost(n, density, trials=trials, seed=seed)
            )
        else:
            rows.append(
                compare_unit_matching_cost(n, density, trials=trials, seed=seed)
            )
    return rows
