"""Per-value-class outcome breakdown.

For QoS traffic (e.g. the two-value {1, α} regime of Section 1.2) the
interesting question is not just total benefit but *which class* loses:
a good weighted policy sacrifices cheap packets to protect expensive
ones.  This module classifies every packet of a recorded run as
delivered / rejected / preempted / residual, bucketed by value class,
using only the engine's logs and the trace.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..simulation.results import SimulationResult
from ..traffic.trace import Trace


def value_classes(trace: Trace, max_classes: int = 8) -> List[float]:
    """The distinct packet values, ascending; raises if there are more
    than ``max_classes`` (use :func:`banded_breakdown` for continuous
    value distributions)."""
    classes = sorted({p.value for p in trace.packets})
    if len(classes) > max_classes:
        raise ValueError(
            f"{len(classes)} distinct values; use banded_breakdown for "
            f"continuous distributions"
        )
    return classes


def class_breakdown(
    result: SimulationResult, trace: Trace
) -> List[Dict]:
    """Delivered counts per value class (requires ``record=True``).

    Packets not in ``sent_pids`` were lost somewhere (rejected on
    arrival, preempted later, or stranded at the horizon); the engine's
    aggregate counters break the loss down globally, and this table
    breaks *delivery* down per class.
    """
    if not result.sent_pids and result.n_sent:
        raise ValueError("class_breakdown needs a run with record=True")
    sent = set(result.sent_pids)
    rows = []
    for cls in value_classes(trace):
        members = [p for p in trace.packets if p.value == cls]
        delivered = sum(1 for p in members if p.pid in sent)
        rows.append(
            {
                "class value": cls,
                "arrived": len(members),
                "delivered": delivered,
                "lost": len(members) - delivered,
                "delivery rate": round(delivered / len(members), 4)
                if members
                else 1.0,
                "value delivered": round(cls * delivered, 3),
            }
        )
    return rows


def banded_breakdown(
    result: SimulationResult,
    trace: Trace,
    edges: Sequence[float],
) -> List[Dict]:
    """Like :func:`class_breakdown` but with explicit value-band edges.

    ``edges`` are the interior band boundaries, e.g. ``[5, 20]`` buckets
    values into (0, 5], (5, 20], (20, inf).
    """
    if list(edges) != sorted(edges) or not edges:
        raise ValueError("edges must be a non-empty ascending sequence")
    if not result.sent_pids and result.n_sent:
        raise ValueError("banded_breakdown needs a run with record=True")
    sent = set(result.sent_pids)
    bounds = [0.0] + [float(e) for e in edges] + [float("inf")]
    rows = []
    for lo, hi in zip(bounds, bounds[1:]):
        members = [p for p in trace.packets if lo < p.value <= hi]
        delivered = [p for p in members if p.pid in sent]
        label = f"({lo:g}, {hi:g}]" if hi != float("inf") else f"> {lo:g}"
        rows.append(
            {
                "band": label,
                "arrived": len(members),
                "delivered": len(delivered),
                "delivery rate": round(len(delivered) / len(members), 4)
                if members
                else 1.0,
                "value delivered": round(sum(p.value for p in delivered), 3),
                "value lost": round(
                    sum(p.value for p in members)
                    - sum(p.value for p in delivered),
                    3,
                ),
            }
        )
    return rows
