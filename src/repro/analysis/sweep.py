"""Parameter-sweep drivers for the experiment suite.

Deterministic grid-sweep helpers shared by the benchmark modules: each
returns plain list-of-dict rows ready for
:func:`repro.analysis.report.format_table`.

Every sweep decomposes into independent
:class:`~repro.parallel.SweepPoint` units and runs through a
:class:`~repro.parallel.SweepExecutor`, so callers can fan the points
out over a worker pool (and reuse cached payloads) by passing
``executor=SweepExecutor(workers=N, cache_dir=...)``.  With the default
serial executor the rows are identical to what the pre-parallel
implementation produced — and, because points are pure and ordered, they
are also bit-identical for any worker count.
"""

from __future__ import annotations

import itertools
from functools import partial
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.pg import PGPolicy
from ..core.cpg import CPGPolicy
from ..offline.opt import cioq_opt, crossbar_opt
from ..parallel import SweepExecutor, SweepPoint
from ..switch.config import SwitchConfig
from ..traffic.base import TrafficModel
from ..traffic.trace import Trace
from .ratio import RatioMeasurement, ratio_of


def grid(**params: Sequence) -> List[Dict]:
    """Cartesian product of named parameter lists as dict rows."""
    names = list(params.keys())
    out: List[Dict] = []
    for combo in itertools.product(*(params[n] for n in names)):
        out.append(dict(zip(names, combo)))
    return out


def _executor(executor: Optional[SweepExecutor]) -> SweepExecutor:
    return executor if executor is not None else SweepExecutor()


def beta_sweep_pg(
    trace: Trace,
    config: SwitchConfig,
    betas: Iterable[float],
    opt_benefit: float = None,
    executor: Optional[SweepExecutor] = None,
) -> List[Dict]:
    """PG benefit and ratio as a function of the preemption threshold.

    Computes OPT once (it does not depend on beta) and reruns PG per
    beta.  Used by T2 to locate the empirical optimum and compare with
    the analysis optimum ``1 + sqrt 2``.
    """
    if opt_benefit is None:
        opt_benefit = cioq_opt(trace, config).benefit
    betas = list(betas)
    points = [
        SweepPoint(
            model="cioq",
            config=config,
            trace=trace,
            policy_factory=partial(PGPolicy, beta=float(beta)),
        )
        for beta in betas
    ]
    rows: List[Dict] = []
    for beta, payload in zip(betas, _executor(executor).run(points)):
        benefit = payload["benefit"]
        rows.append(
            {
                "beta": round(float(beta), 4),
                "pg_benefit": round(benefit, 3),
                "opt_benefit": round(opt_benefit, 3),
                "ratio": round(ratio_of(opt_benefit, benefit), 4),
                "preempted": payload["n_preempted"],
                "rejected": payload["n_rejected"],
            }
        )
    return rows


def threshold_sweep_cpg(
    trace: Trace,
    config: SwitchConfig,
    betas: Iterable[float],
    alphas: Iterable[float],
    opt_benefit: float = None,
    executor: Optional[SweepExecutor] = None,
) -> List[Dict]:
    """CPG benefit over a (beta, alpha) grid (T4/T9)."""
    if opt_benefit is None:
        opt_benefit = crossbar_opt(trace, config).benefit
    cells = [(beta, alpha) for beta in betas for alpha in alphas]
    points = [
        SweepPoint(
            model="crossbar",
            config=config,
            trace=trace,
            policy_factory=partial(CPGPolicy, beta=float(beta), alpha=float(alpha)),
        )
        for beta, alpha in cells
    ]
    rows: List[Dict] = []
    for (beta, alpha), payload in zip(cells, _executor(executor).run(points)):
        benefit = payload["benefit"]
        rows.append(
            {
                "beta": round(float(beta), 4),
                "alpha": round(float(alpha), 4),
                "cpg_benefit": round(benefit, 3),
                "opt_benefit": round(opt_benefit, 3),
                "ratio": round(ratio_of(opt_benefit, benefit), 4),
                "preempted": payload["n_preempted"],
            }
        )
    return rows


def speedup_sweep(
    policy_factories: Mapping[str, Callable[[], object]],
    traffic: TrafficModel,
    n_slots: int,
    speedups: Iterable[int],
    base_config: SwitchConfig,
    seeds: Iterable[int] = (0,),
    model: str = "cioq",
    include_opt: bool = True,
    executor: Optional[SweepExecutor] = None,
) -> List[Dict]:
    """Throughput of several policies as speedup varies (T6).

    Every (speedup, seed) cell reruns each policy on the same trace; the
    exact OPT column is included when ``include_opt``.
    """
    seeds = list(seeds)
    traces = {seed: traffic.generate(n_slots, seed=seed) for seed in seeds}
    names = list(policy_factories.keys())

    cells = []
    points: List[SweepPoint] = []
    for s in speedups:
        config = SwitchConfig(
            n_in=base_config.n_in,
            n_out=base_config.n_out,
            speedup=int(s),
            b_in=base_config.b_in,
            b_out=base_config.b_out,
            b_cross=base_config.b_cross,
        )
        for seed in seeds:
            cells.append((int(s), seed))
            trace = traces[seed]
            for name in names:
                points.append(
                    SweepPoint(
                        model=model,
                        config=config,
                        trace=trace,
                        policy_factory=policy_factories[name],
                        seed=seed,
                    )
                )
            if include_opt:
                points.append(
                    SweepPoint(
                        model=model, config=config, trace=trace, seed=seed
                    )
                )

    payloads = iter(_executor(executor).run(points))
    rows: List[Dict] = []
    for s, seed in cells:
        row: Dict = {"speedup": s, "seed": seed, "arrived": len(traces[seed])}
        for name in names:
            row[name] = round(next(payloads)["benefit"], 3)
        if include_opt:
            row["OPT"] = round(next(payloads)["benefit"], 3)
        rows.append(row)
    return rows


def buffer_sweep_crossbar(
    policy_factory: Callable[[], object],
    traffic: TrafficModel,
    n_slots: int,
    b_cross_values: Iterable[int],
    base_config: SwitchConfig,
    seeds: Iterable[int] = (0,),
    executor: Optional[SweepExecutor] = None,
) -> List[Dict]:
    """Crossbar benefit as crosspoint buffer capacity varies (T10)."""
    seeds = list(seeds)
    traces = {seed: traffic.generate(n_slots, seed=seed) for seed in seeds}

    cells = []
    points: List[SweepPoint] = []
    for bc in b_cross_values:
        config = SwitchConfig(
            n_in=base_config.n_in,
            n_out=base_config.n_out,
            speedup=base_config.speedup,
            b_in=base_config.b_in,
            b_out=base_config.b_out,
            b_cross=int(bc),
        )
        for seed in seeds:
            cells.append((int(bc), seed))
            points.append(
                SweepPoint(
                    model="crossbar",
                    config=config,
                    trace=traces[seed],
                    policy_factory=policy_factory,
                    seed=seed,
                )
            )
            points.append(
                SweepPoint(
                    model="crossbar", config=config, trace=traces[seed], seed=seed
                )
            )

    payloads = iter(_executor(executor).run(points))
    rows: List[Dict] = []
    for bc, seed in cells:
        benefit = next(payloads)["benefit"]
        opt_benefit = next(payloads)["benefit"]
        rows.append(
            {
                "b_cross": bc,
                "seed": seed,
                "benefit": round(benefit, 3),
                "opt": round(opt_benefit, 3),
                "ratio": round(ratio_of(opt_benefit, benefit), 4),
            }
        )
    return rows


def measurements_to_rows(measurements: Iterable[RatioMeasurement]) -> List[Dict]:
    return [m.as_row() for m in measurements]
