"""Parameter-sweep drivers for the experiment suite.

Thin, deterministic grid-sweep helpers shared by the benchmark modules:
each returns plain list-of-dict rows ready for
:func:`repro.analysis.report.format_table`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Mapping, Sequence

from ..core.pg import PGPolicy
from ..core.cpg import CPGPolicy
from ..offline.opt import cioq_opt, crossbar_opt
from ..simulation.engine import run_cioq, run_crossbar
from ..switch.config import SwitchConfig
from ..traffic.base import TrafficModel
from ..traffic.trace import Trace
from .ratio import RatioMeasurement


def grid(**params: Sequence) -> List[Dict]:
    """Cartesian product of named parameter lists as dict rows."""
    names = list(params.keys())
    out: List[Dict] = []
    for combo in itertools.product(*(params[n] for n in names)):
        out.append(dict(zip(names, combo)))
    return out


def beta_sweep_pg(
    trace: Trace,
    config: SwitchConfig,
    betas: Iterable[float],
    opt_benefit: float = None,
) -> List[Dict]:
    """PG benefit and ratio as a function of the preemption threshold.

    Computes OPT once (it does not depend on beta) and reruns PG per
    beta.  Used by T2 to locate the empirical optimum and compare with
    the analysis optimum ``1 + sqrt 2``.
    """
    if opt_benefit is None:
        opt_benefit = cioq_opt(trace, config).benefit
    rows: List[Dict] = []
    for beta in betas:
        onl = run_cioq(PGPolicy(beta=beta), config, trace)
        rows.append(
            {
                "beta": round(float(beta), 4),
                "pg_benefit": round(onl.benefit, 3),
                "opt_benefit": round(opt_benefit, 3),
                "ratio": round(opt_benefit / onl.benefit, 4)
                if onl.benefit > 0
                else float("inf"),
                "preempted": onl.n_preempted,
                "rejected": onl.n_rejected,
            }
        )
    return rows


def threshold_sweep_cpg(
    trace: Trace,
    config: SwitchConfig,
    betas: Iterable[float],
    alphas: Iterable[float],
    opt_benefit: float = None,
) -> List[Dict]:
    """CPG benefit over a (beta, alpha) grid (T4/T9)."""
    if opt_benefit is None:
        opt_benefit = crossbar_opt(trace, config).benefit
    rows: List[Dict] = []
    for beta in betas:
        for alpha in alphas:
            onl = run_crossbar(CPGPolicy(beta=beta, alpha=alpha), config, trace)
            rows.append(
                {
                    "beta": round(float(beta), 4),
                    "alpha": round(float(alpha), 4),
                    "cpg_benefit": round(onl.benefit, 3),
                    "opt_benefit": round(opt_benefit, 3),
                    "ratio": round(opt_benefit / onl.benefit, 4)
                    if onl.benefit > 0
                    else float("inf"),
                    "preempted": onl.n_preempted,
                }
            )
    return rows


def speedup_sweep(
    policy_factories: Mapping[str, Callable[[], object]],
    traffic: TrafficModel,
    n_slots: int,
    speedups: Iterable[int],
    base_config: SwitchConfig,
    seeds: Iterable[int] = (0,),
    model: str = "cioq",
    include_opt: bool = True,
) -> List[Dict]:
    """Throughput of several policies as speedup varies (T6).

    Every (speedup, seed) cell reruns each policy on the same trace; the
    exact OPT column is included when ``include_opt``.
    """
    rows: List[Dict] = []
    for s in speedups:
        config = SwitchConfig(
            n_in=base_config.n_in,
            n_out=base_config.n_out,
            speedup=int(s),
            b_in=base_config.b_in,
            b_out=base_config.b_out,
            b_cross=base_config.b_cross,
        )
        for seed in seeds:
            trace = traffic.generate(n_slots, seed=seed)
            row: Dict = {"speedup": int(s), "seed": seed,
                         "arrived": len(trace)}
            for name, factory in policy_factories.items():
                policy = factory()
                if model == "cioq":
                    res = run_cioq(policy, config, trace)
                else:
                    res = run_crossbar(policy, config, trace)
                row[name] = round(res.benefit, 3)
            if include_opt:
                if model == "cioq":
                    row["OPT"] = round(cioq_opt(trace, config).benefit, 3)
                else:
                    row["OPT"] = round(crossbar_opt(trace, config).benefit, 3)
            rows.append(row)
    return rows


def buffer_sweep_crossbar(
    policy_factory: Callable[[], object],
    traffic: TrafficModel,
    n_slots: int,
    b_cross_values: Iterable[int],
    base_config: SwitchConfig,
    seeds: Iterable[int] = (0,),
) -> List[Dict]:
    """Crossbar benefit as crosspoint buffer capacity varies (T10)."""
    rows: List[Dict] = []
    for bc in b_cross_values:
        config = SwitchConfig(
            n_in=base_config.n_in,
            n_out=base_config.n_out,
            speedup=base_config.speedup,
            b_in=base_config.b_in,
            b_out=base_config.b_out,
            b_cross=int(bc),
        )
        for seed in seeds:
            trace = traffic.generate(n_slots, seed=seed)
            res = run_crossbar(policy_factory(), config, trace)
            opt = crossbar_opt(trace, config)
            rows.append(
                {
                    "b_cross": int(bc),
                    "seed": seed,
                    "benefit": round(res.benefit, 3),
                    "opt": round(opt.benefit, 3),
                    "ratio": round(opt.benefit / res.benefit, 4)
                    if res.benefit > 0
                    else float("inf"),
                }
            )
    return rows


def measurements_to_rows(measurements: Iterable[RatioMeasurement]) -> List[Dict]:
    return [m.as_row() for m in measurements]
