"""Aligned-text tables for experiment output.

The benchmark harness prints its tables through these helpers so that
``pytest benchmarks/ --benchmark-only`` regenerates, in the console, the
rows EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def _fmt(value: object, float_digits: int = 4) -> str:
    if isinstance(value, bool):
        return "yes" if value else "NO"
    if isinstance(value, float):
        return f"{value:.{float_digits}g}"
    if value is None:
        return "-"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_digits: int = 4,
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(r.get(c), float_digits) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), *(len(row[k]) for row in cells))
        for k, c in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_digits: int = 4,
) -> None:
    print(format_table(rows, columns=columns, title=title,
                       float_digits=float_digits))


def csv_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render dict rows as CSV text with LF line endings (used for the
    scenario result artifacts under ``results/``).

    Values are written verbatim — no float rounding — so the file is a
    faithful, machine-readable record; missing cells are empty.  LF
    (not the RFC 4180 CRLF) keeps artifacts byte-stable across
    platforms and friendly to text diffs.
    """
    import csv
    import io

    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(columns)
    for r in rows:
        writer.writerow(["" if r.get(c) is None else r.get(c) for c in columns])
    return buf.getvalue()


def format_mean_ci(
    mean: Optional[float],
    half_width: Optional[float],
    float_digits: int = 4,
) -> str:
    """Render ``mean ± half-width`` as one cell (``"-"`` parts when
    undefined, e.g. a single replicate has no interval)."""
    if mean is None:
        return "-"
    cell = f"{mean:.{float_digits}g}"
    if half_width is None:
        return cell
    return f"{cell} ± {half_width:.{float_digits}g}"


def format_summary_table(
    rows: Sequence[Mapping[str, object]],
    title: Optional[str] = None,
    float_digits: int = 4,
) -> str:
    """Render replication-summary rows (the schema of
    :data:`repro.stats.SUMMARY_COLUMNS`) as an aligned table with a
    combined ``mean ± hw`` column and explicit CI bounds.

    Used by ``repro scenarios run --replicates`` and ``repro stats
    summarize``; the machine-readable record is the summary artifact,
    this is the human view.
    """
    has_boot = any(r.get("boot_lo") is not None or r.get("boot_hi") is not None
                   for r in rows)
    display = []
    for r in rows:
        out = {
            "policy": r.get("policy"),
            "metric": r.get("metric"),
            "n": r.get("n"),
            "mean": format_mean_ci(r.get("mean"), r.get("half_width"),
                                   float_digits),
            "ci_lo": r.get("ci_lo"),
            "ci_hi": r.get("ci_hi"),
        }
        if has_boot:
            out["boot_lo"] = r.get("boot_lo")
            out["boot_hi"] = r.get("boot_hi")
        display.append(out)
    columns = list(display[0].keys()) if display else None
    return format_table(display, columns=columns, title=title,
                        float_digits=float_digits)


def markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_digits: int = 4,
) -> str:
    """Render dict rows as a GitHub-flavoured markdown table (used when
    pasting results into EXPERIMENTS.md)."""
    if not rows:
        return "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    out = ["| " + " | ".join(str(c) for c in columns) + " |"]
    out.append("|" + "|".join("---" for _ in columns) + "|")
    for r in rows:
        out.append(
            "| " + " | ".join(_fmt(r.get(c), float_digits) for c in columns) + " |"
        )
    return "\n".join(out) + "\n"
