"""Delay and occupancy reporting.

Competitive analysis is about *benefit*, but a switch operator also
cares about delivery delay and buffer occupancy.  These helpers turn
the engine's optional logs (``record=True`` / ``trace_occupancy=True``)
into report rows and compact ASCII sparklines.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..simulation.results import SimulationResult
from ..traffic.trace import Trace

_SPARK = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a numeric series as a one-line ASCII sparkline.

    The series is resampled to ``width`` buckets (max within bucket)
    and mapped onto a 10-level character ramp.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        bucket = len(vals) / width
        vals = [
            max(vals[int(k * bucket): max(int(k * bucket) + 1,
                                          int((k + 1) * bucket))])
            for k in range(width)
        ]
    top = max(vals)
    if top <= 0:
        return _SPARK[0] * len(vals)
    out = []
    for v in vals:
        level = int(v / top * (len(_SPARK) - 1) + 0.5)
        out.append(_SPARK[max(0, min(level, len(_SPARK) - 1))])
    return "".join(out)


def occupancy_report(result: SimulationResult) -> str:
    """Sparkline report of the run's buffer occupancy over time."""
    if not result.occupancy:
        return "(no occupancy trace recorded; run with trace_occupancy=True)"
    voq = [row[1] for row in result.occupancy]
    cross = [row[2] for row in result.occupancy]
    out = [row[3] for row in result.occupancy]
    lines = [
        f"occupancy over {len(voq)} slots (peak in parentheses):",
        f"  VOQs  ({max(voq):4d}) |{sparkline(voq)}|",
    ]
    if any(cross):
        lines.append(f"  cross ({max(cross):4d}) |{sparkline(cross)}|")
    lines.append(f"  out   ({max(out):4d}) |{sparkline(out)}|")
    return "\n".join(lines)


def delay_rows(
    results: Dict[str, SimulationResult], trace: Trace
) -> List[Dict]:
    """Delay-statistics rows (one per named recorded result)."""
    rows = []
    for name, res in results.items():
        stats = res.delay_stats(trace)
        rows.append(
            {
                "policy": name,
                "delivered": stats["n"],
                "mean delay": round(stats["mean"], 2),
                "p50": stats["p50"],
                "p99": stats["p99"],
                "max": stats["max"],
            }
        )
    return rows
