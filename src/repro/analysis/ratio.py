"""Empirical competitive-ratio measurement.

A *measurement* runs one policy on one trace, computes the exact offline
optimum on the same trace, and reports ``OPT / ONL``.  Because the
competitive ratio is a worst case over all sequences, measured ratios
are always *at most* the theoretical bound (if the implementation is
faithful) and typically far below it on stochastic traffic; adversarial
gadgets (T7) push them upward.

Measurements are the unit every experiment (T1–T4, T6, T7, T9, T10) is
built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from ..offline.opt import cioq_opt, crossbar_opt
from ..scheduling.base import CIOQPolicy, CrossbarPolicy
from ..simulation.engine import run_cioq, run_crossbar
from ..switch.config import SwitchConfig
from ..traffic.trace import Trace


def ratio_of(opt_benefit: float, onl_benefit: float) -> float:
    """The competitive-ratio convention used throughout the repo.

    ``OPT / ONL`` when the online algorithm scored; when it scored
    nothing, the ratio is 1.0 if OPT also scored nothing (an empty
    instance is served perfectly) and +inf if OPT scored (the online
    algorithm is unboundedly bad on this instance).  Benefits are sums
    of positive packet values, so negative inputs indicate a broken
    caller and raise.
    """
    if onl_benefit < 0 or opt_benefit < 0:
        raise ValueError(
            f"benefits cannot be negative: onl={onl_benefit}, "
            f"opt={opt_benefit}"
        )
    if onl_benefit > 0:
        return opt_benefit / onl_benefit
    return 1.0 if opt_benefit == 0 else float("inf")


def per_seed_ratios(
    opt_benefits: Sequence[float], onl_benefits: Sequence[float]
) -> List[Optional[float]]:
    """Per-seed ratios for paired benefit sequences (None where the
    ratio is unbounded, i.e. ONL = 0 < OPT), ready for aggregation.

    Aggregates over replicated runs must average *these* — the mean of
    per-seed ratios — never ``sum(opt) / sum(onl)``: the ratio-of-sums
    lets one high-benefit seed wash out a catastrophic seed entirely
    (see the regression test in ``tests/test_stats.py``).
    """
    if len(opt_benefits) != len(onl_benefits):
        raise ValueError(
            f"paired sequences differ in length: {len(opt_benefits)} "
            f"vs {len(onl_benefits)}"
        )
    out: List[Optional[float]] = []
    for opt, onl in zip(opt_benefits, onl_benefits):
        r = ratio_of(opt, onl)
        out.append(r if math.isfinite(r) else None)
    return out


@dataclass
class RatioMeasurement:
    """One (policy, trace) competitive-ratio data point.

    When OPT was computed inexactly (``opt_mode`` "windowed"/"bounds"),
    ``opt_lower``/``opt_upper`` carry the certified bracket and the true
    ratio lies in ``[ratio_lo, ratio_hi]``; ``opt_benefit`` equals the
    conservative upper end.  Exact measurements leave the bracket fields
    ``None`` and both ratio ends collapse onto :attr:`ratio`.
    """

    policy: str
    trace: str
    model: str  # "cioq" or "crossbar"
    onl_benefit: float
    opt_benefit: float
    n_packets: int
    bound: Optional[float] = None
    opt_mode: str = "exact"
    opt_lower: Optional[float] = None
    opt_upper: Optional[float] = None

    @property
    def is_exact(self) -> bool:
        """True when ``opt_benefit`` is the true optimum, not a bracket
        end."""
        return self.opt_lower is None or self.opt_lower == self.opt_upper

    @property
    def ratio(self) -> float:
        """OPT / ONL (1.0 when both are zero; inf when only ONL is zero).

        For bracketed measurements this is the conservative upper-end
        ratio, identical to :attr:`ratio_hi`.
        """
        return ratio_of(self.opt_benefit, self.onl_benefit)

    @property
    def ratio_lo(self) -> float:
        """Certified lower end of the true ratio (equals :attr:`ratio`
        for exact measurements)."""
        if self.opt_lower is None:
            return self.ratio
        return ratio_of(self.opt_lower, self.onl_benefit)

    @property
    def ratio_hi(self) -> float:
        """Certified upper end of the true ratio (equals :attr:`ratio`
        for exact measurements)."""
        if self.opt_upper is None:
            return self.ratio
        return ratio_of(self.opt_upper, self.onl_benefit)

    @property
    def finite_ratio(self) -> Optional[float]:
        """The ratio, or None when it is unbounded — the JSON/CSV-safe
        form (strict JSON has no Infinity)."""
        r = self.ratio
        return r if math.isfinite(r) else None

    @property
    def within_bound(self) -> bool:
        """Whether the measurement is consistent with the proven bound.

        No bound means nothing to violate (vacuously true, even for an
        unbounded ratio).  For exact measurements this is simply
        ``ratio <= bound``.  For bracketed measurements the true ratio
        is only known to lie in ``[ratio_lo, ratio_hi]``, so the
        measurement *violates* the bound only when even the certified
        lower end exceeds it — an inexact OPT never manufactures a
        violation it cannot prove.  Use :attr:`certified_within_bound`
        for the stronger claim that the whole bracket fits under the
        bound.  The epsilon absorbs float noise in OPT / ONL only.
        """
        if self.bound is None:
            return True
        r = self.ratio_lo
        return math.isfinite(r) and r <= self.bound + 1e-9

    @property
    def certified_within_bound(self) -> bool:
        """Whether even the certified *upper* ratio end respects the
        bound (for exact measurements: identical to
        :attr:`within_bound`)."""
        if self.bound is None:
            return True
        r = self.ratio_hi
        return math.isfinite(r) and r <= self.bound + 1e-9

    def as_row(self) -> dict:
        row = {
            "policy": self.policy,
            "trace": self.trace,
            "onl": round(self.onl_benefit, 3),
            "opt": round(self.opt_benefit, 3),
            # None (rendered "-", serialized null) when unbounded.
            "ratio": round(self.ratio, 4) if self.finite_ratio is not None
            else None,
            "bound": self.bound,
            "ok": self.within_bound,
        }
        if not self.is_exact:
            row["opt_mode"] = self.opt_mode
            row["opt_lo"] = round(self.opt_lower, 3)
            row["opt_hi"] = round(self.opt_upper, 3)
            row["ratio_lo"] = (
                round(self.ratio_lo, 4)
                if math.isfinite(self.ratio_lo) else None
            )
            row["ratio_hi"] = (
                round(self.ratio_hi, 4)
                if math.isfinite(self.ratio_hi) else None
            )
        return row


def _measurement(policy_name, trace, model, onl, opt, bound):
    lo, hi = opt.bracket
    if onl.benefit > hi + 1e-6:
        raise AssertionError(
            f"online benefit {onl.benefit} exceeds OPT upper bound {hi}: "
            f"offline model or engine is wrong"
        )
    exact = opt.mode == "exact"
    return RatioMeasurement(
        policy=policy_name,
        trace=trace.name,
        model=model,
        onl_benefit=onl.benefit,
        opt_benefit=opt.benefit,
        n_packets=len(trace),
        bound=bound,
        opt_mode=opt.mode,
        opt_lower=None if exact else lo,
        opt_upper=None if exact else hi,
    )


def measure_cioq_ratio(
    policy: CIOQPolicy,
    trace: Trace,
    config: SwitchConfig,
    bound: Optional[float] = None,
    opt_mode: str = "exact",
    opt_window: Optional[int] = None,
) -> RatioMeasurement:
    """Run ``policy`` and the offline OPT solver on a CIOQ instance."""
    onl = run_cioq(policy, config, trace)
    opt = cioq_opt(trace, config, mode=opt_mode, window=opt_window)
    return _measurement(policy.name, trace, "cioq", onl, opt, bound)


def measure_crossbar_ratio(
    policy: CrossbarPolicy,
    trace: Trace,
    config: SwitchConfig,
    bound: Optional[float] = None,
    opt_mode: str = "exact",
    opt_window: Optional[int] = None,
) -> RatioMeasurement:
    """Run ``policy`` and the offline OPT solver on a buffered crossbar
    instance."""
    onl = run_crossbar(policy, config, trace)
    opt = crossbar_opt(trace, config, mode=opt_mode, window=opt_window)
    return _measurement(policy.name, trace, "crossbar", onl, opt, bound)


def measure_many(
    policy_factory: Callable[[], CIOQPolicy],
    traces: Iterable[Trace],
    config: SwitchConfig,
    bound: Optional[float] = None,
    model: str = "cioq",
    opt_mode: str = "exact",
    opt_window: Optional[int] = None,
) -> List[RatioMeasurement]:
    """Measure one policy across many traces (fresh policy per trace)."""
    out: List[RatioMeasurement] = []
    for trace in traces:
        if model == "cioq":
            out.append(measure_cioq_ratio(policy_factory(), trace, config,
                                          bound, opt_mode, opt_window))
        elif model == "crossbar":
            out.append(
                measure_crossbar_ratio(policy_factory(), trace, config,
                                       bound, opt_mode, opt_window)
            )
        else:
            raise ValueError(f"unknown model {model!r}")
    return out


def worst(measurements: Iterable[RatioMeasurement]) -> RatioMeasurement:
    """The measurement with the largest ratio."""
    ms = list(measurements)
    if not ms:
        raise ValueError("no measurements")
    return max(ms, key=lambda m: m.ratio)


def summarize(measurements: Iterable[RatioMeasurement]) -> dict:
    """Aggregate statistics over a batch of measurements.

    ``mean_ratio`` averages the *finite* per-measurement ratios of the
    **exact** measurements only (the per-seed mean, never a ratio of
    summed benefits) — bracketed points never silently enter an
    exact-looking mean.  They contribute instead to the certified
    bracket ``[mean_ratio_lo, mean_ratio_hi]`` on the true mean, which
    averages the certified ratio ends of *all* finite measurements
    (exact points contribute their ratio to both ends).  Unbounded
    measurements are counted in ``n_unbounded`` and surface through
    ``max_ratio`` (inf) rather than poisoning the means.
    """
    ms = list(measurements)
    ratios = [m.ratio for m in ms]
    finite_exact = [m.ratio for m in ms
                    if m.is_exact and math.isfinite(m.ratio)]
    finite_lo = [m.ratio_lo for m in ms if math.isfinite(m.ratio_lo)]
    finite_hi = [m.ratio_hi for m in ms if math.isfinite(m.ratio_hi)]
    n_unbounded = sum(1 for r in ratios if not math.isfinite(r))

    def _mean(vals):
        return sum(vals) / len(vals) if vals else float("nan")

    return {
        "n": len(ms),
        "n_exact": sum(1 for m in ms if m.is_exact),
        "n_bracketed": sum(1 for m in ms if not m.is_exact),
        "n_unbounded": n_unbounded,
        "max_ratio": max(ratios) if ratios else float("nan"),
        "mean_ratio": _mean(finite_exact),
        "mean_ratio_lo": _mean(finite_lo),
        "mean_ratio_hi": _mean(finite_hi),
        "all_within_bound": all(m.within_bound for m in ms),
        "all_certified_within_bound": all(
            m.certified_within_bound for m in ms
        ),
    }


@dataclass
class RatioSummary:
    """CI-aware aggregate of replicated ratio measurements.

    The mean (with its std and normal CI) is the mean of *per-seed*
    ratios over the ``n`` finite **exact** measurements; bracketed
    measurements (inexact OPT) are never mixed into it.  They are
    counted in ``n_bracketed`` and contribute to ``mean_lo`` /
    ``mean_hi``: the certified bracket on the true mean ratio over all
    finite measurements (exact points enter both ends at their exact
    ratio; both are None when every ratio end is unbounded).
    ``n_unbounded`` counts seeds whose conservative ratio was unbounded
    (ONL = 0 < OPT upper) and therefore excluded.  ``ci_lo`` / ``ci_hi``
    bound the exact mean ratio at ``confidence`` level via the normal
    interval of :mod:`repro.stats.ci`; they are None when fewer than
    two finite exact ratios exist.  ``worst`` is conservative: the
    maximum certified *upper* ratio end.
    """

    policy: str
    n: int
    n_unbounded: int
    mean: Optional[float]
    std: Optional[float]
    ci_lo: Optional[float]
    ci_hi: Optional[float]
    worst: float
    confidence: float = 0.95
    all_within_bound: bool = True
    n_bracketed: int = 0
    mean_lo: Optional[float] = None
    mean_hi: Optional[float] = None

    @classmethod
    def from_measurements(
        cls,
        measurements: Iterable[RatioMeasurement],
        confidence: float = 0.95,
    ) -> "RatioSummary":
        # Deferred import: analysis must stay importable without
        # triggering the stats package (which imports the scenario
        # subsystem, which imports this package).
        from ..stats.ci import normal_interval
        from ..stats.welford import Welford

        ms = list(measurements)
        if not ms:
            raise ValueError("no measurements to summarize")
        finite = [m.ratio for m in ms
                  if m.is_exact and m.finite_ratio is not None]
        n_bracketed = sum(1 for m in ms if not m.is_exact)
        acc = Welford.from_values(finite)
        lo, hi = normal_interval(acc.mean, acc.std, acc.n, confidence)
        finite_lo = [m.ratio_lo for m in ms if math.isfinite(m.ratio_lo)]
        finite_hi = [m.ratio_hi for m in ms if math.isfinite(m.ratio_hi)]
        mean_lo = sum(finite_lo) / len(finite_lo) if finite_lo else None
        mean_hi = sum(finite_hi) / len(finite_hi) if finite_hi else None
        return cls(
            policy=ms[0].policy,
            n=len(finite),
            n_unbounded=sum(1 for m in ms if m.finite_ratio is None),
            mean=acc.mean if finite else None,
            std=acc.std if math.isfinite(acc.std) else None,
            ci_lo=lo if math.isfinite(lo) else None,
            ci_hi=hi if math.isfinite(hi) else None,
            worst=max(m.ratio_hi for m in ms),
            confidence=confidence,
            all_within_bound=all(m.within_bound for m in ms),
            n_bracketed=n_bracketed,
            mean_lo=mean_lo,
            mean_hi=mean_hi,
        )

    @property
    def half_width(self) -> Optional[float]:
        if self.ci_lo is None or self.mean is None:
            return None
        return self.mean - self.ci_lo

    def as_row(self) -> dict:
        hw = self.half_width
        row = {
            "policy": self.policy,
            "n": self.n,
            "mean_ratio": round(self.mean, 4) if self.mean is not None
            else None,
            "hw": round(hw, 4) if hw is not None else None,
            "worst": round(self.worst, 4) if math.isfinite(self.worst)
            else None,
            "ok": self.all_within_bound,
        }
        if self.n_bracketed:
            row["n_bracketed"] = self.n_bracketed
            row["mean_lo"] = (
                round(self.mean_lo, 4) if self.mean_lo is not None else None
            )
            row["mean_hi"] = (
                round(self.mean_hi, 4) if self.mean_hi is not None else None
            )
        return row
