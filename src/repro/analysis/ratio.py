"""Empirical competitive-ratio measurement.

A *measurement* runs one policy on one trace, computes the exact offline
optimum on the same trace, and reports ``OPT / ONL``.  Because the
competitive ratio is a worst case over all sequences, measured ratios
are always *at most* the theoretical bound (if the implementation is
faithful) and typically far below it on stochastic traffic; adversarial
gadgets (T7) push them upward.

Measurements are the unit every experiment (T1–T4, T6, T7, T9, T10) is
built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from ..offline.opt import cioq_opt, crossbar_opt
from ..scheduling.base import CIOQPolicy, CrossbarPolicy
from ..simulation.engine import run_cioq, run_crossbar
from ..switch.config import SwitchConfig
from ..traffic.trace import Trace


def ratio_of(opt_benefit: float, onl_benefit: float) -> float:
    """The competitive-ratio convention used throughout the repo.

    ``OPT / ONL`` when the online algorithm scored; when it scored
    nothing, the ratio is 1.0 if OPT also scored nothing (an empty
    instance is served perfectly) and +inf if OPT scored (the online
    algorithm is unboundedly bad on this instance).  Benefits are sums
    of positive packet values, so negative inputs indicate a broken
    caller and raise.
    """
    if onl_benefit < 0 or opt_benefit < 0:
        raise ValueError(
            f"benefits cannot be negative: onl={onl_benefit}, "
            f"opt={opt_benefit}"
        )
    if onl_benefit > 0:
        return opt_benefit / onl_benefit
    return 1.0 if opt_benefit == 0 else float("inf")


def per_seed_ratios(
    opt_benefits: Sequence[float], onl_benefits: Sequence[float]
) -> List[Optional[float]]:
    """Per-seed ratios for paired benefit sequences (None where the
    ratio is unbounded, i.e. ONL = 0 < OPT), ready for aggregation.

    Aggregates over replicated runs must average *these* — the mean of
    per-seed ratios — never ``sum(opt) / sum(onl)``: the ratio-of-sums
    lets one high-benefit seed wash out a catastrophic seed entirely
    (see the regression test in ``tests/test_stats.py``).
    """
    if len(opt_benefits) != len(onl_benefits):
        raise ValueError(
            f"paired sequences differ in length: {len(opt_benefits)} "
            f"vs {len(onl_benefits)}"
        )
    out: List[Optional[float]] = []
    for opt, onl in zip(opt_benefits, onl_benefits):
        r = ratio_of(opt, onl)
        out.append(r if math.isfinite(r) else None)
    return out


@dataclass
class RatioMeasurement:
    """One (policy, trace) competitive-ratio data point."""

    policy: str
    trace: str
    model: str  # "cioq" or "crossbar"
    onl_benefit: float
    opt_benefit: float
    n_packets: int
    bound: Optional[float] = None

    @property
    def ratio(self) -> float:
        """OPT / ONL (1.0 when both are zero; inf when only ONL is zero)."""
        return ratio_of(self.opt_benefit, self.onl_benefit)

    @property
    def finite_ratio(self) -> Optional[float]:
        """The ratio, or None when it is unbounded — the JSON/CSV-safe
        form (strict JSON has no Infinity)."""
        r = self.ratio
        return r if math.isfinite(r) else None

    @property
    def within_bound(self) -> bool:
        """Whether the measured ratio respects the proven bound.

        No bound means nothing to violate (vacuously true, even for an
        unbounded ratio); an unbounded ratio violates every finite
        bound.  The epsilon absorbs float noise in OPT / ONL only — it
        never excuses a genuinely out-of-bound measurement.
        """
        if self.bound is None:
            return True
        r = self.ratio
        return math.isfinite(r) and r <= self.bound + 1e-9

    def as_row(self) -> dict:
        return {
            "policy": self.policy,
            "trace": self.trace,
            "onl": round(self.onl_benefit, 3),
            "opt": round(self.opt_benefit, 3),
            # None (rendered "-", serialized null) when unbounded.
            "ratio": round(self.ratio, 4) if self.finite_ratio is not None
            else None,
            "bound": self.bound,
            "ok": self.within_bound,
        }


def measure_cioq_ratio(
    policy: CIOQPolicy,
    trace: Trace,
    config: SwitchConfig,
    bound: Optional[float] = None,
) -> RatioMeasurement:
    """Run ``policy`` and the exact OPT on a CIOQ instance."""
    onl = run_cioq(policy, config, trace)
    opt = cioq_opt(trace, config)
    if onl.benefit > opt.benefit + 1e-6:
        raise AssertionError(
            f"online benefit {onl.benefit} exceeds OPT {opt.benefit}: "
            f"offline model or engine is wrong"
        )
    return RatioMeasurement(
        policy=policy.name,
        trace=trace.name,
        model="cioq",
        onl_benefit=onl.benefit,
        opt_benefit=opt.benefit,
        n_packets=len(trace),
        bound=bound,
    )


def measure_crossbar_ratio(
    policy: CrossbarPolicy,
    trace: Trace,
    config: SwitchConfig,
    bound: Optional[float] = None,
) -> RatioMeasurement:
    """Run ``policy`` and the exact OPT on a buffered crossbar instance."""
    onl = run_crossbar(policy, config, trace)
    opt = crossbar_opt(trace, config)
    if onl.benefit > opt.benefit + 1e-6:
        raise AssertionError(
            f"online benefit {onl.benefit} exceeds OPT {opt.benefit}: "
            f"offline model or engine is wrong"
        )
    return RatioMeasurement(
        policy=policy.name,
        trace=trace.name,
        model="crossbar",
        onl_benefit=onl.benefit,
        opt_benefit=opt.benefit,
        n_packets=len(trace),
        bound=bound,
    )


def measure_many(
    policy_factory: Callable[[], CIOQPolicy],
    traces: Iterable[Trace],
    config: SwitchConfig,
    bound: Optional[float] = None,
    model: str = "cioq",
) -> List[RatioMeasurement]:
    """Measure one policy across many traces (fresh policy per trace)."""
    out: List[RatioMeasurement] = []
    for trace in traces:
        if model == "cioq":
            out.append(measure_cioq_ratio(policy_factory(), trace, config, bound))
        elif model == "crossbar":
            out.append(
                measure_crossbar_ratio(policy_factory(), trace, config, bound)
            )
        else:
            raise ValueError(f"unknown model {model!r}")
    return out


def worst(measurements: Iterable[RatioMeasurement]) -> RatioMeasurement:
    """The measurement with the largest ratio."""
    ms = list(measurements)
    if not ms:
        raise ValueError("no measurements")
    return max(ms, key=lambda m: m.ratio)


def summarize(measurements: Iterable[RatioMeasurement]) -> dict:
    """Aggregate statistics over a batch of measurements.

    ``mean_ratio`` averages the *finite* per-measurement ratios (the
    per-seed mean, never a ratio of summed benefits); unbounded
    measurements are counted in ``n_unbounded`` and surface through
    ``max_ratio`` (inf) rather than poisoning the mean.
    """
    ms = list(measurements)
    ratios = [m.ratio for m in ms]
    finite = [r for r in ratios if math.isfinite(r)]
    return {
        "n": len(ms),
        "n_unbounded": len(ratios) - len(finite),
        "max_ratio": max(ratios) if ratios else float("nan"),
        "mean_ratio": sum(finite) / len(finite) if finite else float("nan"),
        "all_within_bound": all(m.within_bound for m in ms),
    }


@dataclass
class RatioSummary:
    """CI-aware aggregate of replicated ratio measurements.

    The mean is the mean of *per-seed* ratios over the ``n`` finite
    measurements; ``n_unbounded`` counts seeds whose ratio was
    unbounded (ONL = 0 < OPT) and therefore excluded.  ``ci_lo`` /
    ``ci_hi`` bound the mean ratio at ``confidence`` level via the
    normal interval of :mod:`repro.stats.ci`; they are None when fewer
    than two finite ratios exist.
    """

    policy: str
    n: int
    n_unbounded: int
    mean: Optional[float]
    std: Optional[float]
    ci_lo: Optional[float]
    ci_hi: Optional[float]
    worst: float
    confidence: float = 0.95
    all_within_bound: bool = True

    @classmethod
    def from_measurements(
        cls,
        measurements: Iterable[RatioMeasurement],
        confidence: float = 0.95,
    ) -> "RatioSummary":
        # Deferred import: analysis must stay importable without
        # triggering the stats package (which imports the scenario
        # subsystem, which imports this package).
        from ..stats.ci import normal_interval
        from ..stats.welford import Welford

        ms = list(measurements)
        if not ms:
            raise ValueError("no measurements to summarize")
        finite = [m.ratio for m in ms if m.finite_ratio is not None]
        acc = Welford.from_values(finite)
        lo, hi = normal_interval(acc.mean, acc.std, acc.n, confidence)
        return cls(
            policy=ms[0].policy,
            n=len(finite),
            n_unbounded=len(ms) - len(finite),
            mean=acc.mean if finite else None,
            std=acc.std if math.isfinite(acc.std) else None,
            ci_lo=lo if math.isfinite(lo) else None,
            ci_hi=hi if math.isfinite(hi) else None,
            worst=max(m.ratio for m in ms),
            confidence=confidence,
            all_within_bound=all(m.within_bound for m in ms),
        )

    @property
    def half_width(self) -> Optional[float]:
        if self.ci_lo is None or self.mean is None:
            return None
        return self.mean - self.ci_lo

    def as_row(self) -> dict:
        hw = self.half_width
        return {
            "policy": self.policy,
            "n": self.n,
            "mean_ratio": round(self.mean, 4) if self.mean is not None
            else None,
            "hw": round(hw, 4) if hw is not None else None,
            "worst": round(self.worst, 4) if math.isfinite(self.worst)
            else None,
            "ok": self.all_within_bound,
        }
