"""Empirical competitive-ratio measurement.

A *measurement* runs one policy on one trace, computes the exact offline
optimum on the same trace, and reports ``OPT / ONL``.  Because the
competitive ratio is a worst case over all sequences, measured ratios
are always *at most* the theoretical bound (if the implementation is
faithful) and typically far below it on stochastic traffic; adversarial
gadgets (T7) push them upward.

Measurements are the unit every experiment (T1–T4, T6, T7, T9, T10) is
built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from ..offline.opt import cioq_opt, crossbar_opt
from ..scheduling.base import CIOQPolicy, CrossbarPolicy
from ..simulation.engine import run_cioq, run_crossbar
from ..switch.config import SwitchConfig
from ..traffic.trace import Trace


@dataclass
class RatioMeasurement:
    """One (policy, trace) competitive-ratio data point."""

    policy: str
    trace: str
    model: str  # "cioq" or "crossbar"
    onl_benefit: float
    opt_benefit: float
    n_packets: int
    bound: Optional[float] = None

    @property
    def ratio(self) -> float:
        """OPT / ONL (1.0 when both are zero; inf when only ONL is zero)."""
        if self.onl_benefit > 0:
            return self.opt_benefit / self.onl_benefit
        return 1.0 if self.opt_benefit == 0 else float("inf")

    @property
    def within_bound(self) -> bool:
        return self.bound is None or self.ratio <= self.bound + 1e-9

    def as_row(self) -> dict:
        return {
            "policy": self.policy,
            "trace": self.trace,
            "onl": round(self.onl_benefit, 3),
            "opt": round(self.opt_benefit, 3),
            "ratio": round(self.ratio, 4),
            "bound": self.bound,
            "ok": self.within_bound,
        }


def measure_cioq_ratio(
    policy: CIOQPolicy,
    trace: Trace,
    config: SwitchConfig,
    bound: Optional[float] = None,
) -> RatioMeasurement:
    """Run ``policy`` and the exact OPT on a CIOQ instance."""
    onl = run_cioq(policy, config, trace)
    opt = cioq_opt(trace, config)
    if onl.benefit > opt.benefit + 1e-6:
        raise AssertionError(
            f"online benefit {onl.benefit} exceeds OPT {opt.benefit}: "
            f"offline model or engine is wrong"
        )
    return RatioMeasurement(
        policy=policy.name,
        trace=trace.name,
        model="cioq",
        onl_benefit=onl.benefit,
        opt_benefit=opt.benefit,
        n_packets=len(trace),
        bound=bound,
    )


def measure_crossbar_ratio(
    policy: CrossbarPolicy,
    trace: Trace,
    config: SwitchConfig,
    bound: Optional[float] = None,
) -> RatioMeasurement:
    """Run ``policy`` and the exact OPT on a buffered crossbar instance."""
    onl = run_crossbar(policy, config, trace)
    opt = crossbar_opt(trace, config)
    if onl.benefit > opt.benefit + 1e-6:
        raise AssertionError(
            f"online benefit {onl.benefit} exceeds OPT {opt.benefit}: "
            f"offline model or engine is wrong"
        )
    return RatioMeasurement(
        policy=policy.name,
        trace=trace.name,
        model="crossbar",
        onl_benefit=onl.benefit,
        opt_benefit=opt.benefit,
        n_packets=len(trace),
        bound=bound,
    )


def measure_many(
    policy_factory: Callable[[], CIOQPolicy],
    traces: Iterable[Trace],
    config: SwitchConfig,
    bound: Optional[float] = None,
    model: str = "cioq",
) -> List[RatioMeasurement]:
    """Measure one policy across many traces (fresh policy per trace)."""
    out: List[RatioMeasurement] = []
    for trace in traces:
        if model == "cioq":
            out.append(measure_cioq_ratio(policy_factory(), trace, config, bound))
        elif model == "crossbar":
            out.append(
                measure_crossbar_ratio(policy_factory(), trace, config, bound)
            )
        else:
            raise ValueError(f"unknown model {model!r}")
    return out


def worst(measurements: Iterable[RatioMeasurement]) -> RatioMeasurement:
    """The measurement with the largest ratio."""
    ms = list(measurements)
    if not ms:
        raise ValueError("no measurements")
    return max(ms, key=lambda m: m.ratio)


def summarize(measurements: Iterable[RatioMeasurement]) -> dict:
    """Aggregate statistics over a batch of measurements."""
    ms = list(measurements)
    ratios = [m.ratio for m in ms]
    return {
        "n": len(ms),
        "max_ratio": max(ratios) if ratios else float("nan"),
        "mean_ratio": sum(ratios) / len(ratios) if ratios else float("nan"),
        "all_within_bound": all(m.within_bound for m in ms),
    }
