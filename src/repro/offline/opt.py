"""Facade over the offline-optimum solvers.

`cioq_opt` / `crossbar_opt` are what experiments call: exact OPT benefit
(and optionally the extracted schedule) for a given trace and switch
configuration.  The heavy lifting lives in
:class:`~repro.offline.timegraph.CIOQOptModel` and
:class:`~repro.offline.crossbar_timegraph.CrossbarOptModel`.
"""

from __future__ import annotations

from typing import Optional

from ..switch.config import SwitchConfig
from ..traffic.trace import Trace
from .crossbar_timegraph import CrossbarOptModel
from .timegraph import CIOQOptModel, OptResult, cioq_relaxation_bound


def cioq_opt(
    trace: Trace,
    config: SwitchConfig,
    horizon: Optional[int] = None,
    extract_schedule: bool = False,
) -> OptResult:
    """Exact offline optimum benefit for a CIOQ instance."""
    model = CIOQOptModel(trace, config, horizon=horizon)
    return model.solve(extract_schedule=extract_schedule)


def crossbar_opt(
    trace: Trace,
    config: SwitchConfig,
    horizon: Optional[int] = None,
    extract_schedule: bool = False,
) -> OptResult:
    """Exact offline optimum benefit for a buffered crossbar instance.

    Note: the crossbar optimum is always >= the CIOQ optimum on the same
    trace and capacities (crosspoint buffers only add capability), a
    relation the integration tests exercise.
    """
    model = CrossbarOptModel(trace, config, horizon=horizon)
    return model.solve(extract_schedule=extract_schedule)


def cioq_upper_bound(
    trace: Trace,
    config: SwitchConfig,
    horizon: Optional[int] = None,
) -> float:
    """Fast flow-relaxation upper bound on the CIOQ offline optimum."""
    return cioq_relaxation_bound(trace, config, horizon=horizon)
