"""Facade over the offline-optimum solvers.

`cioq_opt` / `crossbar_opt` are what experiments call: the offline
optimum benefit (and optionally the extracted schedule) for a given
trace and switch configuration.  Three modes trade exactness for scale
(see ``docs/offline_opt.md``):

* ``mode="exact"`` (default) — the time-expanded MILP of
  :class:`~repro.offline.timegraph.CIOQOptModel` /
  :class:`~repro.offline.crossbar_timegraph.CrossbarOptModel`.
* ``mode="windowed"`` — per-window exact solves stitched into a
  certified ``(opt_lower, opt_upper)`` bracket
  (:func:`~repro.offline.windowed.windowed_opt`).  With
  ``window >= trace.n_slots`` this reproduces exact mode bit for bit.
* ``mode="bounds"`` — near-linear greedy lower / capacity-relaxation
  upper bracket (:func:`~repro.offline.bounds.bounds_opt`).
* ``mode="auto"`` — pick one of the above from the estimated exact
  model size (:func:`select_opt_mode`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..switch.config import SwitchConfig
from ..traffic.trace import Trace
from .bounds import bounds_opt
from .crossbar_timegraph import CrossbarOptModel
from .timegraph import CIOQOptModel, OptResult, cioq_relaxation_bound
from .windowed import window_drain_slots, windowed_opt

#: Recognised ``mode=`` values, in increasing order of approximation.
OPT_MODES = ("exact", "windowed", "bounds", "auto")

#: Rough cap on exact-model size (active pairs x horizon x speedup —
#: a proxy for the departure-variable count) below which the exact MILP
#: solves in acceptable time.  Calibrated against measured HiGHS solve
#: times: ~8k proxy units solve in seconds, ~30k in about a minute, and
#: growth beyond that is strongly superlinear.
AUTO_EXACT_BUDGET = 30_000

#: Per-window size budget for auto-selected windowed mode, and a cap on
#: the number of windows auto mode is willing to stitch before falling
#: back to the near-linear bounds mode.
AUTO_WINDOW_BUDGET = 12_000
AUTO_MAX_WINDOWS = 24
AUTO_MIN_WINDOW = 4


def _exact_size_proxy(trace: Trace, config: SwitchConfig,
                      horizon: int) -> int:
    pairs = len({(p.src, p.dst) for p in trace.packets})
    return pairs * horizon * config.speedup


def select_opt_mode(
    trace: Trace,
    config: SwitchConfig,
    window: Optional[int] = None,
) -> Tuple[str, Optional[int]]:
    """Resolve ``mode="auto"``: deterministic in (trace, config, window).

    Returns ``(mode, window)`` with ``mode`` one of ``exact``,
    ``windowed`` or ``bounds``.  Exact is chosen while the estimated
    model size fits :data:`AUTO_EXACT_BUDGET`; windowed while a window
    of at least :data:`AUTO_MIN_WINDOW` slots keeps per-window models
    inside :data:`AUTO_WINDOW_BUDGET` with at most
    :data:`AUTO_MAX_WINDOWS` windows; bounds otherwise.
    """
    from .timegraph import default_horizon

    if not trace.packets:
        return "exact", None
    if _exact_size_proxy(
        trace, config, default_horizon(trace, config)
    ) <= AUTO_EXACT_BUDGET:
        return "exact", None
    pairs = len({(p.src, p.dst) for p in trace.packets})
    drain = window_drain_slots(config)
    if window is None:
        window = AUTO_WINDOW_BUDGET // (pairs * config.speedup) - drain
    if window >= AUTO_MIN_WINDOW:
        n_windows = -(-trace.n_slots // window)
        if n_windows <= AUTO_MAX_WINDOWS and _exact_size_proxy(
            trace, config, window + drain
        ) <= AUTO_WINDOW_BUDGET:
            return "windowed", window
    return "bounds", None


def solve_opt(
    trace: Trace,
    config: SwitchConfig,
    model: str = "cioq",
    mode: str = "exact",
    window: Optional[int] = None,
    horizon: Optional[int] = None,
    extract_schedule: bool = False,
) -> OptResult:
    """Offline optimum (or certified bracket) for either switch model."""
    if mode not in OPT_MODES:
        raise ValueError(f"unknown opt mode {mode!r}; expected {OPT_MODES}")
    if model not in ("cioq", "crossbar"):
        raise ValueError(f"unknown offline model {model!r}")
    if mode == "auto":
        mode, window = select_opt_mode(trace, config, window=window)
    if mode == "exact":
        cls = CIOQOptModel if model == "cioq" else CrossbarOptModel
        return cls(trace, config, horizon=horizon).solve(
            extract_schedule=extract_schedule
        )
    if extract_schedule:
        raise ValueError("schedule extraction is only supported in exact mode")
    if horizon is not None:
        raise ValueError(
            "explicit horizons are only supported in exact mode"
        )
    if mode == "windowed":
        if window is None:
            raise ValueError("windowed mode requires a window width")
        return windowed_opt(trace, config, window=window, model=model)
    return bounds_opt(trace, config, model=model)


def cioq_opt(
    trace: Trace,
    config: SwitchConfig,
    horizon: Optional[int] = None,
    extract_schedule: bool = False,
    mode: str = "exact",
    window: Optional[int] = None,
) -> OptResult:
    """Offline optimum benefit for a CIOQ instance (exact by default)."""
    return solve_opt(trace, config, model="cioq", mode=mode, window=window,
                     horizon=horizon, extract_schedule=extract_schedule)


def crossbar_opt(
    trace: Trace,
    config: SwitchConfig,
    horizon: Optional[int] = None,
    extract_schedule: bool = False,
    mode: str = "exact",
    window: Optional[int] = None,
) -> OptResult:
    """Offline optimum benefit for a buffered crossbar instance.

    Note: the crossbar optimum is always >= the CIOQ optimum on the same
    trace and capacities (crosspoint buffers only add capability), a
    relation the integration tests exercise.
    """
    return solve_opt(trace, config, model="crossbar", mode=mode,
                     window=window, horizon=horizon,
                     extract_schedule=extract_schedule)


def cioq_upper_bound(
    trace: Trace,
    config: SwitchConfig,
    horizon: Optional[int] = None,
) -> float:
    """Fast flow-relaxation upper bound on the CIOQ offline optimum."""
    return cioq_relaxation_bound(trace, config, horizon=horizon)
